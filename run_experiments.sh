#!/bin/sh
# Regenerate every experiment in DESIGN.md's per-experiment index.
# Results are discussed in EXPERIMENTS.md.
#
#   ./run_experiments.sh          full run (experiments + microbenchmarks)
#   ./run_experiments.sh --smoke  experiments only, reduced output checks —
#                                 a fast CI-friendly pass/fail signal
set -e

SMOKE=0
if [ "$1" = "--smoke" ]; then
    SMOKE=1
fi

cargo build --release -p tcq-bench

for e in exp_eddy_adaptivity exp_cacq_sharing exp_psoup exp_hybrid_join \
         exp_flux exp_window_memory exp_adaptivity_knobs exp_storage \
         exp_dynamic_queries exp_chaos exp_throughput exp_scaling \
         exp_kernels exp_query_scale exp_recovery exp_liveness \
         exp_clients; do
    echo
    echo "================ $e ================"
    if [ "$SMOKE" = "1" ]; then
        # Experiments assert their own claims; in smoke mode we only keep
        # the exit status (stderr still surfaces assertion failures).
        # Binaries that understand --smoke (exp_chaos) run reduced-scale;
        # the rest ignore the flag.
        ./target/release/$e --smoke > /dev/null
        echo "ok"
    else
        ./target/release/$e
    fi
done

if [ "$SMOKE" = "1" ]; then
    echo
    echo "smoke: all experiments passed"
    exit 0
fi

echo
echo "================ Microbenchmarks (std timer harness) ================"
cargo bench -p tcq-bench
