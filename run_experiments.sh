#!/bin/sh
# Regenerate every experiment in DESIGN.md's per-experiment index.
# Results are discussed in EXPERIMENTS.md.
set -e
cargo build --release -p tcq-bench
for e in exp_eddy_adaptivity exp_cacq_sharing exp_psoup exp_hybrid_join \
         exp_flux exp_window_memory exp_adaptivity_knobs exp_storage \
         exp_dynamic_queries; do
    echo
    echo "================ $e ================"
    ./target/release/$e
done
echo
echo "================ Criterion microbenchmarks ================"
cargo bench -p tcq-bench
