//! Watching an eddy adapt (paper §2.2): two commutative filters whose
//! selectivities *swap* halfway through the stream. A static plan commits
//! to one order and pays for it in the second half; the lottery eddy
//! re-learns the ordering on the fly, tuple by tuple.
//!
//! ```text
//! cargo run --example adaptive_routing --release
//! ```

use telegraphcq::eddy::{FixedPolicy, LotteryPolicy, RoutingPolicy};
use telegraphcq::prelude::*;

fn build_eddy(policy: Box<dyn RoutingPolicy>, cost_units: u64) -> (Eddy, SchemaRef) {
    let schema = Schema::qualified(
        "S",
        vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ],
    )
    .into_ref();
    let mut eddy = Eddy::new(&["S"], policy, EddyConfig::default()).unwrap();
    let s = eddy.source_bit("S").unwrap();
    // f_a passes when a < 20 (selective in phase 1, permissive in phase 2)
    let fa = SelectOp::new(
        "a<20",
        &Expr::col("a").cmp(CmpOp::Lt, Expr::lit(20i64)),
        &schema,
    )
    .unwrap()
    .with_cost_units(cost_units);
    // f_b passes when b < 20 (permissive in phase 1, selective in phase 2)
    let fb = SelectOp::new(
        "b<20",
        &Expr::col("b").cmp(CmpOp::Lt, Expr::lit(20i64)),
        &schema,
    )
    .unwrap()
    .with_cost_units(cost_units);
    eddy.add_module(ModuleSpec::filter(Box::new(fa), s))
        .unwrap();
    eddy.add_module(ModuleSpec::filter(Box::new(fb), s))
        .unwrap();
    (eddy, schema)
}

/// Phase 1: a ∈ [0,100) (f_a passes 20%), b ∈ [0,25) (f_b passes 80%).
/// Phase 2: the distributions swap.
fn run(mut eddy: Eddy, schema: &SchemaRef, n: i64) -> (Eddy, u64) {
    let mut rng = telegraphcq::common::rng::seeded(17);
    let start = std::time::Instant::now();
    for i in 0..n {
        let phase2 = i >= n / 2;
        let (a, b) = if phase2 {
            (rng.gen_range(0..25i64), rng.gen_range(0..100i64))
        } else {
            (rng.gen_range(0..100i64), rng.gen_range(0..25i64))
        };
        let t = TupleBuilder::new(schema.clone())
            .push(a)
            .push(b)
            .at(Timestamp::logical(i))
            .build()
            .unwrap();
        eddy.process(t).unwrap();
    }
    (eddy, start.elapsed().as_micros() as u64)
}

fn main() {
    const N: i64 = 200_000;
    const COST: u64 = 60; // make filter work dominate routing overhead

    println!("{N} tuples; selectivities of the two filters swap at the midpoint\n");
    for (label, policy) in [
        (
            "static plan (f_a first — right for phase 1 only)",
            Box::new(FixedPolicy::new(vec![0, 1])) as Box<dyn RoutingPolicy>,
        ),
        (
            "static plan (f_b first — right for phase 2 only)",
            Box::new(FixedPolicy::new(vec![1, 0])),
        ),
        (
            "lottery eddy (adapts continuously)",
            Box::new(LotteryPolicy::new().with_decay(0.5, 512)),
        ),
    ] {
        let (eddy, schema) = build_eddy(policy, COST);
        let (eddy, micros) = run(eddy, &schema, N);
        let stats = eddy.stats();
        let m = eddy.module_stats();
        println!("{label}");
        println!(
            "  wall: {:>7} us | visits: {:>7} | emitted: {} | routed f_a: {} f_b: {}",
            micros, stats.visits, stats.emitted, m[0].routed, m[1].routed
        );
        println!(
            "  observed pass rates: f_a {:.2}, f_b {:.2}\n",
            m[0].pass_rate(),
            m[1].pass_rate()
        );
    }
    println!(
        "the eddy's total visits track the better static plan in BOTH phases —\n\
         no optimizer, no statistics, just per-tuple lottery routing (AH00)."
    );
}
