//! Quickstart: boot a TelegraphCQ server, register a stream, submit a
//! continuous query, stream data through it, read results.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::time::Duration;

use telegraphcq::prelude::*;

fn main() -> Result<()> {
    // 1. Boot the engine: 2 Execution Objects, lottery routing.
    let server = TelegraphCQ::start(ServerConfig::default())?;

    // 2. Register the paper's ClosingStockPrices stream.
    server.register_stream(
        "ClosingStockPrices",
        StockTicks::schema_for("ClosingStockPrices"),
    )?;

    // 3. Connect a client and submit a standing query (paper §4.1.1
    //    example 2's predicate, as a pure continuous filter).
    let client = server.connect_pull_client(10_000)?;
    let qid = server.submit(
        "SELECT timestamp, stockSymbol, closingPrice \
         FROM ClosingStockPrices \
         WHERE closingPrice > 50.00",
        client,
    )?;
    println!("standing query q{qid} registered");

    // 4. Attach a wrapper: 500 trading days of synthetic ticks.
    server.attach_source(
        "ClosingStockPrices",
        Box::new(
            StockTicks::new("ClosingStockPrices", &["MSFT", "IBM", "ORCL"], 42)
                .with_max_days(500)
                .with_volatility(2.0),
        ),
    )?;

    // 5. Wait for the finite stream to drain, then fetch results.
    server.quiesce(Duration::from_secs(10));
    let results = server.fetch(client, 10_000)?;
    println!("{} ticks closed above $50; first five:", results.len());
    for (_, row) in results.iter().take(5) {
        println!(
            "  day {:>3}  {:<5} ${:.2}",
            row.value(0).as_int()?,
            row.value(1).as_str()?,
            row.value(2).as_float()?
        );
    }

    server.shutdown()?;
    Ok(())
}
