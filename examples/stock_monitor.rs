//! The paper's own motivating scenario (§4.1.1): a battery of windowed
//! continuous queries over the `ClosingStockPrices` stream — a snapshot
//! over history, a landmark filter, a sliding-window average, and the
//! temporal band self-join — all standing simultaneously in one engine.
//!
//! ```text
//! cargo run --example stock_monitor
//! ```

use std::time::Duration;

use telegraphcq::prelude::*;

fn main() -> Result<()> {
    let archive_dir =
        std::env::temp_dir().join(format!("tcq-stock-monitor-{}", std::process::id()));
    let server = TelegraphCQ::start(ServerConfig {
        archive_dir: Some(archive_dir.clone()),
        ..ServerConfig::default()
    })?;
    server.register_stream(
        "ClosingStockPrices",
        StockTicks::schema_for("ClosingStockPrices"),
    )?;

    // --- standing queries, registered before trading opens ---------------
    let landmark_client = server.connect_pull_client(100_000)?;
    server.submit(
        "SELECT closingPrice, timestamp \
         FROM ClosingStockPrices \
         WHERE stockSymbol = 'MSFT' and closingPrice > 50.00 \
         for (t = 101; t <= 1000; t++ ){ \
             WindowIs(ClosingStockPrices, 101, t); \
         }",
        landmark_client,
    )?;

    let sliding_client = server.connect_pull_client(100_000)?;
    server.submit(
        "Select AVG(closingPrice) \
         From ClosingStockPrices \
         Where stockSymbol = 'MSFT' \
         for (t = ST; t < ST + 50; t +=5 ){ \
             WindowIs(ClosingStockPrices, t - 4, t); \
         }",
        sliding_client,
    )?;

    let band_client = server.connect_pull_client(100_000)?;
    server.submit(
        "Select c2.* \
         FROM ClosingStockPrices as c1, ClosingStockPrices as c2 \
         WHERE c1.stockSymbol = 'MSFT' and \
               c2.stockSymbol != 'MSFT' and \
               c2.closingPrice > c1.closingPrice and \
               c2.timestamp = c1.timestamp \
         for (t = ST; t < ST +20 ; t++ ){ \
             WindowIs(c1, t - 4, t); \
             WindowIs(c2, t - 4, t); \
         }",
        band_client,
    )?;

    // --- trade for 300 days ----------------------------------------------
    server.attach_source(
        "ClosingStockPrices",
        Box::new(
            StockTicks::new("ClosingStockPrices", &["MSFT", "IBM", "ORCL", "SUNW"], 7)
                .with_max_days(300)
                .with_volatility(1.5),
        ),
    )?;
    server.quiesce(Duration::from_secs(15));

    // --- a snapshot query over history, after the fact (PSoup mode) ------
    let snapshot_client = server.connect_pull_client(1024)?;
    server.submit(
        "SELECT closingPrice, timestamp \
         FROM ClosingStockPrices \
         WHERE stockSymbol = 'MSFT' \
         for (; t==0; t = -1 ){ \
             WindowIs(ClosingStockPrices, 1, 5); \
         }",
        snapshot_client,
    )?;

    // --- report ------------------------------------------------------------
    let snapshot = server.fetch(snapshot_client, 1024)?;
    println!("snapshot — MSFT's first five closes (answered from the archive):");
    for (_, row) in &snapshot {
        println!(
            "  day {:>2}: ${:.2}",
            row.value(1).as_int()?,
            row.value(0).as_float()?
        );
    }

    let landmark = server.fetch(landmark_client, 100_000)?;
    println!(
        "\nlandmark — MSFT closed above $50 on {} of the days in [101, 300]",
        landmark.len()
    );

    let sliding = server.fetch(sliding_client, 100_000)?;
    println!("\nsliding — 5-day MSFT averages every 5th day:");
    for (_, row) in sliding.iter().take(6) {
        println!(
            "  window ending day {:>2}: avg ${:.2}",
            row.value(0).as_int()?,
            row.value(1).as_float()?
        );
    }

    let band = server.fetch(band_client, 100_000)?;
    println!(
        "\nband join — {} (day, stock) pairs closed above MSFT in the first 20 days",
        band.len()
    );
    for (_, row) in band.iter().take(5) {
        println!(
            "  day {:>2}: {:<5} at ${:.2}",
            row.value(0).as_int()?,
            row.value(1).as_str()?,
            row.value(2).as_float()?
        );
    }

    server.shutdown()?;
    std::fs::remove_dir_all(archive_dir).ok();
    Ok(())
}
