//! A network-monitoring deployment (the Tribeca-style workload the paper
//! cites): continuous filters and windowed per-host aggregation over a
//! skewed packet stream, then the same aggregation scaled out over the
//! simulated Flux cluster — with a mid-run machine failure that replication
//! absorbs.
//!
//! ```text
//! cargo run --example network_monitor
//! ```

use std::time::Duration;

use telegraphcq::flux::{FluxCluster, FluxConfig};
use telegraphcq::prelude::*;

fn main() -> Result<()> {
    // ---------------- single-node engine: CQ filters + aggregates --------
    let server = TelegraphCQ::start(ServerConfig::default())?;
    server.register_stream("packets", NetworkPackets::schema_for("packets"))?;

    let alerts = server.connect_pull_client(100_000)?;
    server.submit(
        "SELECT timestamp, srcAddr, bytes FROM packets \
         WHERE bytes > 1200 AND proto = 'udp'",
        alerts,
    )?;

    let rollup = server.connect_pull_client(100_000)?;
    server.submit(
        "SELECT srcAddr, COUNT(*), SUM(bytes) FROM packets \
         GROUP BY srcAddr \
         for (t = 1000; t <= 5000; t += 1000) { WindowIs(packets, t - 999, t); }",
        rollup,
    )?;

    server.attach_source(
        "packets",
        Box::new(NetworkPackets::new("packets", 50, 1.2, 99).with_max_packets(5000)),
    )?;
    server.quiesce(Duration::from_secs(15));

    let alerted = server.fetch(alerts, 100_000)?;
    println!("{} large UDP packets alerted; first three:", alerted.len());
    for (_, row) in alerted.iter().take(3) {
        println!(
            "  pkt {:>5} from host {:>2}: {} bytes",
            row.value(0).as_int()?,
            row.value(1).as_int()?,
            row.value(2).as_int()?
        );
    }

    let rows = server.fetch(rollup, 100_000)?;
    println!("\nper-host rollups over 1000-packet windows (top talkers):");
    let mut by_window: std::collections::BTreeMap<i64, Vec<(i64, i64)>> = Default::default();
    for (_, row) in &rows {
        by_window
            .entry(row.value(0).as_int()?)
            .or_default()
            .push((row.value(1).as_int()?, row.value(2).as_int()?));
    }
    for (t, mut hosts) in by_window {
        hosts.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        let (host, count) = hosts[0];
        println!("  window ending {t}: host {host} sent {count} packets (skew visible)");
    }
    server.shutdown()?;

    // ---------------- scale-out: the same rollup on a Flux cluster -------
    println!("\nscaling the rollup across a 4-node Flux cluster (1 slow node)...");
    let cfg = FluxConfig::uniform(4)
        .with_speeds(vec![1, 8, 8, 8])
        .with_rebalancing(8)
        .with_replication();
    // group by srcAddr (column 1), sum bytes (column 3)
    let mut cluster = FluxCluster::new(cfg, 1, 3)?;
    let mut gen = NetworkPackets::new("packets", 50, 1.2, 99).with_max_packets(20_000);
    let mut batch = Vec::new();
    let mut ingested = 0u64;
    loop {
        batch.clear();
        let status = gen.next_batch(256, &mut batch)?;
        for t in &batch {
            cluster.ingest(t)?;
            ingested += 1;
            if ingested.is_multiple_of(64) {
                cluster.tick();
            }
            if ingested == 10_000 {
                println!("  killing node 2 mid-run...");
                cluster.kill_node(2)?;
            }
        }
        if status == SourceStatus::Exhausted {
            break;
        }
    }
    let ticks = cluster.run_until_drained(1_000_000);
    let stats = cluster.stats();
    println!(
        "  drained in {} more ticks; {} partitions moved, {} failovers, {} tuples lost",
        ticks, stats.partitions_moved, stats.failovers, stats.lost_inflight
    );
    let results = cluster.results();
    let total: u64 = results.values().map(|(c, _)| c).sum();
    println!(
        "  cluster counted {total} packets across {} hosts (expected 20000) — \
         replication preserved every tuple through the failure",
        results.len()
    );
    assert_eq!(total, 20_000);
    Ok(())
}
