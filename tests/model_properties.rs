//! Model-based and robustness properties: the front-end never panics on
//! arbitrary input, algebraic laws hold for the value lattice, and compact
//! data structures agree with their obvious reference models.

use std::collections::HashSet;

use proptest::prelude::*;

use telegraphcq::common::{BitSet, CmpOp, Expr, Value};
use telegraphcq::query::{lexer::lex, parse};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The lexer returns Ok or Err on arbitrary input — never panics.
    #[test]
    fn lexer_total_on_arbitrary_strings(s in ".{0,200}") {
        let _ = lex(&s);
    }

    /// The parser is total too (errors, never panics), including on
    /// plausible-looking query fragments.
    #[test]
    fn parser_total_on_arbitrary_strings(s in "[ -~]{0,200}") {
        let _ = parse(&s);
    }

    #[test]
    fn parser_total_on_query_shaped_input(
        cols in "[a-z]{1,8}",
        tail in "[a-zA-Z0-9<>=!(){};.,*+' -]{0,80}",
    ) {
        let _ = parse(&format!("SELECT {cols} FROM s WHERE {tail}"));
    }

    /// Value::total_cmp is a lawful total order (antisymmetric, transitive,
    /// total) across mixed types — sampled.
    #[test]
    fn value_total_order_laws(raw in proptest::collection::vec(value_strategy(), 3)) {
        use std::cmp::Ordering;
        let (a, b, c) = (&raw[0], &raw[1], &raw[2]);
        // totality + antisymmetry
        match a.total_cmp(b) {
            Ordering::Less => prop_assert_eq!(b.total_cmp(a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.total_cmp(a), Ordering::Less),
            Ordering::Equal => prop_assert_eq!(b.total_cmp(a), Ordering::Equal),
        }
        // transitivity (sampled)
        if a.total_cmp(b) != Ordering::Greater && b.total_cmp(c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(c), Ordering::Greater);
        }
        // reflexivity
        prop_assert_eq!(a.total_cmp(a), Ordering::Equal);
    }

    /// Eq/Hash consistency: equal values hash equal (the hash-join
    /// invariant), across Int/Float mixing.
    #[test]
    fn value_eq_implies_hash_eq(a in value_strategy(), b in value_strategy()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |v: &Value| {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        };
        if a == b {
            prop_assert_eq!(hash(&a), hash(&b));
        }
    }

    /// BitSet agrees with a HashSet model under arbitrary op sequences.
    #[test]
    fn bitset_matches_hashset_model(
        ops in proptest::collection::vec((0u8..5, 0usize..300), 0..200),
    ) {
        let mut bs = BitSet::new();
        let mut model: HashSet<usize> = HashSet::new();
        let mut other = BitSet::new();
        let mut other_model: HashSet<usize> = HashSet::new();
        for (op, i) in ops {
            match op {
                0 => {
                    bs.insert(i);
                    model.insert(i);
                }
                1 => {
                    bs.remove(i);
                    model.remove(&i);
                }
                2 => {
                    other.insert(i);
                    other_model.insert(i);
                }
                3 => {
                    bs.union_with(&other);
                    model.extend(other_model.iter().copied());
                }
                _ => {
                    bs.intersect_with(&other);
                    model.retain(|x| other_model.contains(x));
                }
            }
        }
        prop_assert_eq!(bs.len(), model.len());
        let got: HashSet<usize> = bs.iter().collect();
        prop_assert_eq!(got, model);
    }

    /// decode(encode(t)) == t for random tuples; decoding random bytes is
    /// total (errors, never panics).
    #[test]
    fn codec_roundtrip_and_fuzz(
        vals in proptest::collection::vec(value_strategy(), 1..8),
        noise in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        use telegraphcq::common::{DataType, Field, Schema, Timestamp, Tuple};
        use telegraphcq::storage::{decode_tuple, encode_tuple};
        let fields: Vec<Field> = (0..vals.len())
            .map(|i| Field::new(format!("c{i}"), DataType::Int))
            .collect();
        // Schema types are not enforced by Tuple::new (only arity), which
        // is exactly what the codec relies on.
        let schema = Schema::new(fields).into_ref();
        let t = Tuple::new(schema.clone(), vals, Timestamp::logical(7)).unwrap();
        let mut buf = Vec::new();
        encode_tuple(&t, &mut buf);
        let back = decode_tuple(&mut buf.as_slice(), &schema).unwrap();
        prop_assert_eq!(&back, &t);
        // Fuzz: arbitrary bytes must not panic.
        let _ = decode_tuple(&mut noise.as_slice(), &schema);
    }

    /// Parse(print(expr)) == expr: `Display` fully parenthesizes, so the
    /// parser must reconstruct the exact tree.
    #[test]
    fn expr_print_parse_roundtrip(e in expr_strategy()) {
        let sql = format!("SELECT * FROM s WHERE {e}");
        let stmt = parse(&sql).unwrap();
        prop_assert_eq!(stmt.where_clause.as_ref(), Some(&e));
    }
}

/// Random values over the full lattice (strings avoid quotes so the expr
/// roundtrip test can print them).
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-1000i64..1000).prop_map(|i| Value::Float(i as f64 / 8.0)),
        "[a-zA-Z0-9_ ]{0,12}".prop_map(|s| Value::str(&s)),
    ]
}

/// Random boolean expression trees over columns a/b/c.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (prop::sample::select(vec!["a", "b", "c"]), cmp_op(), -100i64..100)
            .prop_map(|(c, op, v)| Expr::col(c).cmp(op, Expr::lit(v))),
        (prop::sample::select(vec!["a", "b"]), cmp_op(), "[a-zA-Z]{1,6}")
            .prop_map(|(c, op, s)| Expr::col(c).cmp(op, Expr::lit(s.as_str()))),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop::sample::select(vec![CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge])
}
