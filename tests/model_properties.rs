//! Model-based and robustness properties: the front-end never panics on
//! arbitrary input, algebraic laws hold for the value lattice, and compact
//! data structures agree with their obvious reference models.
//!
//! Cases are generated deterministically from `tcq_common::rng` (see
//! `tests/properties.rs` for the scheme), so the suite needs no external
//! property-testing crate and every case replays from (stream, index).

use std::collections::HashSet;

use telegraphcq::common::rng::{derive_seed, seeded, TcqRng};
use telegraphcq::common::{BitSet, CmpOp, Expr, Value};
use telegraphcq::query::{lexer::lex, parse};

/// Run `body` for `cases` deterministic cases (same scheme as
/// `tests/properties.rs`).
fn check(stream: u64, cases: u64, mut body: impl FnMut(&mut TcqRng)) {
    for case in 0..cases {
        let mut rng = seeded(derive_seed(stream, case));
        body(&mut rng);
    }
}

/// A random string of length `0..max_len` drawn from `alphabet`.
fn rand_string(rng: &mut TcqRng, alphabet: &[char], max_len: usize) -> String {
    let len = rng.gen_range(0usize..max_len);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0usize..alphabet.len())])
        .collect()
}

/// Printable ASCII plus a few multibyte and control characters, so the
/// lexer sees arbitrary unicode without needing a fuzzer.
fn wild_alphabet() -> Vec<char> {
    let mut a: Vec<char> = (' '..='~').collect();
    a.extend(['\n', '\t', '\u{0}', 'é', '→', '𝄞']);
    a
}

/// Random values over the full lattice (strings avoid quotes so the expr
/// roundtrip test can print them).
fn rand_value(rng: &mut TcqRng) -> Value {
    const STR_CHARS: &[char] = &['a', 'b', 'c', 'x', 'y', 'Z', '0', '7', '_', ' '];
    match rng.gen_range(0usize..5) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen()),
        2 => Value::Int(rng.gen_range(-1000i64..1000)),
        3 => Value::Float(rng.gen_range(-1000i64..1000) as f64 / 8.0),
        _ => Value::str(rand_string(rng, STR_CHARS, 13)),
    }
}

/// Random comparison operator.
fn rand_cmp(rng: &mut TcqRng) -> CmpOp {
    [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ][rng.gen_range(0usize..6)]
}

/// Random boolean expression tree over columns a/b/c, depth-bounded.
fn rand_expr(rng: &mut TcqRng, depth: usize) -> Expr {
    const NAME_CHARS: &[char] = &['d', 'e', 'f', 'g', 'h', 'k'];
    if depth == 0 || rng.gen_bool(0.4) {
        // Leaf: column vs int or string literal.
        if rng.gen_bool(0.6) {
            let col = ["a", "b", "c"][rng.gen_range(0usize..3)];
            Expr::col(col).cmp(rand_cmp(rng), Expr::lit(rng.gen_range(-100i64..100)))
        } else {
            let col = ["a", "b"][rng.gen_range(0usize..2)];
            let mut s = rand_string(rng, NAME_CHARS, 6);
            if s.is_empty() {
                s.push('x');
            }
            Expr::col(col).cmp(rand_cmp(rng), Expr::lit(s.as_str()))
        }
    } else {
        match rng.gen_range(0usize..3) {
            0 => rand_expr(rng, depth - 1).and(rand_expr(rng, depth - 1)),
            1 => rand_expr(rng, depth - 1).or(rand_expr(rng, depth - 1)),
            _ => Expr::Not(Box::new(rand_expr(rng, depth - 1))),
        }
    }
}

/// The lexer returns Ok or Err on arbitrary input — never panics.
#[test]
fn lexer_total_on_arbitrary_strings() {
    let alphabet = wild_alphabet();
    check(0xA1, 64, |rng| {
        let s = rand_string(rng, &alphabet, 200);
        let _ = lex(&s);
    });
}

/// The parser is total too (errors, never panics), including on
/// plausible-looking query fragments.
#[test]
fn parser_total_on_arbitrary_strings() {
    let printable: Vec<char> = (' '..='~').collect();
    check(0xA2, 64, |rng| {
        let s = rand_string(rng, &printable, 200);
        let _ = parse(&s);
    });
}

#[test]
fn parser_total_on_query_shaped_input() {
    let lower: Vec<char> = ('a'..='z').collect();
    let tail_alphabet: Vec<char> = {
        let mut a: Vec<char> = ('a'..='z').chain('A'..='Z').chain('0'..='9').collect();
        a.extend("<>=!(){};.,*+' -".chars());
        a
    };
    check(0xA3, 64, |rng| {
        let mut cols = rand_string(rng, &lower, 8);
        if cols.is_empty() {
            cols.push('c');
        }
        let tail = rand_string(rng, &tail_alphabet, 80);
        let _ = parse(&format!("SELECT {cols} FROM s WHERE {tail}"));
    });
}

/// Value::total_cmp is a lawful total order (antisymmetric, transitive,
/// total) across mixed types — sampled.
#[test]
fn value_total_order_laws() {
    use std::cmp::Ordering;
    check(0xA4, 64, |rng| {
        let (a, b, c) = (rand_value(rng), rand_value(rng), rand_value(rng));
        // totality + antisymmetry
        match a.total_cmp(&b) {
            Ordering::Less => assert_eq!(b.total_cmp(&a), Ordering::Greater),
            Ordering::Greater => assert_eq!(b.total_cmp(&a), Ordering::Less),
            Ordering::Equal => assert_eq!(b.total_cmp(&a), Ordering::Equal),
        }
        // transitivity (sampled)
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
        // reflexivity
        assert_eq!(a.total_cmp(&a), Ordering::Equal);
    });
}

/// Eq/Hash consistency: equal values hash equal (the hash-join
/// invariant), across Int/Float mixing.
#[test]
fn value_eq_implies_hash_eq() {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let hash = |v: &Value| {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    };
    check(0xA5, 64, |rng| {
        let (a, b) = (rand_value(rng), rand_value(rng));
        if a == b {
            assert_eq!(hash(&a), hash(&b));
        }
        // And trivially: every value hashes equal to itself.
        assert_eq!(hash(&a), hash(&a.clone()));
    });
}

/// BitSet agrees with a HashSet model under arbitrary op sequences.
#[test]
fn bitset_matches_hashset_model() {
    check(0xA6, 64, |rng| {
        let ops: Vec<(u8, usize)> = (0..rng.gen_range(0usize..200))
            .map(|_| (rng.gen_range(0u32..5) as u8, rng.gen_range(0usize..300)))
            .collect();
        let mut bs = BitSet::new();
        let mut model: HashSet<usize> = HashSet::new();
        let mut other = BitSet::new();
        let mut other_model: HashSet<usize> = HashSet::new();
        for (op, i) in ops {
            match op {
                0 => {
                    bs.insert(i);
                    model.insert(i);
                }
                1 => {
                    bs.remove(i);
                    model.remove(&i);
                }
                2 => {
                    other.insert(i);
                    other_model.insert(i);
                }
                3 => {
                    bs.union_with(&other);
                    model.extend(other_model.iter().copied());
                }
                _ => {
                    bs.intersect_with(&other);
                    model.retain(|x| other_model.contains(x));
                }
            }
        }
        assert_eq!(bs.len(), model.len());
        let got: HashSet<usize> = bs.iter().collect();
        assert_eq!(got, model);
    });
}

/// decode(encode(t)) == t for random tuples; decoding random bytes is
/// total (errors, never panics).
#[test]
fn codec_roundtrip_and_fuzz() {
    use telegraphcq::common::{DataType, Field, Schema, Timestamp, Tuple};
    use telegraphcq::storage::{decode_tuple, encode_tuple};
    check(0xA7, 64, |rng| {
        let vals: Vec<Value> = (0..rng.gen_range(1usize..8))
            .map(|_| rand_value(rng))
            .collect();
        let noise: Vec<u8> = (0..rng.gen_range(0usize..64))
            .map(|_| rng.gen::<u8>())
            .collect();
        let fields: Vec<Field> = (0..vals.len())
            .map(|i| Field::new(format!("c{i}"), DataType::Int))
            .collect();
        // Schema types are not enforced by Tuple::new (only arity), which
        // is exactly what the codec relies on.
        let schema = Schema::new(fields).into_ref();
        let t = Tuple::new(schema.clone(), vals, Timestamp::logical(7)).unwrap();
        let mut buf = Vec::new();
        encode_tuple(&t, &mut buf);
        let back = decode_tuple(&mut buf.as_slice(), &schema).unwrap();
        assert_eq!(back, t);
        // Fuzz: arbitrary bytes must not panic.
        let _ = decode_tuple(&mut noise.as_slice(), &schema);
    });
}

/// Parse(print(expr)) == expr: `Display` fully parenthesizes, so the
/// parser must reconstruct the exact tree.
#[test]
fn expr_print_parse_roundtrip() {
    check(0xA8, 64, |rng| {
        let e = rand_expr(rng, 3);
        let sql = format!("SELECT * FROM s WHERE {e}");
        let stmt = parse(&sql).unwrap();
        assert_eq!(stmt.where_clause.as_ref(), Some(&e));
    });
}
