//! QoS load shedding (§4.3), historical/backward windows over the archive,
//! and front-end error surfaces of the server.

use std::time::Duration;

use telegraphcq::prelude::*;
use telegraphcq::server::{OverloadPolicy, ServerConfig as Cfg};

fn schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("ts", DataType::Int),
        Field::new("v", DataType::Float),
    ])
    .into_ref()
}

fn row(s: &SchemaRef, ts: i64, v: f64) -> Tuple {
    TupleBuilder::new(s.clone())
        .push(ts)
        .push(v)
        .at(Timestamp::logical(ts))
        .build()
        .unwrap()
}

fn settle(server: &TelegraphCQ) {
    let mut last = server.egress_stats();
    for _ in 0..400 {
        std::thread::sleep(Duration::from_millis(5));
        let now = server.egress_stats();
        if now == last {
            return;
        }
        last = now;
    }
}

#[test]
fn backpressure_is_lossless() {
    // Default policy: tiny queues + a slow consumer stall the stream but
    // lose nothing.
    let server = TelegraphCQ::start(Cfg {
        queue_capacity: 4,
        ..Cfg::default()
    })
    .unwrap();
    server.register_stream("s", schema()).unwrap();
    let client = server.connect_pull_client(100_000).unwrap();
    server.submit("SELECT ts FROM s", client).unwrap();
    let s = schema();
    for ts in 1..=2000 {
        server.push("s", row(&s, ts, 1.0)).unwrap();
    }
    settle(&server);
    assert_eq!(server.shed_count("s").unwrap(), 0);
    let got = server.fetch(client, 100_000).unwrap();
    assert_eq!(got.len(), 2000, "backpressure must not drop tuples");
    server.shutdown().unwrap();
}

#[test]
fn shed_policy_degrades_but_reports() {
    // Overload: queue capacity 1 and a single busy EO. Under Shed the
    // dispatcher never stalls; whatever could not be queued is counted.
    // Invariant: pushed = delivered + shed for a single-subscriber stream.
    let server = TelegraphCQ::start(Cfg {
        queue_capacity: 1,
        overload: OverloadPolicy::Shed,
        eos: 1,
        ..Cfg::default()
    })
    .unwrap();
    server.register_stream("s", schema()).unwrap();
    let client = server.connect_pull_client(1_000_000).unwrap();
    server.submit("SELECT ts FROM s", client).unwrap();
    let s = schema();
    let n = 20_000;
    for ts in 1..=n {
        server.push("s", row(&s, ts, 1.0)).unwrap();
    }
    settle(&server);
    let shed = server.shed_count("s").unwrap();
    let delivered = server.fetch(client, 1_000_000).unwrap().len() as i64;
    assert_eq!(
        delivered + shed,
        n,
        "every tuple is either delivered or counted as shed"
    );
    server.shutdown().unwrap();
}

#[test]
fn backward_windows_browse_history() {
    // §4.1: "a browsing system where the user might want to query
    // historical portions of the stream using windows that move backwards
    // starting from the present time".
    let dir = std::env::temp_dir().join(format!("tcq-backward-{}", std::process::id()));
    let server = TelegraphCQ::start(Cfg {
        archive_dir: Some(dir.clone()),
        ..Cfg::default()
    })
    .unwrap();
    server.register_stream("s", schema()).unwrap();
    let s = schema();
    for ts in 1..=100 {
        server.push("s", row(&s, ts, ts as f64)).unwrap();
    }
    // Let the dispatcher archive everything.
    std::thread::sleep(Duration::from_millis(100));
    settle(&server);

    let client = server.connect_pull_client(4096).unwrap();
    // Three 10-wide hops backward from the present (ST = 100).
    server
        .submit(
            "SELECT ts, v FROM s \
             WHERE v > 95.0 OR v <= 75.0 \
             for (t = ST; t > ST - 30; t -=10) { WindowIs(s, t - 9, t); }",
            client,
        )
        .unwrap();
    let got = server.fetch(client, 4096).unwrap();
    // Windows: [91,100], [81,90], [71,80]. Predicate keeps v>95 (96..100)
    // and v<=75 (71..75) → 5 + 0 + 5 = 10 rows.
    assert_eq!(got.len(), 10);
    let mut seqs: Vec<i64> = got
        .iter()
        .map(|(_, t)| t.value(0).as_int().unwrap())
        .collect();
    seqs.sort_unstable();
    assert_eq!(seqs, vec![71, 72, 73, 74, 75, 96, 97, 98, 99, 100]);
    server.shutdown().unwrap();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn historical_query_without_archive_errors() {
    let server = TelegraphCQ::start(Cfg::default()).unwrap();
    server.register_stream("s", schema()).unwrap();
    let client = server.connect_pull_client(64).unwrap();
    let err = server
        .submit(
            "SELECT ts FROM s for (; t==0; t = -1) { WindowIs(s, 1, 5); }",
            client,
        )
        .unwrap_err();
    assert!(err.to_string().contains("archive"));
    server.shutdown().unwrap();
}

#[test]
fn submit_error_surfaces() {
    let server = TelegraphCQ::start(Cfg::default()).unwrap();
    server.register_stream("s", schema()).unwrap();
    let client = server.connect_pull_client(64).unwrap();
    // parse error
    assert!(server.submit("SELEKT * FROM s", client).is_err());
    // unknown stream
    assert!(server.submit("SELECT * FROM nope", client).is_err());
    // unknown column
    assert!(server.submit("SELECT volume FROM s", client).is_err());
    // aggregates need windows
    assert!(server.submit("SELECT AVG(v) FROM s", client).is_err());
    // unknown client
    assert!(server.submit("SELECT * FROM s", 99_999).is_err());
    // duplicate stream registration
    assert!(server.register_stream("s", schema()).is_err());
    // stop unknown query
    assert!(server.stop_query(777).is_err());
    server.shutdown().unwrap();
}

#[test]
fn aggregate_windows_close_only_when_time_passes() {
    let server = TelegraphCQ::start(Cfg::default()).unwrap();
    server.register_stream("s", schema()).unwrap();
    let client = server.connect_pull_client(4096).unwrap();
    server
        .submit(
            "SELECT COUNT(*) FROM s \
             for (t = 10; t <= 40; t += 10) { WindowIs(s, t - 9, t); }",
            client,
        )
        .unwrap();
    let s = schema();
    // Push up to ts 25: only windows closing at 10 and 20 may emit.
    for ts in 1..=25 {
        server.push("s", row(&s, ts, 1.0)).unwrap();
    }
    settle(&server);
    let mid = server.fetch(client, 4096).unwrap();
    assert_eq!(mid.len(), 2, "windows ending 10 and 20 closed");
    // Continue to 45: windows at 30 and 40 close too; the loop ends.
    for ts in 26..=45 {
        server.push("s", row(&s, ts, 1.0)).unwrap();
    }
    settle(&server);
    let rest = server.fetch(client, 4096).unwrap();
    assert_eq!(rest.len(), 2);
    for (_, r) in mid.iter().chain(rest.iter()) {
        assert_eq!(
            r.value(1).as_int().unwrap(),
            10,
            "each window holds 10 tuples"
        );
    }
    server.shutdown().unwrap();
}

#[test]
fn landmark_aggregate_grows_without_bound_until_eof() {
    // The §4.1.2 memory story at the server level: a landmark COUNT keeps
    // growing; each emission covers [1, t].
    let server = TelegraphCQ::start(Cfg::default()).unwrap();
    server.register_stream("s", schema()).unwrap();
    let client = server.connect_pull_client(4096).unwrap();
    server
        .submit(
            "SELECT COUNT(*) FROM s \
             for (t = 5; t <= 25; t += 5) { WindowIs(s, 1, t); }",
            client,
        )
        .unwrap();
    let s = schema();
    for ts in 1..=30 {
        server.push("s", row(&s, ts, 1.0)).unwrap();
    }
    settle(&server);
    let got = server.fetch(client, 4096).unwrap();
    let counts: Vec<i64> = got
        .iter()
        .map(|(_, r)| r.value(1).as_int().unwrap())
        .collect();
    assert_eq!(counts, vec![5, 10, 15, 20, 25]);
    server.shutdown().unwrap();
}

#[test]
fn prioritized_client_sees_interesting_results_first() {
    // Juggle at the egress boundary (§4.3): a reconnecting analyst wants
    // the biggest readings first, not the oldest.
    let server = TelegraphCQ::start(Cfg::default()).unwrap();
    server.register_stream("s", schema()).unwrap();
    let client = server
        .connect_prioritized_client(
            5,
            Box::new(|t: &Tuple| t.value(1).as_float().unwrap_or(0.0)),
        )
        .unwrap();
    server.submit("SELECT ts, v FROM s", client).unwrap();
    let s = schema();
    for ts in 1..=100 {
        server
            .push("s", row(&s, ts, ((ts * 37) % 100) as f64))
            .unwrap();
    }
    settle(&server);
    let got = server.fetch(client, 10).unwrap();
    assert_eq!(got.len(), 5, "only the 5 best survive the bounded buffer");
    let vs: Vec<f64> = got
        .iter()
        .map(|(_, t)| t.value(1).as_float().unwrap())
        .collect();
    let mut sorted = vs.clone();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    assert_eq!(vs, sorted, "best-first order");
    assert!(vs[0] >= 95.0, "the top readings were retained");
    server.shutdown().unwrap();
}
