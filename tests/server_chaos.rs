//! Whole-server chaos: the full TelegraphCQ stack booted under one seeded
//! fault schedule mixing a source panic, an injected enqueue overflow, a
//! soft archive failure, a torn archive write, and a dead client — then
//! held to *exact* accounting: every produced tuple is delivered, shed,
//! displaced, or counted against the disconnected client; the archive
//! reopens cleanly; and the same seed replays the identical catastrophe.

use std::path::PathBuf;
use std::sync::mpsc::Receiver;
use std::time::Duration;

use telegraphcq::common::FiredFault;
use telegraphcq::egress::Delivery;
use telegraphcq::executor::{StallDiagnosis, WatchdogStats};
use telegraphcq::prelude::*;
use telegraphcq::storage::{BufferPool, StreamArchive};

const TUPLES: i64 = 3000;
const SEED: u64 = 0x5EED_CA05;

fn schema() -> SchemaRef {
    Schema::new(vec![Field::new("v", DataType::Int)]).into_ref()
}

fn workload() -> Vec<Tuple> {
    let schema = schema();
    (1..=TUPLES)
        .map(|i| {
            TupleBuilder::new(schema.clone())
                .push(i)
                .at(Timestamp::logical(i))
                .build()
                .unwrap()
        })
        .collect()
}

/// Replays a fixed tuple set in fixed-size batches; resumable from an
/// offset so the supervisor's factory can skip already-delivered tuples.
struct ReplaySource {
    schema: SchemaRef,
    tuples: Vec<Tuple>,
    pos: usize,
}

impl Source for ReplaySource {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }
    fn next_batch(&mut self, max: usize, out: &mut Vec<Tuple>) -> Result<SourceStatus> {
        if self.pos >= self.tuples.len() {
            return Ok(SourceStatus::Exhausted);
        }
        let n = max.min(self.tuples.len() - self.pos);
        out.extend_from_slice(&self.tuples[self.pos..self.pos + n]);
        self.pos += n;
        Ok(SourceStatus::Ready)
    }
}

/// One seeded schedule across four layers: a wrapper panic (ingress), a
/// dropped fan-out (dispatcher), a failed append plus a torn page seal
/// (storage), and two failed delivery offers (egress). The dead client is
/// not injected — it really disconnects.
fn plan() -> FaultPlan {
    FaultPlan::new(SEED)
        .at(
            FaultPoint::SourceRead,
            20,
            FaultAction::Panic("wrapper segfault".into()),
        )
        .at(FaultPoint::FjordEnqueue, 500, FaultAction::Overflow)
        .at(
            FaultPoint::ArchiveAppend,
            50,
            FaultAction::Error("disk hiccup".into()),
        )
        .at(FaultPoint::ArchiveAppend, 100, FaultAction::Overflow)
        .at(
            FaultPoint::EgressDeliver,
            1000,
            FaultAction::Error("socket reset".into()),
        )
        .at(
            FaultPoint::EgressDeliver,
            2000,
            FaultAction::Error("socket reset".into()),
        )
}

struct Outcome {
    results: Vec<i64>,
    egress: EgressStats,
    dispatcher_shed: i64,
    archive_errors: i64,
    archive: telegraphcq::storage::ArchiveStats,
    sup: telegraphcq::ingress::SupervisorStats,
    log: Vec<FiredFault>,
    watchdog: WatchdogStats,
    archive_path: PathBuf,
}

fn run_scenario(dir: &std::path::Path) -> Outcome {
    run_scenario_with_io_batch(dir, ServerConfig::default().io_batch)
}

fn run_scenario_with_io_batch(dir: &std::path::Path, io_batch: usize) -> Outcome {
    let server = TelegraphCQ::start(ServerConfig {
        archive_dir: Some(dir.to_path_buf()),
        fault_plan: Some(plan()),
        egress_policy: EgressPolicy {
            max_retries: 1,
            disconnect_after: 4,
        },
        io_batch,
        ..ServerConfig::default()
    })
    .unwrap();
    server.register_stream("s", schema()).unwrap();

    // A healthy push client and a dead one (receiver dropped before any
    // delivery): the router must disconnect the dead one after its first
    // offer and keep the healthy one flowing.
    let (healthy, rx): (_, Receiver<Delivery>) = server.connect_push_client(4096).unwrap();
    let (dead, dead_rx): (_, Receiver<Delivery>) = server.connect_push_client(4).unwrap();
    drop(dead_rx);
    server.submit("SELECT v FROM s", healthy).unwrap();
    server.submit("SELECT v FROM s", dead).unwrap();

    let master = workload();
    let factory: SourceFactory = {
        let schema = schema();
        Box::new(move |_attempt, delivered| {
            Ok(Box::new(ReplaySource {
                schema: schema.clone(),
                tuples: master[delivered as usize..].to_vec(),
                pos: 0,
            }) as Box<dyn Source>)
        })
    };
    server
        .attach_supervised_source("s", factory, SupervisorConfig::default())
        .unwrap();

    // 60s like every other quiesce here: a slow debug run under ambient
    // load can legitimately take tens of seconds, and a deadline miss
    // reads as a determinism break when it is only scheduling.
    assert!(
        server.quiesce(Duration::from_secs(60)),
        "server must quiesce despite the chaos schedule"
    );

    let sup = server.supervisor_stats().remove(0).1;
    let outcome = Outcome {
        results: rx
            .try_iter()
            .map(|(_, t)| t.value(0).as_int().unwrap())
            .collect(),
        egress: server.egress_stats_full(),
        dispatcher_shed: server.shed_count("s").unwrap(),
        archive_errors: server.archive_error_count("s").unwrap(),
        archive: server.archive_stats("s").unwrap().unwrap(),
        sup,
        log: server.fired_faults(),
        watchdog: server.executor_stats().watchdog,
        archive_path: dir.join("s.seg"),
    };
    server.shutdown().unwrap();
    outcome
}

/// The determinism contract is per fault point (each point's poll counter
/// advances on one component's schedule); normalise to (point, poll#)
/// order before comparing logs across runs.
fn normalised(mut log: Vec<FiredFault>) -> Vec<FiredFault> {
    log.sort_by_key(|&(point, count, _)| (point, count));
    log
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tcq-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn whole_server_chaos_quiesces_with_exact_accounting() {
    let dir = temp_dir("acct");
    let o = run_scenario(&dir);

    // Ingress: the panic was survived, every tuple replayed exactly once.
    assert_eq!(o.sup.delivered, TUPLES as u64);
    assert_eq!(o.sup.panics, 1);
    assert_eq!(o.sup.restarts, 1);
    assert_eq!(o.sup.shed + o.sup.malformed, 0);

    // Dispatcher: exactly one fan-out (one subscriber copy) dropped by the
    // injected enqueue overflow.
    assert_eq!(o.dispatcher_shed, 1);

    // Storage: one soft append failure, one torn page seal, all counted.
    assert_eq!(o.archive_errors, 1);
    assert_eq!(o.archive.appended, TUPLES as u64 - 1);
    assert_eq!(o.archive.torn_pages, 1);
    assert!(o.archive.lost_records > 0);

    // Egress: tuple 1 was offered to both clients (the dead one paid with
    // a disconnect), every later tuple only to the healthy one.
    let e = &o.egress;
    assert_eq!(e.offered, TUPLES as u64);
    assert_eq!(e.disconnected, 1);
    assert_eq!(e.disconnected_loss, 1);
    assert_eq!(e.shed, 2, "two injected delivery errors");
    assert_eq!(e.displaced, 0);
    assert!(
        e.accounted(),
        "delivered + shed + displaced + disconnected_loss == offered"
    );
    assert_eq!(
        e.delivered + e.shed + e.displaced + e.disconnected_loss,
        o.sup.delivered - o.dispatcher_shed as u64 + 1,
        "egress accounts for every copy the dispatcher fanned out"
    );
    assert_eq!(o.results.len() as u64, e.delivered);

    // The client never sees the dispatcher-dropped tuple or the two
    // egress-shed ones, and sees everything else in order.
    assert!(o.results.windows(2).all(|w| w[0] < w[1]), "in order");
    assert!(!o.results.contains(&500), "tuple 500's fan-out was dropped");

    // Six faults fired, none left pending.
    assert_eq!(o.log.len(), 6);
}

#[test]
fn chaos_archive_reopens_cleanly_after_shutdown() {
    let dir = temp_dir("reopen");
    let o = run_scenario(&dir);

    // Reopen the crashed-over segment: the torn page is skipped, every
    // surviving record is readable, and the counts agree exactly with the
    // live archive's own accounting.
    let pool = BufferPool::new(64, 8192);
    let mut archive = StreamArchive::open(
        &o.archive_path,
        schema().with_qualifier("s").into_ref(),
        pool,
    )
    .unwrap();
    let recovery = archive.recovery().unwrap();
    assert_eq!(recovery.pages_skipped, 1, "the torn page fails validation");
    assert_eq!(
        recovery.records_recovered,
        o.archive.appended - o.archive.lost_records
    );
    let mut out = Vec::new();
    archive.scan_window(1, TUPLES, &mut out).unwrap();
    assert_eq!(out.len() as u64, recovery.records_recovered);
    // The soft-failed append (tuple 50) is the only gap outside the torn
    // page's contiguous range.
    assert!(!out.iter().any(|t| t.timestamp().seq() == 50));
}

#[test]
fn chaos_schedule_replays_identically_from_its_seed() {
    let dir_a = temp_dir("det-a");
    let dir_b = temp_dir("det-b");
    let a = run_scenario(&dir_a);
    let b = run_scenario(&dir_b);
    assert_eq!(
        a.results, b.results,
        "answers diverged across same-seed runs"
    );
    assert_eq!(a.egress, b.egress, "egress accounting diverged");
    assert_eq!(
        normalised(a.log),
        normalised(b.log),
        "fired-fault logs diverged across same-seed runs"
    );
}

#[test]
fn batched_and_per_tuple_dispatch_replay_identically() {
    // The batching knob must be invisible to the chaos contract: faults,
    // stamping, and archiving are polled per message on the batch path, so
    // a same-seed run is byte-identical whether the hot path moves one
    // message or sixty-four per lock acquisition.
    let dir_a = temp_dir("iobatch-1");
    let dir_b = temp_dir("iobatch-64");
    let a = run_scenario_with_io_batch(&dir_a, 1);
    let b = run_scenario_with_io_batch(&dir_b, 64);
    assert_eq!(a.results, b.results, "answers diverged across batch sizes");
    assert_eq!(a.egress, b.egress, "egress accounting diverged");
    assert_eq!(a.dispatcher_shed, b.dispatcher_shed);
    assert_eq!(a.archive_errors, b.archive_errors);
    assert_eq!(
        (
            a.archive.appended,
            a.archive.torn_pages,
            a.archive.lost_records
        ),
        (
            b.archive.appended,
            b.archive.torn_pages,
            b.archive.lost_records
        ),
        "archive accounting diverged"
    );
    assert_eq!(
        normalised(a.log),
        normalised(b.log),
        "fired-fault logs diverged across batch sizes"
    );
}

fn hot_schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Int),
    ])
    .into_ref()
}

fn dim_schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("tag", DataType::Int),
    ])
    .into_ref()
}

const DIM_ROWS: i64 = 64;

/// The join flavour of the chaos scenario: the same seeded fault schedule
/// over a two-stream equi-join, run either sequentially (`partitions = 1`,
/// a dedicated `JoinCqDu`) or through the partitioned exchange. The
/// dimension stream is fully loaded *and closed* before the hot stream
/// flows, so every d-side SteM insert precedes every s-side probe in both
/// plans and delivery order is the hot stream's arrival order.
fn run_scenario_with_partitions(dir: &std::path::Path, partitions: usize) -> Outcome {
    // Unequal window widths keep the join off the CACQ shared path, so
    // P=1 runs the dedicated JoinCqDu the exchange must be equivalent to.
    run_join_scenario(
        dir,
        partitions,
        true,
        "SELECT s.v, d.tag FROM s s, d d WHERE s.k = d.id \
         for (t = ST; t >= 0; t++) { WindowIs(s, t - 8000000, t); WindowIs(d, t - 9000000, t); }",
    )
}

fn run_join_scenario(
    dir: &std::path::Path,
    partitions: usize,
    compiled_kernels: bool,
    query: &str,
) -> Outcome {
    run_join_scenario_cfg(dir, partitions, compiled_kernels, false, query, None, None)
}

fn run_join_scenario_with_checkpoints(
    dir: &std::path::Path,
    partitions: usize,
    compiled_kernels: bool,
    query: &str,
    checkpoint_path: Option<PathBuf>,
) -> Outcome {
    run_join_scenario_cfg(
        dir,
        partitions,
        compiled_kernels,
        false,
        query,
        checkpoint_path,
        None,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_join_scenario_cfg(
    dir: &std::path::Path,
    partitions: usize,
    compiled_kernels: bool,
    columnar: bool,
    query: &str,
    checkpoint_path: Option<PathBuf>,
    liveness: Option<LivenessConfig>,
) -> Outcome {
    let checkpointing = checkpoint_path.is_some();
    let server = TelegraphCQ::start(ServerConfig {
        archive_dir: Some(dir.to_path_buf()),
        fault_plan: Some(plan()),
        egress_policy: EgressPolicy {
            max_retries: 1,
            disconnect_after: 4,
        },
        partitions,
        compiled_kernels,
        columnar,
        checkpoint_path,
        liveness,
        ..ServerConfig::default()
    })
    .unwrap();
    server.register_stream("s", hot_schema()).unwrap();
    server.register_stream("d", dim_schema()).unwrap();

    let (client, rx): (_, Receiver<Delivery>) = server.connect_push_client(4096).unwrap();
    server.submit(query, client).unwrap();

    let dims = dim_schema();
    let dim_batch: Vec<Tuple> = (0..DIM_ROWS)
        .map(|id| {
            TupleBuilder::new(dims.clone())
                .push(id)
                .push(id * 10)
                .at(Timestamp::logical(id + 1))
                .build()
                .unwrap()
        })
        .collect();
    server.push_batch("d", dim_batch).unwrap();
    while server.stream_time("d").unwrap() < DIM_ROWS {
        std::thread::sleep(Duration::from_millis(1));
    }
    server.finish_stream("d").unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let hot = hot_schema();
    let master: Vec<Tuple> = (1..=TUPLES)
        .map(|i| {
            TupleBuilder::new(hot.clone())
                .push(i % DIM_ROWS)
                .push(i)
                .at(Timestamp::logical(i))
                .build()
                .unwrap()
        })
        .collect();
    let factory: SourceFactory = {
        let schema = hot.clone();
        Box::new(move |_attempt, delivered| {
            Ok(Box::new(ReplaySource {
                schema: schema.clone(),
                tuples: master[delivered as usize..].to_vec(),
                pos: 0,
            }) as Box<dyn Source>)
        })
    };
    server
        .attach_supervised_source("s", factory, SupervisorConfig::default())
        .unwrap();

    // Periodic checkpoints racing the live run: they must be invisible to
    // the replay contract (no Checkpoint* faults are planned, and the cut
    // only reads state — it never reorders or drops tuples).
    if checkpointing {
        for _ in 0..2 {
            std::thread::sleep(Duration::from_millis(20));
            server.checkpoint().unwrap();
        }
    }

    assert!(
        server.quiesce(Duration::from_secs(60)),
        "partitioned chaos join must quiesce (P={partitions})"
    );
    if checkpointing {
        server.checkpoint().unwrap();
    }

    let sup = server.supervisor_stats().remove(0).1;
    let outcome = Outcome {
        results: rx
            .try_iter()
            .map(|(_, t)| t.value(0).as_int().unwrap())
            .collect(),
        egress: server.egress_stats_full(),
        dispatcher_shed: server.shed_count("s").unwrap(),
        archive_errors: server.archive_error_count("s").unwrap()
            + server.archive_error_count("d").unwrap(),
        archive: server.archive_stats("s").unwrap().unwrap(),
        sup,
        log: server.fired_faults(),
        watchdog: server.executor_stats().watchdog,
        archive_path: dir.join("s.seg"),
    };
    server.shutdown().unwrap();
    outcome
}

#[test]
fn sequential_and_partitioned_join_replay_identically() {
    // The exchange must be invisible to the chaos contract: the
    // partitioner re-serializes the canonical input order, the merger
    // replays it, and no exchange DU polls a fault point — so a same-seed
    // run is byte-identical whether the join runs on one eddy or four.
    let dir_a = temp_dir("part-1");
    let dir_b = temp_dir("part-4");
    let a = run_scenario_with_partitions(&dir_a, 1);
    let b = run_scenario_with_partitions(&dir_b, 4);
    assert!(!a.results.is_empty(), "the join must produce results");
    assert_eq!(a.results, b.results, "answers diverged across P=1 / P=4");
    assert_eq!(a.egress, b.egress, "egress accounting diverged");
    assert_eq!(a.dispatcher_shed, b.dispatcher_shed);
    assert_eq!(a.archive_errors, b.archive_errors);
    assert_eq!(
        (
            a.archive.appended,
            a.archive.torn_pages,
            a.archive.lost_records
        ),
        (
            b.archive.appended,
            b.archive.torn_pages,
            b.archive.lost_records
        ),
        "archive accounting diverged"
    );
    assert_eq!(a.sup.delivered, b.sup.delivered);
    assert_eq!(
        normalised(a.log),
        normalised(b.log),
        "fired-fault logs diverged across partition counts"
    );
}

#[test]
fn compiled_and_interpreted_kernels_replay_identically() {
    // Compiled kernels must be invisible to the chaos contract: lowering
    // predicates to bytecode and prehashing SteM/exchange keys changes
    // how much work each tuple costs, never which tuples pass, match, or
    // get delivered — so a same-seed run is byte-identical with kernels
    // on or off. The query carries real per-source predicates (compiled
    // on the fast side, interpreted on the slow side) and runs through
    // the partitioned exchange so the prehashed routing path is covered.
    let query = "SELECT s.v, d.tag FROM s s, d d \
         WHERE s.k = d.id AND s.v > 0 AND d.tag < 1000000 \
         for (t = ST; t >= 0; t++) { WindowIs(s, t - 8000000, t); WindowIs(d, t - 9000000, t); }";
    let dir_a = temp_dir("kern-on");
    let dir_b = temp_dir("kern-off");
    let a = run_join_scenario(&dir_a, 2, true, query);
    let b = run_join_scenario(&dir_b, 2, false, query);
    assert!(!a.results.is_empty(), "the join must produce results");
    assert_eq!(
        a.results, b.results,
        "answers diverged across kernels on/off"
    );
    assert_eq!(a.egress, b.egress, "egress accounting diverged");
    assert_eq!(a.dispatcher_shed, b.dispatcher_shed);
    assert_eq!(a.archive_errors, b.archive_errors);
    assert_eq!(
        (
            a.archive.appended,
            a.archive.torn_pages,
            a.archive.lost_records
        ),
        (
            b.archive.appended,
            b.archive.torn_pages,
            b.archive.lost_records
        ),
        "archive accounting diverged"
    );
    assert_eq!(a.sup.delivered, b.sup.delivered);
    assert_eq!(
        normalised(a.log),
        normalised(b.log),
        "fired-fault logs diverged across kernel modes"
    );
}

#[test]
fn columnar_and_row_paths_replay_identically() {
    // The columnar knob must be invisible to the chaos contract: batches
    // convert to column runs at the eddy's ingress edge, vectorized
    // kernels filter/probe/project whole columns, and egress re-offers
    // row clients in the same per-row order — so a same-seed run is
    // byte-identical columnar on or off. Covered at P=1 (the dedicated
    // JoinCqDu, where the columnar path actually runs) and P=4 (the
    // exchange keeps rows internally; the knob must stay inert there).
    let query = "SELECT s.v, d.tag FROM s s, d d \
         WHERE s.k = d.id AND s.v > 0 AND d.tag < 1000000 \
         for (t = ST; t >= 0; t++) { WindowIs(s, t - 8000000, t); WindowIs(d, t - 9000000, t); }";
    for partitions in [1usize, 4] {
        let dir_a = temp_dir(&format!("col-off-p{partitions}"));
        let dir_b = temp_dir(&format!("col-on-p{partitions}"));
        let a = run_join_scenario_cfg(&dir_a, partitions, true, false, query, None, None);
        let b = run_join_scenario_cfg(&dir_b, partitions, true, true, query, None, None);
        assert!(
            !a.results.is_empty(),
            "the join must produce results (P={partitions})"
        );
        assert_eq!(
            a.results, b.results,
            "answers diverged across columnar on/off (P={partitions})"
        );
        assert_eq!(
            a.egress, b.egress,
            "egress accounting diverged (P={partitions})"
        );
        assert_eq!(a.dispatcher_shed, b.dispatcher_shed);
        assert_eq!(a.archive_errors, b.archive_errors);
        assert_eq!(
            (
                a.archive.appended,
                a.archive.torn_pages,
                a.archive.lost_records
            ),
            (
                b.archive.appended,
                b.archive.torn_pages,
                b.archive.lost_records
            ),
            "archive accounting diverged (P={partitions})"
        );
        assert_eq!(a.sup.delivered, b.sup.delivered);
        assert_eq!(
            normalised(a.log),
            normalised(b.log),
            "fired-fault logs diverged across columnar on/off (P={partitions})"
        );
    }
}

#[test]
fn checkpointing_on_and_off_replay_identically() {
    // Taking checkpoints is pure observation: the cut reads cursors,
    // drains ingress, and snapshots operator state under the DU locks,
    // but never reorders, drops, or duplicates a tuple — so a same-seed
    // chaos run is byte-identical with periodic checkpointing on or off.
    let query = "SELECT s.v, d.tag FROM s s, d d WHERE s.k = d.id \
         for (t = ST; t >= 0; t++) { WindowIs(s, t - 8000000, t); WindowIs(d, t - 9000000, t); }";
    let dir_a = temp_dir("ckpt-off");
    let dir_b = temp_dir("ckpt-on");
    let a = run_join_scenario_with_checkpoints(&dir_a, 1, true, query, None);
    let b =
        run_join_scenario_with_checkpoints(&dir_b, 1, true, query, Some(dir_b.join("server.tcqk")));
    assert!(!a.results.is_empty(), "the join must produce results");
    assert_eq!(
        a.results, b.results,
        "answers diverged across checkpointing on/off"
    );
    assert_eq!(a.egress, b.egress, "egress accounting diverged");
    assert_eq!(a.dispatcher_shed, b.dispatcher_shed);
    assert_eq!(a.archive_errors, b.archive_errors);
    assert_eq!(
        (
            a.archive.appended,
            a.archive.torn_pages,
            a.archive.lost_records
        ),
        (
            b.archive.appended,
            b.archive.torn_pages,
            b.archive.lost_records
        ),
        "archive accounting diverged"
    );
    assert_eq!(a.sup.delivered, b.sup.delivered);
    assert_eq!(
        normalised(a.log),
        normalised(b.log),
        "fired-fault logs diverged across checkpointing modes"
    );
}

/// Structural equality for values that must survive a checkpoint exactly:
/// floats compare by bit pattern (NaN payloads and -0.0 included).
fn bit_identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Str(x), Value::Str(y)) => x == y,
        _ => false,
    }
}

#[test]
fn checkpoint_codec_roundtrips_every_value_variant() {
    use telegraphcq::common::{CkptReader, CkptWriter};

    let values = vec![
        Value::Null,
        Value::Bool(false),
        Value::Bool(true),
        Value::Int(0),
        Value::Int(-1),
        Value::Int(i64::MIN),
        Value::Int(i64::MAX),
        Value::Float(0.0),
        Value::Float(-0.0),
        Value::Float(1.5),
        Value::Float(f64::INFINITY),
        Value::Float(f64::NEG_INFINITY),
        Value::Float(f64::MIN_POSITIVE),
        Value::Float(f64::from_bits(0x7FF8_0000_0000_1234)), // NaN w/ payload
        Value::str(""),
        Value::str("plain"),
        Value::str("πρöσ 流 \u{1F600} \0 embedded"),
    ];
    let mut w = CkptWriter::new();
    for v in &values {
        w.put_value(v);
    }
    let mut r = CkptReader::new(w.as_slice());
    for v in &values {
        let got = r.get_value().unwrap();
        assert!(bit_identical(v, &got), "roundtrip mangled {v:?} -> {got:?}");
    }
    assert!(r.is_empty(), "trailing bytes after decoding every value");

    // Tuples: every timestamp shape (unknown / logical / physical / both)
    // over a schema that exercises every column type, nulls included.
    let schema = Schema::new(vec![
        Field::new("b", DataType::Bool),
        Field::new("i", DataType::Int),
        Field::new("f", DataType::Float),
        Field::new("s", DataType::Str),
    ])
    .into_ref();
    let stamps = [
        Timestamp::unknown(),
        Timestamp::logical(i64::MAX),
        Timestamp::physical(-7),
        Timestamp::both(42, 1_000_000),
    ];
    let tuples: Vec<Tuple> = stamps
        .iter()
        .enumerate()
        .map(|(i, ts)| {
            let vals = if i % 2 == 0 {
                vec![
                    Value::Bool(true),
                    Value::Int(i as i64),
                    Value::Float(f64::from_bits(0x7FF0_0000_0000_0001)),
                    Value::str("x"),
                ]
            } else {
                vec![Value::Null, Value::Null, Value::Null, Value::Null]
            };
            Tuple::new(schema.clone(), vals, *ts).unwrap()
        })
        .collect();
    let mut w = CkptWriter::new();
    for t in &tuples {
        w.put_tuple(t);
    }
    let mut r = CkptReader::new(w.as_slice());
    for t in &tuples {
        let got = r.get_tuple(&schema).unwrap();
        assert_eq!(t.timestamp(), got.timestamp(), "timestamp mangled");
        assert_eq!(t.arity(), got.arity());
        for (a, b) in t.values().iter().zip(got.values()) {
            assert!(bit_identical(a, b), "tuple cell mangled {a:?} -> {b:?}");
        }
    }
    assert!(r.is_empty(), "trailing bytes after decoding every tuple");

    // A truncated fragment must fail loudly, not decode garbage.
    let full = {
        let mut w = CkptWriter::new();
        w.put_tuple(&tuples[0]);
        w.into_bytes()
    };
    for cut in 0..full.len() {
        assert!(
            CkptReader::new(&full[..cut]).get_tuple(&schema).is_err(),
            "truncation at {cut}/{} decoded successfully",
            full.len()
        );
    }
}

/// Delivers the first `limit` tuples then stalls (`Idle`, not EOF): a
/// stream that is still open when the server dies mid-run.
struct StallSource {
    schema: SchemaRef,
    tuples: Vec<Tuple>,
    pos: usize,
    limit: usize,
}

impl Source for StallSource {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }
    fn next_batch(&mut self, max: usize, out: &mut Vec<Tuple>) -> Result<SourceStatus> {
        if self.pos >= self.limit {
            return Ok(SourceStatus::Idle);
        }
        let n = max.min(self.limit - self.pos);
        out.extend_from_slice(&self.tuples[self.pos..self.pos + n]);
        self.pos += n;
        Ok(SourceStatus::Ready)
    }
}

/// Per-query result rows (all columns, as ints) in delivery order. The
/// interleaving *between* queries on one client channel is scheduler
/// timing; the order *within* each query is the replay contract.
fn rows_by_query(rx: &Receiver<Delivery>) -> std::collections::BTreeMap<usize, Vec<Vec<i64>>> {
    let mut map: std::collections::BTreeMap<usize, Vec<Vec<i64>>> =
        std::collections::BTreeMap::new();
    for (qid, t) in rx.try_iter() {
        map.entry(qid)
            .or_default()
            .push(t.values().iter().map(|v| v.as_int().unwrap()).collect());
    }
    map
}

const JOIN_Q: &str = "SELECT s.v, d.tag FROM s s, d d WHERE s.k = d.id \
     for (t = ST; t >= 0; t++) { WindowIs(s, t - 8000000, t); WindowIs(d, t - 9000000, t); }";
const AGG_Q: &str =
    "SELECT COUNT(*) FROM s for (t = ST; t >= 0; t += 10) { WindowIs(s, t - 9, t); }";

/// Registers streams, submits the join + aggregate pair, and loads-then-
/// closes the dimension stream. `feed_dim` is false on the restore path:
/// the d-side SteM state comes from the checkpoint, and re-feeding would
/// double-insert it.
fn boot_recovery_topology(
    server: &TelegraphCQ,
    feed_dim: bool,
) -> (usize, usize, Receiver<Delivery>) {
    server.register_stream("s", hot_schema()).unwrap();
    server.register_stream("d", dim_schema()).unwrap();
    let (client, rx): (_, Receiver<Delivery>) = server.connect_push_client(8192).unwrap();
    let join_q = server.submit(JOIN_Q, client).unwrap();
    let agg_q = server.submit(AGG_Q, client).unwrap();

    if feed_dim {
        let dims = dim_schema();
        let batch: Vec<Tuple> = (0..DIM_ROWS)
            .map(|id| {
                TupleBuilder::new(dims.clone())
                    .push(id)
                    .push(id * 10)
                    .at(Timestamp::logical(id + 1))
                    .build()
                    .unwrap()
            })
            .collect();
        server.push_batch("d", batch).unwrap();
        while server.stream_time("d").unwrap() < DIM_ROWS {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    server.finish_stream("d").unwrap();
    std::thread::sleep(Duration::from_millis(50));
    (join_q, agg_q, rx)
}

fn hot_master() -> Vec<Tuple> {
    let hot = hot_schema();
    (1..=TUPLES)
        .map(|i| {
            TupleBuilder::new(hot.clone())
                .push(i % DIM_ROWS)
                .push(i)
                .at(Timestamp::logical(i))
                .build()
                .unwrap()
        })
        .collect()
}

#[test]
fn checkpoint_restore_after_crash_loses_nothing() {
    // Kill the server mid-stream (the source stalls at HALF, the process
    // "dies" via mem::forget — no shutdown, no drain), restore from the
    // last checkpoint into a fresh server, and replay the tail. The
    // concatenated per-query results must equal an uninterrupted run's:
    // no tuple lost, none duplicated, and the aggregate window that
    // straddles the crash point closes with the correct count.
    const HALF: usize = 1495; // not a window multiple: the agg buffer spans the cut
    let dir = temp_dir("restore");
    let ckpt = dir.join("server.tcqk");
    let config = || ServerConfig {
        checkpoint_path: Some(ckpt.clone()),
        ..ServerConfig::default()
    };
    let master = hot_master();

    // Reference: the same topology, uninterrupted, no checkpointing.
    let (ref_join, ref_agg, ref_rows, ref_egress) = {
        let server = TelegraphCQ::start(ServerConfig::default()).unwrap();
        let (join_q, agg_q, rx) = boot_recovery_topology(&server, true);
        let factory: SourceFactory = {
            let master = master.clone();
            let schema = hot_schema();
            Box::new(move |_attempt, delivered| {
                Ok(Box::new(ReplaySource {
                    schema: schema.clone(),
                    tuples: master[delivered as usize..].to_vec(),
                    pos: 0,
                }) as Box<dyn Source>)
            })
        };
        server
            .attach_supervised_source("s", factory, SupervisorConfig::default())
            .unwrap();
        assert!(server.quiesce(Duration::from_secs(60)));
        let rows = rows_by_query(&rx);
        let egress = server.egress_stats_full();
        server.shutdown().unwrap();
        (join_q, agg_q, rows, egress)
    };
    assert!(
        !ref_rows[&ref_join].is_empty() && !ref_rows[&ref_agg].is_empty(),
        "reference run must produce join and aggregate results"
    );

    // Phase A: run to HALF, checkpoint, die without shutdown.
    let rows_a = {
        let server = TelegraphCQ::start(config()).unwrap();
        let (_, _, rx) = boot_recovery_topology(&server, true);
        let factory: SourceFactory = {
            let master = master.clone();
            let schema = hot_schema();
            Box::new(move |_attempt, _delivered| {
                Ok(Box::new(StallSource {
                    schema: schema.clone(),
                    tuples: master.clone(),
                    pos: 0,
                    limit: HALF,
                }) as Box<dyn Source>)
            })
        };
        server
            .attach_supervised_source("s", factory, SupervisorConfig::default())
            .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while (server.supervisor_stats()[0].1.delivered as usize) < HALF
            || (server.stream_time("s").unwrap() as usize) < HALF
        {
            assert!(
                std::time::Instant::now() < deadline,
                "phase A never reached the stall point"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        // Let the DUs drain the stalled pipeline, then cut.
        std::thread::sleep(Duration::from_millis(300));
        let report = server.checkpoint().unwrap();
        assert!(report.fragments > 0, "the cut must capture live state");
        let rows = rows_by_query(&rx);
        // Crash: leak the whole server — no shutdown, no flush, threads
        // simply never hear from us again.
        std::mem::forget(server);
        rows
    };

    // Phase B: restore from the checkpoint and replay only the tail.
    let server = TelegraphCQ::restore(config()).unwrap();
    let recovery = server.checkpoint_recovery().unwrap();
    assert!(
        recovery.epochs_recovered >= 1,
        "no checkpoint was recovered"
    );
    let (join_q, agg_q, rx) = boot_recovery_topology(&server, false);
    let factory: SourceFactory = {
        let master = master.clone();
        let schema = hot_schema();
        Box::new(move |_attempt, delivered| {
            Ok(Box::new(ReplaySource {
                schema: schema.clone(),
                tuples: master[delivered as usize..].to_vec(),
                pos: 0,
            }) as Box<dyn Source>)
        })
    };
    server
        .attach_supervised_source("s", factory, SupervisorConfig::default())
        .unwrap();
    assert!(
        server.quiesce(Duration::from_secs(60)),
        "restored server must quiesce"
    );
    let sup = server.supervisor_stats().remove(0).1;
    let rows_b = rows_by_query(&rx);
    let egress = server.egress_stats_full();
    server.shutdown().unwrap();

    // The delivered watermark is cumulative — seeded at HALF from the
    // resume cursor, advanced by the replayed tail — so later checkpoints
    // keep exact accounting. No crash-looking restarts on the way.
    assert_eq!(sup.delivered as usize, TUPLES as usize);
    assert_eq!(sup.restarts, 0);

    // Phase B produced join matches without ever re-feeding d: the d-side
    // SteM served the probes from restored state alone.
    assert!(
        rows_b.get(&join_q).is_some_and(|r| !r.is_empty()),
        "restored SteM state must serve phase-B probes"
    );

    // Zero loss, zero duplication: per query, A's results followed by B's
    // are exactly the uninterrupted run's results.
    for (name, qid) in [("join", join_q), ("aggregate", agg_q)] {
        let mut combined = rows_a.get(&qid).cloned().unwrap_or_default();
        combined.extend(rows_b.get(&qid).cloned().unwrap_or_default());
        assert_eq!(
            combined.len(),
            ref_rows[&qid].len(),
            "{name}: A+B row count != uninterrupted run"
        );
        assert_eq!(
            combined, ref_rows[&qid],
            "{name}: A+B rows diverged from the uninterrupted run"
        );
    }

    // The restored ledger carried A's counts forward: final totals equal
    // the uninterrupted run's exactly.
    assert_eq!(egress.offered, ref_egress.offered, "ledger offered drifted");
    assert_eq!(
        egress.delivered, ref_egress.delivered,
        "ledger delivered drifted"
    );
    assert!(egress.accounted());
}

#[test]
fn shutdown_under_load_delivers_everything_admitted() {
    // Regression for shutdown ordering: results admitted before shutdown
    // must reach the client even when shutdown races active dispatch.
    // (Stopping the executor before draining would strand them.)
    let server = TelegraphCQ::start(ServerConfig::default()).unwrap();
    server.register_stream("s", schema()).unwrap();
    let (client, rx) = server.connect_push_client(8192).unwrap();
    server.submit("SELECT v FROM s", client).unwrap();

    let n = 2000i64;
    for t in workload().into_iter().take(n as usize) {
        server.push("s", t).unwrap();
    }
    // No quiesce, no settling: shutdown immediately, mid-flight.
    server.shutdown().unwrap();

    let got: Vec<i64> = rx
        .try_iter()
        .map(|(_, t)| t.value(0).as_int().unwrap())
        .collect();
    assert_eq!(got.len() as i64, n, "every admitted tuple was delivered");
    assert!(got.windows(2).all(|w| w[0] < w[1]), "in order");
}

// ---------------------------------------------------------------------------
// Standing-query churn: submit/cancel loops through the shared filter
// ---------------------------------------------------------------------------

const CHURN_ROUNDS: usize = 4;
const CHURN_QPR: usize = 6;
const CHURN_BLOCK: i64 = 300;

/// Chaos for the churn run: two archive faults (invisible to live
/// delivery) plus three injected delivery errors (each sheds exactly one
/// offered copy) — so every query's expected result set stays exactly
/// computable, modulo a shed count the egress ledger must balance.
fn churn_plan() -> FaultPlan {
    FaultPlan::new(SEED)
        .at(
            FaultPoint::ArchiveAppend,
            40,
            FaultAction::Error("disk hiccup".into()),
        )
        .at(FaultPoint::ArchiveAppend, 90, FaultAction::Overflow)
        .at(
            FaultPoint::EgressDeliver,
            150,
            FaultAction::Error("socket reset".into()),
        )
        .at(
            FaultPoint::EgressDeliver,
            400,
            FaultAction::Error("socket reset".into()),
        )
        .at(
            FaultPoint::EgressDeliver,
            700,
            FaultAction::Error("socket reset".into()),
        )
}

/// Deterministic per-query selection threshold spanning ~5%–100%
/// selectivity over the `v % 127` workload.
fn churn_threshold(round: usize, i: usize) -> i64 {
    (((round * CHURN_QPR + i) * 37) % 120) as i64
}

struct ChurnQuery {
    qid: usize,
    lo: i64,
    rx: Receiver<Delivery>,
    expected: Vec<i64>,
    live: bool,
}

struct ChurnOutcome {
    /// Per query in submission order: (qid, expected rows, received rows).
    per_query: Vec<(usize, Vec<i64>, Vec<i64>)>,
    egress: EgressStats,
    dispatcher_shed: i64,
    log: Vec<FiredFault>,
    live_at_end: usize,
    filter_queries: usize,
    filter_bytes: usize,
}

/// Four rounds of: submit six fresh `v > lo` selections (their factors
/// land in the stream's shared grouped filter, reusing factor ids the
/// previous round's cancellations recycled), push a block, drain, cancel
/// every other live query. The drain barrier is the egress `offered`
/// counter: it advances once per (tuple, standing query) offer — shed
/// copies included — so reaching the computed total means every delivery
/// decision for the block has been made and it is safe to churn.
fn run_churn_scenario(dir: &std::path::Path) -> ChurnOutcome {
    let server = TelegraphCQ::start(ServerConfig {
        archive_dir: Some(dir.to_path_buf()),
        fault_plan: Some(churn_plan()),
        egress_policy: EgressPolicy {
            max_retries: 1,
            disconnect_after: 4,
        },
        ..ServerConfig::default()
    })
    .unwrap();
    server.register_stream("s", schema()).unwrap();

    let sch = schema();
    let mut queries: Vec<ChurnQuery> = Vec::new();
    let mut seq = 0i64;
    let mut offered_so_far = 0usize;

    for round in 0..CHURN_ROUNDS {
        for i in 0..CHURN_QPR {
            let lo = churn_threshold(round, i);
            let (client, rx): (_, Receiver<Delivery>) = server.connect_push_client(4096).unwrap();
            let qid = server
                .submit(&format!("SELECT v FROM s WHERE v > {lo}"), client)
                .unwrap();
            queries.push(ChurnQuery {
                qid,
                lo,
                rx,
                expected: Vec::new(),
                live: true,
            });
        }

        let mut block = Vec::with_capacity(CHURN_BLOCK as usize);
        for _ in 0..CHURN_BLOCK {
            seq += 1;
            let v = (seq * 17) % 127;
            for q in queries.iter_mut().filter(|q| q.live) {
                if v > q.lo {
                    q.expected.push(v);
                    offered_so_far += 1;
                }
            }
            block.push(
                TupleBuilder::new(sch.clone())
                    .push(v)
                    .at(Timestamp::logical(seq))
                    .build()
                    .unwrap(),
            );
        }
        server.push_batch("s", block).unwrap();

        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        while (server.egress_stats_full().offered as usize) < offered_so_far {
            assert!(
                std::time::Instant::now() < deadline,
                "round {round} never drained its offers"
            );
            std::thread::sleep(Duration::from_millis(1));
        }

        let mut k = 0usize;
        for q in queries.iter_mut() {
            if !q.live {
                continue;
            }
            if k.is_multiple_of(2) {
                server.stop_query(q.qid).unwrap();
                q.live = false;
            }
            k += 1;
        }
    }

    let live_at_end = queries.iter().filter(|q| q.live).count();
    let stats = server.shared_memory_stats();
    let filter = stats
        .iter()
        .find(|s| s.label == "filter:s")
        .expect("the shared filter must report a memory stat");
    let (filter_queries, filter_bytes) = (filter.queries, filter.approx_bytes);

    server.finish_stream("s").unwrap();
    assert!(
        server.quiesce(Duration::from_secs(60)),
        "churn run must quiesce"
    );

    let outcome = ChurnOutcome {
        per_query: queries
            .iter()
            .map(|q| {
                let got: Vec<i64> =
                    q.rx.try_iter()
                        .map(|(qid, t)| {
                            assert_eq!(qid, q.qid, "delivery routed to the wrong client");
                            t.value(0).as_int().unwrap()
                        })
                        .collect();
                (q.qid, q.expected.clone(), got)
            })
            .collect(),
        egress: server.egress_stats_full(),
        dispatcher_shed: server.shed_count("s").unwrap(),
        log: server.fired_faults(),
        live_at_end,
        filter_queries,
        filter_bytes,
    };
    server.shutdown().unwrap();
    outcome
}

#[test]
fn query_churn_under_chaos_delivers_exactly_per_live_span() {
    let dir = temp_dir("churn");
    let o = run_churn_scenario(&dir);

    assert_eq!(o.dispatcher_shed, 0, "no fan-out faults were planned");
    assert_eq!(o.live_at_end, 5);
    assert_eq!(
        o.filter_queries, o.live_at_end,
        "the shared filter must forget cancelled queries"
    );
    assert!(o.filter_bytes > 0, "a standing filter has a footprint");

    // Query ids are never reused even though the factor ids inside the
    // shared filter are recycled aggressively by the cancel loop.
    assert!(
        o.per_query.windows(2).all(|w| w[0].0 < w[1].0),
        "query ids must stay strictly monotone under churn"
    );

    // Exact per-query accounting: each query received its matching rows
    // from exactly the blocks pushed while it stood, in push order, minus
    // copies lost to injected delivery errors.
    let mut missing = 0usize;
    for (qid, expected, got) in &o.per_query {
        let mut remaining = expected.iter();
        for g in got {
            assert!(
                remaining.any(|e| e == g),
                "query {qid} received {g}, which is out of order or outside its live span"
            );
        }
        missing += expected.len() - got.len();
    }
    assert_eq!(
        missing as u64, o.egress.shed,
        "every missing row must be one of the injected delivery errors"
    );
    assert_eq!(o.egress.shed, 3, "three delivery errors were planned");
    assert!(o.egress.accounted());
    assert_eq!(
        o.log.len(),
        5,
        "both archive faults and all three delivery faults fired"
    );
}

#[test]
fn query_churn_replays_identically_from_its_seed() {
    let dir_a = temp_dir("churn-a");
    let dir_b = temp_dir("churn-b");
    let a = run_churn_scenario(&dir_a);
    let b = run_churn_scenario(&dir_b);
    assert_eq!(
        a.per_query, b.per_query,
        "per-query deliveries diverged across same-seed churn runs"
    );
    assert_eq!(a.egress, b.egress, "egress accounting diverged");
    assert_eq!(
        normalised(a.log),
        normalised(b.log),
        "fired-fault logs diverged across same-seed churn runs"
    );
    assert_eq!(a.filter_queries, b.filter_queries);
    assert_eq!(
        a.filter_bytes, b.filter_bytes,
        "shared-filter footprint diverged across same-seed runs"
    );
}

// ---------------------------------------------------------------------------
// Progress tracking + liveness watchdog
// ---------------------------------------------------------------------------

struct LiveOutcome {
    results: Vec<i64>,
    egress: EgressStats,
    watchdog: WatchdogStats,
    stall: Option<StallDiagnosis>,
    progress: Option<telegraphcq::common::ProgressSnapshot>,
}

/// The exchange join under direct push (no archive, no supervised
/// source): every hot tuple matches exactly one dimension row, so a
/// fully-delivered run yields `1..=TUPLES` in arrival order — any wedge
/// shows up as a truncated or failed run.
fn run_exchange_liveness(
    partitions: usize,
    queue_capacity: usize,
    liveness: Option<LivenessConfig>,
    fault_plan: Option<FaultPlan>,
) -> LiveOutcome {
    let server = TelegraphCQ::start(ServerConfig {
        partitions,
        queue_capacity,
        liveness,
        fault_plan,
        ..ServerConfig::default()
    })
    .unwrap();
    server.register_stream("s", hot_schema()).unwrap();
    server.register_stream("d", dim_schema()).unwrap();
    let (client, rx): (_, Receiver<Delivery>) = server.connect_push_client(8192).unwrap();
    server.submit(JOIN_Q, client).unwrap();

    let dims = dim_schema();
    let dim_batch: Vec<Tuple> = (0..DIM_ROWS)
        .map(|id| {
            TupleBuilder::new(dims.clone())
                .push(id)
                .push(id * 10)
                .at(Timestamp::logical(id + 1))
                .build()
                .unwrap()
        })
        .collect();
    server.push_batch("d", dim_batch).unwrap();
    while server.stream_time("d").unwrap() < DIM_ROWS {
        std::thread::sleep(Duration::from_millis(1));
    }
    server.finish_stream("d").unwrap();
    std::thread::sleep(Duration::from_millis(50));

    // Blocking batch push: back-pressure from a wedged exchange parks the
    // pusher too, so only the watchdog can get the run moving again.
    server.push_batch("s", hot_master()).unwrap();
    while server.stream_time("s").unwrap() < TUPLES {
        std::thread::sleep(Duration::from_millis(1));
    }
    server.finish_stream("s").unwrap();
    assert!(
        server.quiesce(Duration::from_secs(60)),
        "exchange run must quiesce (P={partitions}, cap={queue_capacity})"
    );

    let outcome = LiveOutcome {
        results: rx
            .try_iter()
            .map(|(_, t)| t.value(0).as_int().unwrap())
            .collect(),
        egress: server.egress_stats_full(),
        watchdog: server.executor_stats().watchdog,
        stall: server.last_stall(),
        progress: server.progress_snapshot(),
    };
    server.shutdown().unwrap();
    outcome
}

fn full_join() -> Vec<i64> {
    (1..=TUPLES).collect()
}

#[test]
fn p4_exchange_with_tiny_queues_never_wedges() {
    // Seed-pinned regression for the P=4 tail stall: the stream
    // dispatcher used to drop `FjordMessage::Eof` silently when a
    // subscriber's fjord was full, so under tiny queues the exchange never
    // learned the input had ended and the run wedged with the last tuples
    // undelivered. The fix tracks undelivered EOFs and retries, so this
    // run must now drain completely — every time, no watchdog needed.
    let a = run_exchange_liveness(4, 8, None, None);
    assert_eq!(a.results, full_join(), "P=4 tiny-queue run lost tuples");
    assert!(a.egress.accounted());

    // And the tiny-queue P=4 answer is byte-identical to sequential.
    let b = run_exchange_liveness(1, 8, None, None);
    assert_eq!(
        a.results, b.results,
        "P=4 diverged from P=1 under tiny queues"
    );
}

#[test]
fn healthy_full_load_reports_zero_watchdog_activity() {
    // The watchdog must be observe-only on a healthy engine: a full-load
    // partitioned run with aggressive thresholds reports zero stalls,
    // zero rungs, no diagnosis — and the progress frontier has moved with
    // nothing left in flight.
    let o = run_exchange_liveness(
        2,
        1024,
        Some(LivenessConfig {
            stall_ticks: 64,
            escalate_ticks: 64,
        }),
        None,
    );
    assert_eq!(o.results, full_join());
    assert_eq!(
        o.watchdog,
        WatchdogStats::default(),
        "healthy full-load run tripped the watchdog"
    );
    assert!(o.stall.is_none(), "no diagnosis on a healthy run");
    let snap = o.progress.expect("liveness on implies a progress registry");
    assert!(snap.frontier > 0, "probed fjords never reported progress");
    assert_eq!(snap.in_flight, 0, "messages still in flight after quiesce");
    assert!(snap.blocked_channels().is_empty());
}

#[test]
fn dropped_punctuation_wedge_is_detected_and_nudge_recovered() {
    // A worker drops a run-closing punctuation: the merger waits forever
    // for that run to close, back-pressure freezes the frontier, and only
    // the watchdog's nudge (re-emit withheld punctuation) can recover.
    // Recovery must be lossless: the full join still comes out in order.
    let plan = FaultPlan::new(SEED).at(FaultPoint::DropPunctuation, 3, FaultAction::Overflow);
    let o = run_exchange_liveness(
        2,
        64,
        Some(LivenessConfig {
            stall_ticks: 16,
            escalate_ticks: 512,
        }),
        Some(plan),
    );
    assert_eq!(
        o.results,
        full_join(),
        "nudge recovery lost or reordered tuples"
    );
    assert!(
        o.watchdog.stalls_detected >= 1,
        "the wedge was never detected"
    );
    assert!(o.watchdog.nudges >= 1);
    assert!(o.watchdog.recoveries >= 1, "no recovery was recorded");
    assert_eq!(
        o.watchdog.escalations, 0,
        "the nudge must clear a withheld punctuation before failover"
    );
    let d = o.stall.expect("a stall diagnosis was recorded");
    assert!(d.in_flight > 0, "diagnosis must show work in flight");
    assert!(d.render().contains("in flight"));
}

#[test]
fn stalled_merge_consumer_is_escalated_to_outbox_drain() {
    // The merger refuses its quanta indefinitely: nudging re-emits
    // nothing (no punctuation is withheld), so the watchdog must climb to
    // the failover rung — the forced ordered-outbox drain — and the run
    // must still finish with zero loss and canonical order.
    let plan = FaultPlan::new(SEED).at(
        FaultPoint::StallConsumer,
        4,
        FaultAction::Stall { ticks: 1 << 40 },
    );
    let o = run_exchange_liveness(
        2,
        64,
        Some(LivenessConfig {
            stall_ticks: 16,
            escalate_ticks: 16,
        }),
        Some(plan),
    );
    assert_eq!(
        o.results,
        full_join(),
        "escalation recovery lost or reordered tuples"
    );
    assert!(
        o.watchdog.stalls_detected >= 1,
        "the stall was never detected"
    );
    assert!(
        o.watchdog.escalations >= 1,
        "an injected consumer stall cannot clear without the failover rung"
    );
    assert!(o.watchdog.recoveries >= 1, "no recovery was recorded");
    let d = o.stall.expect("a stall diagnosis was recorded");
    assert!(d.in_flight > 0, "diagnosis must show work in flight");
}

#[test]
fn watchdog_on_and_off_replay_identically_under_chaos() {
    // Progress probes and the stall detector only *observe*: under the
    // full five-fault chaos schedule (none of which wedges the engine), a
    // same-seed run is byte-identical with the watchdog armed or absent —
    // and the armed run records zero watchdog activity.
    let dir_a = temp_dir("wd-off");
    let dir_b = temp_dir("wd-on");
    let a = run_join_scenario_cfg(&dir_a, 2, true, false, JOIN_Q, None, None);
    let b = run_join_scenario_cfg(
        &dir_b,
        2,
        true,
        false,
        JOIN_Q,
        None,
        Some(LivenessConfig::default()),
    );
    assert!(!a.results.is_empty(), "the join must produce results");
    assert_eq!(
        a.results, b.results,
        "answers diverged across watchdog on/off"
    );
    assert_eq!(a.egress, b.egress, "egress accounting diverged");
    assert_eq!(a.dispatcher_shed, b.dispatcher_shed);
    assert_eq!(a.sup.delivered, b.sup.delivered);
    assert_eq!(
        normalised(a.log),
        normalised(b.log),
        "fired-fault logs diverged across watchdog on/off"
    );
    assert_eq!(
        a.watchdog,
        WatchdogStats::default(),
        "no watchdog, no counters"
    );
    assert_eq!(
        b.watchdog,
        WatchdogStats::default(),
        "the chaos schedule wedges nothing, so the armed watchdog stays silent"
    );
}

/// Tentpole acceptance (PR 10): the server core is *transport-inert*. The
/// same seeded in-process chaos workload replays byte-identically whether
/// the engine runs bare (in-process transport, the deterministic harness)
/// or fronted by a live TCP listener with a remote client chattering over
/// the wire the whole time. The TCP layer may add connections, pings, and
/// its own fault points — it must never perturb the engine's schedule,
/// results, ledger, or fired-fault log.
#[test]
fn server_core_replays_identically_with_and_without_tcp_transport() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use telegraphcq::net::NetServer;
    use telegraphcq::server::{TcpTransportConfig, TransportConfig};

    fn ab_plan() -> FaultPlan {
        FaultPlan::new(SEED ^ 7)
            .at(FaultPoint::FjordEnqueue, 200, FaultAction::Overflow)
            .at(
                FaultPoint::EgressDeliver,
                100,
                FaultAction::Error("socket reset".into()),
            )
            .at(
                FaultPoint::EgressDeliver,
                400,
                FaultAction::Error("socket reset".into()),
            )
    }

    fn run(transport: TransportConfig) -> (Vec<i64>, EgressStats, Vec<FiredFault>) {
        let server = NetServer::start(ServerConfig {
            fault_plan: Some(ab_plan()),
            transport,
            ..ServerConfig::default()
        })
        .unwrap();
        server.engine().register_stream("s", schema()).unwrap();
        let (client, rx): (_, Receiver<Delivery>) =
            server.engine().connect_push_client(4096).unwrap();
        server.engine().submit("SELECT v FROM s", client).unwrap();

        // With the TCP transport up, a real remote client chatters for the
        // whole run: handshake, pings, a failing submit — wire traffic that
        // must leave the engine's seeded schedule untouched.
        let stop = Arc::new(AtomicBool::new(false));
        let chatter = server.local_addr().map(|addr| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut c = telegraphcq::net::TcqClient::connect(addr).unwrap();
                c.submit("SELECT nope FROM nowhere").unwrap_err();
                let mut pongs = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    c.ping(pongs).unwrap();
                    pongs += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
                c.bye().unwrap();
                pongs
            })
        });

        for batch in workload().chunks(64) {
            server.engine().push_batch("s", batch.to_vec()).unwrap();
        }
        server.engine().finish_stream("s").unwrap();
        assert!(server.engine().quiesce(Duration::from_secs(60)));

        let results: Vec<i64> = rx
            .try_iter()
            .map(|(_, t)| t.value(0).as_int().unwrap())
            .collect();
        let egress = server.engine().egress_stats_full();
        let log = server.engine().fired_faults();
        stop.store(true, Ordering::SeqCst);
        if let Some(t) = chatter {
            let pongs = t.join().unwrap();
            assert!(pongs > 0, "the remote client really chattered");
        }
        server.shutdown().unwrap();
        (results, egress, log)
    }

    let a = run(TransportConfig::InProcess);
    let b = run(TransportConfig::Tcp(TcpTransportConfig::default()));
    assert!(!a.0.is_empty(), "the workload must produce results");
    assert_eq!(a.0, b.0, "results diverged across transports");
    assert_eq!(a.1, b.1, "egress ledger diverged across transports");
    assert_eq!(
        normalised(a.2),
        normalised(b.2),
        "fired-fault logs diverged across transports"
    );
}
