//! Whole-server chaos: the full TelegraphCQ stack booted under one seeded
//! fault schedule mixing a source panic, an injected enqueue overflow, a
//! soft archive failure, a torn archive write, and a dead client — then
//! held to *exact* accounting: every produced tuple is delivered, shed,
//! displaced, or counted against the disconnected client; the archive
//! reopens cleanly; and the same seed replays the identical catastrophe.

use std::path::PathBuf;
use std::sync::mpsc::Receiver;
use std::time::Duration;

use telegraphcq::common::FiredFault;
use telegraphcq::egress::Delivery;
use telegraphcq::prelude::*;
use telegraphcq::storage::{BufferPool, StreamArchive};

const TUPLES: i64 = 3000;
const SEED: u64 = 0x5EED_CA05;

fn schema() -> SchemaRef {
    Schema::new(vec![Field::new("v", DataType::Int)]).into_ref()
}

fn workload() -> Vec<Tuple> {
    let schema = schema();
    (1..=TUPLES)
        .map(|i| {
            TupleBuilder::new(schema.clone())
                .push(i)
                .at(Timestamp::logical(i))
                .build()
                .unwrap()
        })
        .collect()
}

/// Replays a fixed tuple set in fixed-size batches; resumable from an
/// offset so the supervisor's factory can skip already-delivered tuples.
struct ReplaySource {
    schema: SchemaRef,
    tuples: Vec<Tuple>,
    pos: usize,
}

impl Source for ReplaySource {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }
    fn next_batch(&mut self, max: usize, out: &mut Vec<Tuple>) -> Result<SourceStatus> {
        if self.pos >= self.tuples.len() {
            return Ok(SourceStatus::Exhausted);
        }
        let n = max.min(self.tuples.len() - self.pos);
        out.extend_from_slice(&self.tuples[self.pos..self.pos + n]);
        self.pos += n;
        Ok(SourceStatus::Ready)
    }
}

/// One seeded schedule across four layers: a wrapper panic (ingress), a
/// dropped fan-out (dispatcher), a failed append plus a torn page seal
/// (storage), and two failed delivery offers (egress). The dead client is
/// not injected — it really disconnects.
fn plan() -> FaultPlan {
    FaultPlan::new(SEED)
        .at(
            FaultPoint::SourceRead,
            20,
            FaultAction::Panic("wrapper segfault".into()),
        )
        .at(FaultPoint::FjordEnqueue, 500, FaultAction::Overflow)
        .at(
            FaultPoint::ArchiveAppend,
            50,
            FaultAction::Error("disk hiccup".into()),
        )
        .at(FaultPoint::ArchiveAppend, 100, FaultAction::Overflow)
        .at(
            FaultPoint::EgressDeliver,
            1000,
            FaultAction::Error("socket reset".into()),
        )
        .at(
            FaultPoint::EgressDeliver,
            2000,
            FaultAction::Error("socket reset".into()),
        )
}

struct Outcome {
    results: Vec<i64>,
    egress: EgressStats,
    dispatcher_shed: i64,
    archive_errors: i64,
    archive: telegraphcq::storage::ArchiveStats,
    sup: telegraphcq::ingress::SupervisorStats,
    log: Vec<FiredFault>,
    archive_path: PathBuf,
}

fn run_scenario(dir: &std::path::Path) -> Outcome {
    run_scenario_with_io_batch(dir, ServerConfig::default().io_batch)
}

fn run_scenario_with_io_batch(dir: &std::path::Path, io_batch: usize) -> Outcome {
    let server = TelegraphCQ::start(ServerConfig {
        archive_dir: Some(dir.to_path_buf()),
        fault_plan: Some(plan()),
        egress_policy: EgressPolicy {
            max_retries: 1,
            disconnect_after: 4,
        },
        io_batch,
        ..ServerConfig::default()
    })
    .unwrap();
    server.register_stream("s", schema()).unwrap();

    // A healthy push client and a dead one (receiver dropped before any
    // delivery): the router must disconnect the dead one after its first
    // offer and keep the healthy one flowing.
    let (healthy, rx): (_, Receiver<Delivery>) = server.connect_push_client(4096).unwrap();
    let (dead, dead_rx): (_, Receiver<Delivery>) = server.connect_push_client(4).unwrap();
    drop(dead_rx);
    server.submit("SELECT v FROM s", healthy).unwrap();
    server.submit("SELECT v FROM s", dead).unwrap();

    let master = workload();
    let factory: SourceFactory = {
        let schema = schema();
        Box::new(move |_attempt, delivered| {
            Ok(Box::new(ReplaySource {
                schema: schema.clone(),
                tuples: master[delivered as usize..].to_vec(),
                pos: 0,
            }) as Box<dyn Source>)
        })
    };
    server
        .attach_supervised_source("s", factory, SupervisorConfig::default())
        .unwrap();

    assert!(
        server.quiesce(Duration::from_secs(30)),
        "server must quiesce despite the chaos schedule"
    );

    let sup = server.supervisor_stats().remove(0).1;
    let outcome = Outcome {
        results: rx
            .try_iter()
            .map(|(_, t)| t.value(0).as_int().unwrap())
            .collect(),
        egress: server.egress_stats_full(),
        dispatcher_shed: server.shed_count("s").unwrap(),
        archive_errors: server.archive_error_count("s").unwrap(),
        archive: server.archive_stats("s").unwrap().unwrap(),
        sup,
        log: server.fired_faults(),
        archive_path: dir.join("s.seg"),
    };
    server.shutdown().unwrap();
    outcome
}

/// The determinism contract is per fault point (each point's poll counter
/// advances on one component's schedule); normalise to (point, poll#)
/// order before comparing logs across runs.
fn normalised(mut log: Vec<FiredFault>) -> Vec<FiredFault> {
    log.sort_by_key(|&(point, count, _)| (point, count));
    log
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tcq-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn whole_server_chaos_quiesces_with_exact_accounting() {
    let dir = temp_dir("acct");
    let o = run_scenario(&dir);

    // Ingress: the panic was survived, every tuple replayed exactly once.
    assert_eq!(o.sup.delivered, TUPLES as u64);
    assert_eq!(o.sup.panics, 1);
    assert_eq!(o.sup.restarts, 1);
    assert_eq!(o.sup.shed + o.sup.malformed, 0);

    // Dispatcher: exactly one fan-out (one subscriber copy) dropped by the
    // injected enqueue overflow.
    assert_eq!(o.dispatcher_shed, 1);

    // Storage: one soft append failure, one torn page seal, all counted.
    assert_eq!(o.archive_errors, 1);
    assert_eq!(o.archive.appended, TUPLES as u64 - 1);
    assert_eq!(o.archive.torn_pages, 1);
    assert!(o.archive.lost_records > 0);

    // Egress: tuple 1 was offered to both clients (the dead one paid with
    // a disconnect), every later tuple only to the healthy one.
    let e = &o.egress;
    assert_eq!(e.offered, TUPLES as u64);
    assert_eq!(e.disconnected, 1);
    assert_eq!(e.disconnected_loss, 1);
    assert_eq!(e.shed, 2, "two injected delivery errors");
    assert_eq!(e.displaced, 0);
    assert!(
        e.accounted(),
        "delivered + shed + displaced + disconnected_loss == offered"
    );
    assert_eq!(
        e.delivered + e.shed + e.displaced + e.disconnected_loss,
        o.sup.delivered - o.dispatcher_shed as u64 + 1,
        "egress accounts for every copy the dispatcher fanned out"
    );
    assert_eq!(o.results.len() as u64, e.delivered);

    // The client never sees the dispatcher-dropped tuple or the two
    // egress-shed ones, and sees everything else in order.
    assert!(o.results.windows(2).all(|w| w[0] < w[1]), "in order");
    assert!(!o.results.contains(&500), "tuple 500's fan-out was dropped");

    // Six faults fired, none left pending.
    assert_eq!(o.log.len(), 6);
}

#[test]
fn chaos_archive_reopens_cleanly_after_shutdown() {
    let dir = temp_dir("reopen");
    let o = run_scenario(&dir);

    // Reopen the crashed-over segment: the torn page is skipped, every
    // surviving record is readable, and the counts agree exactly with the
    // live archive's own accounting.
    let pool = BufferPool::new(64, 8192);
    let mut archive = StreamArchive::open(
        &o.archive_path,
        schema().with_qualifier("s").into_ref(),
        pool,
    )
    .unwrap();
    let recovery = archive.recovery().unwrap();
    assert_eq!(recovery.pages_skipped, 1, "the torn page fails validation");
    assert_eq!(
        recovery.records_recovered,
        o.archive.appended - o.archive.lost_records
    );
    let mut out = Vec::new();
    archive.scan_window(1, TUPLES, &mut out).unwrap();
    assert_eq!(out.len() as u64, recovery.records_recovered);
    // The soft-failed append (tuple 50) is the only gap outside the torn
    // page's contiguous range.
    assert!(!out.iter().any(|t| t.timestamp().seq() == 50));
}

#[test]
fn chaos_schedule_replays_identically_from_its_seed() {
    let dir_a = temp_dir("det-a");
    let dir_b = temp_dir("det-b");
    let a = run_scenario(&dir_a);
    let b = run_scenario(&dir_b);
    assert_eq!(
        a.results, b.results,
        "answers diverged across same-seed runs"
    );
    assert_eq!(a.egress, b.egress, "egress accounting diverged");
    assert_eq!(
        normalised(a.log),
        normalised(b.log),
        "fired-fault logs diverged across same-seed runs"
    );
}

#[test]
fn batched_and_per_tuple_dispatch_replay_identically() {
    // The batching knob must be invisible to the chaos contract: faults,
    // stamping, and archiving are polled per message on the batch path, so
    // a same-seed run is byte-identical whether the hot path moves one
    // message or sixty-four per lock acquisition.
    let dir_a = temp_dir("iobatch-1");
    let dir_b = temp_dir("iobatch-64");
    let a = run_scenario_with_io_batch(&dir_a, 1);
    let b = run_scenario_with_io_batch(&dir_b, 64);
    assert_eq!(a.results, b.results, "answers diverged across batch sizes");
    assert_eq!(a.egress, b.egress, "egress accounting diverged");
    assert_eq!(a.dispatcher_shed, b.dispatcher_shed);
    assert_eq!(a.archive_errors, b.archive_errors);
    assert_eq!(
        (
            a.archive.appended,
            a.archive.torn_pages,
            a.archive.lost_records
        ),
        (
            b.archive.appended,
            b.archive.torn_pages,
            b.archive.lost_records
        ),
        "archive accounting diverged"
    );
    assert_eq!(
        normalised(a.log),
        normalised(b.log),
        "fired-fault logs diverged across batch sizes"
    );
}

fn hot_schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Int),
    ])
    .into_ref()
}

fn dim_schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("tag", DataType::Int),
    ])
    .into_ref()
}

const DIM_ROWS: i64 = 64;

/// The join flavour of the chaos scenario: the same seeded fault schedule
/// over a two-stream equi-join, run either sequentially (`partitions = 1`,
/// a dedicated `JoinCqDu`) or through the partitioned exchange. The
/// dimension stream is fully loaded *and closed* before the hot stream
/// flows, so every d-side SteM insert precedes every s-side probe in both
/// plans and delivery order is the hot stream's arrival order.
fn run_scenario_with_partitions(dir: &std::path::Path, partitions: usize) -> Outcome {
    // Unequal window widths keep the join off the CACQ shared path, so
    // P=1 runs the dedicated JoinCqDu the exchange must be equivalent to.
    run_join_scenario(
        dir,
        partitions,
        true,
        "SELECT s.v, d.tag FROM s s, d d WHERE s.k = d.id \
         for (t = ST; t >= 0; t++) { WindowIs(s, t - 8000000, t); WindowIs(d, t - 9000000, t); }",
    )
}

fn run_join_scenario(
    dir: &std::path::Path,
    partitions: usize,
    compiled_kernels: bool,
    query: &str,
) -> Outcome {
    let server = TelegraphCQ::start(ServerConfig {
        archive_dir: Some(dir.to_path_buf()),
        fault_plan: Some(plan()),
        egress_policy: EgressPolicy {
            max_retries: 1,
            disconnect_after: 4,
        },
        partitions,
        compiled_kernels,
        ..ServerConfig::default()
    })
    .unwrap();
    server.register_stream("s", hot_schema()).unwrap();
    server.register_stream("d", dim_schema()).unwrap();

    let (client, rx): (_, Receiver<Delivery>) = server.connect_push_client(4096).unwrap();
    server.submit(query, client).unwrap();

    let dims = dim_schema();
    let dim_batch: Vec<Tuple> = (0..DIM_ROWS)
        .map(|id| {
            TupleBuilder::new(dims.clone())
                .push(id)
                .push(id * 10)
                .at(Timestamp::logical(id + 1))
                .build()
                .unwrap()
        })
        .collect();
    server.push_batch("d", dim_batch).unwrap();
    while server.stream_time("d").unwrap() < DIM_ROWS {
        std::thread::sleep(Duration::from_millis(1));
    }
    server.finish_stream("d").unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let hot = hot_schema();
    let master: Vec<Tuple> = (1..=TUPLES)
        .map(|i| {
            TupleBuilder::new(hot.clone())
                .push(i % DIM_ROWS)
                .push(i)
                .at(Timestamp::logical(i))
                .build()
                .unwrap()
        })
        .collect();
    let factory: SourceFactory = {
        let schema = hot.clone();
        Box::new(move |_attempt, delivered| {
            Ok(Box::new(ReplaySource {
                schema: schema.clone(),
                tuples: master[delivered as usize..].to_vec(),
                pos: 0,
            }) as Box<dyn Source>)
        })
    };
    server
        .attach_supervised_source("s", factory, SupervisorConfig::default())
        .unwrap();

    assert!(
        server.quiesce(Duration::from_secs(60)),
        "partitioned chaos join must quiesce (P={partitions})"
    );

    let sup = server.supervisor_stats().remove(0).1;
    let outcome = Outcome {
        results: rx
            .try_iter()
            .map(|(_, t)| t.value(0).as_int().unwrap())
            .collect(),
        egress: server.egress_stats_full(),
        dispatcher_shed: server.shed_count("s").unwrap(),
        archive_errors: server.archive_error_count("s").unwrap()
            + server.archive_error_count("d").unwrap(),
        archive: server.archive_stats("s").unwrap().unwrap(),
        sup,
        log: server.fired_faults(),
        archive_path: dir.join("s.seg"),
    };
    server.shutdown().unwrap();
    outcome
}

#[test]
fn sequential_and_partitioned_join_replay_identically() {
    // The exchange must be invisible to the chaos contract: the
    // partitioner re-serializes the canonical input order, the merger
    // replays it, and no exchange DU polls a fault point — so a same-seed
    // run is byte-identical whether the join runs on one eddy or four.
    let dir_a = temp_dir("part-1");
    let dir_b = temp_dir("part-4");
    let a = run_scenario_with_partitions(&dir_a, 1);
    let b = run_scenario_with_partitions(&dir_b, 4);
    assert!(!a.results.is_empty(), "the join must produce results");
    assert_eq!(a.results, b.results, "answers diverged across P=1 / P=4");
    assert_eq!(a.egress, b.egress, "egress accounting diverged");
    assert_eq!(a.dispatcher_shed, b.dispatcher_shed);
    assert_eq!(a.archive_errors, b.archive_errors);
    assert_eq!(
        (
            a.archive.appended,
            a.archive.torn_pages,
            a.archive.lost_records
        ),
        (
            b.archive.appended,
            b.archive.torn_pages,
            b.archive.lost_records
        ),
        "archive accounting diverged"
    );
    assert_eq!(a.sup.delivered, b.sup.delivered);
    assert_eq!(
        normalised(a.log),
        normalised(b.log),
        "fired-fault logs diverged across partition counts"
    );
}

#[test]
fn compiled_and_interpreted_kernels_replay_identically() {
    // Compiled kernels must be invisible to the chaos contract: lowering
    // predicates to bytecode and prehashing SteM/exchange keys changes
    // how much work each tuple costs, never which tuples pass, match, or
    // get delivered — so a same-seed run is byte-identical with kernels
    // on or off. The query carries real per-source predicates (compiled
    // on the fast side, interpreted on the slow side) and runs through
    // the partitioned exchange so the prehashed routing path is covered.
    let query = "SELECT s.v, d.tag FROM s s, d d \
         WHERE s.k = d.id AND s.v > 0 AND d.tag < 1000000 \
         for (t = ST; t >= 0; t++) { WindowIs(s, t - 8000000, t); WindowIs(d, t - 9000000, t); }";
    let dir_a = temp_dir("kern-on");
    let dir_b = temp_dir("kern-off");
    let a = run_join_scenario(&dir_a, 2, true, query);
    let b = run_join_scenario(&dir_b, 2, false, query);
    assert!(!a.results.is_empty(), "the join must produce results");
    assert_eq!(
        a.results, b.results,
        "answers diverged across kernels on/off"
    );
    assert_eq!(a.egress, b.egress, "egress accounting diverged");
    assert_eq!(a.dispatcher_shed, b.dispatcher_shed);
    assert_eq!(a.archive_errors, b.archive_errors);
    assert_eq!(
        (
            a.archive.appended,
            a.archive.torn_pages,
            a.archive.lost_records
        ),
        (
            b.archive.appended,
            b.archive.torn_pages,
            b.archive.lost_records
        ),
        "archive accounting diverged"
    );
    assert_eq!(a.sup.delivered, b.sup.delivered);
    assert_eq!(
        normalised(a.log),
        normalised(b.log),
        "fired-fault logs diverged across kernel modes"
    );
}

#[test]
fn shutdown_under_load_delivers_everything_admitted() {
    // Regression for shutdown ordering: results admitted before shutdown
    // must reach the client even when shutdown races active dispatch.
    // (Stopping the executor before draining would strand them.)
    let server = TelegraphCQ::start(ServerConfig::default()).unwrap();
    server.register_stream("s", schema()).unwrap();
    let (client, rx) = server.connect_push_client(8192).unwrap();
    server.submit("SELECT v FROM s", client).unwrap();

    let n = 2000i64;
    for t in workload().into_iter().take(n as usize) {
        server.push("s", t).unwrap();
    }
    // No quiesce, no settling: shutdown immediately, mid-flight.
    server.shutdown().unwrap();

    let got: Vec<i64> = rx
        .try_iter()
        .map(|(_, t)| t.value(0).as_int().unwrap())
        .collect();
    assert_eq!(got.len() as i64, n, "every admitted tuple was delivered");
    assert!(got.windows(2).all(|w| w[0] < w[1]), "in order");
}
