//! End-to-end ingress-path coverage: CSV wrappers, generator wrappers, and
//! several sources feeding one engine concurrently.

use std::time::Duration;

use telegraphcq::prelude::*;

fn settle(server: &TelegraphCQ) {
    let mut last = server.egress_stats();
    for _ in 0..400 {
        std::thread::sleep(Duration::from_millis(5));
        let now = server.egress_stats();
        if now == last {
            return;
        }
        last = now;
    }
}

#[test]
fn csv_wrapper_end_to_end() {
    let path = std::env::temp_dir().join(format!("tcq-e2e-{}.csv", std::process::id()));
    let mut body = String::new();
    for i in 1..=200 {
        body.push_str(&format!("{i},sensor-{},{}.5\n", i % 4, i));
    }
    std::fs::write(&path, &body).unwrap();

    let schema = Schema::new(vec![
        Field::new("seq", DataType::Int),
        Field::new("name", DataType::Str),
        Field::new("reading", DataType::Float),
    ])
    .into_ref();
    let server = TelegraphCQ::start(ServerConfig::default()).unwrap();
    server.register_stream("readings", schema.clone()).unwrap();
    let client = server.connect_pull_client(4096).unwrap();
    let qid = server
        .submit(
            "SELECT seq, reading FROM readings WHERE name = 'sensor-2' AND reading > 100.0",
            client,
        )
        .unwrap();
    server
        .attach_source(
            "readings",
            Box::new(CsvSource::open(&path, schema).unwrap()),
        )
        .unwrap();
    server.quiesce(Duration::from_secs(10));
    settle(&server);

    let got = server.fetch(client, 4096).unwrap();
    // name == sensor-2 ⇔ i % 4 == 2; reading = i + 0.5 > 100 ⇔ i >= 100;
    // qualifying i: 102, 106, ..., 198 → 25 rows.
    assert_eq!(got.len(), 25);
    for (q, row) in &got {
        assert_eq!(*q, qid);
        let i = row.value(0).as_int().unwrap();
        assert_eq!(i % 4, 2);
        assert!(row.value(1).as_float().unwrap() > 100.0);
    }
    server.shutdown().unwrap();
    std::fs::remove_file(path).ok();
}

#[test]
fn three_generators_feed_one_engine() {
    let server = TelegraphCQ::start(ServerConfig::default()).unwrap();
    server
        .register_stream("quotes", StockTicks::schema_for("quotes"))
        .unwrap();
    server
        .register_stream("packets", NetworkPackets::schema_for("packets"))
        .unwrap();
    server
        .register_stream("sensors", SensorReadings::schema_for("sensors"))
        .unwrap();

    let c_quotes = server.connect_pull_client(100_000).unwrap();
    server
        .submit("SELECT timestamp FROM quotes", c_quotes)
        .unwrap();
    let c_packets = server.connect_pull_client(100_000).unwrap();
    server
        .submit(
            "SELECT timestamp FROM packets WHERE proto = 'udp'",
            c_packets,
        )
        .unwrap();
    let c_sensors = server.connect_pull_client(100_000).unwrap();
    server
        .submit("SELECT timestamp FROM sensors", c_sensors)
        .unwrap();

    server
        .attach_source(
            "quotes",
            Box::new(StockTicks::new("quotes", &["A", "B"], 1).with_max_days(100)),
        )
        .unwrap();
    server
        .attach_source(
            "packets",
            Box::new(NetworkPackets::new("packets", 10, 0.5, 2).with_max_packets(500)),
        )
        .unwrap();
    server
        .attach_source(
            "sensors",
            Box::new(
                SensorReadings::new("sensors", 4, 3)
                    .with_dropout(0.05)
                    .with_max_readings(300),
            ),
        )
        .unwrap();
    assert!(server.quiesce(Duration::from_secs(20)), "all streams drain");
    settle(&server);

    assert_eq!(server.fetch(c_quotes, 100_000).unwrap().len(), 200);
    let udp = server.fetch(c_packets, 100_000).unwrap();
    assert!(!udp.is_empty() && udp.len() < 500, "udp is a strict subset");
    assert_eq!(server.fetch(c_sensors, 100_000).unwrap().len(), 300);
    server.shutdown().unwrap();
}

#[test]
fn sliding_avg_from_generator_matches_recomputation() {
    // Windows driven by generator timestamps (several ticks share one
    // trading day): AVG must account for every tick within the window.
    let dir = std::env::temp_dir().join(format!("tcq-gen-win-{}", std::process::id()));
    let server = TelegraphCQ::start(ServerConfig {
        archive_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    server
        .register_stream("quotes", StockTicks::schema_for("quotes"))
        .unwrap();
    let client = server.connect_pull_client(4096).unwrap();
    server
        .submit(
            "SELECT AVG(closingPrice) FROM quotes WHERE stockSymbol = 'A' \
             for (t = 10; t <= 40; t += 10) { WindowIs(quotes, t - 9, t); }",
            client,
        )
        .unwrap();
    // Deterministic generator; collect the same ticks for the reference.
    let mut reference = StockTicks::new("quotes", &["A", "B"], 77).with_max_days(50);
    let mut all = Vec::new();
    reference.next_batch(10_000, &mut all).unwrap();
    server
        .attach_source(
            "quotes",
            Box::new(StockTicks::new("quotes", &["A", "B"], 77).with_max_days(50)),
        )
        .unwrap();
    server.quiesce(Duration::from_secs(10));
    settle(&server);

    let got = server.fetch(client, 4096).unwrap();
    assert_eq!(got.len(), 4, "windows at t = 10, 20, 30, 40");
    for (_, row) in &got {
        let t = row.value(0).as_int().unwrap();
        let avg = row.value(1).as_float().unwrap();
        let (sum, n) = all
            .iter()
            .filter(|tick| {
                let day = tick.value(0).as_int().unwrap();
                tick.value(1).as_str().unwrap() == "A" && day >= t - 9 && day <= t
            })
            .fold((0.0, 0usize), |(s, n), tick| {
                (s + tick.value(2).as_float().unwrap(), n + 1)
            });
        assert!(n > 0);
        assert!((avg - sum / n as f64).abs() < 1e-9, "window ending {t}");
    }
    server.shutdown().unwrap();
    std::fs::remove_dir_all(dir).ok();
}
