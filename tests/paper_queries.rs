//! End-to-end runs of the four example queries of paper §4.1.1, verbatim,
//! over the `ClosingStockPrices` stream (experiment E12 in DESIGN.md).
//!
//! Prices are crafted deterministically so every assertion is exact:
//! MSFT closes at `40 + day` (crosses $50 at day 11), IBM closes at
//! `100 - day/10`.

use std::time::Duration;

use telegraphcq::prelude::*;

fn stock_schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("timestamp", DataType::Int),
        Field::new("stockSymbol", DataType::Str),
        Field::new("closingPrice", DataType::Float),
    ])
    .into_ref()
}

fn tick(schema: &SchemaRef, day: i64, sym: &str, price: f64) -> Tuple {
    TupleBuilder::new(schema.clone())
        .push(day)
        .push(sym)
        .push(price)
        .at(Timestamp::logical(day))
        .build()
        .unwrap()
}

/// Feed `days` trading days of the deterministic market.
fn feed_market(server: &TelegraphCQ, days: i64) {
    let schema = stock_schema();
    for day in 1..=days {
        server
            .push(
                "ClosingStockPrices",
                tick(&schema, day, "MSFT", 40.0 + day as f64),
            )
            .unwrap();
        server
            .push(
                "ClosingStockPrices",
                tick(&schema, day, "IBM", 100.0 - day as f64 / 10.0),
            )
            .unwrap();
    }
}

fn archived_server() -> TelegraphCQ {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("tcq-paper-queries-{}-{n}", std::process::id()));
    let server = TelegraphCQ::start(ServerConfig {
        archive_dir: Some(dir),
        ..ServerConfig::default()
    })
    .unwrap();
    server
        .register_stream("ClosingStockPrices", stock_schema())
        .unwrap();
    server
}

/// Wait until the executor has drained the given stream's pipeline: push a
/// sentinel-free check by polling stream time and egress stability.
fn settle(server: &TelegraphCQ) {
    // The dispatcher and query DUs run asynchronously; wait until egress
    // deliveries stop changing.
    let mut last = server.egress_stats();
    for _ in 0..200 {
        std::thread::sleep(Duration::from_millis(5));
        let now = server.egress_stats();
        if now == last {
            return;
        }
        last = now;
    }
}

#[test]
fn example1_snapshot_query() {
    // "Select the closing prices for MSFT on the first five days of
    // trading."
    let server = archived_server();
    feed_market(&server, 50);
    // Let the dispatcher archive everything before asking for history.
    std::thread::sleep(Duration::from_millis(50));
    settle(&server);

    let client = server.connect_pull_client(1024).unwrap();
    let qid = server
        .submit(
            "SELECT closingPrice, timestamp \
             FROM ClosingStockPrices \
             WHERE stockSymbol = 'MSFT' \
             for (; t==0; t = -1 ){ \
                 WindowIs(ClosingStockPrices, 1, 5); \
             }",
            client,
        )
        .unwrap();
    // Historical queries complete synchronously.
    let results = server.fetch(client, 1024).unwrap();
    assert_eq!(results.len(), 5, "five MSFT closes in days 1-5");
    for (i, (q, t)) in results.iter().enumerate() {
        assert_eq!(*q, qid);
        let day = (i + 1) as f64;
        assert_eq!(t.value(0).as_float().unwrap(), 40.0 + day);
        assert_eq!(t.value(1).as_int().unwrap(), i as i64 + 1);
    }
    server.shutdown().unwrap();
}

#[test]
fn example2_landmark_query() {
    // "Select all the days after the hundredth trading day, on which the
    // closing price of MSFT has been greater than $50" — scaled down to
    // day 20 / 200 days so the test is fast: window [21, t], t = 21..=200.
    let server = archived_server();
    let client = server.connect_pull_client(4096).unwrap();
    let qid = server
        .submit(
            "SELECT closingPrice, timestamp \
             FROM ClosingStockPrices \
             WHERE stockSymbol = 'MSFT' and closingPrice > 50.00 \
             for (t = 21; t <= 200; t++ ){ \
                 WindowIs(ClosingStockPrices, 21, t); \
             }",
            client,
        )
        .unwrap();
    feed_market(&server, 60);
    std::thread::sleep(Duration::from_millis(50));
    settle(&server);

    let results = server.fetch(client, 4096).unwrap();
    // MSFT price 40+day > 50 ⇔ day >= 11, and the window floor is day 21:
    // qualifying days are 21..=60.
    assert_eq!(results.len(), 40, "days 21..=60 qualify");
    for (q, t) in &results {
        assert_eq!(*q, qid);
        let day = t.value(1).as_int().unwrap();
        assert!(
            (21..=60).contains(&day),
            "day {day} outside the landmark window"
        );
        assert!(t.value(0).as_float().unwrap() > 50.0);
    }
    server.shutdown().unwrap();
}

#[test]
fn example3_sliding_avg_query() {
    // "On every fifth trading day starting today, calculate the average
    // closing price of MSFT for the five most recent trading days."
    let server = archived_server();
    let client = server.connect_pull_client(1024).unwrap();
    let qid = server
        .submit(
            "Select AVG(closingPrice) \
             From ClosingStockPrices \
             Where stockSymbol = 'MSFT' \
             for (t = ST; t < ST + 50; t +=5 ){ \
                 WindowIs(ClosingStockPrices, t - 4, t); \
             }",
            client,
        )
        .unwrap();
    feed_market(&server, 60);
    std::thread::sleep(Duration::from_millis(50));
    settle(&server);

    let results = server.fetch(client, 1024).unwrap();
    // ST = 1 (stream had not started when the query arrived): windows
    // [t-4, t] for t = 1, 6, 11, ..., 46 — ten windows.
    assert_eq!(results.len(), 10);
    for (q, row) in &results {
        assert_eq!(*q, qid);
        let t = row.value(0).as_int().unwrap();
        // AVG over days [max(t-4, 1), t] of (40 + day).
        let lo = (t - 4).max(1);
        let expect: f64 = (lo..=t).map(|d| 40.0 + d as f64).sum::<f64>() / (t - lo + 1) as f64;
        let got = row.value(1).as_float().unwrap();
        assert!(
            (got - expect).abs() < 1e-9,
            "window ending {t}: got {got}, want {expect}"
        );
    }
    server.shutdown().unwrap();
}

#[test]
fn example4_temporal_band_join() {
    // "For the five most recent trading days starting today, select all
    // stocks that closed higher than MSFT on a given day."
    let server = archived_server();
    let client = server.connect_pull_client(4096).unwrap();
    let qid = server
        .submit(
            "Select c2.* \
             FROM ClosingStockPrices as c1, ClosingStockPrices as c2 \
             WHERE c1.stockSymbol = 'MSFT' and \
                   c2.stockSymbol != 'MSFT' and \
                   c2.closingPrice > c1.closingPrice and \
                   c2.timestamp = c1.timestamp \
             for (t = ST; t < ST +20 ; t++ ){ \
                 WindowIs(c1, t - 4, t); \
                 WindowIs(c2, t - 4, t); \
             }",
            client,
        )
        .unwrap();
    feed_market(&server, 60);
    std::thread::sleep(Duration::from_millis(50));
    settle(&server);

    let results = server.fetch(client, 4096).unwrap();
    // IBM (100 - day/10) closes above MSFT (40 + day) while day < 54.5,
    // but the query only stands "for twenty trading days": ST = 1, so the
    // final window closes at day 20 and the query retires. One (c1=MSFT,
    // c2=IBM) match per day in 1..=20.
    assert_eq!(
        results.len(),
        20,
        "the query stands for twenty trading days"
    );
    for (q, row) in &results {
        assert_eq!(*q, qid);
        // c2.* = (timestamp, stockSymbol, closingPrice) of the non-MSFT row
        assert_eq!(row.arity(), 3);
        assert_eq!(row.value(1).as_str().unwrap(), "IBM");
        let day = row.value(0).as_int().unwrap();
        assert!((1..=20).contains(&day));
    }
    server.shutdown().unwrap();
}
