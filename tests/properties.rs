//! Property-based tests over the engine's core invariants, driven by
//! deterministic seeded case generation (`tcq_common::rng`) so the suite
//! needs no external property-testing crate and every failure replays
//! from its printed property stream and case index.
//!
//! Each property pins an algebraic contract from the paper to a reference
//! implementation: eddies must not change query semantics no matter how
//! they route; shared indexes must agree with per-query evaluation;
//! spooling to disk must be lossless; repartitioning and failover must not
//! corrupt answers.

use telegraphcq::common::rng::{derive_seed, seeded, TcqRng};
use telegraphcq::prelude::*;
use telegraphcq::windows::{CondOp, Condition, Step, WindowIs};

/// Run `body` for `cases` deterministic cases. The per-case RNG derives
/// from a property-specific stream id, so adding a property never shifts
/// another property's cases; a failing case replays from (stream, case).
fn check(stream: u64, cases: u64, mut body: impl FnMut(&mut TcqRng)) {
    for case in 0..cases {
        let mut rng = seeded(derive_seed(stream, case));
        body(&mut rng);
    }
}

fn kv_schema(q: &str) -> SchemaRef {
    Schema::qualified(
        q,
        vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Int),
        ],
    )
    .into_ref()
}

fn kv(schema: &SchemaRef, k: i64, v: i64, ts: i64) -> Tuple {
    TupleBuilder::new(schema.clone())
        .push(k)
        .push(v)
        .at(Timestamp::logical(ts))
        .build()
        .unwrap()
}

/// Any routing policy, any seed, any interleaving: the eddy's join ∪
/// filter output equals the nested-loop reference as a multiset.
#[test]
fn eddy_semantics_invariant_under_routing() {
    use telegraphcq::eddy::{FixedPolicy, RandomPolicy, RoutingPolicy};
    check(0xE1, 48, |rng| {
        let seed = rng.gen_range(0u64..1000);
        let policy_sel = rng.gen_range(0usize..3);
        let threshold = rng.gen_range(0i64..10);
        let rows: Vec<(i64, i64, bool)> = (0..rng.gen_range(1usize..120))
            .map(|_| (rng.gen_range(0i64..12), rng.gen_range(0i64..10), rng.gen()))
            .collect();

        let s = kv_schema("S");
        let t = kv_schema("T");
        let policy: Box<dyn RoutingPolicy> = match policy_sel {
            0 => Box::new(FixedPolicy::new(vec![0, 1, 2])),
            1 => Box::new(RandomPolicy),
            _ => Box::new(LotteryPolicy::new()),
        };
        let mut eddy = Eddy::new(
            &["S", "T"],
            policy,
            EddyConfig {
                batch_size: 1,
                seed,
            },
        )
        .unwrap();
        let (sb, tb) = (eddy.source_bit("S").unwrap(), eddy.source_bit("T").unwrap());
        let (stem_s, stem_t) =
            telegraphcq::operators::symmetric_hash_join(&s, "S", "k", &t, "T", "k").unwrap();
        eddy.add_module(ModuleSpec::stem(Box::new(stem_s), sb, tb))
            .unwrap();
        eddy.add_module(ModuleSpec::stem(Box::new(stem_t), tb, sb))
            .unwrap();
        let filter = SelectOp::new(
            "fS",
            &Expr::qcol("S", "v").cmp(CmpOp::Ge, Expr::lit(threshold)),
            &s,
        )
        .unwrap();
        eddy.add_module(ModuleSpec::filter(Box::new(filter), sb))
            .unwrap();

        let mut s_rows = Vec::new();
        let mut t_rows = Vec::new();
        let mut emitted = Vec::new();
        for (i, (k, v, left)) in rows.iter().enumerate() {
            let ts = i as i64 + 1;
            if *left {
                let r = kv(&s, *k, *v, ts);
                s_rows.push(r.clone());
                emitted.extend(eddy.process(r).unwrap());
            } else {
                let r = kv(&t, *k, *v, ts);
                t_rows.push(r.clone());
                emitted.extend(eddy.process(r).unwrap());
            }
        }
        let mut expected = 0usize;
        for sr in &s_rows {
            for tr in &t_rows {
                if sr.value(0) == tr.value(0) && sr.value(1).as_int().unwrap() >= threshold {
                    expected += 1;
                }
            }
        }
        assert_eq!(emitted.len(), expected, "policy {policy_sel} seed {seed}");
    });
}

/// Grouped filters agree with per-factor evaluation for arbitrary
/// mixed-op factor sets and probes.
#[test]
fn grouped_filter_matches_naive() {
    use telegraphcq::stems::GroupedFilter;
    let ops = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];
    check(0xE2, 48, |rng| {
        let factors: Vec<(usize, i64)> = (0..rng.gen_range(0usize..64))
            .map(|_| (rng.gen_range(0usize..6), rng.gen_range(-20i64..20)))
            .collect();
        let probes: Vec<i64> = (0..rng.gen_range(1usize..40))
            .map(|_| rng.gen_range(-25i64..25))
            .collect();

        let mut gf = GroupedFilter::new();
        for (id, (op_i, c)) in factors.iter().enumerate() {
            gf.insert(id, ops[*op_i], Value::Int(*c)).unwrap();
        }
        for p in probes {
            let v = Value::Int(p);
            let fast = gf.eval_collect(&v);
            let slow: BitSet = factors
                .iter()
                .enumerate()
                .filter(|(_, (op_i, c))| {
                    v.sql_cmp(&Value::Int(*c))
                        .unwrap()
                        .is_some_and(|o| ops[*op_i].matches(o))
                })
                .map(|(i, _)| i)
                .collect();
            assert_eq!(fast, slow);
        }
    });
}

/// Spool-then-scan is lossless and window scans return exactly the
/// requested range, in order.
#[test]
fn archive_roundtrip() {
    use telegraphcq::storage::{BufferPool, StreamArchive};
    check(0xE3, 32, |rng| {
        let n = rng.gen_range(1usize..400);
        let l = rng.gen_range(1i64..400);
        let width = rng.gen_range(0i64..100);
        let page_size = [256usize, 512, 4096][rng.gen_range(0usize..3)];

        let schema = kv_schema("s");
        let pool = BufferPool::new(3, page_size);
        let path = std::env::temp_dir().join(format!(
            "tcq-prop-archive-{}-{n}-{page_size}.seg",
            std::process::id()
        ));
        let mut archive = StreamArchive::create(&path, schema.clone(), pool).unwrap();
        for i in 1..=n as i64 {
            archive.append(&kv(&schema, i % 7, i, i)).unwrap();
        }
        // Full scan.
        let mut all = Vec::new();
        archive.scan_window(i64::MIN, i64::MAX, &mut all).unwrap();
        assert_eq!(all.len(), n);
        assert!(all
            .windows(2)
            .all(|w| w[0].timestamp().seq() < w[1].timestamp().seq()));
        // Window scan.
        let r = l + width;
        let mut out = Vec::new();
        archive.scan_window(l, r, &mut out).unwrap();
        let expect = (l.max(1)..=r.min(n as i64)).count();
        assert_eq!(out.len(), expect);
        assert!(out.iter().all(|t| {
            let s = t.timestamp().seq();
            l <= s && s <= r
        }));
        std::fs::remove_file(path).ok();
    });
}

/// SteM eviction: after sliding the window, probes never return evicted
/// tuples, and always return every live match.
#[test]
fn stem_eviction_exactness() {
    use telegraphcq::stems::{IndexKind, SteM};
    check(0xE4, 48, |rng| {
        let inserts: Vec<(i64, i64)> = (0..rng.gen_range(1usize..120))
            .map(|_| (rng.gen_range(0i64..5), rng.gen_range(1i64..200)))
            .collect();
        let cutoff = rng.gen_range(1i64..200);

        let schema = kv_schema("s");
        let mut stem = SteM::new("s", schema.clone(), 0, IndexKind::Both).unwrap();
        for (k, ts) in &inserts {
            stem.insert(kv(&schema, *k, 0, *ts)).unwrap();
        }
        stem.evict_before_seq(cutoff);
        for key in 0..5i64 {
            let mut out = Vec::new();
            stem.probe_eq(&Value::Int(key), &mut out);
            let mut expect: Vec<i64> = inserts
                .iter()
                .filter(|(k, ts)| *k == key && *ts >= cutoff)
                .map(|(_, ts)| *ts)
                .collect();
            let mut got: Vec<i64> = out.iter().map(|t| t.timestamp().seq()).collect();
            got.sort_unstable();
            expect.sort_unstable();
            assert_eq!(got, expect);
        }
    });
}

/// PSoup's materialized invoke path equals predicate recomputation for
/// arbitrary push/invoke interleavings.
#[test]
fn psoup_invoke_equals_recompute() {
    check(0xE5, 48, |rng| {
        let vals: Vec<i64> = (0..rng.gen_range(1usize..150))
            .map(|_| rng.gen_range(0i64..50))
            .collect();
        let width = rng.gen_range(1i64..40);
        let threshold = rng.gen_range(0i64..50);

        let schema = kv_schema("s");
        let mut ps = PSoup::new(schema.clone(), 64.max(width));
        let pred = Expr::col("v").cmp(CmpOp::Gt, Expr::lit(threshold));
        ps.register(0, Some(&pred), width).unwrap();
        for (i, v) in vals.iter().enumerate() {
            ps.push(kv(&schema, 0, *v, i as i64 + 1)).unwrap();
            if i % 13 == 0 {
                assert_eq!(ps.invoke(0).unwrap(), ps.recompute(0).unwrap());
            }
        }
        assert_eq!(ps.invoke(0).unwrap(), ps.recompute(0).unwrap());
    });
}

/// Flux: random rebalance cadence, random victim, replication on —
/// group-by answers always equal the reference.
#[test]
fn flux_correct_under_failure_and_rebalance() {
    use telegraphcq::flux::{FluxCluster, FluxConfig};
    check(0xE6, 32, |rng| {
        let n = rng.gen_range(100usize..800);
        let keys = rng.gen_range(1i64..40);
        let kill_at = rng.gen_range(0usize..800);
        let rebalance = [0u64, 4, 16][rng.gen_range(0usize..3)];
        let victim = rng.gen_range(0usize..4);

        let schema = kv_schema("s");
        let cfg = FluxConfig::uniform(4)
            .with_replication()
            .with_rebalancing(rebalance);
        let mut cluster = FluxCluster::new(cfg, 0, 1).unwrap();
        let mut reference: std::collections::HashMap<i64, (u64, f64)> = Default::default();
        let mut killed = false;
        for i in 0..n {
            let k = (i as i64 * 31 + 7) % keys;
            let t = kv(&schema, k, 1, i as i64 + 1);
            cluster.ingest(&t).unwrap();
            let e = reference.entry(k).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += 1.0;
            if i % 8 == 0 {
                cluster.tick();
            }
            if !killed && i == kill_at.min(n - 1) {
                cluster.kill_node(victim).unwrap();
                killed = true;
            }
        }
        cluster.run_until_drained(1_000_000);
        let got = cluster.results();
        assert_eq!(got.len(), reference.len());
        for (k, (c, s)) in reference {
            let (gc, gs) = got.get(&Value::Int(k)).copied().unwrap();
            assert_eq!(gc, c, "count for key {k}");
            assert!((gs - s).abs() < 1e-9);
        }
    });
}

/// Window sequences: every generated window respects its declared
/// direction and bounds, and forward specs produce monotonically
/// advancing right edges.
#[test]
fn window_sequences_well_formed() {
    check(0xE7, 48, |rng| {
        let init = rng.gen_range(0i64..50);
        let span = rng.gen_range(1i64..60);
        let hop = rng.gen_range(1i64..10);
        let width = rng.gen_range(0i64..10);

        let spec = ForLoop {
            init: LinExpr::constant(init),
            cond: Condition {
                op: CondOp::Le,
                bound: LinExpr::constant(init + span),
            },
            step: Step::Add(hop),
            windows: vec![WindowIs::new("s", LinExpr::t_plus(-width), LinExpr::t())],
        };
        let kind = telegraphcq::windows::classify(&spec).unwrap();
        let is_sliding = matches!(kind, WindowKind::Sliding { .. });
        assert!(is_sliding);
        if let WindowKind::Sliding { hop: h, width: w } = kind {
            assert_eq!(h, hop);
            assert_eq!(w, width + 1);
        }
        let assignments: Vec<_> = WindowSeq::new(spec, 1)
            .collect::<telegraphcq::common::Result<Vec<_>>>()
            .unwrap();
        assert_eq!(assignments.len() as i64, span / hop + 1);
        let mut prev_right = i64::MIN;
        for wa in &assignments {
            let w = wa.window_for("s").unwrap();
            assert!(w.left <= w.right);
            assert!(w.right > prev_right);
            prev_right = w.right;
        }
    });
}

/// The shared eddy delivers exactly the per-query reference answer for
/// random query sets and streams.
#[test]
fn shared_eddy_matches_per_query_reference() {
    check(0xE8, 48, |rng| {
        let thresholds: Vec<i64> = (0..rng.gen_range(1usize..24))
            .map(|_| rng.gen_range(0i64..20))
            .collect();
        let vals: Vec<i64> = (0..rng.gen_range(1usize..120))
            .map(|_| rng.gen_range(0i64..20))
            .collect();

        let schema = kv_schema("s");
        let mut eddy = SharedEddy::single_stream(schema.clone());
        for (q, th) in thresholds.iter().enumerate() {
            let pred = Expr::col("v").cmp(CmpOp::Gt, Expr::lit(*th));
            eddy.add_select_query(q, Some(&pred)).unwrap();
        }
        for (i, v) in vals.iter().enumerate() {
            let t = kv(&schema, 0, *v, i as i64 + 1);
            let out = eddy.push_left(t).unwrap();
            let expect: BitSet = thresholds
                .iter()
                .enumerate()
                .filter(|(_, th)| *v > **th)
                .map(|(q, _)| q)
                .collect();
            if expect.is_empty() {
                assert!(out.is_empty());
            } else {
                assert_eq!(out.len(), 1);
                assert_eq!(&out[0].1, &expect);
            }
        }
    });
}

/// Deterministic seeds are reproducible across the whole pipeline (one
/// fixed check).
#[test]
fn seeded_rng_stability() {
    let mut a = seeded(123);
    let mut b = seeded(123);
    let va: Vec<u32> = (0..32).map(|_| a.gen()).collect();
    let vb: Vec<u32> = (0..32).map(|_| b.gen()).collect();
    assert_eq!(va, vb);
}
