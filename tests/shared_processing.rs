//! Shared continuous-query processing across many clients (CACQ, §3.1) and
//! dynamic query add/remove (§1.1: "shared processing must be made robust
//! to the addition of new queries and the removal of old ones over time").

use std::time::Duration;

use telegraphcq::prelude::*;

fn sensor_schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("ts", DataType::Int),
        Field::new("sensorId", DataType::Int),
        Field::new("temperature", DataType::Float),
    ])
    .into_ref()
}

fn reading(schema: &SchemaRef, ts: i64, id: i64, temp: f64) -> Tuple {
    TupleBuilder::new(schema.clone())
        .push(ts)
        .push(id)
        .push(temp)
        .at(Timestamp::logical(ts))
        .build()
        .unwrap()
}

fn settle(server: &TelegraphCQ) {
    let mut last = server.egress_stats();
    for _ in 0..200 {
        std::thread::sleep(Duration::from_millis(5));
        let now = server.egress_stats();
        if now == last {
            return;
        }
        last = now;
    }
}

#[test]
fn many_queries_share_one_stream_pass() {
    let server = TelegraphCQ::start(ServerConfig::default()).unwrap();
    server.register_stream("sensors", sensor_schema()).unwrap();
    let schema = sensor_schema();

    // 32 standing queries with different thresholds, one client each.
    let mut clients = Vec::new();
    for i in 0..32i64 {
        let client = server.connect_pull_client(4096).unwrap();
        let qid = server
            .submit(
                &format!(
                    "SELECT ts, temperature FROM sensors WHERE temperature > {}",
                    i
                ),
                client,
            )
            .unwrap();
        clients.push((client, qid, i));
    }
    assert_eq!(server.query_count(), 32);

    // temperatures 0.5, 1.5, ..., 63.5
    for ts in 1..=64i64 {
        server
            .push("sensors", reading(&schema, ts, ts % 8, ts as f64 - 0.5))
            .unwrap();
    }
    settle(&server);

    for (client, qid, threshold) in clients {
        let got = server.fetch(client, 4096).unwrap();
        // temp > threshold ⇔ ts - 0.5 > threshold ⇔ ts >= threshold + 1
        let expect = 64 - threshold;
        assert_eq!(
            got.len() as i64,
            expect,
            "client with threshold {threshold} got {} rows",
            got.len()
        );
        assert!(got.iter().all(|(q, _)| *q == qid));
        assert!(got
            .iter()
            .all(|(_, t)| t.value(1).as_float().unwrap() > threshold as f64));
    }
    server.shutdown().unwrap();
}

#[test]
fn queries_join_and_leave_mid_stream() {
    let server = TelegraphCQ::start(ServerConfig::default()).unwrap();
    server.register_stream("sensors", sensor_schema()).unwrap();
    let schema = sensor_schema();

    let c1 = server.connect_pull_client(4096).unwrap();
    let q1 = server
        .submit("SELECT ts FROM sensors WHERE temperature > 0.0", c1)
        .unwrap();

    for ts in 1..=10 {
        server
            .push("sensors", reading(&schema, ts, 0, 5.0))
            .unwrap();
    }
    settle(&server);

    // Second query arrives mid-stream.
    let c2 = server.connect_pull_client(4096).unwrap();
    let q2 = server
        .submit("SELECT ts FROM sensors WHERE temperature > 0.0", c2)
        .unwrap();
    for ts in 11..=20 {
        server
            .push("sensors", reading(&schema, ts, 0, 5.0))
            .unwrap();
    }
    settle(&server);

    // First query leaves; more data flows.
    server.stop_query(q1).unwrap();
    for ts in 21..=30 {
        server
            .push("sensors", reading(&schema, ts, 0, 5.0))
            .unwrap();
    }
    settle(&server);

    let got1 = server.fetch(c1, 4096).unwrap();
    let got2 = server.fetch(c2, 4096).unwrap();
    assert_eq!(got1.len(), 20, "q1 saw ts 1..=20 then left");
    assert_eq!(got2.len(), 20, "q2 saw ts 11..=30");
    assert!(got1.iter().all(|(q, _)| *q == q1));
    assert!(got2.iter().all(|(q, _)| *q == q2));
    assert_eq!(
        got2.iter().map(|(_, t)| t.value(0).as_int().unwrap()).min(),
        Some(11)
    );
    server.shutdown().unwrap();
}

#[test]
fn push_and_pull_clients_coexist() {
    let server = TelegraphCQ::start(ServerConfig::default()).unwrap();
    server.register_stream("sensors", sensor_schema()).unwrap();
    let schema = sensor_schema();

    let (push_client, rx) = server.connect_push_client(4096).unwrap();
    let pull_client = server.connect_pull_client(4096).unwrap();
    let q_push = server
        .submit("SELECT ts FROM sensors", push_client)
        .unwrap();
    let q_pull = server
        .submit("SELECT ts FROM sensors", pull_client)
        .unwrap();

    for ts in 1..=50 {
        server
            .push("sensors", reading(&schema, ts, 0, 1.0))
            .unwrap();
    }
    settle(&server);

    let pushed: Vec<_> = rx.try_iter().collect();
    let pulled = server.fetch(pull_client, 4096).unwrap();
    assert_eq!(pushed.len(), 50);
    assert_eq!(pulled.len(), 50);
    assert!(pushed.iter().all(|(q, _)| *q == q_push));
    assert!(pulled.iter().all(|(q, _)| *q == q_pull));
    server.shutdown().unwrap();
}

#[test]
fn group_by_aggregate_over_sliding_windows() {
    let server = TelegraphCQ::start(ServerConfig::default()).unwrap();
    server.register_stream("sensors", sensor_schema()).unwrap();
    let schema = sensor_schema();
    let client = server.connect_pull_client(4096).unwrap();
    let qid = server
        .submit(
            "SELECT sensorId, COUNT(*), AVG(temperature) FROM sensors \
             GROUP BY sensorId \
             for (t = 10; t <= 30; t +=10) { WindowIs(sensors, t - 9, t); }",
            client,
        )
        .unwrap();

    // Two sensors alternate; sensor 0 at temp = ts, sensor 1 at temp = -ts.
    for ts in 1..=40i64 {
        let id = ts % 2;
        let temp = if id == 0 { ts as f64 } else { -(ts as f64) };
        server
            .push("sensors", reading(&schema, ts, id, temp))
            .unwrap();
    }
    settle(&server);

    let rows = server.fetch(client, 4096).unwrap();
    // 3 windows × 2 groups.
    assert_eq!(rows.len(), 6);
    for (q, row) in &rows {
        assert_eq!(*q, qid);
        let t = row.value(0).as_int().unwrap();
        let sensor = row.value(1).as_int().unwrap();
        let count = row.value(2).as_int().unwrap();
        let avg = row.value(3).as_float().unwrap();
        assert!([10, 20, 30].contains(&t));
        assert_eq!(count, 5, "each sensor has 5 readings per 10-day window");
        // window [t-9, t]; sensor 0 readings are the even ts in range.
        let expect: f64 = ((t - 9)..=t)
            .filter(|ts| ts % 2 == sensor)
            .map(|ts| if sensor == 0 { ts as f64 } else { -(ts as f64) })
            .sum::<f64>()
            / 5.0;
        assert!((avg - expect).abs() < 1e-9, "t={t} sensor={sensor}");
    }
    server.shutdown().unwrap();
}

#[test]
fn two_stream_join_via_server() {
    let server = TelegraphCQ::start(ServerConfig::default()).unwrap();
    server.register_stream("sensors", sensor_schema()).unwrap();
    let meta = Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("room", DataType::Str),
    ])
    .into_ref();
    server.register_table("meta", meta.clone()).unwrap();

    let client = server.connect_pull_client(4096).unwrap();
    let qid = server
        .submit(
            "SELECT s.ts, m.room FROM sensors s, meta m \
             WHERE s.sensorId = m.id AND s.temperature > 10.0 \
             for (t = ST; t >= 0; t++) { WindowIs(s, t - 99, t); }",
            client,
        )
        .unwrap();

    // meta is a (small) stream joined as a table-like side.
    for id in 0..4i64 {
        let row = TupleBuilder::new(meta.clone())
            .push(id)
            .push(format!("room-{id}"))
            .at(Timestamp::logical(id + 1))
            .build()
            .unwrap();
        server.push("meta", row).unwrap();
    }
    let schema = sensor_schema();
    for ts in 1..=40i64 {
        // temp > 10 for even ts
        let temp = if ts % 2 == 0 { 20.0 } else { 5.0 };
        server
            .push("sensors", reading(&schema, ts, ts % 4, temp))
            .unwrap();
    }
    settle(&server);

    let rows = server.fetch(client, 4096).unwrap();
    assert_eq!(rows.len(), 20, "even ts readings join their room");
    for (q, row) in &rows {
        assert_eq!(*q, qid);
        let ts = row.value(0).as_int().unwrap();
        assert_eq!(ts % 2, 0);
        let room = row.value(1).as_str().unwrap().to_string();
        assert_eq!(room, format!("room-{}", ts % 4));
    }
    server.shutdown().unwrap();
}

#[test]
fn join_queries_share_one_stem_pair() {
    // CACQ's shared join at the server level: N join queries with the same
    // join signature share ONE SharedEddy (one pair of SteMs), each seeing
    // exactly its own answers.
    let server = TelegraphCQ::start(ServerConfig::default()).unwrap();
    let left = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("lv", DataType::Int),
    ])
    .into_ref();
    let right = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("rv", DataType::Int),
    ])
    .into_ref();
    server.register_stream("L", left.clone()).unwrap();
    server.register_stream("R", right.clone()).unwrap();

    // Three queries over the same equi-join (same window) with different
    // per-side filters and different aliases — sharing must still kick in,
    // including for q2, which writes the join in the opposite order.
    let c0 = server.connect_pull_client(100_000).unwrap();
    let q0 = server
        .submit(
            "SELECT a.k, b.rv FROM L a, R b WHERE a.k = b.k \
             for (t = ST; t >= 0; t++) { WindowIs(a, t - 49, t); WindowIs(b, t - 49, t); }",
            c0,
        )
        .unwrap();
    let c1 = server.connect_pull_client(100_000).unwrap();
    let q1 = server
        .submit(
            "SELECT x.k FROM L x, R y WHERE x.k = y.k AND x.lv > 5 \
             for (t = ST; t >= 0; t++) { WindowIs(x, t - 49, t); WindowIs(y, t - 49, t); }",
            c1,
        )
        .unwrap();
    let c2 = server.connect_pull_client(100_000).unwrap();
    let q2 = server
        .submit(
            "SELECT y.rv FROM R y, L x WHERE y.k = x.k AND y.rv > 7 \
             for (t = ST; t >= 0; t++) { WindowIs(x, t - 49, t); WindowIs(y, t - 49, t); }",
            c2,
        )
        .unwrap();
    assert_eq!(
        server.shared_join_count(),
        1,
        "all three queries must share one SteM pair"
    );

    // Interleave L and R rows: L(k, lv=k), R(k, rv=k) for k in 0..10 — each
    // key matches once.
    for k in 0..10i64 {
        let lrow = TupleBuilder::new(left.clone())
            .push(k)
            .push(k)
            .at(Timestamp::logical(2 * k + 1))
            .build()
            .unwrap();
        server.push("L", lrow).unwrap();
        let rrow = TupleBuilder::new(right.clone())
            .push(k)
            .push(k)
            .at(Timestamp::logical(2 * k + 2))
            .build()
            .unwrap();
        server.push("R", rrow).unwrap();
    }
    settle(&server);

    let got0 = server.fetch(c0, 100_000).unwrap();
    let got1 = server.fetch(c1, 100_000).unwrap();
    let got2 = server.fetch(c2, 100_000).unwrap();
    assert_eq!(got0.len(), 10, "q0 sees every match");
    assert!(got0.iter().all(|(q, _)| *q == q0));
    assert_eq!(got1.len(), 4, "q1: lv > 5 → k in 6..=9");
    assert!(got1.iter().all(|(q, _)| *q == q1));
    assert_eq!(got2.len(), 2, "q2: rv > 7 → k in 8..=9");
    assert!(got2.iter().all(|(q, _)| *q == q2));

    // Teardown: the shared plan survives until the LAST query leaves.
    server.stop_query(q0).unwrap();
    server.stop_query(q1).unwrap();
    assert_eq!(server.shared_join_count(), 1);
    server.stop_query(q2).unwrap();
    assert_eq!(server.shared_join_count(), 0);
    server.shutdown().unwrap();
}

#[test]
fn three_way_star_join_via_server() {
    // Three streams joined on a common key; the dedicated eddy builds one
    // SteM per source and completes RST triples exactly once.
    let server = TelegraphCQ::start(ServerConfig::default()).unwrap();
    let mk = |_name: &str, val: &str| {
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new(val, DataType::Int),
        ])
        .into_ref()
    };
    let (ra, sa, ta) = (mk("R", "rv"), mk("S", "sv"), mk("T", "tv"));
    server.register_stream("R", ra.clone()).unwrap();
    server.register_stream("S", sa.clone()).unwrap();
    server.register_stream("T", ta.clone()).unwrap();

    let client = server.connect_pull_client(100_000).unwrap();
    let qid = server
        .submit(
            "SELECT r.k, s.sv, t.tv FROM R r, S s, T t \
             WHERE r.k = s.k AND s.k = t.k \
             for (t = ST; t >= 0; t++) { \
                 WindowIs(r, t - 99, t); WindowIs(s, t - 99, t); WindowIs(t, t - 99, t); \
             }",
            client,
        )
        .unwrap();

    let mut ts = 0i64;
    let mut push = |stream: &str, schema: &SchemaRef, k: i64, v: i64| {
        ts += 1;
        let row = TupleBuilder::new(schema.clone())
            .push(k)
            .push(v)
            .at(Timestamp::logical(ts))
            .build()
            .unwrap();
        server.push(stream, row).unwrap();
    };
    // keys 1..=5 appear in all three; key 9 only in R and S.
    for k in 1..=5 {
        push("R", &ra, k, 10 * k);
        push("S", &sa, k, 20 * k);
        push("T", &ta, k, 30 * k);
    }
    push("R", &ra, 9, 90);
    push("S", &sa, 9, 180);
    settle(&server);

    let got = server.fetch(client, 100_000).unwrap();
    assert_eq!(got.len(), 5, "one triple per common key");
    for (q, row) in &got {
        assert_eq!(*q, qid);
        let k = row.value(0).as_int().unwrap();
        assert_eq!(row.value(1).as_int().unwrap(), 20 * k);
        assert_eq!(row.value(2).as_int().unwrap(), 30 * k);
    }
    server.shutdown().unwrap();
}
