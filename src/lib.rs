//! # TelegraphCQ-rs
//!
//! A from-scratch Rust reproduction of **TelegraphCQ: Continuous Dataflow
//! Processing for an Uncertain World** (Chandrasekaran et al., CIDR 2003):
//! a shared, continuously *adaptive* engine for continuous queries over
//! data streams.
//!
//! This facade crate re-exports the whole workspace under topical modules.
//! Start with [`server::TelegraphCQ`] for the end-to-end engine, or use the
//! building blocks directly:
//!
//! * [`fjords`] — push/pull inter-module queues (§2.3);
//! * [`stems`] — State Modules, grouped filters, the PSoup query SteM
//!   (§2.2, §3);
//! * [`operators`] — pipelined non-blocking query modules (§2.1);
//! * [`eddy`] — adaptive tuple routing, routing policies, CACQ shared
//!   processing (§2.2, §3.1);
//! * [`windows`] — the for-loop/WindowIs window construct (§4.1);
//! * [`query`] — the SQL-subset front-end (§4.2.1);
//! * [`executor`] — Execution Objects and Dispatch Units (§4.2.2);
//! * [`psoup`] — data⋈query symmetric join with materialized results
//!   (§3.2);
//! * [`flux`] — fault-tolerant load-balancing exchange over a simulated
//!   cluster (§2.4);
//! * [`storage`] — stream archives and the buffer pool (§4.3);
//! * [`ingress`] / [`egress`] — wrappers, streamers, and result delivery
//!   (§4.2.3, §4.3);
//! * [`net`] — the TCP transport: wire protocol, listener/connection
//!   layer, and the remote client.
//!
//! ## Quickstart
//!
//! ```
//! use telegraphcq::prelude::*;
//!
//! let server = TelegraphCQ::start(ServerConfig::default()).unwrap();
//! server
//!     .register_stream("ClosingStockPrices", StockTicks::schema_for("ClosingStockPrices"))
//!     .unwrap();
//! let client = server.connect_pull_client(1024).unwrap();
//! let qid = server
//!     .submit(
//!         "SELECT closingPrice, timestamp FROM ClosingStockPrices \
//!          WHERE stockSymbol = 'MSFT' and closingPrice > 50.00",
//!         client,
//!     )
//!     .unwrap();
//! // feed the stream, then read results:
//! server
//!     .attach_source(
//!         "ClosingStockPrices",
//!         Box::new(StockTicks::new("ClosingStockPrices", &["MSFT", "IBM"], 42).with_max_days(100)),
//!     )
//!     .unwrap();
//! server.quiesce(std::time::Duration::from_secs(5));
//! let results = server.fetch(client, 1024).unwrap();
//! for (query, tuple) in &results {
//!     assert_eq!(*query, qid);
//!     assert!(tuple.value(0).as_float().unwrap() > 50.0);
//! }
//! server.shutdown().unwrap();
//! ```

#![warn(missing_docs)]

pub use tcq_common as common;
pub use tcq_eddy as eddy;
pub use tcq_egress as egress;
pub use tcq_executor as executor;
pub use tcq_fjords as fjords;
pub use tcq_flux as flux;
pub use tcq_ingress as ingress;
pub use tcq_net as net;
pub use tcq_operators as operators;
pub use tcq_psoup as psoup;
pub use tcq_query as query;
pub use tcq_server as server;
pub use tcq_stems as stems;
pub use tcq_storage as storage;
pub use tcq_windows as windows;

/// One-stop imports for applications.
pub mod prelude {
    pub use tcq_common::{
        BitSet, Catalog, CmpOp, DataType, Expr, FaultAction, FaultPlan, FaultPoint, Field, Result,
        Schema, SchemaRef, SourceKind, TcqError, Timestamp, Tuple, TupleBuilder, Value,
    };
    pub use tcq_eddy::{Eddy, EddyConfig, LotteryPolicy, ModuleSpec, SharedEddy};
    pub use tcq_egress::{EgressPolicy, EgressStats};
    pub use tcq_ingress::{
        ChaosSource, CsvSource, DegradePolicy, NetworkPackets, SensorReadings, Source,
        SourceFactory, SourceStatus, StockTicks, SupervisorConfig, VecSource,
    };
    pub use tcq_net::{NetServer, TcqClient};
    pub use tcq_operators::{AggFunc, AggSpec, ProjectOp, SelectOp, StemOp};
    pub use tcq_psoup::PSoup;
    pub use tcq_server::{
        LivenessConfig, OverloadPolicy, ServerConfig, TcpTransportConfig, TelegraphCQ,
        TransportConfig,
    };
    pub use tcq_windows::{ForLoop, LinExpr, WindowKind, WindowSeq};
}
