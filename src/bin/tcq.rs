//! `tcq` — an interactive TelegraphCQ-rs shell.
//!
//! ```text
//! cargo run --release --bin tcq
//! tcq> \stream quotes stocks 500
//! tcq> SELECT timestamp, stockSymbol, closingPrice
//!      FROM quotes WHERE closingPrice > 50.0;
//! q1 standing
//! tcq> \fetch 5
//! ...
//! ```
//!
//! Plays the role of the paper's client proxy + listener: queries typed
//! here are parsed, planned, and folded into the running executor; results
//! buffer per session and are retrieved with `\fetch` (pull-mode egress).

use std::io::{BufRead, Write};
use std::time::Duration;

use telegraphcq::prelude::*;

const HELP: &str = r#"commands:
  \stream <name> <stocks|network|sensors> [n]   register a stream and attach a
                                                generator of n items (default 1000)
  \push <stream> <v1,v2,...>                    inject one tuple (values by schema)
  \fetch [n]                                    fetch up to n buffered results (default 10)
  \stop <qid>                                   stop a standing query
  \stats                                        engine statistics
  \help                                         this text
  \quit                                         exit

anything else is SQL: SELECT ... FROM ... [WHERE ...] [GROUP BY ...]
[for (t = ...; ...; ...) { WindowIs(stream, l, r); ... }]
end plain SQL with ';' (window clauses may end with '}')"#;

fn main() {
    let archive_dir = std::env::temp_dir().join(format!("tcq-cli-{}", std::process::id()));
    let server = TelegraphCQ::start(ServerConfig {
        archive_dir: Some(archive_dir.clone()),
        ..ServerConfig::default()
    })
    .expect("server start");
    let client = server.connect_pull_client(100_000).expect("client");
    println!("TelegraphCQ-rs shell — \\help for commands");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("tcq> ");
        } else {
            print!("...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            if !command(&server, client, trimmed) {
                break;
            }
            continue;
        }
        if trimmed.is_empty() && buffer.is_empty() {
            continue;
        }
        buffer.push_str(&line);
        if statement_complete(&buffer) {
            let sql = std::mem::take(&mut buffer);
            match server.submit(sql.trim().trim_end_matches(';'), client) {
                Ok(qid) => println!("q{qid} standing"),
                Err(e) => eprintln!("error: {e}"),
            }
        }
    }
    server.shutdown().ok();
    std::fs::remove_dir_all(archive_dir).ok();
}

/// A statement is complete when braces balance and it ends with ';' or '}'.
fn statement_complete(buf: &str) -> bool {
    let opens = buf.matches('{').count();
    let closes = buf.matches('}').count();
    if opens != closes {
        return false;
    }
    let t = buf.trim_end();
    t.ends_with(';') || (opens > 0 && t.ends_with('}'))
}

/// Handle a backslash command; returns false to quit.
fn command(server: &TelegraphCQ, client: u64, cmd: &str) -> bool {
    let parts: Vec<&str> = cmd.split_whitespace().collect();
    match parts[0] {
        "\\quit" | "\\q" => return false,
        "\\help" | "\\h" => println!("{HELP}"),
        "\\stream" => {
            if parts.len() < 3 {
                eprintln!("usage: \\stream <name> <stocks|network|sensors> [n]");
                return true;
            }
            let name = parts[1];
            let n: i64 = parts.get(3).and_then(|s| s.parse().ok()).unwrap_or(1000);
            let source: Option<Box<dyn Source>> = match parts[2] {
                "stocks" => Some(Box::new(
                    StockTicks::new(name, &["MSFT", "IBM", "ORCL", "SUNW"], 42)
                        .with_max_days(n)
                        .with_volatility(1.5),
                )),
                "network" => Some(Box::new(
                    NetworkPackets::new(name, 50, 1.1, 42).with_max_packets(n),
                )),
                "sensors" => Some(Box::new(
                    SensorReadings::new(name, 8, 42)
                        .with_dropout(0.02)
                        .with_max_readings(n),
                )),
                other => {
                    eprintln!("unknown generator '{other}'");
                    None
                }
            };
            let Some(source) = source else { return true };
            let schema = source.schema().clone();
            match server
                .register_stream(name, strip_schema(&schema))
                .and_then(|()| server.attach_source(name, source))
            {
                Ok(()) => println!(
                    "stream {name} registered; {n} tuples flowing; schema {}",
                    schema
                ),
                Err(e) => eprintln!("error: {e}"),
            }
        }
        "\\push" => {
            if parts.len() < 3 {
                eprintln!("usage: \\push <stream> <v1,v2,...>");
                return true;
            }
            match push_csv(server, parts[1], parts[2]) {
                Ok(()) => println!("ok"),
                Err(e) => eprintln!("error: {e}"),
            }
        }
        "\\fetch" => {
            let n: usize = parts.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
            // brief settle so freshly pushed tuples flow through
            std::thread::sleep(Duration::from_millis(30));
            match server.fetch(client, n) {
                Ok(results) if results.is_empty() => println!("(no buffered results)"),
                Ok(results) => {
                    for (qid, t) in results {
                        println!("q{qid}: {t:?}");
                    }
                }
                Err(e) => eprintln!("error: {e}"),
            }
        }
        "\\stop" => match parts.get(1).and_then(|s| s.parse::<usize>().ok()) {
            Some(qid) => match server.stop_query(qid) {
                Ok(()) => println!("q{qid} stopped"),
                Err(e) => eprintln!("error: {e}"),
            },
            None => eprintln!("usage: \\stop <qid>"),
        },
        "\\stats" => {
            let ex = server.executor_stats();
            let (delivered, shed) = server.egress_stats();
            println!(
                "queries standing: {} | DUs per EO: {:?} | results delivered: {delivered} (shed {shed})",
                server.query_count(),
                ex.dus_per_eo
            );
            for def in server.catalog().list() {
                let time = server.stream_time(&def.name).unwrap_or(0);
                println!("  {} {:?} at t={time}", def.name, def.kind);
            }
        }
        other => eprintln!("unknown command '{other}' — \\help"),
    }
    true
}

/// Generators qualify their schemas by stream name; registration wants the
/// bare schema.
fn strip_schema(schema: &SchemaRef) -> SchemaRef {
    Schema::new(schema.fields().to_vec()).into_ref()
}

fn push_csv(server: &TelegraphCQ, stream: &str, csv: &str) -> Result<()> {
    let def = server.catalog().lookup(stream)?;
    let parts: Vec<&str> = csv.split(',').collect();
    if parts.len() != def.schema.len() {
        return Err(TcqError::SchemaMismatch(format!(
            "{} values for schema {}",
            parts.len(),
            def.schema
        )));
    }
    let mut b = TupleBuilder::new(def.schema.clone());
    for (i, raw) in parts.iter().enumerate() {
        let v = match def.schema.field(i).data_type {
            DataType::Int => Value::Int(
                raw.parse()
                    .map_err(|_| TcqError::Type(format!("bad int '{raw}'")))?,
            ),
            DataType::Float => Value::Float(
                raw.parse()
                    .map_err(|_| TcqError::Type(format!("bad float '{raw}'")))?,
            ),
            DataType::Bool => Value::Bool(raw.eq_ignore_ascii_case("true")),
            DataType::Str => Value::str(raw),
        };
        b = b.push(v);
    }
    server.push(stream, b.build()?)
}
