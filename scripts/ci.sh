#!/bin/sh
# Tier-1 gate: everything here must pass before merging.
# Fully offline — no network, no external dev-dependencies.
set -e

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
build_start=$(date +%s)
cargo build --release
build_end=$(date +%s)
echo "release build took $((build_end - build_start))s"

echo "== cargo test (workspace) =="
cargo test --workspace -q

echo "== exp_chaos --smoke (server-level chaos, reduced scale) =="
./target/release/exp_chaos --smoke

echo "== exp_throughput --smoke (perf tripwire: batched must beat per-tuple) =="
./target/release/exp_throughput --smoke

echo "== exp_scaling --smoke (perf tripwire: partitioned exchange vs sequential) =="
./target/release/exp_scaling --smoke

echo "== exp_kernels --smoke (perf tripwire: compiled + columnar kernels vs interpreter; columnar >= 1.3x row, <= 3.0 allocs/tuple) =="
./target/release/exp_kernels --smoke

echo "== exp_query_scale --smoke (scale tripwire: 100k-CQ probe >= 20x naive, churn floor, zero probe allocs) =="
./target/release/exp_query_scale --smoke

echo "== exp_recovery --smoke (robustness tripwire: kill -> restore loses nothing) =="
./target/release/exp_recovery --smoke

echo "== exp_liveness --smoke (robustness tripwire: watchdog detects and recovers wedges) =="
./target/release/exp_liveness --smoke

echo "== exp_clients --smoke (transport tripwire: real TCP fleet, exact dead-client ledger) =="
./target/release/exp_clients --smoke

echo
echo "ci: all green"
