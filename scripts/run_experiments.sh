#!/bin/sh
# Run every experiment binary in crates/bench/src/bin/, regenerating the
# series DESIGN.md's per-experiment index describes and the BENCH_*.json
# perf trajectory. Pass --smoke to run each at reduced CI scale.
set -e

cd "$(dirname "$0")/.."

SMOKE=""
if [ "$1" = "--smoke" ]; then
    SMOKE="--smoke"
fi

cargo build --release -p tcq-bench

for exp in exp_eddy_adaptivity exp_adaptivity_knobs exp_cacq_sharing \
    exp_hybrid_join exp_window_memory exp_psoup exp_dynamic_queries \
    exp_storage exp_flux exp_chaos exp_throughput exp_scaling \
    exp_kernels exp_query_scale exp_recovery exp_liveness exp_clients; do
    echo
    echo "==== $exp $SMOKE ===="
    ./target/release/"$exp" $SMOKE
done

echo
echo "run_experiments: all experiments completed"
