//! Query-processing modules (TelegraphCQ §2.1).
//!
//! > "In Telegraph, query processing is performed by routing tuples through
//! > query modules. These modules are pipelined, non-blocking versions of
//! > standard relational operators such as joins, selections, projections,
//! > grouping and aggregation, and duplicate elimination."
//!
//! Modules come in two flavours here:
//!
//! * **Eddy modules** ([`EddyModule`]) — commutative, tuple-at-a-time
//!   operators an eddy routes through: [`SelectOp`], [`GroupedFilterOp`],
//!   [`StemOp`] (build/probe halves of joins), [`RemoteIndexOp`] (the
//!   simulated remote access method used for join hybridization), and
//!   [`DupElimOp`].
//! * **Consumers** — operators applied to the eddy's *output* stream, where
//!   ordering is fixed: [`ProjectOp`], the window aggregates
//!   ([`WindowAggregator`], [`GroupByAggregator`]), and [`Juggle`] (online
//!   reordering for prioritized delivery, \[RRH99\]).
//!
//! The split mirrors the paper: eddies adaptively order the *commutative*
//! part of the plan; modules at the eddy's input or output "are not
//! considered in the Eddy's adaptive decision-making" (§2.2).

#![warn(missing_docs)]

pub mod aggregate;
pub mod dupelim;
pub mod juggle;
pub mod module;
pub mod project;
pub mod remote_index;
pub mod select;
pub mod stem_op;

pub use aggregate::{AggFunc, AggSpec, GroupByAggregator, WindowAggregator, WindowMode};
pub use dupelim::DupElimOp;
pub use juggle::Juggle;
pub use module::{ColumnarVerdict, EddyModule, Outputs, Routed};
pub use project::ProjectOp;
pub use remote_index::{RemoteIndex, RemoteIndexOp};
pub use select::{GroupedFilterOp, SelectOp};
pub use stem_op::{symmetric_hash_join, StemOp};
