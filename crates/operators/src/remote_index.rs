//! A simulated remote index access method.
//!
//! §2.2 describes hybridized joins: stream S joined with "a remote index on
//! table T (e.g. T is a web lookup form wrapped by TeSS) … the best way to
//! implement index joins with remote sources is in an asynchronous fashion".
//! The eddy can route S tuples either to the local SteM on T (hash join) or
//! to the remote index access method, and "essentially run both query plans
//! at the same time".
//!
//! We do not have the authors' web sources, so [`RemoteIndex`] simulates
//! one: an in-memory keyed table fronted by a configurable per-lookup
//! latency (busy-wait, so Criterion wall-clock measurements see it). The
//! latency knob reproduces the cost regimes that make hybridization win —
//! cheap index → index joins win; slow index → building the SteM wins; the
//! eddy discovers either without being told.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tcq_common::{Result, Schema, SchemaRef, Tuple, Value};

use crate::module::{EddyModule, Routed};

/// The remote side: a keyed table with simulated access latency.
pub struct RemoteIndex {
    schema: SchemaRef,
    key_col: usize,
    table: HashMap<Value, Vec<Tuple>>,
    latency: Duration,
    lookups: u64,
}

impl RemoteIndex {
    /// Build a remote index over `rows`, keyed by `key_col`.
    pub fn new(schema: SchemaRef, key_col: usize, rows: Vec<Tuple>, latency: Duration) -> Self {
        let mut table: HashMap<Value, Vec<Tuple>> = HashMap::new();
        for r in rows {
            table.entry(r.value(key_col).clone()).or_default().push(r);
        }
        RemoteIndex {
            schema,
            key_col,
            table,
            latency,
            lookups: 0,
        }
    }

    /// Change the simulated latency mid-run (source volatility).
    pub fn set_latency(&mut self, latency: Duration) {
        self.latency = latency;
    }

    /// One remote lookup: busy-waits `latency`, then returns matches.
    pub fn lookup(&mut self, key: &Value, out: &mut Vec<Tuple>) -> usize {
        self.lookups += 1;
        if !self.latency.is_zero() {
            let start = Instant::now();
            while start.elapsed() < self.latency {
                std::hint::spin_loop();
            }
        }
        match self.table.get(key) {
            Some(rows) => {
                out.extend(rows.iter().cloned());
                rows.len()
            }
            None => 0,
        }
    }

    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Schema of indexed rows.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The indexed column.
    pub fn key_col(&self) -> usize {
        self.key_col
    }
}

/// The access-method module: probes the remote index with each routed tuple
/// and emits concatenations — an *alternative* to probing the local SteM on
/// the same table, competing under the eddy's routing policy.
pub struct RemoteIndexOp {
    name: String,
    index: RemoteIndex,
    /// Probe key in the routed tuple, resolved per schema like StemOp.
    probe_key_qualifier: Option<String>,
    probe_key_name: String,
    plans: HashMap<usize, (usize, SchemaRef)>,
}

impl RemoteIndexOp {
    /// Wrap a [`RemoteIndex`] as an eddy module.
    pub fn new(
        name: impl Into<String>,
        index: RemoteIndex,
        probe_key: (Option<String>, String),
    ) -> Self {
        RemoteIndexOp {
            name: name.into(),
            index,
            probe_key_qualifier: probe_key.0,
            probe_key_name: probe_key.1,
            plans: HashMap::new(),
        }
    }

    /// Mutable access to the remote side (latency adjustments in tests).
    pub fn index_mut(&mut self) -> &mut RemoteIndex {
        &mut self.index
    }

    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.index.lookups()
    }
}

impl EddyModule for RemoteIndexOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, tuple: &Tuple) -> Result<Routed> {
        let key = Arc::as_ptr(tuple.schema()) as usize;
        if !self.plans.contains_key(&key) {
            let col = tuple
                .schema()
                .index_of(self.probe_key_qualifier.as_deref(), &self.probe_key_name)?;
            let joined: SchemaRef = Arc::new(Schema::concat(tuple.schema(), self.index.schema()));
            self.plans.insert(key, (col, joined));
        }
        let (col, joined) = {
            let (c, j) = &self.plans[&key];
            (*c, j.clone())
        };
        let mut matches = Vec::new();
        self.index.lookup(tuple.value(col), &mut matches);
        let outputs = matches
            .into_iter()
            .map(|m| tuple.concat(&m, joined.clone()))
            .collect();
        Ok(Routed::consume_into(outputs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{DataType, Field, Timestamp, TupleBuilder};

    fn t_schema() -> SchemaRef {
        Schema::qualified(
            "T",
            vec![
                Field::new("k", DataType::Int),
                Field::new("name", DataType::Str),
            ],
        )
        .into_ref()
    }

    fn s_schema() -> SchemaRef {
        Schema::qualified(
            "S",
            vec![
                Field::new("k", DataType::Int),
                Field::new("x", DataType::Float),
            ],
        )
        .into_ref()
    }

    fn t_row(k: i64, name: &str) -> Tuple {
        TupleBuilder::new(t_schema())
            .push(k)
            .push(name)
            .at(Timestamp::logical(k))
            .build()
            .unwrap()
    }

    fn s_row(k: i64, x: f64, ts: i64) -> Tuple {
        TupleBuilder::new(s_schema())
            .push(k)
            .push(x)
            .at(Timestamp::logical(ts))
            .build()
            .unwrap()
    }

    #[test]
    fn lookup_joins_matching_rows() {
        let index = RemoteIndex::new(
            t_schema(),
            0,
            vec![t_row(1, "one"), t_row(2, "two"), t_row(1, "uno")],
            Duration::ZERO,
        );
        let mut op = RemoteIndexOp::new("idx(T)", index, (Some("S".into()), "k".into()));
        let r = op.process(&s_row(1, 0.5, 10)).unwrap();
        assert!(!r.keep);
        assert_eq!(r.outputs.len(), 2);
        for j in &r.outputs {
            assert_eq!(
                j.get(Some("S"), "k").unwrap(),
                j.get(Some("T"), "k").unwrap()
            );
        }
        assert_eq!(op.lookups(), 1);
    }

    #[test]
    fn missing_key_yields_no_outputs() {
        let index = RemoteIndex::new(t_schema(), 0, vec![t_row(1, "one")], Duration::ZERO);
        let mut op = RemoteIndexOp::new("idx(T)", index, (Some("S".into()), "k".into()));
        let r = op.process(&s_row(99, 0.0, 1)).unwrap();
        assert!(r.outputs.is_empty());
    }

    #[test]
    fn latency_is_observable() {
        let mut index = RemoteIndex::new(t_schema(), 0, vec![t_row(1, "one")], Duration::ZERO);
        index.set_latency(Duration::from_micros(200));
        let mut out = Vec::new();
        let start = Instant::now();
        index.lookup(&Value::Int(1), &mut out);
        assert!(start.elapsed() >= Duration::from_micros(200));
        assert_eq!(out.len(), 1);
    }
}
