//! Juggle: online reordering for prioritized delivery (\[RRH99\], §2.1).
//!
//! > "Juggle performs online reordering for prioritizing records by
//! > content."
//!
//! A [`Juggle`] sits between a producer and a consumer. It buffers up to a
//! bounded number of tuples and always releases the highest-priority one
//! first, so interactive clients see interesting records early even when
//! the stream delivers them late. When the buffer is full, the *best*
//! tuple is released to make room — the consumer should see high-priority
//! records as early as possible.
//!
//! The buffer is generic over a payload `P` carried alongside each tuple
//! (e.g. the query id at the egress boundary); use `Juggle<()>` when no
//! payload is needed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use tcq_common::{Result, Tuple, Value};

/// Priority function: bigger value = deliver sooner.
pub type PriorityFn = Box<dyn Fn(&Tuple) -> f64 + Send>;

struct Entry<P> {
    priority: f64,
    /// Arrival order breaks ties FIFO.
    arrival: u64,
    tuple: Tuple,
    payload: P,
}

impl<P> PartialEq for Entry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<P> Eq for Entry<P> {}
impl<P> PartialOrd for Entry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Entry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on priority; FIFO (smaller arrival first) on ties.
        match self.priority.partial_cmp(&other.priority) {
            Some(Ordering::Equal) | None => other.arrival.cmp(&self.arrival),
            Some(o) => o,
        }
    }
}

/// Online reordering buffer.
pub struct Juggle<P = ()> {
    name: String,
    priority: PriorityFn,
    heap: BinaryHeap<Entry<P>>,
    capacity: usize,
    next_arrival: u64,
}

impl<P> Juggle<P> {
    /// A juggle holding at most `capacity` tuples, prioritized by `priority`.
    pub fn new(name: impl Into<String>, capacity: usize, priority: PriorityFn) -> Self {
        assert!(capacity >= 1, "juggle capacity must be >= 1");
        Juggle {
            name: name.into(),
            priority,
            heap: BinaryHeap::with_capacity(capacity),
            capacity,
            next_arrival: 0,
        }
    }

    /// Convenience: prioritize by a numeric column, descending.
    pub fn by_column_desc(name: impl Into<String>, capacity: usize, column: usize) -> Self {
        Juggle::new(
            name,
            capacity,
            Box::new(move |t: &Tuple| match t.value(column) {
                Value::Int(i) => *i as f64,
                Value::Float(f) => *f,
                _ => f64::NEG_INFINITY,
            }),
        )
    }

    /// The juggle's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Offer a tuple (with its payload); if the buffer was full, the
    /// highest-priority entry (the one to deliver now) is returned.
    pub fn push(&mut self, tuple: Tuple, payload: P) -> Result<Option<(Tuple, P)>> {
        let priority = (self.priority)(&tuple);
        self.heap.push(Entry {
            priority,
            arrival: self.next_arrival,
            tuple,
            payload,
        });
        self.next_arrival += 1;
        if self.heap.len() > self.capacity {
            Ok(self.heap.pop().map(|e| (e.tuple, e.payload)))
        } else {
            Ok(None)
        }
    }

    /// Deliver the highest-priority buffered entry, if any.
    pub fn pop(&mut self) -> Option<(Tuple, P)> {
        self.heap.pop().map(|e| (e.tuple, e.payload))
    }

    /// Drain everything in priority order (end of stream).
    pub fn drain(&mut self) -> Vec<(Tuple, P)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(e) = self.heap.pop() {
            out.push((e.tuple, e.payload));
        }
        out
    }

    /// Buffered entry count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{DataType, Field, Schema, SchemaRef, Timestamp, TupleBuilder};

    fn schema() -> SchemaRef {
        Schema::new(vec![Field::new("x", DataType::Int)]).into_ref()
    }

    fn t(x: i64) -> Tuple {
        TupleBuilder::new(schema())
            .push(x)
            .at(Timestamp::logical(x))
            .build()
            .unwrap()
    }

    #[test]
    fn delivers_highest_priority_first() {
        let mut j: Juggle = Juggle::by_column_desc("j", 10, 0);
        for x in [3, 1, 4, 1, 5, 9, 2, 6] {
            assert!(j.push(t(x), ()).unwrap().is_none());
        }
        let order: Vec<i64> = j
            .drain()
            .iter()
            .map(|(t, _)| t.value(0).as_int().unwrap())
            .collect();
        assert_eq!(order, vec![9, 6, 5, 4, 3, 2, 1, 1]);
    }

    #[test]
    fn full_buffer_releases_best_immediately() {
        let mut j: Juggle = Juggle::by_column_desc("j", 3, 0);
        assert!(j.push(t(1), ()).unwrap().is_none());
        assert!(j.push(t(5), ()).unwrap().is_none());
        assert!(j.push(t(3), ()).unwrap().is_none());
        // buffer full: pushing releases the current best (5)
        let (released, _) = j.push(t(2), ()).unwrap().unwrap();
        assert_eq!(released.value(0).as_int().unwrap(), 5);
        assert_eq!(j.len(), 3);
    }

    #[test]
    fn ties_are_fifo() {
        let s = schema();
        let mk = |x: i64, ts: i64| {
            TupleBuilder::new(s.clone())
                .push(x)
                .at(Timestamp::logical(ts))
                .build()
                .unwrap()
        };
        let mut j: Juggle = Juggle::by_column_desc("j", 10, 0);
        j.push(mk(7, 100), ()).unwrap();
        j.push(mk(7, 200), ()).unwrap();
        let (first, _) = j.pop().unwrap();
        assert_eq!(first.timestamp().seq(), 100, "equal priority delivers FIFO");
    }

    #[test]
    fn custom_priority_function() {
        // prioritize small values
        let mut j: Juggle = Juggle::new(
            "asc",
            8,
            Box::new(|t: &Tuple| -(t.value(0).as_int().unwrap_or(0) as f64)),
        );
        for x in [3, 1, 2] {
            j.push(t(x), ()).unwrap();
        }
        let order: Vec<i64> = j
            .drain()
            .iter()
            .map(|(t, _)| t.value(0).as_int().unwrap())
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn payload_rides_along() {
        let mut j: Juggle<&'static str> = Juggle::by_column_desc("j", 8, 0);
        j.push(t(1), "low").unwrap();
        j.push(t(9), "high").unwrap();
        let (tuple, tag) = j.pop().unwrap();
        assert_eq!(tuple.value(0).as_int().unwrap(), 9);
        assert_eq!(tag, "high");
    }
}
