//! The eddy-module contract.
//!
//! An eddy "continuously route\[s\] tuples among a set of other modules
//! according to a routing policy … When one of the modules processes a
//! tuple t, it can generate other tuples … and send them back to the Eddy
//! for further routing" (§2.2). [`Routed`] captures exactly that protocol.

use tcq_common::{Result, Tuple};

/// What a module did with one routed tuple.
#[derive(Debug, Default)]
pub struct Routed {
    /// Whether the original tuple survives this module and should continue
    /// routing (filters: predicate held; SteM build: yes; SteM probe: no —
    /// the concatenations carry it forward).
    pub keep: bool,
    /// Newly generated tuples (join concatenations, index lookups) returned
    /// "back to the Eddy for further routing".
    pub outputs: Vec<Tuple>,
}

impl Routed {
    /// The tuple passed through unchanged.
    pub fn pass() -> Routed {
        Routed {
            keep: true,
            outputs: Vec::new(),
        }
    }

    /// The tuple was filtered out or absorbed.
    pub fn drop() -> Routed {
        Routed {
            keep: false,
            outputs: Vec::new(),
        }
    }

    /// The tuple was consumed and replaced by `outputs`.
    pub fn consume_into(outputs: Vec<Tuple>) -> Routed {
        Routed {
            keep: false,
            outputs,
        }
    }
}

/// A commutative, tuple-at-a-time query module an eddy can route through.
///
/// Implementations must be cheap to call: the eddy invokes `process` once
/// per (tuple, module) visit, and routing policies time these calls to
/// estimate module costs.
pub trait EddyModule: Send {
    /// Short diagnostic name, e.g. `"sel(closingPrice>50)"`.
    fn name(&self) -> &str;

    /// Handle one routed tuple.
    fn process(&mut self, tuple: &Tuple) -> Result<Routed>;

    /// Handle a batch of tuples that share one routing decision, pushing
    /// exactly one [`Routed`] per tuple onto `out`, in order. Results must
    /// match what per-tuple [`EddyModule::process`] calls in the same
    /// order would produce — batching is an amortization, never a
    /// semantic change. The default loops over `process`; bind-heavy or
    /// stateful modules override it to pay schema binds, plan lookups,
    /// and virtual dispatch once per batch instead of once per tuple.
    fn process_batch(&mut self, tuples: &[Tuple], out: &mut Vec<Routed>) -> Result<()> {
        out.reserve(tuples.len());
        for t in tuples {
            let r = self.process(t)?;
            out.push(r);
        }
        Ok(())
    }

    /// Window maintenance: drop internal state older than logical time
    /// `seq`. Default: stateless, nothing to do.
    fn evict_before_seq(&mut self, _seq: i64) {}

    /// Approximate retained state in tuples (for memory accounting and the
    /// out-of-core experiments). Default 0 for stateless modules.
    fn state_size(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routed_constructors() {
        assert!(Routed::pass().keep);
        assert!(Routed::pass().outputs.is_empty());
        assert!(!Routed::drop().keep);
        let r = Routed::consume_into(vec![]);
        assert!(!r.keep && r.outputs.is_empty());
    }
}
