//! The eddy-module contract.
//!
//! An eddy "continuously route\[s\] tuples among a set of other modules
//! according to a routing policy … When one of the modules processes a
//! tuple t, it can generate other tuples … and send them back to the Eddy
//! for further routing" (§2.2). [`Routed`] captures exactly that protocol.

use tcq_common::{ColumnBatch, Result, SchemaRef, Tuple};

/// Tuples a module handed "back to the Eddy for further routing".
///
/// A probe yields zero or one match far more often than many, so the
/// first output is stored inline — the empty and single-output cases
/// never touch the allocator. Only multi-match probes (or callers that
/// arrive with a pre-built buffer) spill to a heap `Vec`. Equality is by
/// sequence, not representation: `One(t)` equals `Many(vec![t])`.
#[derive(Debug, Default)]
pub enum Outputs {
    /// No tuples produced.
    #[default]
    None,
    /// Exactly one tuple, stored inline (no heap allocation).
    One(Tuple),
    /// A heap buffer of tuples (any length).
    Many(Vec<Tuple>),
}

impl Outputs {
    /// Number of output tuples.
    pub fn len(&self) -> usize {
        match self {
            Outputs::None => 0,
            Outputs::One(_) => 1,
            Outputs::Many(v) => v.len(),
        }
    }

    /// True when no tuples were produced.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The first output, if any.
    pub fn first(&self) -> Option<&Tuple> {
        match self {
            Outputs::None => None,
            Outputs::One(t) => Some(t),
            Outputs::Many(v) => v.first(),
        }
    }

    /// Append a tuple, promoting the representation as needed.
    pub fn push(&mut self, t: Tuple) {
        match std::mem::take(self) {
            Outputs::None => *self = Outputs::One(t),
            Outputs::One(a) => *self = Outputs::Many(vec![a, t]),
            Outputs::Many(mut v) => {
                v.push(t);
                *self = Outputs::Many(v);
            }
        }
    }

    /// Iterate by reference.
    pub fn iter(&self) -> OutputsIter<'_> {
        match self {
            Outputs::None => OutputsIter::One(None),
            Outputs::One(t) => OutputsIter::One(Some(t)),
            Outputs::Many(v) => OutputsIter::Many(v.iter()),
        }
    }
}

impl PartialEq for Outputs {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

/// Borrowing iterator over [`Outputs`].
pub enum OutputsIter<'a> {
    /// Inline zero-or-one case.
    One(Option<&'a Tuple>),
    /// Heap-buffer case.
    Many(std::slice::Iter<'a, Tuple>),
}

impl<'a> Iterator for OutputsIter<'a> {
    type Item = &'a Tuple;
    fn next(&mut self) -> Option<&'a Tuple> {
        match self {
            OutputsIter::One(t) => t.take(),
            OutputsIter::Many(it) => it.next(),
        }
    }
}

impl<'a> IntoIterator for &'a Outputs {
    type Item = &'a Tuple;
    type IntoIter = OutputsIter<'a>;
    fn into_iter(self) -> OutputsIter<'a> {
        self.iter()
    }
}

/// Owning iterator over [`Outputs`].
pub enum OutputsIntoIter {
    /// Inline zero-or-one case.
    One(Option<Tuple>),
    /// Heap-buffer case.
    Many(std::vec::IntoIter<Tuple>),
}

impl Iterator for OutputsIntoIter {
    type Item = Tuple;
    fn next(&mut self) -> Option<Tuple> {
        match self {
            OutputsIntoIter::One(t) => t.take(),
            OutputsIntoIter::Many(it) => it.next(),
        }
    }
}

impl IntoIterator for Outputs {
    type Item = Tuple;
    type IntoIter = OutputsIntoIter;
    fn into_iter(self) -> OutputsIntoIter {
        match self {
            Outputs::None => OutputsIntoIter::One(None),
            Outputs::One(t) => OutputsIntoIter::One(Some(t)),
            Outputs::Many(v) => OutputsIntoIter::Many(v.into_iter()),
        }
    }
}

/// What a module did with one routed tuple.
#[derive(Debug, Default)]
pub struct Routed {
    /// Whether the original tuple survives this module and should continue
    /// routing (filters: predicate held; SteM build: yes; SteM probe: no —
    /// the concatenations carry it forward).
    pub keep: bool,
    /// Newly generated tuples (join concatenations, index lookups) returned
    /// "back to the Eddy for further routing".
    pub outputs: Outputs,
}

impl Routed {
    /// The tuple passed through unchanged.
    pub fn pass() -> Routed {
        Routed {
            keep: true,
            outputs: Outputs::None,
        }
    }

    /// The tuple was filtered out or absorbed.
    pub fn drop() -> Routed {
        Routed {
            keep: false,
            outputs: Outputs::None,
        }
    }

    /// The tuple was consumed and replaced by one output (allocation-free).
    pub fn consume_one(output: Tuple) -> Routed {
        Routed {
            keep: false,
            outputs: Outputs::One(output),
        }
    }

    /// The tuple was consumed and replaced by `outputs`.
    pub fn consume_into(outputs: Vec<Tuple>) -> Routed {
        Routed {
            keep: false,
            outputs: Outputs::Many(outputs),
        }
    }
}

/// What a module did with one routed [`ColumnBatch`]
/// ([`EddyModule::process_columnar`]).
#[derive(Debug)]
pub enum ColumnarVerdict {
    /// No columnar implementation for this batch (or its column
    /// representations); the eddy must materialize rows and take the row
    /// path for this visit.
    Fallback,
    /// Every row passes unchanged (grouped filters, SteM builds).
    KeepAll,
    /// `keep` was filled with one verdict per row; the eddy compacts the
    /// batch (and any retained row mirror) by the mask.
    Filtered,
    /// The batch was consumed and replaced by a new one (SteM probes
    /// yield join concatenations).
    Consumed(ColumnBatch),
}

/// A commutative, tuple-at-a-time query module an eddy can route through.
///
/// Implementations must be cheap to call: the eddy invokes `process` once
/// per (tuple, module) visit, and routing policies time these calls to
/// estimate module costs.
pub trait EddyModule: Send {
    /// Short diagnostic name, e.g. `"sel(closingPrice>50)"`.
    fn name(&self) -> &str;

    /// Handle one routed tuple.
    fn process(&mut self, tuple: &Tuple) -> Result<Routed>;

    /// Handle a batch of tuples that share one routing decision, pushing
    /// exactly one [`Routed`] per tuple onto `out`, in order. Results must
    /// match what per-tuple [`EddyModule::process`] calls in the same
    /// order would produce — batching is an amortization, never a
    /// semantic change. The default loops over `process`; bind-heavy or
    /// stateful modules override it to pay schema binds, plan lookups,
    /// and virtual dispatch once per batch instead of once per tuple.
    fn process_batch(&mut self, tuples: &[Tuple], out: &mut Vec<Routed>) -> Result<()> {
        out.reserve(tuples.len());
        for t in tuples {
            let r = self.process(t)?;
            out.push(r);
        }
        Ok(())
    }

    /// Handle a batch of tuples in columnar form. Must be semantically
    /// identical to [`EddyModule::process_batch`] over the same rows:
    /// the surviving set, any generated tuples, and their order may not
    /// differ — vectorization is an amortization, never a semantic
    /// change. `rows` is the retained row mirror of `batch` when the
    /// eddy still holds one (ingress batches); modules that must store
    /// row tuples (SteM builds) require it and fall back otherwise.
    /// Return [`ColumnarVerdict::Fallback`] — the default — whenever
    /// row-identical behavior cannot be guaranteed for this batch, and
    /// the eddy reverts to the row path for the visit.
    fn process_columnar(
        &mut self,
        _batch: &ColumnBatch,
        _rows: Option<&[Tuple]>,
        _keep: &mut Vec<bool>,
    ) -> Result<ColumnarVerdict> {
        Ok(ColumnarVerdict::Fallback)
    }

    /// The column whose key hashes this module would consume for batches
    /// of `schema`, if any — the eddy's hint for which column to prehash
    /// into a [`ColumnBatch`]'s hash column at the ingress edge. Default:
    /// none (the module never consults batch key hashes).
    fn key_column_hint(&mut self, _schema: &SchemaRef) -> Option<usize> {
        None
    }

    /// Window maintenance: drop internal state older than logical time
    /// `seq`. Default: stateless, nothing to do.
    fn evict_before_seq(&mut self, _seq: i64) {}

    /// Approximate retained state in tuples (for memory accounting and the
    /// out-of-core experiments). Default 0 for stateless modules.
    fn state_size(&self) -> usize {
        0
    }

    /// Checkpoint export: append one `(group_hash, encoded_bytes)` pair
    /// per state group dirtied since the last
    /// [`EddyModule::clear_dirty`], each carrying the group's *full
    /// current content* (zero tuples = the group was emptied). Must NOT
    /// clear the dirty set — the caller does that only after the delta is
    /// durably committed. Encoding is module-private; the matching
    /// [`EddyModule::import_group`] decodes it. Default: stateless,
    /// nothing to export.
    fn export_dirty_groups(&mut self, _out: &mut Vec<(u64, Vec<u8>)>) -> Result<()> {
        Ok(())
    }

    /// Checkpoint restore: replace the state group keyed by `hash` with
    /// the content encoded in `bytes` (produced by this module type's
    /// [`EddyModule::export_dirty_groups`]). Default errors: a stateless
    /// module receiving a fragment means the restore was misrouted.
    fn import_group(&mut self, _hash: u64, _bytes: &[u8]) -> Result<()> {
        Err(tcq_common::TcqError::Executor(format!(
            "module {} has no checkpointable state to import",
            self.name()
        )))
    }

    /// Number of groups currently dirty (pending export). Default 0.
    fn dirty_len(&self) -> usize {
        0
    }

    /// Mark all state clean — call only after a successful durable commit
    /// of the exported delta. Default: nothing to clear.
    fn clear_dirty(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routed_constructors() {
        assert!(Routed::pass().keep);
        assert!(Routed::pass().outputs.is_empty());
        assert!(!Routed::drop().keep);
        let r = Routed::consume_into(vec![]);
        assert!(!r.keep && r.outputs.is_empty());
    }

    #[test]
    fn outputs_equality_is_by_sequence_not_representation() {
        use tcq_common::{DataType, Field, Schema, TupleBuilder};
        let s = Schema::new(vec![Field::new("x", DataType::Int)]).into_ref();
        let t = TupleBuilder::new(s).push(1i64).build().unwrap();
        let one = Outputs::One(t.clone());
        let many = Outputs::Many(vec![t.clone()]);
        assert_eq!(one, many);
        assert_ne!(one, Outputs::None);
        assert_eq!(Outputs::None, Outputs::Many(vec![]));
        let mut grown = Outputs::None;
        grown.push(t.clone());
        assert_eq!(grown, one);
        grown.push(t.clone());
        assert_eq!(grown.len(), 2);
        assert_eq!(grown.iter().count(), 2);
        assert_eq!(grown.into_iter().count(), 2);
    }
}
