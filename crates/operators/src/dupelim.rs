//! Duplicate elimination as a windowed eddy module.

use std::collections::HashMap;
use std::collections::VecDeque;

use tcq_common::{Result, Tuple, Value};

use crate::module::{EddyModule, Routed};

/// Passes only the first occurrence of each distinct value vector within
/// the active window; later duplicates are dropped.
///
/// State is evictable: each distinct key remembers how many live copies are
/// in the window so that eviction re-admits values that fully aged out.
pub struct DupElimOp {
    name: String,
    seen: HashMap<Vec<Value>, usize>,
    arrivals: VecDeque<(i64, Vec<Value>)>,
}

impl DupElimOp {
    /// A fresh duplicate eliminator.
    pub fn new(name: impl Into<String>) -> Self {
        DupElimOp {
            name: name.into(),
            seen: HashMap::new(),
            arrivals: VecDeque::new(),
        }
    }

    /// Distinct values currently tracked.
    pub fn distinct(&self) -> usize {
        self.seen.len()
    }
}

impl EddyModule for DupElimOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, tuple: &Tuple) -> Result<Routed> {
        let key: Vec<Value> = tuple.values().to_vec();
        let count = self.seen.entry(key.clone()).or_insert(0);
        let first = *count == 0;
        *count += 1;
        self.arrivals.push_back((tuple.timestamp().seq(), key));
        Ok(if first {
            Routed::pass()
        } else {
            Routed::drop()
        })
    }

    fn evict_before_seq(&mut self, seq: i64) {
        while let Some((s, _)) = self.arrivals.front() {
            if *s >= seq {
                break;
            }
            let (_, key) = self.arrivals.pop_front().expect("front checked");
            if let Some(count) = self.seen.get_mut(&key) {
                *count -= 1;
                if *count == 0 {
                    self.seen.remove(&key);
                }
            }
        }
    }

    fn state_size(&self) -> usize {
        self.arrivals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{DataType, Field, Schema, SchemaRef, Timestamp, TupleBuilder};

    fn schema() -> SchemaRef {
        Schema::new(vec![Field::new("x", DataType::Int)]).into_ref()
    }

    fn t(x: i64, ts: i64) -> Tuple {
        TupleBuilder::new(schema())
            .push(x)
            .at(Timestamp::logical(ts))
            .build()
            .unwrap()
    }

    #[test]
    fn first_passes_duplicates_drop() {
        let mut op = DupElimOp::new("distinct");
        assert!(op.process(&t(1, 1)).unwrap().keep);
        assert!(!op.process(&t(1, 2)).unwrap().keep);
        assert!(op.process(&t(2, 3)).unwrap().keep);
        assert_eq!(op.distinct(), 2);
    }

    #[test]
    fn eviction_readmits_aged_out_values() {
        let mut op = DupElimOp::new("distinct");
        op.process(&t(1, 1)).unwrap();
        op.process(&t(1, 2)).unwrap();
        // Evict ts < 3: both copies of value 1 age out.
        op.evict_before_seq(3);
        assert_eq!(op.distinct(), 0);
        assert!(
            op.process(&t(1, 5)).unwrap().keep,
            "re-admitted after aging out"
        );
    }

    #[test]
    fn partial_eviction_keeps_suppressing() {
        let mut op = DupElimOp::new("distinct");
        op.process(&t(1, 1)).unwrap();
        op.process(&t(1, 5)).unwrap();
        // Only the first copy ages out; a live copy remains in-window.
        op.evict_before_seq(3);
        assert!(!op.process(&t(1, 6)).unwrap().keep);
    }
}
