//! Selection modules: single-predicate filters and CACQ grouped filters.

use tcq_common::{
    BitSet, CmpOp, ColumnBatch, ColumnData, ColumnarScratch, Expr, Predicate, Result, SchemaRef,
    TcqError, Tuple, Value,
};
use tcq_stems::GroupedFilter;

use crate::module::ColumnarVerdict;

/// A pipelined selection: passes tuples satisfying a predicate.
///
/// An eddy may route tuples of *several* schemas through the same filter —
/// a filter on `S.x` applies to base `S` tuples and to any join output
/// containing `S` columns, whose column order depends on which side probed.
/// The op therefore keeps the unbound predicate and a per-schema
/// [`Predicate`] cache (schemas are interned by `Arc` pointer, so the
/// cache hit is one hash probe). Each cached predicate is a compiled
/// kernel when the expression's shape allows it, falling back to the
/// tree-walking interpreter otherwise — see [`tcq_common::kernel`].
///
/// An optional artificial cost (in "work units" of busy looping) lets
/// experiments reproduce the expensive-predicate scenarios of the eddies
/// paper \[AH00\], where operator costs differ by orders of magnitude.
pub struct SelectOp {
    name: String,
    pred: Expr,
    bound: std::collections::HashMap<usize, Predicate>,
    cost_units: u64,
    compiled_kernels: bool,
    /// Lane buffers reused across columnar batches.
    scratch: ColumnarScratch,
}

impl SelectOp {
    /// Build from an unbound predicate; `schema` is the primary input
    /// schema, bound eagerly so construction surfaces name errors.
    pub fn new(name: impl Into<String>, pred: &Expr, schema: &SchemaRef) -> Result<Self> {
        let mut bound = std::collections::HashMap::new();
        bound.insert(
            std::sync::Arc::as_ptr(schema) as usize,
            Predicate::new(pred, schema, true)?,
        );
        Ok(SelectOp {
            name: name.into(),
            pred: pred.clone(),
            bound,
            cost_units: 0,
            compiled_kernels: true,
            scratch: ColumnarScratch::new(),
        })
    }

    /// Add an artificial per-tuple cost (busy-loop iterations), for
    /// reproducing expensive-operator workloads.
    pub fn with_cost_units(mut self, units: u64) -> Self {
        self.cost_units = units;
        self
    }

    /// Enable or disable kernel compilation (default on). Disabling
    /// re-lowers any cached bindings onto the interpreter, so A/B
    /// experiments measure the old tree-walking path faithfully.
    pub fn with_compiled_kernels(mut self, enabled: bool) -> Self {
        if self.compiled_kernels != enabled {
            self.compiled_kernels = enabled;
            // Cached entries were lowered under the old flag; rebuilding
            // lazily is safe because each schema already bound once.
            self.bound.clear();
        }
        self
    }

    /// True when the predicate bound to `schema` runs as a compiled kernel.
    pub fn is_compiled_for(&self, schema: &SchemaRef) -> bool {
        self.bound
            .get(&(std::sync::Arc::as_ptr(schema) as usize))
            .is_some_and(|p| p.is_compiled())
    }

    /// Evaluate the predicate against a tuple of any schema the predicate
    /// binds to.
    pub fn matches(&mut self, tuple: &Tuple) -> Result<bool> {
        burn(self.cost_units);
        let key = std::sync::Arc::as_ptr(tuple.schema()) as usize;
        if !self.bound.contains_key(&key) {
            let p = Predicate::new(&self.pred, tuple.schema(), self.compiled_kernels)?;
            self.bound.insert(key, p);
        }
        self.bound[&key].eval_pred(tuple)
    }
}

impl crate::module::EddyModule for SelectOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, tuple: &Tuple) -> Result<crate::module::Routed> {
        Ok(if self.matches(tuple)? {
            crate::module::Routed::pass()
        } else {
            crate::module::Routed::drop()
        })
    }

    /// Batch filter: the artificial cost is burned once for the whole
    /// batch (same total work) and each distinct schema is bound once,
    /// with consecutive same-schema tuples sharing the cached binding —
    /// the common case, since eddy batches share a lineage signature.
    fn process_batch(
        &mut self,
        tuples: &[Tuple],
        out: &mut Vec<crate::module::Routed>,
    ) -> Result<()> {
        burn(self.cost_units.saturating_mul(tuples.len() as u64));
        for t in tuples {
            let key = std::sync::Arc::as_ptr(t.schema()) as usize;
            if !self.bound.contains_key(&key) {
                let p = Predicate::new(&self.pred, t.schema(), self.compiled_kernels)?;
                self.bound.insert(key, p);
            }
        }
        out.reserve(tuples.len());
        let mut cached: Option<(usize, &Predicate)> = None;
        for t in tuples {
            let key = std::sync::Arc::as_ptr(t.schema()) as usize;
            let bound = match cached {
                Some((k, b)) if k == key => b,
                _ => {
                    let b = &self.bound[&key];
                    cached = Some((key, b));
                    b
                }
            };
            out.push(if bound.eval_pred(t)? {
                crate::module::Routed::pass()
            } else {
                crate::module::Routed::drop()
            });
        }
        Ok(())
    }

    /// Columnar filter: one vectorized predicate pass over the whole
    /// batch. Claims the batch only when the bound predicate is a
    /// compiled kernel whose opcodes are all lane-compatible with the
    /// batch's column representations (see [`Predicate::eval_columns`]);
    /// anything else falls back to the row path, which burns the
    /// artificial cost itself.
    fn process_columnar(
        &mut self,
        batch: &ColumnBatch,
        _rows: Option<&[Tuple]>,
        keep: &mut Vec<bool>,
    ) -> Result<ColumnarVerdict> {
        let key = std::sync::Arc::as_ptr(batch.schema()) as usize;
        if !self.bound.contains_key(&key) {
            let p = Predicate::new(&self.pred, batch.schema(), self.compiled_kernels)?;
            self.bound.insert(key, p);
        }
        if self.bound[&key].eval_columns(batch, &mut self.scratch, keep) {
            burn(self.cost_units.saturating_mul(batch.len() as u64));
            Ok(ColumnarVerdict::Filtered)
        } else {
            Ok(ColumnarVerdict::Fallback)
        }
    }
}

/// Spin for roughly `units` cheap iterations; the compiler cannot elide it.
#[inline]
pub(crate) fn burn(units: u64) {
    let mut acc = 0u64;
    for i in 0..units {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        std::hint::black_box(acc);
    }
}

/// A CACQ grouped-filter module: evaluates the single-column factors of
/// *many* queries in one pass over each tuple (§3.1).
///
/// `process` passes every tuple (shared processing cannot drop a tuple any
/// single query still needs — that decision belongs to the eddy's lineage
/// logic); callers use [`GroupedFilterOp::matching`] to learn which factors
/// a tuple satisfied.
pub struct GroupedFilterOp {
    name: String,
    column: usize,
    filter: GroupedFilter,
    /// Scratch reused across calls; taken by `matching`.
    last_matches: BitSet,
    /// Per-tuple match sets from the last `process_batch` call (buffers
    /// reused across batches).
    batch_matches: Vec<BitSet>,
}

impl GroupedFilterOp {
    /// A grouped filter over `column` of the stream schema.
    pub fn new(name: impl Into<String>, schema: &SchemaRef, column: usize) -> Result<Self> {
        if column >= schema.len() {
            return Err(TcqError::SchemaMismatch(format!(
                "grouped filter column {column} out of range for {schema}"
            )));
        }
        Ok(GroupedFilterOp {
            name: name.into(),
            column,
            filter: GroupedFilter::new(),
            last_matches: BitSet::new(),
            batch_matches: Vec::new(),
        })
    }

    /// Register a factor (see [`GroupedFilter::insert`]).
    pub fn insert_factor(&mut self, id: usize, op: CmpOp, constant: Value) -> Result<()> {
        self.filter.insert(id, op, constant)
    }

    /// Remove a factor.
    pub fn remove_factor(&mut self, id: usize) {
        self.filter.remove(id);
    }

    /// All registered factor ids.
    pub fn owners(&self) -> &BitSet {
        self.filter.owners()
    }

    /// Factors satisfied by the most recently processed tuple.
    pub fn matching(&self) -> &BitSet {
        &self.last_matches
    }

    /// Per-tuple factor matches from the most recent `process_batch`
    /// call, one `BitSet` per tuple in batch order.
    pub fn batch_matching(&self) -> &[BitSet] {
        &self.batch_matches
    }

    /// Probe without going through the module interface.
    pub fn eval(&self, value: &Value, out: &mut BitSet) {
        self.filter.eval(value, out);
    }

    /// Approximate heap footprint of the underlying grouped filter plus the
    /// reusable per-tuple/per-batch match scratch, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.filter.approx_bytes()
            + self.last_matches.approx_bytes()
            + self
                .batch_matches
                .iter()
                .map(|b| b.approx_bytes())
                .sum::<usize>()
            + self.batch_matches.capacity() * std::mem::size_of::<BitSet>()
    }
}

impl crate::module::EddyModule for GroupedFilterOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, tuple: &Tuple) -> Result<crate::module::Routed> {
        self.last_matches.clear();
        self.filter
            .eval(tuple.value(self.column), &mut self.last_matches);
        Ok(crate::module::Routed::pass())
    }

    /// Batch grouped filter: one pass fills a per-tuple match set
    /// (exposed via [`GroupedFilterOp::batch_matching`]); `matching()`
    /// afterwards reflects the batch's last tuple, as if the batch had
    /// been processed tuple-at-a-time.
    fn process_batch(
        &mut self,
        tuples: &[Tuple],
        out: &mut Vec<crate::module::Routed>,
    ) -> Result<()> {
        self.batch_matches.resize_with(tuples.len(), BitSet::new);
        out.reserve(tuples.len());
        for (t, m) in tuples.iter().zip(self.batch_matches.iter_mut()) {
            m.clear();
            self.filter.eval(t.value(self.column), m);
            out.push(crate::module::Routed::pass());
        }
        if let Some(last) = self.batch_matches.last() {
            self.last_matches.clear();
            self.last_matches.union_with(last);
        }
        Ok(())
    }

    /// Columnar grouped filter: probes the factor index straight off the
    /// filter column without materializing rows. Typed numeric/bool cells
    /// reconstruct stack `Value`s for free; `Str` arenas would need a
    /// fresh `Arc<str>` per row, so string columns fall back to the row
    /// path (whose tuples already share the `Arc`).
    fn process_columnar(
        &mut self,
        batch: &ColumnBatch,
        _rows: Option<&[Tuple]>,
        _keep: &mut Vec<bool>,
    ) -> Result<ColumnarVerdict> {
        if self.column >= batch.schema().len() {
            return Ok(ColumnarVerdict::Fallback);
        }
        let col = batch.column(self.column);
        if matches!(col.data(), ColumnData::Str { .. }) {
            return Ok(ColumnarVerdict::Fallback);
        }
        self.batch_matches.resize_with(batch.len(), BitSet::new);
        for (row, m) in self.batch_matches.iter_mut().enumerate() {
            m.clear();
            self.filter.eval(&col.value(row), m);
        }
        if let Some(last) = self.batch_matches.last() {
            self.last_matches.clear();
            self.last_matches.union_with(last);
        }
        Ok(ColumnarVerdict::KeepAll)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::EddyModule;
    use tcq_common::{DataType, Field, Schema, Timestamp, TupleBuilder};

    fn schema() -> SchemaRef {
        Schema::qualified(
            "s",
            vec![
                Field::new("sym", DataType::Str),
                Field::new("price", DataType::Float),
            ],
        )
        .into_ref()
    }

    fn tick(sym: &str, price: f64) -> Tuple {
        TupleBuilder::new(schema())
            .push(sym)
            .push(price)
            .at(Timestamp::logical(1))
            .build()
            .unwrap()
    }

    #[test]
    fn select_passes_and_drops() {
        let pred = Expr::col("price").cmp(CmpOp::Gt, Expr::lit(50.0));
        let mut op = SelectOp::new("sel", &pred, &schema()).unwrap();
        assert!(op.process(&tick("MSFT", 60.0)).unwrap().keep);
        assert!(!op.process(&tick("MSFT", 40.0)).unwrap().keep);
    }

    #[test]
    fn select_binding_fails_on_bad_column() {
        let pred = Expr::col("nope").cmp(CmpOp::Gt, Expr::lit(1i64));
        assert!(SelectOp::new("sel", &pred, &schema()).is_err());
    }

    #[test]
    fn grouped_filter_op_tracks_last_matches() {
        let mut op = GroupedFilterOp::new("gf(price)", &schema(), 1).unwrap();
        op.insert_factor(0, CmpOp::Gt, Value::Float(50.0)).unwrap();
        op.insert_factor(1, CmpOp::Lt, Value::Float(50.0)).unwrap();
        let r = op.process(&tick("MSFT", 60.0)).unwrap();
        assert!(r.keep); // grouped filters never drop
        assert_eq!(op.matching().iter().collect::<Vec<_>>(), vec![0]);
        op.process(&tick("MSFT", 40.0)).unwrap();
        assert_eq!(op.matching().iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn grouped_filter_bad_column_rejected() {
        assert!(GroupedFilterOp::new("gf", &schema(), 9).is_err());
    }

    #[test]
    fn select_batch_matches_per_tuple_results() {
        let pred = Expr::col("price").cmp(CmpOp::Gt, Expr::lit(50.0));
        let tuples: Vec<Tuple> = (0..20)
            .map(|i| tick("MSFT", 40.0 + 1.01 * i as f64))
            .collect();
        let mut per = SelectOp::new("sel", &pred, &schema()).unwrap();
        let expect: Vec<bool> = tuples
            .iter()
            .map(|t| per.process(t).unwrap().keep)
            .collect();
        let mut batched = SelectOp::new("sel", &pred, &schema()).unwrap();
        let mut out = Vec::new();
        batched.process_batch(&tuples, &mut out).unwrap();
        assert_eq!(out.iter().map(|r| r.keep).collect::<Vec<_>>(), expect);
    }

    #[test]
    fn grouped_filter_batch_exposes_per_tuple_matches() {
        let mut op = GroupedFilterOp::new("gf(price)", &schema(), 1).unwrap();
        op.insert_factor(0, CmpOp::Gt, Value::Float(50.0)).unwrap();
        op.insert_factor(1, CmpOp::Lt, Value::Float(50.0)).unwrap();
        let tuples = vec![tick("A", 60.0), tick("B", 40.0), tick("C", 70.0)];
        let mut out = Vec::new();
        op.process_batch(&tuples, &mut out).unwrap();
        assert!(out.iter().all(|r| r.keep));
        let per_tuple: Vec<Vec<usize>> = op
            .batch_matching()
            .iter()
            .map(|m| m.iter().collect())
            .collect();
        assert_eq!(per_tuple, vec![vec![0], vec![1], vec![0]]);
        // matching() reflects the batch's last tuple.
        assert_eq!(op.matching().iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn compiled_and_interpreted_select_agree() {
        let s = schema();
        let pred = Expr::col("price")
            .cmp(CmpOp::Gt, Expr::lit(50.0))
            .and(Expr::col("sym").cmp(CmpOp::Ne, Expr::lit("HALT")));
        let mut compiled = SelectOp::new("sel", &pred, &s).unwrap();
        assert!(compiled.is_compiled_for(&s));
        let mut interp = SelectOp::new("sel", &pred, &s)
            .unwrap()
            .with_compiled_kernels(false);
        let mut rng = tcq_common::rng::seeded(0x5E1E);
        for i in 0..300 {
            let sym = ["MSFT", "HALT"][rng.gen_range(0..2usize)];
            let t = TupleBuilder::new(s.clone())
                .push(sym)
                .push(rng.gen_range(0.0..100.0))
                .at(Timestamp::logical(i))
                .build()
                .unwrap();
            assert_eq!(
                compiled.matches(&t).unwrap(),
                interp.matches(&t).unwrap(),
                "divergence on {t:?}"
            );
        }
        assert!(!interp.is_compiled_for(&s));
    }

    #[test]
    fn columnar_select_matches_row_path() {
        let pred = Expr::col("price")
            .cmp(CmpOp::Gt, Expr::lit(50.0))
            .and(Expr::col("sym").cmp(CmpOp::Ne, Expr::lit("HALT")));
        let mut rng = tcq_common::rng::seeded(0xC0_5E1E);
        let tuples: Vec<Tuple> = (0..200)
            .map(|_| {
                let sym = ["MSFT", "HALT"][rng.gen_range(0..2usize)];
                tick(sym, rng.gen_range(0.0..100.0))
            })
            .collect();
        let mut per = SelectOp::new("sel", &pred, &schema()).unwrap();
        let expect: Vec<bool> = tuples
            .iter()
            .map(|t| per.process(t).unwrap().keep)
            .collect();
        let batch = ColumnBatch::from_tuples(schema(), &tuples, None);
        let mut columnar = SelectOp::new("sel", &pred, &schema()).unwrap();
        let mut keep = Vec::new();
        match columnar.process_columnar(&batch, None, &mut keep).unwrap() {
            ColumnarVerdict::Filtered => {}
            v => panic!("compiled predicate over typed columns must claim the batch, got {v:?}"),
        }
        assert_eq!(keep, expect);
        // The interpreter has no columnar lowering: fall back to rows.
        let mut interp = SelectOp::new("sel", &pred, &schema())
            .unwrap()
            .with_compiled_kernels(false);
        keep.clear();
        assert!(matches!(
            interp.process_columnar(&batch, None, &mut keep).unwrap(),
            ColumnarVerdict::Fallback
        ));
    }

    #[test]
    fn columnar_grouped_filter_matches_row_path() {
        let mut rng = tcq_common::rng::seeded(0xC0_6F17);
        let tuples: Vec<Tuple> = (0..100)
            .map(|_| tick("X", rng.gen_range(0.0..100.0)))
            .collect();
        let mk = || {
            let mut op = GroupedFilterOp::new("gf(price)", &schema(), 1).unwrap();
            op.insert_factor(0, CmpOp::Gt, Value::Float(50.0)).unwrap();
            op.insert_factor(1, CmpOp::Lt, Value::Float(50.0)).unwrap();
            op.insert_factor(2, CmpOp::Le, Value::Float(75.0)).unwrap();
            op
        };
        let mut row = mk();
        let mut out = Vec::new();
        row.process_batch(&tuples, &mut out).unwrap();
        let expect: Vec<Vec<usize>> = row
            .batch_matching()
            .iter()
            .map(|m| m.iter().collect())
            .collect();
        let batch = ColumnBatch::from_tuples(schema(), &tuples, None);
        let mut col = mk();
        match col.process_columnar(&batch, None, &mut Vec::new()).unwrap() {
            ColumnarVerdict::KeepAll => {}
            v => panic!("grouped filters pass every tuple, got {v:?}"),
        }
        let got: Vec<Vec<usize>> = col
            .batch_matching()
            .iter()
            .map(|m| m.iter().collect())
            .collect();
        assert_eq!(got, expect);
        assert_eq!(
            col.matching().iter().collect::<Vec<_>>(),
            row.matching().iter().collect::<Vec<_>>(),
            "matching() reflects the batch's last tuple either way"
        );
        // String filter columns fall back (cell reconstruction would
        // allocate an Arc per row).
        let mut on_sym = GroupedFilterOp::new("gf(sym)", &schema(), 0).unwrap();
        on_sym.insert_factor(0, CmpOp::Eq, Value::str("X")).unwrap();
        assert!(matches!(
            on_sym
                .process_columnar(&batch, None, &mut Vec::new())
                .unwrap(),
            ColumnarVerdict::Fallback
        ));
    }

    #[test]
    fn cost_units_burn_without_changing_semantics() {
        let pred = Expr::col("price").cmp(CmpOp::Gt, Expr::lit(50.0));
        let mut op = SelectOp::new("sel", &pred, &schema())
            .unwrap()
            .with_cost_units(1000);
        assert!(op.process(&tick("MSFT", 60.0)).unwrap().keep);
    }
}
