//! The SteM as an eddy module: build tuples in, concatenated matches out.
//!
//! Paper Figure 2: "When an S tuple arrives, it is first sent as a build
//! tuple to SteM_S and then sent as a probe tuple to SteM_T. ST matches
//! produced from either SteM are routed to the output. This routing,
//! combined with hash indexes on the two SteMs, implements an adaptive
//! symmetric hash join."
//!
//! A [`StemOp`] wraps one SteM. It decides build-vs-probe per the paper's
//! definition: a tuple *t ∈ T* (same footprint as the stored side) is a
//! build tuple; a tuple *p ∉ T* is a probe tuple and yields the
//! concatenations `{p} ⋈ SteM_T`. Because join output schemas depend on the
//! probing tuple's schema, the op caches a per-schema probe plan.

use std::collections::HashMap;
use std::sync::Arc;

use tcq_common::{
    CkptReader, CkptWriter, ColumnBatch, ColumnData, Result, Schema, SchemaRef, TcqError, Tuple,
    Value,
};
use tcq_stems::{IndexKind, SteM};

use crate::module::{ColumnarVerdict, EddyModule, Outputs, Routed};

/// Cached plan for probing with tuples of one schema.
struct ProbePlan {
    /// Column in the probing tuple whose value keys the probe.
    key_col: usize,
    /// Schema of `probe ⋈ stored` outputs.
    joined: SchemaRef,
}

/// One State Module wrapped as an eddy module.
pub struct StemOp {
    name: String,
    stem: SteM,
    /// Qualifier identifying build tuples (e.g. the stream alias).
    build_qualifier: String,
    /// Candidate probe-key columns, tried in order against each probing
    /// schema. Multiple candidates let one SteM serve several probing
    /// sources in multiway joins (an RS intermediate can probe SteM_T via
    /// `R.k` or `S.k`; after the equi-join they are equal).
    probe_keys: Vec<(Option<String>, String)>,
    /// Probe plans keyed by schema identity.
    plans: HashMap<usize, ProbePlan>,
    /// Optional sliding-window width in logical time; tuples older than
    /// (latest - width) are evicted on insert.
    window_width: Option<i64>,
    latest_seq: i64,
    /// When set (the default), probes reuse the tuple's memoized key hash
    /// via [`SteM::probe_eq_hashed`]; when clear, every probe hashes its
    /// key afresh (the pre-kernel behaviour, kept for A/B experiments).
    prehash: bool,
    /// Probe-match scratch reused across calls — probing allocates no
    /// fresh buffer per tuple.
    match_scratch: Vec<Tuple>,
}

impl StemOp {
    /// Create a SteM module.
    ///
    /// * `build_qualifier` — tuples whose schema is qualified solely by this
    ///   name are stored (build); everything else probes.
    /// * `build_key` — indexed column of the stored schema.
    /// * `probe_key` — `(qualifier, column)` to read from probing tuples;
    ///   the qualifier defaults to searching unambiguously by name. For
    ///   multiway joins use [`StemOp::with_extra_probe_key`] to add
    ///   fallbacks.
    pub fn new(
        name: impl Into<String>,
        stored_schema: SchemaRef,
        build_qualifier: impl Into<String>,
        build_key: usize,
        probe_key: (Option<String>, String),
        index: IndexKind,
    ) -> Result<Self> {
        let name = name.into();
        let stem = SteM::new(name.clone(), stored_schema, build_key, index)?;
        Ok(StemOp {
            name,
            stem,
            build_qualifier: build_qualifier.into(),
            probe_keys: vec![probe_key],
            plans: HashMap::new(),
            window_width: None,
            latest_seq: i64::MIN,
            prehash: true,
            match_scratch: Vec::new(),
        })
    }

    /// Enable or disable the prehashed probe path (default on). Off, each
    /// probe recomputes its key hash — the per-site hashing the engine did
    /// before key hashes were memoized on tuples.
    pub fn with_prehash(mut self, enabled: bool) -> Self {
        self.prehash = enabled;
        self
    }

    /// Add a fallback probe-key spec, tried when earlier specs do not
    /// resolve against a probing tuple's schema.
    pub fn with_extra_probe_key(mut self, probe_key: (Option<String>, String)) -> Self {
        self.probe_keys.push(probe_key);
        self
    }

    /// Bound the SteM to a sliding window of `width` logical time units;
    /// state older than the newest build's timestamp minus `width` is
    /// evicted automatically.
    pub fn with_window_width(mut self, width: i64) -> Self {
        self.window_width = Some(width);
        self
    }

    /// Is `tuple` a build tuple for this SteM? True when its schema is
    /// qualified entirely by our build qualifier (i.e. it is a base tuple of
    /// the stored stream, not an intermediate join result).
    fn is_build(&self, tuple: &Tuple) -> bool {
        self.is_build_schema(tuple.schema())
    }

    /// Schema-level build test: batches are schema-homogeneous, so one
    /// check covers every row.
    fn is_build_schema(&self, schema: &SchemaRef) -> bool {
        schema.len() == self.stem.schema().len()
            && (0..schema.len()).all(|i| {
                schema
                    .qualifier(i)
                    .eq_ignore_ascii_case(&self.build_qualifier)
            })
    }

    fn probe_plan(&mut self, schema: &SchemaRef) -> Result<&ProbePlan> {
        let key = Arc::as_ptr(schema) as usize;
        if !self.plans.contains_key(&key) {
            let mut resolved = None;
            let mut last_err = None;
            for (q, name) in &self.probe_keys {
                match schema.index_of(q.as_deref(), name) {
                    Ok(col) => {
                        resolved = Some(col);
                        break;
                    }
                    Err(e) => last_err = Some(e),
                }
            }
            let key_col = match resolved {
                Some(c) => c,
                None => {
                    return Err(
                        last_err.unwrap_or_else(|| TcqError::Analysis("no probe key spec".into()))
                    )
                }
            };
            let joined: SchemaRef = Arc::new(Schema::concat(schema, self.stem.schema()));
            self.plans.insert(key, ProbePlan { key_col, joined });
        }
        Ok(&self.plans[&key])
    }

    /// Direct probe access (used by hybrid-join experiments to compare the
    /// SteM against the remote index on identical keys).
    pub fn probe(&mut self, key: &Value, out: &mut Vec<Tuple>) -> usize {
        self.stem.probe_eq(key, out)
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.stem.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.stem.is_empty()
    }

    /// (builds, probes, matches) counters from the underlying SteM.
    pub fn counters(&self) -> (u64, u64, u64) {
        self.stem.counters()
    }

    /// Key-hash computations the underlying SteM has performed (memo hits
    /// are free) — the observable behind the hashed-exactly-once tests.
    pub fn hash_computes(&self) -> u64 {
        self.stem.hash_computes()
    }

    /// Drain all stored tuples (Flux state movement).
    pub fn drain_all(&mut self) -> Vec<Tuple> {
        self.stem.drain_all()
    }

    /// Re-insert tuples previously drained from a peer partition.
    pub fn absorb(&mut self, tuples: Vec<Tuple>) -> Result<()> {
        for t in tuples {
            self.stem.insert(t)?;
        }
        Ok(())
    }

    /// Probe with `tuple`'s key column into the reusable scratch buffer.
    /// On the prehash path the tuple's memoized key hash (computed at most
    /// once in its lifetime, possibly upstream at the partitioner) feeds
    /// the hashed index directly.
    fn probe_into_scratch(&mut self, tuple: &Tuple, key_col: usize) {
        self.match_scratch.clear();
        if self.prehash {
            let hash = tuple.key_hash(key_col);
            self.stem
                .probe_eq_hashed(hash, tuple.value(key_col), &mut self.match_scratch);
        } else {
            self.stem
                .probe_eq(tuple.value(key_col), &mut self.match_scratch);
        }
    }

    /// Concatenate the scratch matches with `tuple` into join outputs. On
    /// the recycling (prehash) path the empty and single-match cases use
    /// [`Outputs`]' inline representation and never allocate an output
    /// buffer; the legacy path keeps the pre-kernel one-`Vec`-per-probe
    /// shape for honest A/B allocation accounting.
    fn concat_scratch(&self, tuple: &Tuple, joined: &SchemaRef) -> Outputs {
        if self.prehash {
            match self.match_scratch.as_slice() {
                [] => Outputs::None,
                [stored] => Outputs::One(tuple.concat(stored, joined.clone())),
                many => Outputs::Many(
                    many.iter()
                        .map(|stored| tuple.concat(stored, joined.clone()))
                        .collect(),
                ),
            }
        } else {
            Outputs::Many(
                self.match_scratch
                    .iter()
                    .map(|stored| tuple.concat(stored, joined.clone()))
                    .collect(),
            )
        }
    }
}

impl EddyModule for StemOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, tuple: &Tuple) -> Result<Routed> {
        if self.is_build(tuple) {
            let seq = tuple.timestamp().seq();
            self.latest_seq = self.latest_seq.max(seq);
            self.stem.insert(tuple.clone())?;
            if let Some(w) = self.window_width {
                self.stem.evict_before_seq(self.latest_seq - w + 1);
            }
            // Build tuples continue routing ("first sent as a build tuple to
            // SteM_S and then sent as a probe tuple to SteM_T").
            return Ok(Routed::pass());
        }
        // Probe.
        let (key_col, joined) = {
            let plan = self.probe_plan(tuple.schema())?;
            (plan.key_col, plan.joined.clone())
        };
        self.probe_into_scratch(tuple, key_col);
        let outputs = self.concat_scratch(tuple, &joined);
        Ok(Routed {
            keep: false,
            outputs,
        })
    }

    /// Batch SteM visit. Tuples are handled strictly in batch order —
    /// builds insert (and window-evict) exactly as the per-tuple path
    /// does, so probes later in the same batch observe identical state —
    /// but consecutive probes of one schema share a single plan lookup
    /// and one reusable matches buffer, and the probe key is borrowed
    /// rather than cloned.
    fn process_batch(&mut self, tuples: &[Tuple], out: &mut Vec<Routed>) -> Result<()> {
        out.reserve(tuples.len());
        let mut plan: Option<(usize, usize, SchemaRef)> = None;
        for tuple in tuples {
            if self.is_build(tuple) {
                let seq = tuple.timestamp().seq();
                self.latest_seq = self.latest_seq.max(seq);
                self.stem.insert(tuple.clone())?;
                if let Some(w) = self.window_width {
                    self.stem.evict_before_seq(self.latest_seq - w + 1);
                }
                out.push(Routed::pass());
                continue;
            }
            let key = Arc::as_ptr(tuple.schema()) as usize;
            let (key_col, joined) = match &plan {
                Some((k, col, j)) if *k == key => (*col, j.clone()),
                _ => {
                    let p = self.probe_plan(tuple.schema())?;
                    let cached = (p.key_col, p.joined.clone());
                    plan = Some((key, cached.0, cached.1.clone()));
                    cached
                }
            };
            self.probe_into_scratch(tuple, key_col);
            let outputs = self.concat_scratch(tuple, &joined);
            out.push(Routed {
                keep: false,
                outputs,
            });
        }
        Ok(())
    }

    /// Columnar SteM visit. Builds need the retained row mirror (the SteM
    /// stores row tuples) and pass every row through; probes feed the
    /// batch's memoized hash column straight into the hashed index and
    /// emit join concatenations as a new columnar batch — probe columns
    /// flat-copied, stored values appended, in exactly the row path's
    /// (probe-first, stored-second, slot-order) sequence. Falls back when
    /// the batch carries no hash column for the plan's key, when prehash
    /// is off (the legacy A/B path stays row-shaped), or when probe keys
    /// are strings (reconstructing an `Arc<str>` per key would allocate).
    fn process_columnar(
        &mut self,
        batch: &ColumnBatch,
        rows: Option<&[Tuple]>,
        _keep: &mut Vec<bool>,
    ) -> Result<ColumnarVerdict> {
        if batch.is_empty() {
            return Ok(ColumnarVerdict::KeepAll);
        }
        if self.is_build_schema(batch.schema()) {
            let Some(rows) = rows else {
                return Ok(ColumnarVerdict::Fallback);
            };
            for tuple in rows {
                let seq = tuple.timestamp().seq();
                self.latest_seq = self.latest_seq.max(seq);
                self.stem.insert(tuple.clone())?;
                if let Some(w) = self.window_width {
                    self.stem.evict_before_seq(self.latest_seq - w + 1);
                }
            }
            return Ok(ColumnarVerdict::KeepAll);
        }
        if !self.prehash {
            return Ok(ColumnarVerdict::Fallback);
        }
        let (key_col, joined) = {
            let plan = self.probe_plan(batch.schema())?;
            (plan.key_col, plan.joined.clone())
        };
        let hashes = match batch.key_hashes() {
            Some((col, hashes)) if col == key_col => hashes,
            _ => return Ok(ColumnarVerdict::Fallback),
        };
        let key_column = batch.column(key_col);
        if matches!(key_column.data(), ColumnData::Str { .. }) {
            return Ok(ColumnarVerdict::Fallback);
        }
        // Size the concat batch for the common one-match-per-probe case;
        // high-fanout joins grow it amortized from there.
        let mut out = ColumnBatch::with_capacity(joined, batch.len());
        for (row, &hash) in hashes.iter().enumerate() {
            let key = key_column.value(row);
            self.match_scratch.clear();
            self.stem
                .probe_eq_hashed(hash, &key, &mut self.match_scratch);
            for stored in &self.match_scratch {
                out.push_joined(batch, row, stored);
            }
        }
        Ok(ColumnarVerdict::Consumed(out))
    }

    /// Builds consume key hashes on insert; probes consume them through
    /// the hashed index — either way, prehashing the key column at the
    /// ingress edge makes every hash a memo hit here.
    fn key_column_hint(&mut self, schema: &SchemaRef) -> Option<usize> {
        if self.is_build_schema(schema) {
            Some(self.stem.key_col())
        } else {
            self.probe_plan(schema).ok().map(|p| p.key_col)
        }
    }

    fn evict_before_seq(&mut self, seq: i64) {
        self.stem.evict_before_seq(seq);
    }

    fn state_size(&self) -> usize {
        self.stem.len()
    }

    /// Delta export: one fragment per dirty key-hash group, encoded as
    /// `[u32 count]` then that many checkpoint-codec tuples. The stored
    /// schema travels out of band (the restoring StemOp knows it).
    fn export_dirty_groups(&mut self, out: &mut Vec<(u64, Vec<u8>)>) -> Result<()> {
        let dirty: Vec<u64> = self.stem.dirty_groups().collect();
        let mut scratch = Vec::new();
        for h in dirty {
            scratch.clear();
            self.stem.export_group(h, &mut scratch);
            let mut w = CkptWriter::new();
            w.put_u32(scratch.len() as u32);
            for t in &scratch {
                w.put_tuple(t);
            }
            out.push((h, w.into_bytes()));
        }
        Ok(())
    }

    fn import_group(&mut self, hash: u64, bytes: &[u8]) -> Result<()> {
        let mut r = CkptReader::new(bytes);
        let n = r.get_u32("group tuple count")?;
        let schema = self.stem.schema().clone();
        let mut tuples = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let t = r.get_tuple(&schema)?;
            // Window eviction is driven by latest_seq; restored builds
            // must advance it exactly as live builds would have.
            self.latest_seq = self.latest_seq.max(t.timestamp().seq());
            tuples.push(t);
        }
        self.stem.import_group(hash, tuples)
    }

    fn dirty_len(&self) -> usize {
        self.stem.dirty_len()
    }

    fn clear_dirty(&mut self) {
        self.stem.clear_dirty();
    }
}

/// Wire the two SteMs of a symmetric hash join between streams `left` and
/// `right` (paper Figure 2), equi-joined on `left.left_key = right.right_key`.
///
/// Returns `(stem_left, stem_right)`: `stem_left` stores left tuples and is
/// probed by right tuples, and vice versa.
pub fn symmetric_hash_join(
    left: &SchemaRef,
    left_qualifier: &str,
    left_key: &str,
    right: &SchemaRef,
    right_qualifier: &str,
    right_key: &str,
) -> Result<(StemOp, StemOp)> {
    let lk = left.index_of(Some(left_qualifier), left_key)?;
    let rk = right.index_of(Some(right_qualifier), right_key)?;
    let stem_l = StemOp::new(
        format!("SteM({left_qualifier})"),
        left.clone(),
        left_qualifier,
        lk,
        (Some(right_qualifier.to_string()), right_key.to_string()),
        IndexKind::Hash,
    )?;
    let stem_r = StemOp::new(
        format!("SteM({right_qualifier})"),
        right.clone(),
        right_qualifier,
        rk,
        (Some(left_qualifier.to_string()), left_key.to_string()),
        IndexKind::Hash,
    )?;
    Ok((stem_l, stem_r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{DataType, Field, Timestamp, TupleBuilder};

    fn schema(q: &str) -> SchemaRef {
        Schema::qualified(
            q,
            vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Str),
            ],
        )
        .into_ref()
    }

    fn t(schema: &SchemaRef, k: i64, v: &str, ts: i64) -> Tuple {
        TupleBuilder::new(schema.clone())
            .push(k)
            .push(v)
            .at(Timestamp::logical(ts))
            .build()
            .unwrap()
    }

    #[test]
    fn symmetric_hash_join_produces_each_match_once() {
        let s = schema("S");
        let r = schema("T");
        let (mut stem_s, mut stem_t) = symmetric_hash_join(&s, "S", "k", &r, "T", "k").unwrap();

        // Simulate the eddy's serial routing: each tuple builds into its own
        // SteM then probes the other.
        let mut results = Vec::new();
        let route =
            |tuple: &Tuple, own: &mut StemOp, other: &mut StemOp, results: &mut Vec<Tuple>| {
                let r1 = own.process(tuple).unwrap();
                assert!(r1.keep, "build keeps the tuple");
                let r2 = other.process(tuple).unwrap();
                assert!(!r2.keep, "probe consumes the tuple");
                results.extend(r2.outputs);
            };

        route(&t(&s, 1, "s1", 1), &mut stem_s, &mut stem_t, &mut results);
        route(&t(&r, 1, "t1", 2), &mut stem_t, &mut stem_s, &mut results);
        route(&t(&r, 1, "t2", 3), &mut stem_t, &mut stem_s, &mut results);
        route(&t(&s, 2, "s2", 4), &mut stem_s, &mut stem_t, &mut results);
        route(&t(&r, 2, "t3", 5), &mut stem_t, &mut stem_s, &mut results);

        // Matches: (s1,t1), (s1,t2), (s2,t3) — exactly once each.
        assert_eq!(results.len(), 3);
        for j in &results {
            assert_eq!(j.arity(), 4);
            // join key equal on both sides
            assert_eq!(j.value(0), j.value(2));
        }
    }

    #[test]
    fn join_output_schema_is_disambiguated() {
        let s = schema("S");
        let r = schema("T");
        let (mut stem_s, _) = symmetric_hash_join(&s, "S", "k", &r, "T", "k").unwrap();
        stem_s.process(&t(&s, 1, "x", 1)).unwrap();
        let out = stem_s.process(&t(&r, 1, "y", 2)).unwrap();
        assert_eq!(out.outputs.len(), 1);
        let j = out.outputs.first().unwrap();
        // probe tuple first, stored tuple second
        assert_eq!(j.get(Some("T"), "v").unwrap(), &Value::str("y"));
        assert_eq!(j.get(Some("S"), "v").unwrap(), &Value::str("x"));
        // timestamp is max of parents
        assert_eq!(j.timestamp().seq(), 2);
    }

    #[test]
    fn window_width_bounds_state() {
        let s = schema("S");
        let mut op = StemOp::new(
            "SteM(S)",
            s.clone(),
            "S",
            0,
            (None, "k".to_string()),
            IndexKind::Hash,
        )
        .unwrap()
        .with_window_width(5);
        for ts in 1..=20 {
            op.process(&t(&s, ts % 3, "x", ts)).unwrap();
        }
        // only ts in [16, 20] retained
        assert_eq!(op.len(), 5);
        assert_eq!(op.state_size(), 5);
    }

    #[test]
    fn intermediate_tuples_probe_not_build() {
        // A joined (S,T) tuple arriving at SteM_S must probe, not build:
        // its schema is not solely S-qualified.
        let s = schema("S");
        let r = schema("T");
        let (mut stem_s, mut stem_t) = symmetric_hash_join(&s, "S", "k", &r, "T", "k").unwrap();
        stem_s.process(&t(&s, 1, "a", 1)).unwrap();
        let st: Vec<Tuple> = stem_s
            .process(&t(&r, 1, "b", 2))
            .unwrap()
            .outputs
            .into_iter()
            .collect();
        assert_eq!(st.len(), 1);
        // Route the joined tuple to SteM_T: T-side columns resolve, probe
        // happens (and finds nothing — T never built).
        let res = stem_t.process(&st[0]).unwrap();
        assert!(!res.keep);
        assert!(res.outputs.is_empty());
        assert_eq!(stem_t.len(), 0, "intermediate tuple must not build");
    }

    #[test]
    fn drain_and_absorb_roundtrip() {
        let s = schema("S");
        let mut a =
            StemOp::new("a", s.clone(), "S", 0, (None, "k".into()), IndexKind::Hash).unwrap();
        for ts in 1..=4 {
            a.process(&t(&s, ts, "x", ts)).unwrap();
        }
        let moved = a.drain_all();
        assert_eq!(moved.len(), 4);
        let mut b =
            StemOp::new("b", s.clone(), "S", 0, (None, "k".into()), IndexKind::Hash).unwrap();
        b.absorb(moved).unwrap();
        assert_eq!(b.len(), 4);
        let mut out = Vec::new();
        assert_eq!(b.probe(&Value::Int(3), &mut out), 1);
    }

    #[test]
    fn stem_batch_matches_per_tuple_results() {
        // Interleaved builds and probes, with a window: the batch path
        // must produce the same joins and the same retained state as
        // tuple-at-a-time processing in the same order.
        let s = schema("S");
        let r = schema("T");
        let mk = |mixed: bool| {
            let (stem_s, _) = symmetric_hash_join(&s, "S", "k", &r, "T", "k").unwrap();
            let stem_s = stem_s.with_window_width(6);
            let mut tuples = Vec::new();
            for ts in 1..=12i64 {
                tuples.push(t(&s, ts % 3, "build", ts));
                if mixed {
                    tuples.push(t(&r, ts % 3, "probe", ts));
                }
            }
            (stem_s, tuples)
        };
        for mixed in [false, true] {
            let (mut per, tuples) = mk(mixed);
            let mut expect: Vec<(bool, usize)> = Vec::new();
            for tu in &tuples {
                let routed = per.process(tu).unwrap();
                expect.push((routed.keep, routed.outputs.len()));
            }
            let (mut batched, tuples) = mk(mixed);
            let mut out = Vec::new();
            batched.process_batch(&tuples, &mut out).unwrap();
            let got: Vec<(bool, usize)> = out.iter().map(|r| (r.keep, r.outputs.len())).collect();
            assert_eq!(got, expect, "mixed={mixed}");
            assert_eq!(batched.len(), per.len(), "retained state diverged");
        }
    }

    #[test]
    fn prehash_and_legacy_probe_agree_and_differ_only_in_hash_count() {
        let s = schema("S");
        let r = schema("T");
        let mk = |prehash: bool| {
            let (stem_s, _) = symmetric_hash_join(&s, "S", "k", &r, "T", "k").unwrap();
            stem_s.with_prehash(prehash)
        };
        let mut fast = mk(true);
        let mut slow = mk(false);
        for ts in 1..=40i64 {
            // Separate tuple instances per op: the hash memo rides on the
            // tuple, so sharing one would let `fast` pre-warm `slow`.
            for op in [&mut fast, &mut slow] {
                op.process(&t(&s, ts % 5, "b", ts)).unwrap();
            }
            let of = fast.process(&t(&r, ts % 7, "p", ts)).unwrap();
            let os = slow.process(&t(&r, ts % 7, "p", ts)).unwrap();
            assert_eq!(of.outputs, os.outputs, "join outputs diverged at ts={ts}");
        }
        assert_eq!(fast.counters(), slow.counters());
        // Builds hash once either way (40 each); legacy probes add one
        // hash per probe (40 more), prehashed probes memoize on the probe
        // tuple so each costs at most one — here exactly one, since the
        // probe tuples arrive cold.
        assert_eq!(slow.hash_computes(), 80);
        assert_eq!(fast.hash_computes(), 40);
        // A probe tuple hashed upstream (e.g. by the partitioner) costs
        // the SteM nothing.
        let p = t(&r, 1, "warm", 99);
        p.key_hash(0);
        let before = fast.hash_computes();
        fast.process(&p).unwrap();
        assert_eq!(fast.hash_computes(), before);

        // Columnar probes ride the ingress-built hash column: converting
        // rows to a batch hashes each probe key once (memoizing it back
        // onto the source tuple), and the SteM then computes nothing.
        let probes: Vec<Tuple> = (1..=10i64).map(|ts| t(&r, ts % 7, "cp", 50 + ts)).collect();
        let key_col = fast.key_column_hint(&r).unwrap();
        let expect: Vec<Tuple> = probes
            .iter()
            .flat_map(|p| slow.process(p).unwrap().outputs)
            .collect();
        let batch = tcq_common::ColumnBatch::from_tuples(r.clone(), &probes, Some(key_col));
        assert!(
            probes.iter().all(|p| p.cached_key_hash(key_col).is_some()),
            "ingress conversion memoizes the key hash on each source row"
        );
        let before = fast.hash_computes();
        let out = match fast
            .process_columnar(&batch, None, &mut Vec::new())
            .unwrap()
        {
            ColumnarVerdict::Consumed(b) => b,
            v => panic!("probe batch must be consumed, got {v:?}"),
        };
        assert_eq!(
            fast.hash_computes(),
            before,
            "columnar probes compute no hashes"
        );
        let got = out.to_tuples();
        assert_eq!(got.len(), expect.len());
        for (g, w) in got.iter().zip(&expect) {
            assert_eq!(g.values(), w.values());
            assert_eq!(g.timestamp(), w.timestamp());
        }

        // Columnar builds: the same ingress hashing makes every SteM
        // insert a memo hit — one hash per tuple across the whole
        // row → columnar → build trip.
        let builds: Vec<Tuple> = (1..=5i64).map(|ts| t(&s, ts, "cb", 60 + ts)).collect();
        let bcol = fast.key_column_hint(&s).unwrap();
        let bbatch = tcq_common::ColumnBatch::from_tuples(s.clone(), &builds, Some(bcol));
        let before = fast.hash_computes();
        match fast
            .process_columnar(&bbatch, Some(&builds), &mut Vec::new())
            .unwrap()
        {
            ColumnarVerdict::KeepAll => {}
            v => panic!("build batch passes through, got {v:?}"),
        }
        assert_eq!(
            fast.hash_computes(),
            before,
            "ingress-hashed builds insert without rehashing"
        );
        // Without the row mirror, builds cannot store tuples: fall back.
        let lone = vec![t(&s, 9, "nb", 70)];
        let lb = tcq_common::ColumnBatch::from_tuples(s.clone(), &lone, Some(bcol));
        assert!(matches!(
            fast.process_columnar(&lb, None, &mut Vec::new()).unwrap(),
            ColumnarVerdict::Fallback
        ));
    }

    #[test]
    fn checkpoint_export_import_restores_probe_behaviour() {
        let s = schema("S");
        let r = schema("T");
        let mk = || {
            let (stem_s, _) = symmetric_hash_join(&s, "S", "k", &r, "T", "k").unwrap();
            stem_s.with_window_width(8)
        };
        let mut live = mk();
        for ts in 1..=20i64 {
            live.process(&t(&s, ts % 4, "b", ts)).unwrap();
        }
        // Export the delta, rebuild a fresh op from it.
        let mut delta = Vec::new();
        live.export_dirty_groups(&mut delta).unwrap();
        assert_eq!(delta.len(), 4, "four key groups touched");
        assert_eq!(live.dirty_len(), 4, "export does not clear dirt");
        live.clear_dirty();
        assert_eq!(live.dirty_len(), 0);

        let mut restored = mk();
        for (h, bytes) in &delta {
            restored.import_group(*h, bytes).unwrap();
        }
        assert_eq!(restored.len(), live.len());
        assert_eq!(restored.dirty_len(), 0, "restored state is clean");
        // Identical probe results after restore.
        for k in 0..4i64 {
            let probe = t(&r, k, "p", 21);
            let a = live.process(&probe).unwrap();
            let b = restored.process(&probe).unwrap();
            assert_eq!(a.outputs, b.outputs, "probe k={k} diverged");
        }
        // latest_seq was restored: the window keeps sliding correctly.
        restored.process(&t(&s, 0, "late", 30)).unwrap();
        assert_eq!(restored.len(), 1, "old state evicted by restored window");

        // Incremental follow-up: touching one group dirties only it (ts 20
        // keeps the window edge still, so no eviction dirties others).
        live.process(&t(&s, 2, "b", 20)).unwrap();
        let mut second = Vec::new();
        live.export_dirty_groups(&mut second).unwrap();
        assert_eq!(second.len(), 1, "delta scales with churn");
    }

    #[test]
    fn probe_key_resolution_failure_is_an_error() {
        let s = schema("S");
        let other = Schema::qualified("Z", vec![Field::new("z", DataType::Int)]).into_ref();
        let mut op = StemOp::new("a", s, "S", 0, (None, "k".into()), IndexKind::Hash).unwrap();
        let zt = TupleBuilder::new(other).push(1i64).build().unwrap();
        assert!(op.process(&zt).is_err());
    }
}
