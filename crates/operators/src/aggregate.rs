//! Windowed aggregation.
//!
//! §4.1.2 of the paper singles aggregation out as the operator whose memory
//! behaviour depends on window type:
//!
//! > "Consider the execution of a MAX aggregate over a stream. For a
//! > landmark window, it is possible to compute the answer iteratively by
//! > simply comparing the current maximum to the newest element as the
//! > window expands. On the other hand, for a sliding window, computing the
//! > maximum requires the maintenance of the entire window."
//!
//! [`WindowAggregator`] implements both modes — O(1)-state incremental
//! landmark aggregation and buffered sliding-window aggregation — so
//! experiment E8 can measure exactly this asymmetry. [`GroupByAggregator`]
//! adds hash grouping (the partitioned operator Flux rebalances).

use std::collections::{HashMap, VecDeque};

use tcq_common::{Result, TcqError, Tuple, Value};

/// The supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// COUNT of non-NULL inputs.
    Count,
    /// SUM (numeric).
    Sum,
    /// AVG (numeric).
    Avg,
    /// MIN.
    Min,
    /// MAX.
    Max,
}

impl AggFunc {
    /// Parse from a (case-insensitive) SQL name.
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

/// One aggregate to compute: function over a column, or `COUNT(*)`.
#[derive(Debug, Clone, Copy)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Input column index; `None` means "the whole row" (`COUNT(*)` —
    /// counts rows regardless of NULLs; only meaningful for COUNT).
    pub column: Option<usize>,
}

impl AggSpec {
    /// `func(column)`.
    pub fn over(func: AggFunc, column: usize) -> Self {
        AggSpec {
            func,
            column: Some(column),
        }
    }

    /// `COUNT(*)`.
    pub fn count_star() -> Self {
        AggSpec {
            func: AggFunc::Count,
            column: None,
        }
    }
}

/// Window discipline for a [`WindowAggregator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowMode {
    /// Landmark: the window only ever grows; aggregates update in O(1)
    /// state ("computed iteratively", §4.1.2).
    Landmark,
    /// Sliding: the trailing edge advances; the whole window is buffered.
    Sliding,
}

/// Incremental scalar accumulator for one aggregate.
#[derive(Debug, Clone)]
enum AggState {
    Count(u64),
    Sum(f64, u64),
    Avg(f64, u64),
    /// Min/Max for landmark mode: running extremum.
    Extremum(Option<Value>, bool /* is_max */),
}

impl AggState {
    fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(0.0, 0),
            AggFunc::Avg => AggState::Avg(0.0, 0),
            AggFunc::Min => AggState::Extremum(None, false),
            AggFunc::Max => AggState::Extremum(None, true),
        }
    }

    fn update(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum(s, n) | AggState::Avg(s, n) => {
                *s += v.as_float()?;
                *n += 1;
            }
            AggState::Extremum(cur, is_max) => {
                let better = match cur {
                    None => true,
                    Some(c) => {
                        let ord = v.total_cmp(c);
                        if *is_max {
                            ord.is_gt()
                        } else {
                            ord.is_lt()
                        }
                    }
                };
                if better {
                    *cur = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    fn result(&self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(*n as i64),
            AggState::Sum(s, n) => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(*s)
                }
            }
            AggState::Avg(s, n) => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(*s / *n as f64)
                }
            }
            AggState::Extremum(cur, _) => cur.clone().unwrap_or(Value::Null),
        }
    }
}

/// Aggregates over one (landmark or sliding) window of a single stream.
///
/// Feed tuples with [`WindowAggregator::update`]; read the current window's
/// aggregates with [`WindowAggregator::results`]. For sliding mode, advance
/// the trailing edge with [`WindowAggregator::slide_to`].
pub struct WindowAggregator {
    specs: Vec<AggSpec>,
    mode: WindowMode,
    /// Landmark: incremental states.
    states: Vec<AggState>,
    /// Sliding: the buffered window, (seq, column values needed).
    buffer: VecDeque<(i64, Vec<Value>)>,
    /// Peak buffered tuples — the paper's memory argument, observable.
    peak_buffer: usize,
}

impl WindowAggregator {
    /// Create an aggregator.
    pub fn new(specs: Vec<AggSpec>, mode: WindowMode) -> Self {
        let states = specs.iter().map(|s| AggState::new(s.func)).collect();
        WindowAggregator {
            specs,
            mode,
            states,
            buffer: VecDeque::new(),
            peak_buffer: 0,
        }
    }

    /// Feed one tuple (must carry a logical timestamp for sliding mode).
    pub fn update(&mut self, tuple: &Tuple) -> Result<()> {
        match self.mode {
            WindowMode::Landmark => {
                for (spec, st) in self.specs.iter().zip(self.states.iter_mut()) {
                    match spec.column {
                        Some(c) => st.update(tuple.value(c))?,
                        None => st.update(&Value::Bool(true))?,
                    }
                }
            }
            WindowMode::Sliding => {
                let vals: Vec<Value> = self
                    .specs
                    .iter()
                    .map(|s| match s.column {
                        Some(c) => tuple.value(c).clone(),
                        None => Value::Bool(true),
                    })
                    .collect();
                self.buffer.push_back((tuple.timestamp().seq(), vals));
                self.peak_buffer = self.peak_buffer.max(self.buffer.len());
            }
        }
        Ok(())
    }

    /// Advance the trailing edge: drop buffered tuples with seq < `seq`.
    /// Errors in landmark mode (whose trailing edge is fixed).
    pub fn slide_to(&mut self, seq: i64) -> Result<usize> {
        if self.mode != WindowMode::Sliding {
            return Err(TcqError::InvalidWindow(
                "slide_to on a landmark aggregator".into(),
            ));
        }
        let before = self.buffer.len();
        while let Some(&(s, _)) = self.buffer.front() {
            if s >= seq {
                break;
            }
            self.buffer.pop_front();
        }
        Ok(before - self.buffer.len())
    }

    /// Current aggregate values, one per spec.
    ///
    /// Landmark mode reads the O(1) states; sliding mode recomputes over the
    /// buffered window — "the maintenance of the entire window" the paper
    /// warns about.
    pub fn results(&self) -> Result<Vec<Value>> {
        match self.mode {
            WindowMode::Landmark => Ok(self.states.iter().map(|s| s.result()).collect()),
            WindowMode::Sliding => {
                let mut states: Vec<AggState> =
                    self.specs.iter().map(|s| AggState::new(s.func)).collect();
                for (_, vals) in &self.buffer {
                    for (st, v) in states.iter_mut().zip(vals.iter()) {
                        st.update(v)?;
                    }
                }
                Ok(states.iter().map(|s| s.result()).collect())
            }
        }
    }

    /// Tuples currently buffered (0 in landmark mode).
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Largest buffer ever held.
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffer
    }

    /// The window discipline.
    pub fn mode(&self) -> WindowMode {
        self.mode
    }
}

/// Hash-grouped aggregation: `GROUP BY key` with per-group accumulators.
/// This is the stateful, partitionable operator of the Flux experiments —
/// its state can be extracted per group for online repartitioning.
pub struct GroupByAggregator {
    key_col: usize,
    specs: Vec<AggSpec>,
    groups: HashMap<Value, Vec<AggState>>,
}

impl GroupByAggregator {
    /// Group by `key_col`, computing `specs` per group.
    pub fn new(key_col: usize, specs: Vec<AggSpec>) -> Self {
        GroupByAggregator {
            key_col,
            specs,
            groups: HashMap::new(),
        }
    }

    /// Feed one tuple.
    pub fn update(&mut self, tuple: &Tuple) -> Result<()> {
        let key = tuple.value(self.key_col);
        let states = self
            .groups
            .entry(key.clone())
            .or_insert_with(|| self.specs.iter().map(|s| AggState::new(s.func)).collect());
        for (spec, st) in self.specs.iter().zip(states.iter_mut()) {
            match spec.column {
                Some(c) => st.update(tuple.value(c))?,
                None => st.update(&Value::Bool(true))?,
            }
        }
        Ok(())
    }

    /// Snapshot results: (group key, aggregate values), unordered.
    pub fn results(&self) -> Vec<(Value, Vec<Value>)> {
        self.groups
            .iter()
            .map(|(k, states)| (k.clone(), states.iter().map(|s| s.result()).collect()))
            .collect()
    }

    /// Results sorted by group key (deterministic for tests).
    pub fn results_sorted(&self) -> Vec<(Value, Vec<Value>)> {
        let mut out = self.results();
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when no group exists.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Remove and return the state of groups selected by `pred` — Flux's
    /// state-movement primitive: the selected partitions migrate to another
    /// node. (Aggregate states move as opaque values.)
    pub fn extract_groups(
        &mut self,
        mut pred: impl FnMut(&Value) -> bool,
    ) -> Vec<(Value, Vec<Value>)> {
        let keys: Vec<Value> = self.groups.keys().filter(|k| pred(k)).cloned().collect();
        let mut out = Vec::with_capacity(keys.len());
        for k in keys {
            if let Some(states) = self.groups.remove(&k) {
                out.push((k, states.iter().map(|s| s.result()).collect()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{DataType, Field, Schema, SchemaRef, Timestamp, TupleBuilder};

    fn schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("sym", DataType::Str),
            Field::new("price", DataType::Float),
        ])
        .into_ref()
    }

    fn tick(ts: i64, sym: &str, price: f64) -> Tuple {
        TupleBuilder::new(schema())
            .push(sym)
            .push(price)
            .at(Timestamp::logical(ts))
            .build()
            .unwrap()
    }

    #[test]
    fn landmark_max_is_constant_state() {
        let mut agg =
            WindowAggregator::new(vec![AggSpec::over(AggFunc::Max, 1)], WindowMode::Landmark);
        for ts in 1..=1000 {
            agg.update(&tick(ts, "M", (ts % 97) as f64)).unwrap();
        }
        assert_eq!(agg.results().unwrap(), vec![Value::Float(96.0)]);
        assert_eq!(agg.buffered(), 0, "landmark keeps no window buffer");
    }

    #[test]
    fn sliding_max_requires_window_and_slides_correctly() {
        let mut agg =
            WindowAggregator::new(vec![AggSpec::over(AggFunc::Max, 1)], WindowMode::Sliding);
        // prices 1..=10 at ts 1..=10
        for ts in 1..=10 {
            agg.update(&tick(ts, "M", ts as f64)).unwrap();
        }
        assert_eq!(agg.results().unwrap(), vec![Value::Float(10.0)]);
        assert_eq!(agg.buffered(), 10);
        // Slide so the window is [6, 10]: max still 10, but after dropping
        // the high value...
        agg.slide_to(6).unwrap();
        assert_eq!(agg.buffered(), 5);
        // feed decreasing values and slide past the old max
        agg.update(&tick(11, "M", 2.0)).unwrap();
        agg.slide_to(11).unwrap();
        assert_eq!(agg.results().unwrap(), vec![Value::Float(2.0)]);
        assert_eq!(agg.peak_buffered(), 10);
    }

    #[test]
    fn paper_sliding_avg_example() {
        // §4.1.1 example 3: AVG of the five most recent trading days.
        let mut agg =
            WindowAggregator::new(vec![AggSpec::over(AggFunc::Avg, 1)], WindowMode::Sliding);
        for ts in 1..=10 {
            agg.update(&tick(ts, "MSFT", ts as f64 * 10.0)).unwrap();
        }
        // window [6, 10]
        agg.slide_to(6).unwrap();
        assert_eq!(agg.results().unwrap(), vec![Value::Float(80.0)]);
    }

    #[test]
    fn count_sum_avg_min_together() {
        let specs = vec![
            AggSpec::over(AggFunc::Count, 1),
            AggSpec::over(AggFunc::Sum, 1),
            AggSpec::over(AggFunc::Avg, 1),
            AggSpec::over(AggFunc::Min, 1),
        ];
        let mut agg = WindowAggregator::new(specs, WindowMode::Landmark);
        for (ts, p) in [(1, 4.0), (2, 2.0), (3, 6.0)] {
            agg.update(&tick(ts, "M", p)).unwrap();
        }
        assert_eq!(
            agg.results().unwrap(),
            vec![
                Value::Int(3),
                Value::Float(12.0),
                Value::Float(4.0),
                Value::Float(2.0)
            ]
        );
    }

    #[test]
    fn empty_window_yields_null_aggregates_and_zero_count() {
        let specs = vec![
            AggSpec::over(AggFunc::Count, 1),
            AggSpec::over(AggFunc::Sum, 1),
            AggSpec::over(AggFunc::Max, 1),
        ];
        let agg = WindowAggregator::new(specs, WindowMode::Sliding);
        assert_eq!(
            agg.results().unwrap(),
            vec![Value::Int(0), Value::Null, Value::Null]
        );
    }

    #[test]
    fn nulls_are_ignored() {
        let s = Schema::new(vec![Field::new("x", DataType::Int)]).into_ref();
        let mut agg = WindowAggregator::new(
            vec![
                AggSpec::over(AggFunc::Count, 0),
                AggSpec::over(AggFunc::Sum, 0),
            ],
            WindowMode::Landmark,
        );
        agg.update(&Tuple::new(s.clone(), vec![Value::Int(5)], Timestamp::logical(1)).unwrap())
            .unwrap();
        agg.update(&Tuple::new(s, vec![Value::Null], Timestamp::logical(2)).unwrap())
            .unwrap();
        assert_eq!(
            agg.results().unwrap(),
            vec![Value::Int(1), Value::Float(5.0)]
        );
    }

    #[test]
    fn slide_on_landmark_errors() {
        let mut agg =
            WindowAggregator::new(vec![AggSpec::over(AggFunc::Count, 0)], WindowMode::Landmark);
        assert!(agg.slide_to(5).is_err());
    }

    #[test]
    fn group_by_and_state_extraction() {
        let mut g = GroupByAggregator::new(0, vec![AggSpec::over(AggFunc::Sum, 1)]);
        for (ts, sym, p) in [(1, "A", 1.0), (2, "B", 2.0), (3, "A", 3.0), (4, "C", 4.0)] {
            g.update(&tick(ts, sym, p)).unwrap();
        }
        assert_eq!(g.len(), 3);
        let sorted = g.results_sorted();
        assert_eq!(sorted[0], (Value::str("A"), vec![Value::Float(4.0)]));
        // Extract B and C (repartition them away).
        let moved = g.extract_groups(|k| matches!(k, Value::Str(s) if s.as_ref() != "A"));
        assert_eq!(moved.len(), 2);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn agg_func_parse() {
        assert_eq!(AggFunc::parse("avg"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::parse("MAX"), Some(AggFunc::Max));
        assert_eq!(AggFunc::parse("median"), None);
    }
}
