//! Projection: compute output columns from expressions.

use tcq_common::{ColumnBatch, DataType, Expr, Field, Result, Schema, SchemaRef, Tuple, Value};

/// A projection over expressions, applied to the eddy's output stream.
///
/// Supports `SELECT expr [AS name], ...` including computed columns
/// (`closingPrice * 2`). `SELECT *` is represented by projecting every
/// column reference in order.
pub struct ProjectOp {
    exprs: Vec<tcq_common::BoundExpr>,
    /// Set when every projected expression is a bare column reference:
    /// the input indices to copy, in output order. `apply` then moves
    /// values without walking any expression tree — the compiled-kernel
    /// analogue for projections, where "compilation" collapses to an
    /// index list.
    columns: Option<Vec<usize>>,
    out_schema: SchemaRef,
}

impl ProjectOp {
    /// Build a projection of `exprs` (with optional output names) over
    /// tuples of `input` schema.
    pub fn new(items: &[(Expr, Option<String>)], input: &SchemaRef) -> Result<Self> {
        let mut bound = Vec::with_capacity(items.len());
        let mut fields = Vec::with_capacity(items.len());
        for (i, (expr, alias)) in items.iter().enumerate() {
            bound.push(expr.bind(input)?);
            let dt = expr.data_type(input)?;
            let name = match alias {
                Some(a) => a.clone(),
                None => match expr {
                    Expr::Column { name, .. } => name.clone(),
                    _ => format!("expr{i}"),
                },
            };
            fields.push(Field::new(name, dt));
        }
        let columns = bound
            .iter()
            .map(|b| match b {
                tcq_common::BoundExpr::Column(i) => Some(*i),
                _ => None,
            })
            .collect::<Option<Vec<usize>>>();
        Ok(ProjectOp {
            exprs: bound,
            columns,
            out_schema: Schema::new(fields).into_ref(),
        })
    }

    /// Enable or disable the column-copy fast path (default on). Off, even
    /// bare-column projections walk their bound expressions per tuple —
    /// the pre-kernel behaviour, kept so A/B experiments can isolate
    /// projection compilation.
    pub fn with_compiled_kernels(mut self, enabled: bool) -> Self {
        if !enabled {
            self.columns = None;
        }
        self
    }

    /// The identity projection (`SELECT *`).
    pub fn star(input: &SchemaRef) -> Result<Self> {
        let items: Vec<(Expr, Option<String>)> = (0..input.len())
            .map(|i| {
                let f = input.field(i);
                let q = input.qualifier(i);
                let e = if q.is_empty() {
                    Expr::col(&f.name)
                } else {
                    Expr::qcol(q, &f.name)
                };
                (e, Some(f.name.clone()))
            })
            .collect();
        ProjectOp::new(&items, input)
    }

    /// The output schema.
    pub fn out_schema(&self) -> &SchemaRef {
        &self.out_schema
    }

    /// True when this projection runs on the column-copy fast path.
    pub fn is_column_only(&self) -> bool {
        self.columns.is_some()
    }

    /// Apply to one tuple.
    pub fn apply(&self, tuple: &Tuple) -> Result<Tuple> {
        let values: Vec<Value> = match &self.columns {
            // Column-only projections copy values by index; expression
            // evaluation (and its per-column dispatch) is skipped entirely.
            Some(cols) => cols.iter().map(|&i| tuple.value(i).clone()).collect(),
            None => self
                .exprs
                .iter()
                .map(|e| e.eval(tuple))
                .collect::<Result<Vec<Value>>>()?,
        };
        Ok(Tuple::new_unchecked(
            self.out_schema.clone(),
            values,
            tuple.timestamp(),
        ))
    }

    /// Apply to a whole columnar batch: column-only projections become
    /// whole-column clones (the per-row copy loop disappears entirely).
    /// Returns `None` when an expression column forces row-at-a-time
    /// evaluation — callers fall back to [`ProjectOp::apply`] per row.
    pub fn apply_columnar(&self, batch: &ColumnBatch) -> Option<ColumnBatch> {
        let cols = self.columns.as_ref()?;
        Some(batch.project(cols, self.out_schema.clone()))
    }

    /// Output column types.
    pub fn out_types(&self) -> Vec<DataType> {
        self.out_schema
            .fields()
            .iter()
            .map(|f| f.data_type)
            .collect()
    }
}

/// Convenience: project by column names only.
pub fn project_columns(names: &[&str], input: &SchemaRef) -> Result<ProjectOp> {
    let items: Vec<(Expr, Option<String>)> = names.iter().map(|n| (Expr::col(*n), None)).collect();
    ProjectOp::new(&items, input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{ArithOp, CmpOp, DataType, Field, Schema, Timestamp, TupleBuilder};

    fn schema() -> SchemaRef {
        Schema::qualified(
            "s",
            vec![
                Field::new("timestamp", DataType::Int),
                Field::new("sym", DataType::Str),
                Field::new("price", DataType::Float),
            ],
        )
        .into_ref()
    }

    fn tick(ts: i64, sym: &str, price: f64) -> Tuple {
        TupleBuilder::new(schema())
            .push(ts)
            .push(sym)
            .push(price)
            .at(Timestamp::logical(ts))
            .build()
            .unwrap()
    }

    #[test]
    fn paper_projection_price_and_timestamp() {
        // SELECT closingPrice, timestamp FROM ...
        let op = project_columns(&["price", "timestamp"], &schema()).unwrap();
        let out = op.apply(&tick(5, "MSFT", 51.0)).unwrap();
        assert_eq!(out.arity(), 2);
        assert_eq!(out.value(0), &Value::Float(51.0));
        assert_eq!(out.value(1), &Value::Int(5));
        assert_eq!(out.timestamp().seq(), 5);
        assert_eq!(out.schema().field(0).name, "price");
    }

    #[test]
    fn computed_column_with_alias() {
        let doubled = Expr::Arith {
            op: ArithOp::Mul,
            lhs: Box::new(Expr::col("price")),
            rhs: Box::new(Expr::lit(2.0)),
        };
        let op = ProjectOp::new(&[(doubled, Some("doubled".into()))], &schema()).unwrap();
        assert_eq!(op.out_schema().field(0).name, "doubled");
        assert_eq!(op.out_schema().field(0).data_type, DataType::Float);
        let out = op.apply(&tick(1, "MSFT", 10.0)).unwrap();
        assert_eq!(out.value(0), &Value::Float(20.0));
    }

    #[test]
    fn star_projection_is_identity_on_values() {
        let op = ProjectOp::star(&schema()).unwrap();
        let t = tick(3, "IBM", 9.0);
        let out = op.apply(&t).unwrap();
        assert_eq!(out.values(), t.values());
    }

    #[test]
    fn boolean_expression_projects_as_bool() {
        let e = Expr::col("price").cmp(CmpOp::Gt, Expr::lit(50.0));
        let op = ProjectOp::new(&[(e, None)], &schema()).unwrap();
        assert_eq!(op.out_types(), vec![DataType::Bool]);
        let out = op.apply(&tick(1, "MSFT", 60.0)).unwrap();
        assert_eq!(out.value(0), &Value::Bool(true));
    }

    #[test]
    fn unknown_column_rejected() {
        assert!(project_columns(&["volume"], &schema()).is_err());
    }

    #[test]
    fn default_names_for_computed_columns() {
        let e = Expr::Arith {
            op: ArithOp::Add,
            lhs: Box::new(Expr::col("price")),
            rhs: Box::new(Expr::lit(1.0)),
        };
        let op = ProjectOp::new(&[(e, None)], &schema()).unwrap();
        assert_eq!(op.out_schema().field(0).name, "expr0");
    }
}
