//! Routing policies.
//!
//! The eddy asks its policy, for each routing decision, which of the
//! *candidate* modules (applicable and not yet visited) the current tuple
//! should visit next; after the visit it reports what happened. Policies
//! range from a frozen static plan (the traditional-optimizer baseline) to
//! the ticket-based lottery of Avnur & Hellerstein \[AH00\], which CACQ
//! extended and TelegraphCQ §4.3 proposes to tune further.

use tcq_common::rng::TcqRng;

/// Running per-module observations maintained by the eddy.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModuleStats {
    /// Tuples routed to the module.
    pub routed: u64,
    /// Tuples the module kept (passed through).
    pub kept: u64,
    /// New tuples the module produced.
    pub produced: u64,
    /// Total nanoseconds spent inside `process`.
    pub nanos: u64,
}

impl ModuleStats {
    /// Fraction of routed tuples that survived (kept or replaced by
    /// outputs). Optimistic 1.0 before any observation.
    pub fn pass_rate(&self) -> f64 {
        if self.routed == 0 {
            1.0
        } else {
            (self.kept + self.produced.min(self.routed)) as f64 / self.routed as f64
        }
    }

    /// Mean cost per routed tuple in nanoseconds (1.0 before observations,
    /// so ratios stay finite).
    pub fn mean_cost(&self) -> f64 {
        if self.routed == 0 {
            1.0
        } else {
            self.nanos as f64 / self.routed as f64
        }
    }
}

/// What one visit did, reported back to the policy.
#[derive(Debug, Clone, Copy)]
pub struct ModuleObservation {
    /// Module index.
    pub module: usize,
    /// Did the module keep the original tuple?
    pub kept: bool,
    /// Number of new tuples produced.
    pub produced: usize,
    /// Time spent in `process`, nanoseconds.
    pub nanos: u64,
}

/// A routing policy: pick the next module for a tuple.
pub trait RoutingPolicy: Send {
    /// Choose one of `candidates` (non-empty, ascending module indexes).
    /// `stats` is indexed by module id.
    fn choose(&mut self, candidates: &[usize], stats: &[ModuleStats], rng: &mut TcqRng) -> usize;

    /// Learn from a completed visit. Default: stateless policy.
    fn observe(&mut self, _obs: ModuleObservation) {}

    /// Policy name for experiment reporting.
    fn name(&self) -> &'static str;
}

/// A frozen static order — the traditional query plan, used as the
/// non-adaptive baseline in the eddy experiments.
pub struct FixedPolicy {
    /// `priority[m]` = rank of module m (lower runs earlier).
    priority: Vec<usize>,
}

impl FixedPolicy {
    /// `order` lists module indexes from first to last.
    pub fn new(order: Vec<usize>) -> Self {
        let n = order.iter().copied().max().map_or(0, |m| m + 1);
        let mut priority = vec![usize::MAX; n];
        for (rank, m) in order.into_iter().enumerate() {
            priority[m] = rank;
        }
        FixedPolicy { priority }
    }
}

impl RoutingPolicy for FixedPolicy {
    fn choose(&mut self, candidates: &[usize], _stats: &[ModuleStats], _rng: &mut TcqRng) -> usize {
        *candidates
            .iter()
            .min_by_key(|&&m| self.priority.get(m).copied().unwrap_or(usize::MAX))
            .expect("candidates non-empty")
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// Uniform random choice — the "no information" baseline.
#[derive(Default)]
pub struct RandomPolicy;

impl RoutingPolicy for RandomPolicy {
    fn choose(&mut self, candidates: &[usize], _stats: &[ModuleStats], rng: &mut TcqRng) -> usize {
        candidates[rng.gen_range(0..candidates.len())]
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// The ticket ("lottery") scheme of \[AH00\] §4: a module is credited a
/// ticket each time it receives a tuple and debited one for each tuple it
/// sends back to the eddy, so *selective* modules accumulate tickets and
/// win the lottery more often — tuples visit them earlier, where they drop
/// the most work. Tickets decay by a configurable factor on a fixed period
/// so the policy forgets stale selectivities and re-adapts (§4.3's
/// observation that long-running queries "are susceptible to changes over
/// time").
pub struct LotteryPolicy {
    tickets: Vec<f64>,
    decay: f64,
    decay_every: u64,
    decisions: u64,
    /// Probability of ignoring tickets and exploring uniformly.
    explore: f64,
}

impl LotteryPolicy {
    /// Default AH00-style configuration.
    pub fn new() -> Self {
        LotteryPolicy {
            tickets: Vec::new(),
            decay: 0.5,
            decay_every: 1024,
            decisions: 0,
            explore: 0.05,
        }
    }

    /// Override the decay window (smaller = faster adaptation, more noise).
    pub fn with_decay(mut self, decay: f64, every: u64) -> Self {
        self.decay = decay;
        self.decay_every = every.max(1);
        self
    }

    /// Override the exploration rate.
    pub fn with_explore(mut self, explore: f64) -> Self {
        self.explore = explore.clamp(0.0, 1.0);
        self
    }

    fn ensure(&mut self, m: usize) {
        if m >= self.tickets.len() {
            self.tickets.resize(m + 1, 0.0);
        }
    }
}

impl Default for LotteryPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutingPolicy for LotteryPolicy {
    fn choose(&mut self, candidates: &[usize], _stats: &[ModuleStats], rng: &mut TcqRng) -> usize {
        self.decisions += 1;
        if self.decisions.is_multiple_of(self.decay_every) {
            for t in &mut self.tickets {
                *t *= self.decay;
            }
        }
        if let Some(&max) = candidates.iter().max() {
            self.ensure(max);
        }
        if rng.gen_bool(self.explore) {
            return candidates[rng.gen_range(0..candidates.len())];
        }
        // Lottery draw proportional to tickets, floored at 1 so starved
        // modules keep a chance.
        let weights: Vec<f64> = candidates
            .iter()
            .map(|&m| self.tickets[m].max(0.0) + 1.0)
            .collect();
        let total: f64 = weights.iter().sum();
        let mut draw = rng.gen_range(0.0..total);
        for (i, w) in weights.iter().enumerate() {
            if draw < *w {
                return candidates[i];
            }
            draw -= w;
        }
        candidates[candidates.len() - 1]
    }

    fn observe(&mut self, obs: ModuleObservation) {
        self.ensure(obs.module);
        // Credit on receive, debit on return (kept tuple or each output).
        let returned = obs.produced as f64 + if obs.kept { 1.0 } else { 0.0 };
        self.tickets[obs.module] += 1.0 - returned;
    }

    fn name(&self) -> &'static str {
        "lottery"
    }
}

/// A deterministic rank-by-benefit policy: order candidates by
/// `pass_rate`, breaking ties by mean cost — i.e. run the most selective,
/// cheapest module first, re-ranked continuously from live statistics.
/// Explores each module for a warm-up number of tuples before trusting its
/// estimates.
pub struct GreedyPolicy {
    /// Visits below which a module is considered unexplored.
    warmup: u64,
}

impl GreedyPolicy {
    /// Default warm-up of 32 tuples per module.
    pub fn new() -> Self {
        GreedyPolicy { warmup: 32 }
    }

    /// Override warm-up.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }
}

impl Default for GreedyPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutingPolicy for GreedyPolicy {
    fn choose(&mut self, candidates: &[usize], stats: &[ModuleStats], rng: &mut TcqRng) -> usize {
        // Unexplored modules first (random among them), then best
        // selectivity-per-cost.
        let unexplored: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&m| stats.get(m).map_or(0, |s| s.routed) < self.warmup)
            .collect();
        if !unexplored.is_empty() {
            return unexplored[rng.gen_range(0..unexplored.len())];
        }
        *candidates
            .iter()
            .min_by(|&&a, &&b| {
                let sa = &stats[a];
                let sb = &stats[b];
                // Rank: drop-probability per unit cost, higher is better;
                // ties (e.g. two access methods that each always produce a
                // match) break toward the cheaper module — this is what
                // makes hybridized joins pick the faster access method.
                let ra = (1.0 - sa.pass_rate()) / sa.mean_cost().max(1.0);
                let rb = (1.0 - sb.pass_rate()) / sb.mean_cost().max(1.0);
                rb.partial_cmp(&ra)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| {
                        sa.mean_cost()
                            .partial_cmp(&sb.mean_cost())
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
            })
            .expect("candidates non-empty")
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::rng::seeded;

    #[test]
    fn fixed_policy_respects_order() {
        let mut p = FixedPolicy::new(vec![2, 0, 1]);
        let stats = vec![ModuleStats::default(); 3];
        let mut rng = seeded(1);
        assert_eq!(p.choose(&[0, 1, 2], &stats, &mut rng), 2);
        assert_eq!(p.choose(&[0, 1], &stats, &mut rng), 0);
        assert_eq!(p.choose(&[1], &stats, &mut rng), 1);
    }

    #[test]
    fn lottery_favours_selective_module() {
        let mut p = LotteryPolicy::new().with_explore(0.0);
        let stats = vec![ModuleStats::default(); 2];
        let mut rng = seeded(7);
        // Module 0 drops everything (selective), module 1 passes everything.
        for _ in 0..200 {
            p.observe(ModuleObservation {
                module: 0,
                kept: false,
                produced: 0,
                nanos: 10,
            });
            p.observe(ModuleObservation {
                module: 1,
                kept: true,
                produced: 0,
                nanos: 10,
            });
        }
        let mut wins0 = 0;
        for _ in 0..1000 {
            if p.choose(&[0, 1], &stats, &mut rng) == 0 {
                wins0 += 1;
            }
        }
        assert!(
            wins0 > 900,
            "selective module should dominate the lottery, got {wins0}/1000"
        );
    }

    #[test]
    fn lottery_decay_enables_readaptation() {
        let mut p = LotteryPolicy::new().with_decay(0.5, 10).with_explore(0.0);
        for _ in 0..100 {
            p.observe(ModuleObservation {
                module: 0,
                kept: false,
                produced: 0,
                nanos: 1,
            });
        }
        let before = p.tickets[0];
        let stats = vec![ModuleStats::default(); 1];
        let mut rng = seeded(3);
        for _ in 0..100 {
            p.choose(&[0], &stats, &mut rng);
        }
        assert!(p.tickets[0] < before * 0.01, "tickets must decay");
    }

    #[test]
    fn greedy_ranks_by_selectivity_then_cost() {
        let mut p = GreedyPolicy::new().with_warmup(0);
        let mut rng = seeded(5);
        let mut stats = vec![ModuleStats::default(); 2];
        stats[0] = ModuleStats {
            routed: 100,
            kept: 90,
            produced: 0,
            nanos: 100,
        };
        stats[1] = ModuleStats {
            routed: 100,
            kept: 10,
            produced: 0,
            nanos: 100,
        };
        assert_eq!(p.choose(&[0, 1], &stats, &mut rng), 1);
        // Equal selectivity, module 0 cheaper.
        stats[0] = ModuleStats {
            routed: 100,
            kept: 50,
            produced: 0,
            nanos: 100,
        };
        stats[1] = ModuleStats {
            routed: 100,
            kept: 50,
            produced: 0,
            nanos: 100_000,
        };
        assert_eq!(p.choose(&[0, 1], &stats, &mut rng), 0);
    }

    #[test]
    fn greedy_explores_unvisited_modules_first() {
        let mut p = GreedyPolicy::new().with_warmup(5);
        let mut rng = seeded(5);
        let mut stats = vec![ModuleStats::default(); 2];
        stats[0] = ModuleStats {
            routed: 100,
            kept: 0,
            produced: 0,
            nanos: 1,
        };
        // module 1 unexplored -> chosen despite module 0 being perfect
        assert_eq!(p.choose(&[0, 1], &stats, &mut rng), 1);
    }

    #[test]
    fn random_policy_covers_candidates() {
        let mut p = RandomPolicy;
        let stats = vec![ModuleStats::default(); 3];
        let mut rng = seeded(11);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[p.choose(&[0, 1, 2], &stats, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn pass_rate_and_cost_defaults() {
        let s = ModuleStats::default();
        assert_eq!(s.pass_rate(), 1.0);
        assert_eq!(s.mean_cost(), 1.0);
        let s = ModuleStats {
            routed: 10,
            kept: 3,
            produced: 0,
            nanos: 1000,
        };
        assert!((s.pass_rate() - 0.3).abs() < 1e-9);
        assert!((s.mean_cost() - 100.0).abs() < 1e-9);
    }
}
