//! Tuple lineage: signatures and done-sets.
//!
//! "In order to enable tuples to be routed individually, each tuple must
//! have some additional state with which it is associated … at a minimum,
//! for an Eddy representing a single query, the state must indicate the set
//! of connected modules successfully visited by the tuple" (§2.2).
//!
//! We keep that state *outside* the tuple (the paper notes both layouts are
//! possible): the eddy wraps each in-flight tuple with its done-set and its
//! *signature* — the set of query sources whose columns it spans. Signatures
//! drive module applicability: a filter on `c1.price` applies to any tuple
//! spanning `c1`; the SteM on `T` is probed only by tuples NOT spanning `T`.

use std::collections::HashMap;
use std::sync::Arc;

use tcq_common::{Result, SchemaRef, TcqError};

/// A set of query sources, as a bitmask (≤ 64 sources per eddy, far above
/// any practical query).
pub type SourceSet = u64;

/// Computes and caches tuple signatures by schema identity.
///
/// Qualifier → bit assignments are fixed at eddy construction; schemas are
/// interned by `Arc` pointer so signature lookup is a hash probe, not a
/// per-column string scan.
pub struct SignatureCache {
    /// source qualifier (lowercase) -> bit index.
    bits: HashMap<String, u8>,
    /// schema ptr -> signature.
    cache: HashMap<usize, SourceSet>,
}

impl SignatureCache {
    /// Create a cache over the given source qualifiers (order = bit order).
    pub fn new(sources: &[impl AsRef<str>]) -> Result<Self> {
        if sources.len() > 64 {
            return Err(TcqError::Capacity(format!(
                "an eddy supports at most 64 sources, got {}",
                sources.len()
            )));
        }
        let mut bits = HashMap::with_capacity(sources.len());
        for (i, s) in sources.iter().enumerate() {
            if bits
                .insert(s.as_ref().to_ascii_lowercase(), i as u8)
                .is_some()
            {
                return Err(TcqError::Analysis(format!(
                    "duplicate source '{}' in eddy",
                    s.as_ref()
                )));
            }
        }
        Ok(SignatureCache {
            bits,
            cache: HashMap::new(),
        })
    }

    /// Bit for one source qualifier.
    pub fn bit_of(&self, source: &str) -> Result<SourceSet> {
        self.bits
            .get(&source.to_ascii_lowercase())
            .map(|&b| 1u64 << b)
            .ok_or_else(|| TcqError::UnknownStream(source.to_string()))
    }

    /// The full footprint: every registered source.
    pub fn footprint(&self) -> SourceSet {
        if self.bits.len() == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits.len()) - 1
        }
    }

    /// The signature of tuples with this schema: the union of bits of every
    /// qualifier appearing in it. Errors on qualifiers unknown to the eddy.
    pub fn signature(&mut self, schema: &SchemaRef) -> Result<SourceSet> {
        let key = Arc::as_ptr(schema) as usize;
        if let Some(&sig) = self.cache.get(&key) {
            return Ok(sig);
        }
        let mut sig = 0u64;
        for i in 0..schema.len() {
            let q = schema.qualifier(i);
            if q.is_empty() {
                continue;
            }
            let bit = self.bits.get(&q.to_ascii_lowercase()).ok_or_else(|| {
                TcqError::UnknownStream(format!("tuple qualifier '{q}' not a source of this eddy"))
            })?;
            sig |= 1u64 << bit;
        }
        self.cache.insert(key, sig);
        Ok(sig)
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when no source is registered.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{DataType, Field, Schema};

    fn schema(q: &str) -> SchemaRef {
        Schema::qualified(q, vec![Field::new("x", DataType::Int)]).into_ref()
    }

    #[test]
    fn signatures_and_footprint() {
        let mut sc = SignatureCache::new(&["S", "T"]).unwrap();
        assert_eq!(sc.footprint(), 0b11);
        let s = schema("S");
        let t = schema("T");
        assert_eq!(sc.signature(&s).unwrap(), 0b01);
        assert_eq!(sc.signature(&t).unwrap(), 0b10);
        let joined: SchemaRef = Arc::new(Schema::concat(&s, &t));
        assert_eq!(sc.signature(&joined).unwrap(), 0b11);
    }

    #[test]
    fn cache_hits_by_pointer() {
        let mut sc = SignatureCache::new(&["S"]).unwrap();
        let s = schema("S");
        let a = sc.signature(&s).unwrap();
        let b = sc.signature(&s).unwrap();
        assert_eq!(a, b);
        // A different allocation with identical content also works.
        let s2 = schema("S");
        assert_eq!(sc.signature(&s2).unwrap(), a);
    }

    #[test]
    fn unknown_qualifier_is_an_error() {
        let mut sc = SignatureCache::new(&["S"]).unwrap();
        assert!(sc.signature(&schema("Z")).is_err());
        assert!(sc.bit_of("Z").is_err());
    }

    #[test]
    fn case_insensitive_sources() {
        let mut sc = SignatureCache::new(&["ClosingStockPrices"]).unwrap();
        assert_eq!(sc.signature(&schema("closingstockprices")).unwrap(), 1);
    }

    #[test]
    fn duplicate_source_rejected() {
        assert!(SignatureCache::new(&["s", "S"]).is_err());
    }
}
