//! The CACQ-mode shared eddy (§3.1).
//!
//! > "The key innovation in CACQ is the modification of Eddies to execute
//! > multiple queries simultaneously. This is accomplished by essentially
//! > having the Eddy execute a single 'super'-query corresponding to the
//! > disjunction of all the individual queries … Extra state, called tuple
//! > lineage, is maintained with each tuple … to help determine the clients
//! > to which the output … should be transmitted."
//!
//! A [`SharedEddy`] executes any number of continuous queries over one
//! stream, or over two streams sharing an equi-join:
//!
//! * Each query's single-column factors are indexed in shared grouped
//!   filters (one [`tcq_stems::QueryStem`] per stream side), so one pass
//!   evaluates every query's selections.
//! * Join queries share **one** pair of SteMs. Stored tuples carry their
//!   query lineage (the set of queries still interested), so join outputs
//!   are delivered to exactly the intersection of both parents' lineages —
//!   the work of building and probing is done once, not once per query.
//! * Queries can be added and removed while the eddy runs ("this shared
//!   processing must be made robust to the addition of new queries and the
//!   removal of old ones over time", §1.1).

use std::collections::{HashMap, VecDeque};

use tcq_common::{BitSet, Expr, Result, Schema, SchemaRef, TcqError, Tuple, Value};
use tcq_stems::{MatchScratch, QueryStem};

/// Query identifier within a shared eddy.
pub type QueryId = usize;

/// Counters for a shared eddy.
#[derive(Debug, Clone, Copy, Default)]
pub struct SharedEddyStats {
    /// Base tuples pushed.
    pub tuples_in: u64,
    /// (tuple, query-set) outputs produced.
    pub outputs: u64,
    /// SteM builds performed.
    pub builds: u64,
    /// SteM probes performed.
    pub probes: u64,
    /// Join concatenations produced.
    pub join_matches: u64,
}

/// A SteM whose stored tuples carry query lineage.
struct SharedStem {
    key_col: usize,
    buckets: HashMap<Value, Vec<usize>>,
    slots: Vec<Option<(Tuple, BitSet)>>,
    arrival: VecDeque<(i64, usize)>,
    live: usize,
}

impl SharedStem {
    fn new(key_col: usize) -> Self {
        SharedStem {
            key_col,
            buckets: HashMap::new(),
            slots: Vec::new(),
            arrival: VecDeque::new(),
            live: 0,
        }
    }

    fn insert(&mut self, tuple: Tuple, lineage: BitSet) {
        let key = tuple.value(self.key_col).clone();
        let seq = tuple.timestamp().seq();
        let slot = self.slots.len();
        self.slots.push(Some((tuple, lineage)));
        self.buckets.entry(key).or_default().push(slot);
        self.arrival.push_back((seq, slot));
        self.live += 1;
    }

    fn probe<'a>(&'a self, key: &Value, out: &mut Vec<&'a (Tuple, BitSet)>) {
        if let Some(slots) = self.buckets.get(key) {
            for &s in slots {
                if let Some(entry) = &self.slots[s] {
                    out.push(entry);
                }
            }
        }
    }

    fn evict_before_seq(&mut self, seq: i64) -> usize {
        let mut evicted = 0;
        while let Some(&(ts, slot)) = self.arrival.front() {
            if ts >= seq {
                break;
            }
            self.arrival.pop_front();
            if let Some((t, _)) = self.slots[slot].take() {
                let key = t.value(self.key_col);
                if let Some(slots) = self.buckets.get_mut(key) {
                    slots.retain(|&s| s != slot);
                    if slots.is_empty() {
                        self.buckets.remove(key);
                    }
                }
                self.live -= 1;
                evicted += 1;
            }
        }
        evicted
    }

    fn len(&self) -> usize {
        self.live
    }

    /// Approximate heap footprint: stored tuples, lineage bitmaps, and the
    /// hash/arrival bookkeeping.
    fn approx_bytes(&self) -> usize {
        let mut b = self.slots.capacity() * std::mem::size_of::<Option<(Tuple, BitSet)>>()
            + self.arrival.capacity() * std::mem::size_of::<(i64, usize)>()
            + self.buckets.capacity() * std::mem::size_of::<(Value, Vec<usize>)>();
        for (k, slots) in &self.buckets {
            b += k.approx_bytes() + slots.capacity() * std::mem::size_of::<usize>();
        }
        for entry in self.slots.iter().flatten() {
            let (t, lineage) = entry;
            b += lineage.approx_bytes();
            b += (0..t.arity())
                .map(|i| t.value(i).approx_bytes())
                .sum::<usize>();
        }
        b
    }
}

struct SideState {
    qstem: QueryStem,
}

struct JoinState {
    left_key: usize,
    right_key: usize,
    left_store: SharedStem,
    right_store: SharedStem,
    joined_schema: SchemaRef,
    /// Sliding-window width (logical time) bounding SteM state.
    window_width: Option<i64>,
    latest_seq: i64,
    /// Queries whose footprint includes the join.
    join_queries: BitSet,
}

/// A multi-query (CACQ) eddy over one stream, optionally joined to a second.
pub struct SharedEddy {
    left: SideState,
    right: Option<SideState>,
    join: Option<JoinState>,
    /// Every registered query.
    all_queries: BitSet,
    /// Queries answered by the left stream alone.
    single_queries: BitSet,
    /// Reused per-push probe state for both sides' query SteMs.
    scratch: MatchScratch,
    stats: SharedEddyStats,
}

impl SharedEddy {
    /// A shared eddy over a single stream.
    pub fn single_stream(schema: SchemaRef) -> Self {
        SharedEddy {
            left: SideState {
                qstem: QueryStem::new(schema),
            },
            right: None,
            join: None,
            all_queries: BitSet::new(),
            single_queries: BitSet::new(),
            scratch: MatchScratch::new(),
            stats: SharedEddyStats::default(),
        }
    }

    /// A shared eddy over `left ⋈ right` on `left_key = right_key`
    /// (column names resolved per side). All join queries share this key —
    /// CACQ's shared-SteM assumption.
    pub fn joined(
        left: SchemaRef,
        left_key: &str,
        right: SchemaRef,
        right_key: &str,
        window_width: Option<i64>,
    ) -> Result<Self> {
        let lk = left.index_of(None, left_key)?;
        let rk = right.index_of(None, right_key)?;
        let joined_schema = Schema::concat(&left, &right).into_ref();
        Ok(SharedEddy {
            left: SideState {
                qstem: QueryStem::new(left),
            },
            right: Some(SideState {
                qstem: QueryStem::new(right),
            }),
            join: Some(JoinState {
                left_key: lk,
                right_key: rk,
                left_store: SharedStem::new(lk),
                right_store: SharedStem::new(rk),
                joined_schema,
                window_width,
                latest_seq: i64::MIN,
                join_queries: BitSet::new(),
            }),
            all_queries: BitSet::new(),
            single_queries: BitSet::new(),
            scratch: MatchScratch::new(),
            stats: SharedEddyStats::default(),
        })
    }

    /// Register a single-stream (left) selection query.
    pub fn add_select_query(&mut self, id: QueryId, pred: Option<&Expr>) -> Result<()> {
        if self.all_queries.contains(id) {
            return Err(TcqError::Capacity(format!("query {id} already registered")));
        }
        self.left.qstem.insert_query(id, pred)?;
        self.all_queries.insert(id);
        self.single_queries.insert(id);
        Ok(())
    }

    /// Register a join query with optional per-side selections. Requires a
    /// joined eddy.
    pub fn add_join_query(
        &mut self,
        id: QueryId,
        left_pred: Option<&Expr>,
        right_pred: Option<&Expr>,
    ) -> Result<()> {
        if self.all_queries.contains(id) {
            return Err(TcqError::Capacity(format!("query {id} already registered")));
        }
        let join = self
            .join
            .as_mut()
            .ok_or_else(|| TcqError::Executor("eddy has no shared join".into()))?;
        self.left.qstem.insert_query(id, left_pred)?;
        if let Some(right) = self.right.as_mut() {
            if let Err(e) = right.qstem.insert_query(id, right_pred) {
                // roll back left registration to stay consistent
                let _ = self.left.qstem.remove_query(id);
                return Err(e);
            }
        }
        join.join_queries.insert(id);
        self.all_queries.insert(id);
        Ok(())
    }

    /// Remove a query (either kind). Stored lineage bitmaps may still carry
    /// the id; emission intersects with live queries, so stale bits are
    /// harmless.
    pub fn remove_query(&mut self, id: QueryId) -> Result<()> {
        if !self.all_queries.contains(id) {
            return Err(TcqError::Executor(format!("query {id} not registered")));
        }
        let _ = self.left.qstem.remove_query(id);
        if let Some(right) = self.right.as_mut() {
            let _ = right.qstem.remove_query(id);
        }
        if let Some(join) = self.join.as_mut() {
            join.join_queries.remove(id);
        }
        self.all_queries.remove(id);
        self.single_queries.remove(id);
        Ok(())
    }

    /// Number of standing queries.
    pub fn query_count(&self) -> usize {
        self.all_queries.len()
    }

    /// Push a tuple of the left stream. Returns `(tuple, query-set)` pairs:
    /// each output tuple annotated with the queries it answers.
    pub fn push_left(&mut self, tuple: Tuple) -> Result<Vec<(Tuple, BitSet)>> {
        self.stats.tuples_in += 1;
        self.left.qstem.matching_into(&tuple, &mut self.scratch)?;
        let alive = self.scratch.alive();
        let mut out = Vec::new();

        // Single-stream deliveries (clone lineage only on a hit).
        if alive.intersects(&self.single_queries) {
            let mut singles = alive.clone();
            singles.intersect_with(&self.single_queries);
            self.stats.outputs += 1;
            out.push((tuple.clone(), singles));
        }

        // Shared join work.
        if let Some(join) = self.join.as_mut() {
            let seq = tuple.timestamp().seq();
            join.latest_seq = join.latest_seq.max(seq);
            if let Some(w) = join.window_width {
                let cutoff = join.latest_seq - w + 1;
                join.left_store.evict_before_seq(cutoff);
                join.right_store.evict_before_seq(cutoff);
            }
            if alive.intersects(&join.join_queries) {
                let mut join_alive = alive.clone();
                join_alive.intersect_with(&join.join_queries);
                // Build, then probe (CACQ routes lineage-dead tuples nowhere).
                join.left_store.insert(tuple.clone(), join_alive.clone());
                self.stats.builds += 1;
                self.stats.probes += 1;
                let key = tuple.value(join.left_key);
                let mut matches = Vec::new();
                join.right_store.probe(key, &mut matches);
                for (rt, r_lineage) in matches {
                    let mut qset = join_alive.clone();
                    qset.intersect_with(r_lineage);
                    qset.intersect_with(&self.all_queries);
                    if !qset.is_empty() {
                        let joined = tuple.concat(rt, join.joined_schema.clone());
                        self.stats.join_matches += 1;
                        self.stats.outputs += 1;
                        out.push((joined, qset));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Push a tuple of the right stream (join mode only).
    pub fn push_right(&mut self, tuple: Tuple) -> Result<Vec<(Tuple, BitSet)>> {
        let right = self
            .right
            .as_mut()
            .ok_or_else(|| TcqError::Executor("eddy has no right stream".into()))?;
        let join = self.join.as_mut().expect("right stream implies join");
        self.stats.tuples_in += 1;
        right.qstem.matching_into(&tuple, &mut self.scratch)?;
        let alive = self.scratch.alive();
        let mut out = Vec::new();
        let seq = tuple.timestamp().seq();
        join.latest_seq = join.latest_seq.max(seq);
        if let Some(w) = join.window_width {
            let cutoff = join.latest_seq - w + 1;
            join.left_store.evict_before_seq(cutoff);
            join.right_store.evict_before_seq(cutoff);
        }
        if alive.intersects(&join.join_queries) {
            let mut join_alive = alive.clone();
            join_alive.intersect_with(&join.join_queries);
            join.right_store.insert(tuple.clone(), join_alive.clone());
            self.stats.builds += 1;
            self.stats.probes += 1;
            let key = tuple.value(join.right_key);
            let mut matches = Vec::new();
            join.left_store.probe(key, &mut matches);
            for (lt, l_lineage) in matches {
                let mut qset = join_alive.clone();
                qset.intersect_with(l_lineage);
                qset.intersect_with(&self.all_queries);
                if !qset.is_empty() {
                    // Keep column order (left, right) regardless of arrival.
                    let joined = lt.concat(&tuple, join.joined_schema.clone());
                    self.stats.join_matches += 1;
                    self.stats.outputs += 1;
                    out.push((joined, qset));
                }
            }
        }
        Ok(out)
    }

    /// Counters.
    pub fn stats(&self) -> SharedEddyStats {
        self.stats
    }

    /// Tuples retained in the shared SteMs.
    pub fn state_size(&self) -> usize {
        self.join
            .as_ref()
            .map_or(0, |j| j.left_store.len() + j.right_store.len())
    }

    /// Approximate heap footprint in bytes: both sides' query SteMs, the
    /// probe scratch, and the shared join SteMs (stored tuples + lineage).
    pub fn approx_bytes(&self) -> usize {
        let mut b = self.left.qstem.approx_bytes()
            + self.scratch.approx_bytes()
            + self.all_queries.approx_bytes()
            + self.single_queries.approx_bytes();
        if let Some(right) = &self.right {
            b += right.qstem.approx_bytes();
        }
        if let Some(join) = &self.join {
            b += join.left_store.approx_bytes()
                + join.right_store.approx_bytes()
                + join.join_queries.approx_bytes();
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{CmpOp, DataType, Field, Timestamp, TupleBuilder};

    fn stock_schema() -> SchemaRef {
        Schema::qualified(
            "s",
            vec![
                Field::new("timestamp", DataType::Int),
                Field::new("sym", DataType::Str),
                Field::new("price", DataType::Float),
            ],
        )
        .into_ref()
    }

    fn tick(ts: i64, sym: &str, price: f64) -> Tuple {
        TupleBuilder::new(stock_schema())
            .push(ts)
            .push(sym)
            .push(price)
            .at(Timestamp::logical(ts))
            .build()
            .unwrap()
    }

    fn over(price: f64) -> Expr {
        Expr::col("price").cmp(CmpOp::Gt, Expr::lit(price))
    }

    #[test]
    fn single_stream_shared_selection() {
        let mut eddy = SharedEddy::single_stream(stock_schema());
        eddy.add_select_query(0, Some(&over(50.0))).unwrap();
        eddy.add_select_query(1, Some(&over(60.0))).unwrap();
        eddy.add_select_query(2, None).unwrap();

        let out = eddy.push_left(tick(1, "MSFT", 55.0)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.iter().collect::<Vec<_>>(), vec![0, 2]);

        let out = eddy.push_left(tick(2, "MSFT", 45.0)).unwrap();
        assert_eq!(out[0].1.iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn add_remove_queries_mid_stream() {
        let mut eddy = SharedEddy::single_stream(stock_schema());
        eddy.add_select_query(0, Some(&over(50.0))).unwrap();
        assert_eq!(eddy.push_left(tick(1, "A", 60.0)).unwrap().len(), 1);
        eddy.add_select_query(1, Some(&over(10.0))).unwrap();
        let out = eddy.push_left(tick(2, "A", 60.0)).unwrap();
        assert_eq!(out[0].1.len(), 2);
        eddy.remove_query(0).unwrap();
        let out = eddy.push_left(tick(3, "A", 60.0)).unwrap();
        assert_eq!(out[0].1.iter().collect::<Vec<_>>(), vec![1]);
        assert!(eddy.remove_query(0).is_err());
        assert_eq!(eddy.query_count(), 1);
    }

    fn sided(q: &str) -> SchemaRef {
        Schema::qualified(
            q,
            vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ],
        )
        .into_ref()
    }

    fn row(schema: &SchemaRef, k: i64, v: i64, ts: i64) -> Tuple {
        TupleBuilder::new(schema.clone())
            .push(k)
            .push(v)
            .at(Timestamp::logical(ts))
            .build()
            .unwrap()
    }

    #[test]
    fn shared_join_delivers_to_intersection_of_lineages() {
        let l = sided("L");
        let r = sided("R");
        let mut eddy = SharedEddy::joined(l.clone(), "k", r.clone(), "k", None).unwrap();
        // q0: no extra filters; q1: L.v > 5; q2: R.v > 5.
        eddy.add_join_query(0, None, None).unwrap();
        eddy.add_join_query(
            1,
            Some(&Expr::col("v").cmp(CmpOp::Gt, Expr::lit(5i64))),
            None,
        )
        .unwrap();
        eddy.add_join_query(
            2,
            None,
            Some(&Expr::col("v").cmp(CmpOp::Gt, Expr::lit(5i64))),
        )
        .unwrap();

        // L(k=1, v=10): passes q0, q1, q2 left side (q2 has no left filter).
        assert!(eddy.push_left(row(&l, 1, 10, 1)).unwrap().is_empty());
        // R(k=1, v=3): passes q0, q1 right side; fails q2's right filter.
        let out = eddy.push_right(row(&r, 1, 3, 2)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.iter().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(out[0].0.arity(), 4);

        // L(k=1, v=2): fails q1's left filter.
        let out = eddy.push_left(row(&l, 1, 2, 3)).unwrap();
        // joins with R(k=1,v=3): q0 only (q1 dead on left, q2 dead on right)
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn shared_join_does_work_once() {
        let l = sided("L");
        let r = sided("R");
        let mut eddy = SharedEddy::joined(l.clone(), "k", r.clone(), "k", None).unwrap();
        for q in 0..32 {
            eddy.add_join_query(q, None, None).unwrap();
        }
        eddy.push_left(row(&l, 1, 0, 1)).unwrap();
        let out = eddy.push_right(row(&r, 1, 0, 2)).unwrap();
        // 32 queries, but exactly one build each side and one join match.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.len(), 32);
        let st = eddy.stats();
        assert_eq!(st.builds, 2);
        assert_eq!(st.join_matches, 1);
    }

    #[test]
    fn window_bounds_shared_state() {
        let l = sided("L");
        let r = sided("R");
        let mut eddy = SharedEddy::joined(l.clone(), "k", r.clone(), "k", Some(5)).unwrap();
        eddy.add_join_query(0, None, None).unwrap();
        for ts in 1..=20 {
            eddy.push_left(row(&l, ts, 0, ts)).unwrap();
        }
        assert!(
            eddy.state_size() <= 5,
            "state {} exceeds window",
            eddy.state_size()
        );
        // Old partner (k=3, ts=3) evicted -> no match.
        assert!(eddy.push_right(row(&r, 3, 0, 21)).unwrap().is_empty());
        // Recent partner (k=19, ts=19) still in window [17, 21] -> match.
        assert_eq!(eddy.push_right(row(&r, 19, 0, 21)).unwrap().len(), 1);
    }

    #[test]
    fn lineage_dead_tuples_are_not_built() {
        let l = sided("L");
        let r = sided("R");
        let mut eddy = SharedEddy::joined(l.clone(), "k", r.clone(), "k", None).unwrap();
        eddy.add_join_query(
            0,
            Some(&Expr::col("v").cmp(CmpOp::Gt, Expr::lit(100i64))),
            None,
        )
        .unwrap();
        // Fails every query's left filters -> never stored.
        eddy.push_left(row(&l, 1, 5, 1)).unwrap();
        assert_eq!(eddy.state_size(), 0);
        assert_eq!(eddy.stats().builds, 0);
    }

    #[test]
    fn join_requires_join_mode() {
        let mut eddy = SharedEddy::single_stream(stock_schema());
        assert!(eddy.add_join_query(0, None, None).is_err());
        assert!(eddy.push_right(tick(1, "A", 1.0)).is_err());
    }
}
