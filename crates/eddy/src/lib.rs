//! Eddies: continuously adaptive tuple routing (TelegraphCQ §2.2).
//!
//! > "The role of an Eddy is to continuously route tuples among a set of
//! > other modules according to a routing policy. … these modules can serve
//! > all the roles traditionally handled by an offline query optimizer:
//! > ordering of operations, choice of access and query modules … Moreover,
//! > these modules can reconsider and revise these decisions while a query
//! > is in flight."
//!
//! The crate provides:
//!
//! * [`Eddy`] — the single-query eddy: commutative modules, per-tuple
//!   lineage (done bits), pluggable [`RoutingPolicy`], and the §4.3
//!   "adapting adaptivity" knobs (decision batching).
//! * Routing policies — [`FixedPolicy`] (a static plan, the baseline),
//!   [`RandomPolicy`], [`LotteryPolicy`] (the ticket scheme of \[AH00\]),
//!   and [`GreedyPolicy`] (rank by observed selectivity/cost).
//! * [`SharedEddy`] — the CACQ-mode eddy (§3.1): one eddy executes many
//!   continuous queries over shared grouped filters and shared SteMs, with
//!   per-tuple query lineage bitmaps.
//!
//! ## Routing discipline
//!
//! The eddy is single-threaded (it runs inside one executor Dispatch Unit),
//! so tuples are routed serially to completion. Two invariants:
//!
//! 1. **Build-first**: a base tuple's first visit is to its own source's
//!    SteM (when one exists). This is the standard SteM discipline: with
//!    serial processing it guarantees each join match is produced exactly
//!    once and join outputs' lineage is statically known.
//! 2. **Consume-on-probe**: a probe visit consumes the probing tuple; its
//!    concatenations return to the eddy and continue routing with inherited
//!    lineage.
//!
//! # Example: an adaptive two-filter query
//!
//! ```
//! use tcq_common::{CmpOp, DataType, Expr, Field, Schema, Timestamp, TupleBuilder};
//! use tcq_eddy::{Eddy, EddyConfig, LotteryPolicy, ModuleSpec};
//! use tcq_operators::SelectOp;
//!
//! let schema = Schema::qualified(
//!     "S",
//!     vec![Field::new("a", DataType::Int), Field::new("b", DataType::Int)],
//! )
//! .into_ref();
//!
//! let mut eddy = Eddy::new(
//!     &["S"],
//!     Box::new(LotteryPolicy::new()),
//!     EddyConfig::default(),
//! )
//! .unwrap();
//! let s = eddy.source_bit("S").unwrap();
//! for (name, col) in [("a<10", "a"), ("b<10", "b")] {
//!     let filter = SelectOp::new(
//!         name,
//!         &Expr::col(col).cmp(CmpOp::Lt, Expr::lit(10i64)),
//!         &schema,
//!     )
//!     .unwrap();
//!     eddy.add_module(ModuleSpec::filter(Box::new(filter), s)).unwrap();
//! }
//!
//! let mut emitted = 0;
//! for i in 0..100i64 {
//!     let t = TupleBuilder::new(schema.clone())
//!         .push(i % 20)
//!         .push(i % 15)
//!         .at(Timestamp::logical(i))
//!         .build()
//!         .unwrap();
//!     emitted += eddy.process(t).unwrap().len();
//! }
//! // Conjunction of the two filters, whatever order the eddy chose:
//! assert_eq!(emitted, (0..100).filter(|i| i % 20 < 10 && i % 15 < 10).count());
//! ```

#![warn(missing_docs)]

pub mod eddy;
pub mod lineage;
pub mod policy;
pub mod shared;

pub use eddy::{Eddy, EddyConfig, EddyStats, Emitted, ModuleSpec};
pub use lineage::{SignatureCache, SourceSet};
pub use policy::{
    FixedPolicy, GreedyPolicy, LotteryPolicy, ModuleObservation, ModuleStats, RandomPolicy,
    RoutingPolicy,
};
pub use shared::{SharedEddy, SharedEddyStats};
