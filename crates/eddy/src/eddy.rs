//! The single-query eddy.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use tcq_common::rng::{seeded, TcqRng};
use tcq_common::{ColumnBatch, Result, SchemaRef, TcqError, Tuple};
use tcq_operators::{ColumnarVerdict, EddyModule, Routed};

use crate::lineage::{SignatureCache, SourceSet};
use crate::policy::{ModuleObservation, ModuleStats, RoutingPolicy};

/// A module registered with an eddy, plus its applicability rule.
///
/// A module applies to a tuple with signature `sig` when
/// `sig == build_exact` (a *build* visit), or when all of:
/// `required_all ⊆ sig`, `sig ∩ excluded = ∅`, and
/// `required_any = ∅ ∨ sig ∩ required_any ≠ ∅`.
pub struct ModuleSpec {
    /// The module itself.
    pub module: Box<dyn EddyModule>,
    /// Sources whose columns must all be present.
    pub required_all: SourceSet,
    /// At least one of these sources must be present (0 = no constraint).
    pub required_any: SourceSet,
    /// None of these sources may be present.
    pub excluded: SourceSet,
    /// Exact signature for which this module is the mandatory *first* visit
    /// (SteM build). `None` for non-storing modules.
    pub build_exact: Option<SourceSet>,
}

impl ModuleSpec {
    /// A filter-style module over the given sources (applies to any tuple
    /// spanning them all).
    pub fn filter(module: Box<dyn EddyModule>, required_all: SourceSet) -> Self {
        ModuleSpec {
            module,
            required_all,
            required_any: 0,
            excluded: 0,
            build_exact: None,
        }
    }

    /// A SteM-style module: stores base tuples of `stores`; probed by
    /// tuples spanning any of `probed_by` and not spanning `stores`.
    pub fn stem(module: Box<dyn EddyModule>, stores: SourceSet, probed_by: SourceSet) -> Self {
        ModuleSpec {
            module,
            required_all: 0,
            required_any: probed_by,
            excluded: stores,
            build_exact: Some(stores),
        }
    }

    fn applies(&self, sig: SourceSet) -> bool {
        if self.build_exact == Some(sig) {
            return true;
        }
        sig & self.excluded == 0
            && sig & self.required_all == self.required_all
            && (self.required_any == 0 || sig & self.required_any != 0)
    }

    fn is_build_for(&self, sig: SourceSet) -> bool {
        self.build_exact == Some(sig)
    }
}

/// Eddy configuration: the §4.3 "adapting adaptivity" knobs.
#[derive(Debug, Clone)]
pub struct EddyConfig {
    /// Tuples per routing decision ("batching tuples, by dynamically
    /// adjusting the frequency of routing decisions", §4.3). 1 = decide for
    /// every tuple (maximum adaptivity); N = the order chosen for one tuple
    /// is reused for the next N-1 tuples of the same signature.
    pub batch_size: usize,
    /// RNG seed (policies draw lotteries from this stream).
    pub seed: u64,
}

impl Default for EddyConfig {
    fn default() -> Self {
        EddyConfig {
            batch_size: 1,
            seed: 0x7E1E_64AF,
        }
    }
}

/// Aggregate counters for one eddy.
#[derive(Debug, Clone, Copy, Default)]
pub struct EddyStats {
    /// Base tuples pushed in.
    pub tuples_in: u64,
    /// Tuples emitted at the eddy output.
    pub emitted: u64,
    /// Module visits performed.
    pub visits: u64,
    /// Routing decisions made (≤ visits when batching or forced builds).
    pub decisions: u64,
}

/// Per-tuple routing state.
struct InFlight {
    tuple: Tuple,
    sig: SourceSet,
    /// Bit i set ⇔ module i visited.
    done: u64,
}

/// A group of in-flight tuples sharing one lineage signature and one
/// visit history, routed together: each module visit costs the group one
/// routing decision, one timing probe, and one virtual dispatch (via
/// [`EddyModule::process_batch`]) instead of one per tuple.
struct BatchInFlight {
    tuples: Vec<Tuple>,
    sig: SourceSet,
    /// Bit i set ⇔ module i visited (shared by the whole group).
    done: u64,
}

/// One run of eddy output from [`Eddy::process_batch_columnar`]: either a
/// batch that stayed columnar end-to-end, or rows materialized by a
/// fallback. Runs arrive in exactly the order the row path would have
/// emitted the same tuples.
pub enum Emitted {
    /// Row-materialized output (a module in the chain fell back).
    Rows(Vec<Tuple>),
    /// Columnar output (the whole module chain ran vectorized).
    Columns(ColumnBatch),
}

impl Emitted {
    /// Number of output tuples in this run.
    pub fn len(&self) -> usize {
        match self {
            Emitted::Rows(v) => v.len(),
            Emitted::Columns(b) => b.len(),
        }
    }

    /// True when the run carries no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize this run's tuples, appending to `out`.
    pub fn append_rows(self, out: &mut Vec<Tuple>) {
        match self {
            Emitted::Rows(mut v) => out.append(&mut v),
            Emitted::Columns(b) => out.extend(b.to_tuples()),
        }
    }
}

/// A dual-representation in-flight group: the row mirror, the columnar
/// mirror, or both (ingress runs keep both so SteM builds can store row
/// tuples while filters and probes stay vectorized). Invariant: when both
/// are present they describe the same tuples in the same order.
struct ColGroup {
    rows: Vec<Tuple>,
    cols: Option<ColumnBatch>,
    sig: SourceSet,
    done: u64,
}

impl ColGroup {
    fn len(&self) -> usize {
        match &self.cols {
            Some(b) => b.len(),
            None => self.rows.len(),
        }
    }

    /// Drop the columnar mirror, materializing rows first if they are the
    /// only representation left behind.
    fn materialize_rows(&mut self) {
        if let Some(b) = self.cols.take() {
            if self.rows.is_empty() {
                self.rows = b.to_tuples();
            }
        }
    }
}

/// The adaptive tuple router for one continuous query (paper §2.2).
pub struct Eddy {
    sig_cache: SignatureCache,
    modules: Vec<ModuleSpec>,
    stats: Vec<ModuleStats>,
    policy: Box<dyn RoutingPolicy>,
    rng: TcqRng,
    config: EddyConfig,
    footprint: SourceSet,
    queue: VecDeque<InFlight>,
    eddy_stats: EddyStats,
    /// Batching state: per-signature recorded visit order + uses remaining.
    batch: HashMap<SourceSet, (Vec<usize>, usize)>,
    /// Scratch candidate buffer.
    candidates: Vec<usize>,
    /// Scratch per-tuple results buffer for batched visits.
    routed_scratch: Vec<Routed>,
    /// Scratch per-row survival mask for columnar visits.
    keep_scratch: Vec<bool>,
}

impl Eddy {
    /// Create an eddy over `sources` (qualifiers) with a routing policy.
    pub fn new(
        sources: &[impl AsRef<str>],
        policy: Box<dyn RoutingPolicy>,
        config: EddyConfig,
    ) -> Result<Self> {
        let sig_cache = SignatureCache::new(sources)?;
        let footprint = sig_cache.footprint();
        let rng = seeded(config.seed);
        Ok(Eddy {
            sig_cache,
            modules: Vec::new(),
            stats: Vec::new(),
            policy,
            rng,
            config,
            footprint,
            queue: VecDeque::new(),
            eddy_stats: EddyStats::default(),
            batch: HashMap::new(),
            candidates: Vec::new(),
            routed_scratch: Vec::new(),
            keep_scratch: Vec::new(),
        })
    }

    /// Register a module; at most 64 per eddy (done-sets are one word).
    pub fn add_module(&mut self, spec: ModuleSpec) -> Result<usize> {
        if self.modules.len() >= 64 {
            return Err(TcqError::Capacity(
                "an eddy supports at most 64 modules".into(),
            ));
        }
        self.modules.push(spec);
        self.stats.push(ModuleStats::default());
        Ok(self.modules.len() - 1)
    }

    /// The bit for a source qualifier (for building [`ModuleSpec`]s).
    pub fn source_bit(&self, source: &str) -> Result<SourceSet> {
        self.sig_cache.bit_of(source)
    }

    /// Route one base tuple to completion; returns everything emitted at
    /// the eddy output (tuples spanning the full query footprint that have
    /// visited every applicable module).
    pub fn process(&mut self, tuple: Tuple) -> Result<Vec<Tuple>> {
        let mut out = Vec::new();
        self.process_into(tuple, &mut out)?;
        Ok(out)
    }

    /// Like [`Eddy::process`] but appends into a caller buffer (hot path).
    pub fn process_into(&mut self, tuple: Tuple, out: &mut Vec<Tuple>) -> Result<()> {
        self.eddy_stats.tuples_in += 1;
        let sig = self.sig_cache.signature(tuple.schema())?;
        self.queue.push_back(InFlight {
            tuple,
            sig,
            done: 0,
        });
        while let Some(inf) = self.queue.pop_front() {
            self.route_to_completion(inf, out)?;
        }
        Ok(())
    }

    fn route_to_completion(&mut self, mut inf: InFlight, out: &mut Vec<Tuple>) -> Result<()> {
        // Batching: count tuples against the signature's recorded order;
        // after batch_size tuples, expire it so the policy decides afresh.
        if self.config.batch_size > 1 {
            let entry = self.batch.entry(inf.sig).or_insert((Vec::new(), 0));
            entry.1 += 1;
            if entry.1 > self.config.batch_size {
                entry.0.clear();
                entry.1 = 1;
            }
        }
        loop {
            // Mandatory build-first visit, outside the policy's purview.
            let next = if let Some(b) = self.pending_build(&inf) {
                b
            } else {
                self.candidates.clear();
                for (i, spec) in self.modules.iter().enumerate() {
                    if inf.done & (1 << i) == 0 && spec.applies(inf.sig) {
                        self.candidates.push(i);
                    }
                }
                if self.candidates.is_empty() {
                    if inf.sig == self.footprint {
                        self.eddy_stats.emitted += 1;
                        out.push(inf.tuple);
                    }
                    return Ok(());
                }
                self.choose(inf.sig)?
            };

            let start = Instant::now();
            let routed = self.modules[next].module.process(&inf.tuple)?;
            let nanos = start.elapsed().as_nanos() as u64;
            inf.done |= 1 << next;
            self.eddy_stats.visits += 1;

            let st = &mut self.stats[next];
            st.routed += 1;
            st.nanos += nanos;
            if routed.keep {
                st.kept += 1;
            }
            st.produced += routed.outputs.len() as u64;
            self.policy.observe(ModuleObservation {
                module: next,
                kept: routed.keep,
                produced: routed.outputs.len(),
                nanos,
            });

            for o in routed.outputs {
                let osig = self.sig_cache.signature(o.schema())?;
                self.queue.push_back(InFlight {
                    tuple: o,
                    sig: osig,
                    done: inf.done,
                });
            }
            if !routed.keep {
                return Ok(());
            }
        }
    }

    /// Route a batch of base tuples to completion, appending emissions to
    /// `out`. Semantically equivalent to calling [`Eddy::process_into`]
    /// once per tuple in order — modules are commutative, so the emitted
    /// multiset is identical — but amortized end-to-end: tuples are
    /// grouped into consecutive runs of one lineage signature, and each
    /// (signature, batch) group pays **one** routing decision, one timing
    /// probe, and one virtual dispatch per module visit, via
    /// [`EddyModule::process_batch`]. The §4.3 batching counter is still
    /// charged per tuple, so `EddyConfig::batch_size` keeps governing how
    /// long a recorded visit order stays frozen across drains.
    pub fn process_batch(&mut self, tuples: Vec<Tuple>, out: &mut Vec<Tuple>) -> Result<()> {
        if tuples.is_empty() {
            return Ok(());
        }
        self.eddy_stats.tuples_in += tuples.len() as u64;
        let mut work: VecDeque<BatchInFlight> = VecDeque::new();
        for t in tuples {
            let sig = self.sig_cache.signature(t.schema())?;
            match work.back_mut() {
                Some(g) if g.sig == sig => g.tuples.push(t),
                _ => work.push_back(BatchInFlight {
                    tuples: vec![t],
                    sig,
                    done: 0,
                }),
            }
        }
        while let Some(mut group) = work.pop_front() {
            // Charge the batching counter once per tuple entering routing,
            // expiring the recorded order after batch_size tuples — the
            // same accounting as the per-tuple path.
            if self.config.batch_size > 1 {
                let entry = self.batch.entry(group.sig).or_insert((Vec::new(), 0));
                entry.1 += group.tuples.len();
                if entry.1 > self.config.batch_size {
                    entry.0.clear();
                    entry.1 = group.tuples.len();
                }
            }
            loop {
                let next = if let Some(b) = self.pending_build_for(group.sig, group.done) {
                    b
                } else {
                    self.candidates.clear();
                    for (i, spec) in self.modules.iter().enumerate() {
                        if group.done & (1 << i) == 0 && spec.applies(group.sig) {
                            self.candidates.push(i);
                        }
                    }
                    if self.candidates.is_empty() {
                        if group.sig == self.footprint {
                            self.eddy_stats.emitted += group.tuples.len() as u64;
                            out.append(&mut group.tuples);
                        }
                        break;
                    }
                    self.choose(group.sig)?
                };

                let start = Instant::now();
                let mut routed = std::mem::take(&mut self.routed_scratch);
                self.modules[next]
                    .module
                    .process_batch(&group.tuples, &mut routed)?;
                let nanos = start.elapsed().as_nanos() as u64;
                group.done |= 1 << next;
                let n = group.tuples.len() as u64;
                self.eddy_stats.visits += n;
                let per_tuple_nanos = nanos / n;

                let st = &mut self.stats[next];
                st.routed += n;
                st.nanos += nanos;
                for r in &routed {
                    if r.keep {
                        st.kept += 1;
                    }
                    st.produced += r.outputs.len() as u64;
                }
                for r in &routed {
                    self.policy.observe(ModuleObservation {
                        module: next,
                        kept: r.keep,
                        produced: r.outputs.len(),
                        nanos: per_tuple_nanos,
                    });
                }

                // Partition: survivors stay grouped; outputs regroup by
                // their own signature, inheriting the visit history.
                let visited = std::mem::take(&mut group.tuples);
                for (t, r) in visited.into_iter().zip(routed.iter_mut()) {
                    if r.keep {
                        group.tuples.push(t);
                    }
                    for o in std::mem::take(&mut r.outputs) {
                        let osig = self.sig_cache.signature(o.schema())?;
                        match work.back_mut() {
                            Some(g) if g.sig == osig && g.done == group.done => g.tuples.push(o),
                            _ => work.push_back(BatchInFlight {
                                tuples: vec![o],
                                sig: osig,
                                done: group.done,
                            }),
                        }
                    }
                }
                routed.clear();
                self.routed_scratch = routed;
                if group.tuples.is_empty() {
                    break;
                }
            }
        }
        Ok(())
    }

    /// Route a batch of base tuples to completion through the columnar
    /// hot path, appending emitted runs to `out`. Semantically equivalent
    /// to [`Eddy::process_batch`] over the same tuples — identical
    /// grouping, batching accounting, and emitted tuples in the same
    /// order — but each signature run is converted to a [`ColumnBatch`]
    /// **once at the ingress edge** (prehashing the join-key column when
    /// the applicable SteMs agree on one) and modules with a columnar
    /// implementation process whole columns instead of rows. A
    /// [`ColumnarVerdict::Fallback`] runs the visit on the row path; if
    /// that visit passes every row untouched the columnar mirror stays
    /// alive for the rest of the chain, otherwise the run continues
    /// row-shaped.
    pub fn process_batch_columnar(
        &mut self,
        tuples: Vec<Tuple>,
        out: &mut Vec<Emitted>,
    ) -> Result<()> {
        if tuples.is_empty() {
            return Ok(());
        }
        self.eddy_stats.tuples_in += tuples.len() as u64;
        let mut work: VecDeque<ColGroup> = VecDeque::new();
        for t in tuples {
            let sig = self.sig_cache.signature(t.schema())?;
            match work.back_mut() {
                Some(g) if g.sig == sig => g.rows.push(t),
                _ => work.push_back(ColGroup {
                    rows: vec![t],
                    cols: None,
                    sig,
                    done: 0,
                }),
            }
        }
        // Ingress edge: one row→columnar conversion per run.
        for g in work.iter_mut() {
            self.attach_columns(g);
        }
        while let Some(mut group) = work.pop_front() {
            if self.config.batch_size > 1 {
                let entry = self.batch.entry(group.sig).or_insert((Vec::new(), 0));
                entry.1 += group.len();
                if entry.1 > self.config.batch_size {
                    entry.0.clear();
                    entry.1 = group.len();
                }
            }
            loop {
                let next = if let Some(b) = self.pending_build_for(group.sig, group.done) {
                    b
                } else {
                    self.candidates.clear();
                    for (i, spec) in self.modules.iter().enumerate() {
                        if group.done & (1 << i) == 0 && spec.applies(group.sig) {
                            self.candidates.push(i);
                        }
                    }
                    if self.candidates.is_empty() {
                        if group.sig == self.footprint {
                            self.eddy_stats.emitted += group.len() as u64;
                            out.push(match group.cols.take() {
                                Some(b) => Emitted::Columns(b),
                                None => Emitted::Rows(std::mem::take(&mut group.rows)),
                            });
                        }
                        break;
                    }
                    self.choose(group.sig)?
                };

                let n = group.len() as u64;
                let start = Instant::now();
                let verdict = match &group.cols {
                    Some(batch) => {
                        let rows = (!group.rows.is_empty()).then_some(group.rows.as_slice());
                        self.keep_scratch.clear();
                        self.modules[next].module.process_columnar(
                            batch,
                            rows,
                            &mut self.keep_scratch,
                        )?
                    }
                    None => ColumnarVerdict::Fallback,
                };

                if matches!(verdict, ColumnarVerdict::Fallback) {
                    // Row path for this visit — the same accounting and
                    // regrouping as `process_batch`, plus mirror upkeep.
                    if group.rows.is_empty() {
                        if let Some(b) = &group.cols {
                            group.rows = b.to_tuples();
                        }
                    }
                    let mut routed = std::mem::take(&mut self.routed_scratch);
                    self.modules[next]
                        .module
                        .process_batch(&group.rows, &mut routed)?;
                    let nanos = start.elapsed().as_nanos() as u64;
                    group.done |= 1 << next;
                    self.eddy_stats.visits += n;
                    let per_tuple_nanos = nanos / n;
                    let st = &mut self.stats[next];
                    st.routed += n;
                    st.nanos += nanos;
                    for r in &routed {
                        if r.keep {
                            st.kept += 1;
                        }
                        st.produced += r.outputs.len() as u64;
                    }
                    for r in &routed {
                        self.policy.observe(ModuleObservation {
                            module: next,
                            kept: r.keep,
                            produced: r.outputs.len(),
                            nanos: per_tuple_nanos,
                        });
                    }
                    let untouched = routed.iter().all(|r| r.keep && r.outputs.is_empty());
                    if untouched {
                        // Pass-through visit: both mirrors stay valid.
                        routed.clear();
                        self.routed_scratch = routed;
                        continue;
                    }
                    group.cols = None;
                    let visited = std::mem::take(&mut group.rows);
                    for (t, r) in visited.into_iter().zip(routed.iter_mut()) {
                        if r.keep {
                            group.rows.push(t);
                        }
                        for o in std::mem::take(&mut r.outputs) {
                            let osig = self.sig_cache.signature(o.schema())?;
                            match work.back_mut() {
                                Some(g) if g.sig == osig && g.done == group.done => {
                                    g.materialize_rows();
                                    g.rows.push(o);
                                }
                                _ => work.push_back(ColGroup {
                                    rows: vec![o],
                                    cols: None,
                                    sig: osig,
                                    done: group.done,
                                }),
                            }
                        }
                    }
                    routed.clear();
                    self.routed_scratch = routed;
                    if group.rows.is_empty() {
                        break;
                    }
                    continue;
                }

                let nanos = start.elapsed().as_nanos() as u64;
                group.done |= 1 << next;
                self.eddy_stats.visits += n;
                let per_tuple_nanos = nanos / n;
                let st = &mut self.stats[next];
                st.routed += n;
                st.nanos += nanos;
                match verdict {
                    ColumnarVerdict::KeepAll => {
                        st.kept += n;
                        for _ in 0..n {
                            self.policy.observe(ModuleObservation {
                                module: next,
                                kept: true,
                                produced: 0,
                                nanos: per_tuple_nanos,
                            });
                        }
                    }
                    ColumnarVerdict::Filtered => {
                        let keep = std::mem::take(&mut self.keep_scratch);
                        st.kept += keep.iter().filter(|&&k| k).count() as u64;
                        for &k in &keep {
                            self.policy.observe(ModuleObservation {
                                module: next,
                                kept: k,
                                produced: 0,
                                nanos: per_tuple_nanos,
                            });
                        }
                        if let Some(b) = &mut group.cols {
                            b.retain(&keep);
                        }
                        if !group.rows.is_empty() {
                            let mut it = keep.iter();
                            group.rows.retain(|_| *it.next().unwrap());
                        }
                        self.keep_scratch = keep;
                        if group.len() == 0 {
                            break;
                        }
                    }
                    ColumnarVerdict::Consumed(outb) => {
                        let total = outb.len() as u64;
                        st.produced += total;
                        // The batch folds per-row fanout into one result;
                        // spread it evenly over the observations — same
                        // totals as the row path's exact per-tuple counts,
                        // so selectivity estimates agree.
                        let base = total / n;
                        let rem = (total % n) as usize;
                        for i in 0..n as usize {
                            self.policy.observe(ModuleObservation {
                                module: next,
                                kept: false,
                                produced: (base + u64::from(i < rem)) as usize,
                                nanos: per_tuple_nanos,
                            });
                        }
                        if !outb.is_empty() {
                            let osig = self.sig_cache.signature(outb.schema())?;
                            match work.back_mut() {
                                Some(g) if g.sig == osig && g.done == group.done => {
                                    match &mut g.cols {
                                        Some(back)
                                            if g.rows.is_empty()
                                                && Arc::ptr_eq(back.schema(), outb.schema()) =>
                                        {
                                            for row in 0..outb.len() {
                                                back.push_row_from(&outb, row);
                                            }
                                        }
                                        _ => {
                                            g.materialize_rows();
                                            g.rows.extend(outb.to_tuples());
                                        }
                                    }
                                }
                                _ => work.push_back(ColGroup {
                                    rows: Vec::new(),
                                    cols: Some(outb),
                                    sig: osig,
                                    done: group.done,
                                }),
                            }
                        }
                        // The whole group was consumed by the probe.
                        break;
                    }
                    ColumnarVerdict::Fallback => unreachable!("handled above"),
                }
            }
        }
        Ok(())
    }

    /// Build the columnar mirror for an ingress run: one conversion per
    /// run, prehashing the key column every applicable SteM agrees on so
    /// builds and probes alike find their key hashes memoized (each key
    /// hashed exactly once per tuple, at the edge).
    fn attach_columns(&mut self, g: &mut ColGroup) {
        let Some(first) = g.rows.first() else {
            return;
        };
        let schema = first.schema().clone();
        if g.rows.iter().any(|t| !Arc::ptr_eq(t.schema(), &schema)) {
            // A mixed-schema run (same signature, different column order)
            // has no single columnar shape: stay row-shaped.
            return;
        }
        let mut hint = None;
        let mut conflict = false;
        for spec in self.modules.iter_mut() {
            if !spec.applies(g.sig) {
                continue;
            }
            if let Some(col) = spec.module.key_column_hint(&schema) {
                match hint {
                    None => hint = Some(col),
                    Some(h) if h == col => {}
                    Some(_) => conflict = true,
                }
            }
        }
        let key_col = if conflict { None } else { hint };
        g.cols = Some(ColumnBatch::from_tuples(schema, &g.rows, key_col));
    }

    fn pending_build(&self, inf: &InFlight) -> Option<usize> {
        self.pending_build_for(inf.sig, inf.done)
    }

    fn pending_build_for(&self, sig: SourceSet, done: u64) -> Option<usize> {
        self.modules
            .iter()
            .enumerate()
            .find(|(i, m)| m.is_build_for(sig) && done & (1 << i) == 0)
            .map(|(i, _)| i)
    }

    /// One routing decision, honouring the batching knob: within a batch,
    /// the order recorded for the batch's first tuple is replayed; only
    /// when the recording has no applicable module is the policy consulted
    /// (extending the recording).
    fn choose(&mut self, sig: SourceSet) -> Result<usize> {
        if self.config.batch_size > 1 {
            if let Some((order, _)) = self.batch.get(&sig) {
                if let Some(&m) = order.iter().find(|&&m| self.candidates.contains(&m)) {
                    return Ok(m);
                }
            }
        }
        self.eddy_stats.decisions += 1;
        let m = self
            .policy
            .choose(&self.candidates, &self.stats, &mut self.rng);
        if self.config.batch_size > 1 {
            let entry = self.batch.entry(sig).or_insert((Vec::new(), 1));
            if !entry.0.contains(&m) {
                entry.0.push(m);
            }
        }
        Ok(m)
    }

    /// Window maintenance: evict state older than `seq` in every module.
    pub fn evict_before_seq(&mut self, seq: i64) {
        for spec in &mut self.modules {
            spec.module.evict_before_seq(seq);
        }
    }

    /// Eddy-level counters.
    pub fn stats(&self) -> EddyStats {
        self.eddy_stats
    }

    /// Per-module observed statistics.
    pub fn module_stats(&self) -> &[ModuleStats] {
        &self.stats
    }

    /// Names of registered modules, by index.
    pub fn module_names(&self) -> Vec<&str> {
        self.modules.iter().map(|m| m.module.name()).collect()
    }

    /// The policy's name (for experiment reporting).
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Total retained state across modules, in tuples.
    pub fn state_size(&self) -> usize {
        self.modules.iter().map(|m| m.module.state_size()).sum()
    }

    /// Checkpoint export: for every module with dirty state groups,
    /// append `(module_index, group_hash, encoded_group)` fragments.
    /// Module indices are stable across a query resubmission (modules are
    /// registered in plan order), which is what lets a restored server
    /// route fragments back. Dirt is NOT cleared here — call
    /// [`Eddy::clear_dirty`] after the delta commits durably.
    pub fn export_dirty_state(&mut self, out: &mut Vec<(usize, u64, Vec<u8>)>) -> Result<()> {
        let mut scratch = Vec::new();
        for (idx, spec) in self.modules.iter_mut().enumerate() {
            scratch.clear();
            spec.module.export_dirty_groups(&mut scratch)?;
            for (hash, bytes) in scratch.drain(..) {
                out.push((idx, hash, bytes));
            }
        }
        Ok(())
    }

    /// Checkpoint restore: hand one encoded group back to the module it
    /// was exported from.
    pub fn import_module_group(&mut self, module: usize, hash: u64, bytes: &[u8]) -> Result<()> {
        let n = self.modules.len();
        let spec = self.modules.get_mut(module).ok_or_else(|| {
            TcqError::Executor(format!("checkpoint names module {module}, eddy has {n}"))
        })?;
        spec.module.import_group(hash, bytes)
    }

    /// Total dirty state groups across modules (pending checkpoint).
    pub fn dirty_len(&self) -> usize {
        self.modules.iter().map(|m| m.module.dirty_len()).sum()
    }

    /// Mark all module state clean — only after a successful durable
    /// commit of the exported delta.
    pub fn clear_dirty(&mut self) {
        for spec in &mut self.modules {
            spec.module.clear_dirty();
        }
    }

    /// Signature of a schema under this eddy's source mapping.
    pub fn signature(&mut self, schema: &SchemaRef) -> Result<SourceSet> {
        self.sig_cache.signature(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FixedPolicy, GreedyPolicy, LotteryPolicy, RandomPolicy};
    use tcq_common::{CmpOp, DataType, Expr, Field, Schema, Timestamp, TupleBuilder};
    use tcq_operators::{symmetric_hash_join, SelectOp};

    fn s_schema(q: &str) -> SchemaRef {
        Schema::qualified(
            q,
            vec![
                Field::new("k", DataType::Int),
                Field::new("x", DataType::Int),
            ],
        )
        .into_ref()
    }

    fn row(schema: &SchemaRef, k: i64, x: i64, ts: i64) -> Tuple {
        TupleBuilder::new(schema.clone())
            .push(k)
            .push(x)
            .at(Timestamp::logical(ts))
            .build()
            .unwrap()
    }

    fn filter_eddy(policy: Box<dyn RoutingPolicy>) -> (Eddy, SchemaRef) {
        let schema = s_schema("S");
        let mut eddy = Eddy::new(&["S"], policy, EddyConfig::default()).unwrap();
        let s_bit = eddy.source_bit("S").unwrap();
        // two commutative filters: x % 2 == 0 is not expressible, use ranges
        let f1 = SelectOp::new(
            "x>=50",
            &Expr::col("x").cmp(CmpOp::Ge, Expr::lit(50i64)),
            &schema,
        )
        .unwrap();
        let f2 = SelectOp::new(
            "x<75",
            &Expr::col("x").cmp(CmpOp::Lt, Expr::lit(75i64)),
            &schema,
        )
        .unwrap();
        eddy.add_module(ModuleSpec::filter(Box::new(f1), s_bit))
            .unwrap();
        eddy.add_module(ModuleSpec::filter(Box::new(f2), s_bit))
            .unwrap();
        (eddy, schema)
    }

    #[test]
    fn filters_conjoin_regardless_of_policy() {
        for policy in [
            Box::new(FixedPolicy::new(vec![0, 1])) as Box<dyn RoutingPolicy>,
            Box::new(RandomPolicy),
            Box::new(LotteryPolicy::new()),
            Box::new(GreedyPolicy::new()),
        ] {
            let (mut eddy, schema) = filter_eddy(policy);
            let mut emitted = Vec::new();
            for x in 0..100 {
                emitted.extend(eddy.process(row(&schema, x, x, x)).unwrap());
            }
            let xs: Vec<i64> = emitted
                .iter()
                .map(|t| t.value(1).as_int().unwrap())
                .collect();
            assert_eq!(
                xs,
                (50..75).collect::<Vec<i64>>(),
                "policy changed semantics"
            );
        }
    }

    #[test]
    fn lottery_converges_to_selective_filter_first() {
        // f1 (x>=50) passes 50%, f2 (x<75) passes 75% on uniform 0..100.
        // After warm-up, lottery should route most tuples to f1 first, so
        // f1.routed >> f2.routed (f2 sees only survivors of f1 most times).
        let (mut eddy, schema) = filter_eddy(Box::new(LotteryPolicy::new().with_explore(0.02)));
        for i in 0..20_000i64 {
            let x = i % 100;
            eddy.process(row(&schema, x, x, i)).unwrap();
        }
        let st = eddy.module_stats();
        // If routed first always: f1.routed = 20k, f2.routed ≈ 10k.
        // If random: both ≈ 15k. Require clear preference.
        assert!(
            st[0].routed as f64 > st[1].routed as f64 * 1.25,
            "lottery failed to prefer selective filter: {:?}",
            (st[0].routed, st[1].routed)
        );
    }

    #[test]
    fn eddy_join_matches_reference() {
        let s = s_schema("S");
        let t = s_schema("T");
        let mut eddy = Eddy::new(
            &["S", "T"],
            Box::new(LotteryPolicy::new()),
            EddyConfig::default(),
        )
        .unwrap();
        let (s_bit, t_bit) = (eddy.source_bit("S").unwrap(), eddy.source_bit("T").unwrap());
        let (stem_s, stem_t) = symmetric_hash_join(&s, "S", "k", &t, "T", "k").unwrap();
        eddy.add_module(ModuleSpec::stem(Box::new(stem_s), s_bit, t_bit))
            .unwrap();
        eddy.add_module(ModuleSpec::stem(Box::new(stem_t), t_bit, s_bit))
            .unwrap();
        // filter on S side: S.x > 5
        let f = SelectOp::new(
            "S.x>5",
            &Expr::qcol("S", "x").cmp(CmpOp::Gt, Expr::lit(5i64)),
            &s,
        )
        .unwrap();
        eddy.add_module(ModuleSpec::filter(Box::new(f), s_bit))
            .unwrap();

        let mut rng = tcq_common::rng::seeded(99);
        let mut s_rows = Vec::new();
        let mut t_rows = Vec::new();
        let mut emitted = Vec::new();
        for i in 0..400i64 {
            let k = rng.gen_range(0..20i64);
            let x = rng.gen_range(0..10i64);
            if rng.gen_bool(0.5) {
                let r = row(&s, k, x, i);
                s_rows.push(r.clone());
                emitted.extend(eddy.process(r).unwrap());
            } else {
                let r = row(&t, k, x, i);
                t_rows.push(r.clone());
                emitted.extend(eddy.process(r).unwrap());
            }
        }
        // Reference: nested loop join with filter.
        let mut expected = 0usize;
        for sr in &s_rows {
            for tr in &t_rows {
                if sr.value(0) == tr.value(0) && sr.value(1).as_int().unwrap() > 5 {
                    expected += 1;
                }
            }
        }
        assert_eq!(emitted.len(), expected);
        for e in &emitted {
            assert_eq!(e.arity(), 4);
            assert_eq!(
                e.get(Some("S"), "k").unwrap(),
                e.get(Some("T"), "k").unwrap()
            );
            assert!(e.get(Some("S"), "x").unwrap().as_int().unwrap() > 5);
        }
    }

    #[test]
    fn three_way_star_join_on_common_key() {
        let r = s_schema("R");
        let s = s_schema("S");
        let t = s_schema("T");
        let mut eddy = Eddy::new(
            &["R", "S", "T"],
            Box::new(FixedPolicy::new(vec![0, 1, 2])),
            EddyConfig::default(),
        )
        .unwrap();
        let rb = eddy.source_bit("R").unwrap();
        let sb = eddy.source_bit("S").unwrap();
        let tb = eddy.source_bit("T").unwrap();
        for (schema, q, stores, probed, others) in [
            (&r, "R", rb, sb | tb, ["S", "T"]),
            (&s, "S", sb, rb | tb, ["R", "T"]),
            (&t, "T", tb, rb | sb, ["R", "S"]),
        ] {
            let op = tcq_operators::StemOp::new(
                format!("SteM({q})"),
                (*schema).clone(),
                q,
                0,
                (Some(others[0].to_string()), "k".to_string()),
                tcq_stems::IndexKind::Hash,
            )
            .unwrap()
            .with_extra_probe_key((Some(others[1].to_string()), "k".to_string()));
            eddy.add_module(ModuleSpec::stem(Box::new(op), stores, probed))
                .unwrap();
        }
        let mut emitted = Vec::new();
        // keys: R{1,2}, S{1,2}, T{1}: expect RST matches only for k=1
        emitted.extend(eddy.process(row(&r, 1, 0, 1)).unwrap());
        emitted.extend(eddy.process(row(&r, 2, 0, 2)).unwrap());
        emitted.extend(eddy.process(row(&s, 1, 0, 3)).unwrap());
        emitted.extend(eddy.process(row(&s, 2, 0, 4)).unwrap());
        emitted.extend(eddy.process(row(&t, 1, 0, 5)).unwrap());
        assert_eq!(emitted.len(), 1);
        assert_eq!(emitted[0].arity(), 6);
        // Another round: second T row with k=1 joins with R1 and S1 -> 1 more
        emitted.extend(eddy.process(row(&t, 1, 9, 6)).unwrap());
        assert_eq!(emitted.len(), 2);
    }

    #[test]
    fn batching_reduces_decisions() {
        let mk = |batch| {
            let (mut eddy, schema) = {
                let schema = s_schema("S");
                let mut eddy = Eddy::new(
                    &["S"],
                    Box::new(LotteryPolicy::new()),
                    EddyConfig {
                        batch_size: batch,
                        seed: 42,
                    },
                )
                .unwrap();
                let s_bit = eddy.source_bit("S").unwrap();
                for (name, op, c) in [
                    ("f1", CmpOp::Ge, 50i64),
                    ("f2", CmpOp::Lt, 75i64),
                    ("f3", CmpOp::Ne, 60i64),
                ] {
                    let f = SelectOp::new(name, &Expr::col("x").cmp(op, Expr::lit(c)), &schema)
                        .unwrap();
                    eddy.add_module(ModuleSpec::filter(Box::new(f), s_bit))
                        .unwrap();
                }
                (eddy, schema)
            };
            for i in 0..5_000i64 {
                eddy.process(row(&schema, i, i % 100, i)).unwrap();
            }
            eddy.stats()
        };
        let unbatched = mk(1);
        let batched = mk(64);
        assert!(
            batched.decisions * 4 < unbatched.decisions,
            "batching should slash decision count: {} vs {}",
            batched.decisions,
            unbatched.decisions
        );
        // Semantics unchanged: same number of emissions.
        assert_eq!(batched.emitted, unbatched.emitted);
    }

    #[test]
    fn process_batch_matches_per_tuple_join_results() {
        // The same mixed S/T workload routed per-tuple and in drained
        // batches must join to the same multiset of outputs, and the
        // batched run must need far fewer routing decisions.
        let build = |batch_size: usize| {
            let s = s_schema("S");
            let t = s_schema("T");
            let mut eddy = Eddy::new(
                &["S", "T"],
                Box::new(LotteryPolicy::new()),
                EddyConfig {
                    batch_size,
                    seed: 7,
                },
            )
            .unwrap();
            let (sb, tb) = (eddy.source_bit("S").unwrap(), eddy.source_bit("T").unwrap());
            let (stem_s, stem_t) = symmetric_hash_join(&s, "S", "k", &t, "T", "k").unwrap();
            eddy.add_module(ModuleSpec::stem(Box::new(stem_s), sb, tb))
                .unwrap();
            eddy.add_module(ModuleSpec::stem(Box::new(stem_t), tb, sb))
                .unwrap();
            let f = SelectOp::new(
                "S.x>5",
                &Expr::qcol("S", "x").cmp(CmpOp::Gt, Expr::lit(5i64)),
                &s,
            )
            .unwrap();
            eddy.add_module(ModuleSpec::filter(Box::new(f), sb))
                .unwrap();
            (eddy, s, t)
        };
        let workload = |s: &SchemaRef, t: &SchemaRef| {
            let mut rng = tcq_common::rng::seeded(123);
            (0..600i64)
                .map(|i| {
                    let k = rng.gen_range(0..20i64);
                    let x = rng.gen_range(0..10i64);
                    if rng.gen_bool(0.5) {
                        row(s, k, x, i)
                    } else {
                        row(t, k, x, i)
                    }
                })
                .collect::<Vec<_>>()
        };
        let key = |t: &Tuple| {
            (
                t.get(Some("S"), "k").unwrap().as_int().unwrap(),
                t.get(Some("S"), "x").unwrap().as_int().unwrap(),
                t.get(Some("T"), "x").unwrap().as_int().unwrap(),
                t.timestamp().seq(),
            )
        };

        // Equivalence must hold whether or not the §4.3 recording knob is
        // engaged; decision amortization is judged at batch_size = 1,
        // where the per-tuple path pays one decision per tuple-visit but
        // the batched path pays one per group-visit.
        for batch_size in [1usize, 64] {
            let (mut per, s, t) = build(batch_size);
            let mut per_out = Vec::new();
            for tu in workload(&s, &t) {
                per.process_into(tu, &mut per_out).unwrap();
            }

            let (mut bat, s, t) = build(batch_size);
            let mut bat_out = Vec::new();
            for chunk in workload(&s, &t).chunks(64) {
                bat.process_batch(chunk.to_vec(), &mut bat_out).unwrap();
            }

            let mut a: Vec<_> = per_out.iter().map(key).collect();
            let mut b: Vec<_> = bat_out.iter().map(key).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "batched join diverged (batch_size={batch_size})");
            assert_eq!(per.stats().tuples_in, bat.stats().tuples_in);
            assert_eq!(per.stats().emitted, bat.stats().emitted);
            if batch_size == 1 {
                assert!(
                    bat.stats().decisions * 4 < per.stats().decisions,
                    "batched drains should slash decisions: {} vs {}",
                    bat.stats().decisions,
                    per.stats().decisions
                );
            }
        }
    }

    #[test]
    fn process_batch_columnar_matches_row_batches() {
        // Same workload as the row-batch differential: the columnar path
        // must emit the same multiset and keep identical eddy counters,
        // and the join hot path must actually stay columnar.
        let build = |batch_size: usize| {
            let s = s_schema("S");
            let t = s_schema("T");
            let mut eddy = Eddy::new(
                &["S", "T"],
                Box::new(LotteryPolicy::new()),
                EddyConfig {
                    batch_size,
                    seed: 7,
                },
            )
            .unwrap();
            let (sb, tb) = (eddy.source_bit("S").unwrap(), eddy.source_bit("T").unwrap());
            let (stem_s, stem_t) = symmetric_hash_join(&s, "S", "k", &t, "T", "k").unwrap();
            eddy.add_module(ModuleSpec::stem(Box::new(stem_s), sb, tb))
                .unwrap();
            eddy.add_module(ModuleSpec::stem(Box::new(stem_t), tb, sb))
                .unwrap();
            let f = SelectOp::new(
                "S.x>5",
                &Expr::qcol("S", "x").cmp(CmpOp::Gt, Expr::lit(5i64)),
                &s,
            )
            .unwrap();
            eddy.add_module(ModuleSpec::filter(Box::new(f), sb))
                .unwrap();
            (eddy, s, t)
        };
        let workload = |s: &SchemaRef, t: &SchemaRef| {
            let mut rng = tcq_common::rng::seeded(123);
            (0..600i64)
                .map(|i| {
                    let k = rng.gen_range(0..20i64);
                    let x = rng.gen_range(0..10i64);
                    if rng.gen_bool(0.5) {
                        row(s, k, x, i)
                    } else {
                        row(t, k, x, i)
                    }
                })
                .collect::<Vec<_>>()
        };
        let key = |t: &Tuple| {
            (
                t.get(Some("S"), "k").unwrap().as_int().unwrap(),
                t.get(Some("S"), "x").unwrap().as_int().unwrap(),
                t.get(Some("T"), "x").unwrap().as_int().unwrap(),
                t.timestamp().seq(),
            )
        };
        for batch_size in [1usize, 64] {
            let (mut rows, s, t) = build(batch_size);
            let mut row_out = Vec::new();
            for chunk in workload(&s, &t).chunks(64) {
                rows.process_batch(chunk.to_vec(), &mut row_out).unwrap();
            }

            let (mut cols, s, t) = build(batch_size);
            let mut runs: Vec<Emitted> = Vec::new();
            for chunk in workload(&s, &t).chunks(64) {
                cols.process_batch_columnar(chunk.to_vec(), &mut runs)
                    .unwrap();
            }
            assert!(
                runs.iter()
                    .any(|r| matches!(r, Emitted::Columns(b) if !b.is_empty())),
                "join hot path should stay columnar end-to-end"
            );
            let mut col_out = Vec::new();
            for r in runs {
                r.append_rows(&mut col_out);
            }

            let mut a: Vec<_> = row_out.iter().map(key).collect();
            let mut b: Vec<_> = col_out.iter().map(key).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "columnar join diverged (batch_size={batch_size})");
            assert_eq!(rows.stats().tuples_in, cols.stats().tuples_in);
            assert_eq!(rows.stats().emitted, cols.stats().emitted);
            assert_eq!(rows.stats().visits, cols.stats().visits);
        }
    }

    #[test]
    fn base_tuples_never_emitted_for_join_footprint() {
        let s = s_schema("S");
        let t = s_schema("T");
        let mut eddy =
            Eddy::new(&["S", "T"], Box::new(RandomPolicy), EddyConfig::default()).unwrap();
        let (sb, tb) = (eddy.source_bit("S").unwrap(), eddy.source_bit("T").unwrap());
        let (stem_s, stem_t) = symmetric_hash_join(&s, "S", "k", &t, "T", "k").unwrap();
        eddy.add_module(ModuleSpec::stem(Box::new(stem_s), sb, tb))
            .unwrap();
        eddy.add_module(ModuleSpec::stem(Box::new(stem_t), tb, sb))
            .unwrap();
        // No matching partner: nothing emitted, though tuples completed.
        assert!(eddy.process(row(&s, 1, 0, 1)).unwrap().is_empty());
        assert!(eddy.process(row(&t, 2, 0, 2)).unwrap().is_empty());
        assert_eq!(eddy.stats().emitted, 0);
        assert_eq!(eddy.stats().tuples_in, 2);
    }

    #[test]
    fn checkpointed_eddy_state_restores_join_results() {
        let s = s_schema("S");
        let t = s_schema("T");
        let build = || {
            let mut eddy = Eddy::new(
                &["S", "T"],
                Box::new(FixedPolicy::new(vec![0, 1])),
                EddyConfig::default(),
            )
            .unwrap();
            let (sb, tb) = (eddy.source_bit("S").unwrap(), eddy.source_bit("T").unwrap());
            let (stem_s, stem_t) = symmetric_hash_join(&s, "S", "k", &t, "T", "k").unwrap();
            eddy.add_module(ModuleSpec::stem(Box::new(stem_s), sb, tb))
                .unwrap();
            eddy.add_module(ModuleSpec::stem(Box::new(stem_t), tb, sb))
                .unwrap();
            eddy
        };
        let mut live = build();
        for i in 0..10 {
            live.process(row(&s, i % 3, i, i)).unwrap();
        }
        assert!(live.dirty_len() > 0);
        let mut delta = Vec::new();
        live.export_dirty_state(&mut delta).unwrap();
        live.clear_dirty();
        assert_eq!(live.dirty_len(), 0);

        let mut restored = build();
        for (m, h, bytes) in &delta {
            restored.import_module_group(*m, *h, bytes).unwrap();
        }
        assert_eq!(restored.state_size(), live.state_size());
        for k in 0..3 {
            let a = live.process(row(&t, k, 0, 20 + k)).unwrap();
            let b = restored.process(row(&t, k, 0, 20 + k)).unwrap();
            assert_eq!(a.len(), b.len(), "restored join diverged at k={k}");
        }
        // Fragments aimed at a module the eddy lacks are loud errors.
        assert!(restored.import_module_group(9, 1, &[]).is_err());
    }

    #[test]
    fn eviction_forwards_to_modules() {
        let s = s_schema("S");
        let t = s_schema("T");
        let mut eddy =
            Eddy::new(&["S", "T"], Box::new(RandomPolicy), EddyConfig::default()).unwrap();
        let (sb, tb) = (eddy.source_bit("S").unwrap(), eddy.source_bit("T").unwrap());
        let (stem_s, stem_t) = symmetric_hash_join(&s, "S", "k", &t, "T", "k").unwrap();
        eddy.add_module(ModuleSpec::stem(Box::new(stem_s), sb, tb))
            .unwrap();
        eddy.add_module(ModuleSpec::stem(Box::new(stem_t), tb, sb))
            .unwrap();
        for i in 0..10 {
            eddy.process(row(&s, i, 0, i)).unwrap();
        }
        assert_eq!(eddy.state_size(), 10);
        eddy.evict_before_seq(5);
        assert_eq!(eddy.state_size(), 5);
        // A T tuple joining key 3 finds nothing (evicted), key 7 matches.
        assert!(eddy.process(row(&t, 3, 0, 11)).unwrap().is_empty());
        assert_eq!(eddy.process(row(&t, 7, 0, 12)).unwrap().len(), 1);
    }
}
