//! Grouped filters (CACQ, §3.1).
//!
//! > "A grouped filter is an index for single-variable boolean factors over
//! > the same attribute. When a new query is inserted into the system, it is
//! > decomposed into its individual boolean factors. The single-variable
//! > boolean factors are then inserted into appropriate grouped filters."
//!
//! One grouped filter indexes all registered factors over **one attribute**.
//! Probing with an attribute value returns, in one pass, the set of factors
//! the value satisfies — instead of evaluating each query's predicate
//! separately. Internally:
//!
//! * `=` factors live in a hash map constant → factor set;
//! * `!=` factors live in a hash map of *exceptions* (all `!=` factors match
//!   unless the constant equals the probe value), unioned word-parallel via
//!   [`BitSet::union_andnot`] — no per-probe temporary;
//! * `>` / `>=` and `<` / `<=` factors live in two [`RangeIndex`]es: a
//!   constant-sorted vector cut into blocks of [`BLOCK`] entries with a
//!   precomputed prefix (resp. suffix) factor bitmap per block. A probe is
//!   one binary search, **one** bitmap union for all fully-covered blocks,
//!   and a walk of at most one partial block — instead of one bitset insert
//!   per matching factor.
//!
//! Registration churn is epoch-based: inserts land in a small sorted
//! `pending` side-buffer and removals tombstone into a `dead` bitmap; probes
//! consult both, and the sorted run plus its block bitmaps are rebuilt only
//! when pending or dead counts cross a threshold (amortized O(1) per op, no
//! O(n) `Vec::insert`/`retain` on the hot registration path).

use std::collections::HashMap;

use tcq_common::{BitSet, CmpOp, Result, TcqError, Value};

/// Identifies one registered boolean factor within a grouped filter. Factor
/// ids are assigned by the caller (typically a [`crate::QueryStem`]) so one
/// id space spans all of a query's factors across filters.
pub type FactorId = usize;

/// Entries per block of the range indexes. A probe walks at most one
/// partial block per index, so this bounds per-probe work; rebuild cost per
/// epoch is O(entries + entries/BLOCK bitmap unions).
const BLOCK: usize = 256;

/// Pending (not yet merged) inserts that trigger an epoch rebuild. Probes
/// scan the pending buffer linearly, so this also bounds mid-epoch probe
/// overhead.
const REBUILD_PENDING: usize = 256;

/// An entry in one of the two sorted range tables.
#[derive(Debug, Clone)]
struct RangeEntry {
    constant: Value,
    /// True for strict (`>` / `<`), false for inclusive (`>=` / `<=`).
    strict: bool,
    factor: FactorId,
}

/// Which side of the constant a probe value must fall on to match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RangeKind {
    /// `value > constant` family: matches constants *below* the probe, so
    /// block bitmaps are prefix unions.
    Lower,
    /// `value < constant` family: matches constants *above* the probe, so
    /// block bitmaps are suffix unions.
    Upper,
}

/// Counts of mid-epoch state, exposed for tests and the scale bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Range factors waiting in the sorted side-buffers.
    pub pending: usize,
    /// Removed range factors still tombstoned in the sorted runs.
    pub tombstones: usize,
    /// Range factors in the compacted sorted runs (live + tombstoned).
    pub entries: usize,
}

/// One direction of range factors: a compacted constant-sorted run with
/// per-block prefix/suffix bitmaps, plus the epoch side-state.
#[derive(Debug)]
struct RangeIndex {
    kind: RangeKind,
    /// Sorted ascending by constant; may contain tombstoned factors.
    entries: Vec<RangeEntry>,
    /// `Lower`: `block_bits[i]` = union of factors in `entries[..(i+1)*BLOCK]`
    /// (complete blocks only). `Upper`: `block_bits[i]` = union of factors in
    /// `entries[i*BLOCK..]` (last one may cover a partial tail).
    block_bits: Vec<BitSet>,
    /// Sorted ascending by constant; merged into `entries` at rebuild.
    pending: Vec<RangeEntry>,
    /// Tombstoned factors still present in `entries`; masked out of every
    /// probe because factor ids are recycled by the caller.
    dead: BitSet,
    dead_count: usize,
}

impl RangeIndex {
    fn new(kind: RangeKind) -> Self {
        RangeIndex {
            kind,
            entries: Vec::new(),
            block_bits: Vec::new(),
            pending: Vec::new(),
            dead: BitSet::new(),
            dead_count: 0,
        }
    }

    fn insert(&mut self, e: RangeEntry) {
        let pos = self
            .pending
            .partition_point(|x| x.constant.total_cmp(&e.constant).is_lt());
        self.pending.insert(pos, e);
        if self.pending.len() >= REBUILD_PENDING {
            self.rebuild();
        }
    }

    /// Remove the factor registered with `constant`. Pending entries are
    /// dropped eagerly (the buffer is small); compacted entries are
    /// tombstoned and swept out by the next rebuild.
    fn remove(&mut self, id: FactorId, constant: &Value) {
        let run = self
            .pending
            .partition_point(|x| x.constant.total_cmp(constant).is_lt());
        for i in run..self.pending.len() {
            if self.pending[i].constant.total_cmp(constant).is_ne() {
                break;
            }
            if self.pending[i].factor == id {
                self.pending.remove(i);
                return;
            }
        }
        self.dead.insert(id);
        self.dead_count += 1;
        // Compact when a quarter of the run is tombstones (slack so tiny
        // runs don't thrash).
        if self.dead_count * 4 > self.entries.len() + 64 {
            self.rebuild();
        }
    }

    /// Merge pending inserts, drop tombstones, recompute block bitmaps.
    fn rebuild(&mut self) {
        let mut merged = Vec::with_capacity(self.entries.len() + self.pending.len());
        let mut old = std::mem::take(&mut self.entries).into_iter().peekable();
        let mut new = std::mem::take(&mut self.pending).into_iter().peekable();
        loop {
            let take_old = match (old.peek(), new.peek()) {
                (Some(a), Some(b)) => a.constant.total_cmp(&b.constant).is_le(),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let e = if take_old {
                let e = old.next().unwrap();
                if self.dead.contains(e.factor) {
                    continue;
                }
                e
            } else {
                new.next().unwrap()
            };
            merged.push(e);
        }
        self.entries = merged;
        self.dead.clear();
        self.dead_count = 0;
        self.block_bits.clear();
        match self.kind {
            RangeKind::Lower => {
                // Prefix unions over complete blocks.
                let mut acc = BitSet::new();
                for chunk in self.entries.chunks_exact(BLOCK) {
                    for e in chunk {
                        acc.insert(e.factor);
                    }
                    self.block_bits.push(acc.clone());
                }
            }
            RangeKind::Upper => {
                // Suffix unions, built back-to-front; the first block may
                // cover a partial tail.
                let nblocks = self.entries.len().div_ceil(BLOCK);
                let mut acc = BitSet::new();
                let mut bits = vec![BitSet::new(); nblocks];
                for i in (0..nblocks).rev() {
                    let lo = i * BLOCK;
                    let hi = ((i + 1) * BLOCK).min(self.entries.len());
                    for e in &self.entries[lo..hi] {
                        acc.insert(e.factor);
                    }
                    bits[i] = acc.clone();
                }
                self.block_bits = bits;
            }
        }
    }

    /// Union into `out` every live factor the probe value satisfies.
    fn probe(&self, value: &Value, out: &mut BitSet) {
        match self.kind {
            RangeKind::Lower => {
                // Matches constants < value, plus inclusive at ==.
                let idx = self
                    .entries
                    .partition_point(|e| e.constant.total_cmp(value).is_lt());
                let b = idx / BLOCK;
                if b > 0 {
                    out.union_andnot(&self.block_bits[b - 1], &self.dead);
                }
                for e in &self.entries[b * BLOCK..idx] {
                    if !self.dead.contains(e.factor) {
                        out.insert(e.factor);
                    }
                }
                for e in &self.entries[idx..] {
                    if e.constant.total_cmp(value).is_gt() {
                        break;
                    }
                    if !e.strict && !self.dead.contains(e.factor) {
                        out.insert(e.factor);
                    }
                }
                let p = self
                    .pending
                    .partition_point(|e| e.constant.total_cmp(value).is_lt());
                for e in &self.pending[..p] {
                    out.insert(e.factor);
                }
                for e in &self.pending[p..] {
                    if e.constant.total_cmp(value).is_gt() {
                        break;
                    }
                    if !e.strict {
                        out.insert(e.factor);
                    }
                }
            }
            RangeKind::Upper => {
                // Matches constants > value, plus inclusive at ==.
                let idx = self
                    .entries
                    .partition_point(|e| e.constant.total_cmp(value).is_le());
                let b = idx.div_ceil(BLOCK);
                if b < self.block_bits.len() {
                    out.union_andnot(&self.block_bits[b], &self.dead);
                }
                let partial_hi = (b * BLOCK).min(self.entries.len());
                for e in &self.entries[idx..partial_hi] {
                    if !self.dead.contains(e.factor) {
                        out.insert(e.factor);
                    }
                }
                // Walk the equal run backwards from `idx`.
                for e in self.entries[..idx].iter().rev() {
                    if e.constant.total_cmp(value).is_lt() {
                        break;
                    }
                    if !e.strict && !self.dead.contains(e.factor) {
                        out.insert(e.factor);
                    }
                }
                let p = self
                    .pending
                    .partition_point(|e| e.constant.total_cmp(value).is_le());
                for e in &self.pending[p..] {
                    out.insert(e.factor);
                }
                for e in self.pending[..p].iter().rev() {
                    if e.constant.total_cmp(value).is_lt() {
                        break;
                    }
                    if !e.strict {
                        out.insert(e.factor);
                    }
                }
            }
        }
    }

    fn approx_bytes(&self) -> usize {
        let entry = std::mem::size_of::<RangeEntry>();
        let heap: usize = self
            .entries
            .iter()
            .chain(self.pending.iter())
            .map(|e| match &e.constant {
                Value::Str(s) => s.len(),
                _ => 0,
            })
            .sum();
        self.entries.capacity() * entry
            + self.pending.capacity() * entry
            + self
                .block_bits
                .iter()
                .map(|b| b.approx_bytes())
                .sum::<usize>()
            + self.dead.approx_bytes()
            + heap
    }
}

/// A grouped filter over a single attribute.
#[derive(Debug)]
pub struct GroupedFilter {
    eq: HashMap<Value, BitSet>,
    ne: HashMap<Value, BitSet>,
    /// All `!=` factors (they match unless excepted).
    ne_all: BitSet,
    /// `value > constant` (and `>=`) factors.
    gt: RangeIndex,
    /// `value < constant` (and `<=`) factors.
    lt: RangeIndex,
    /// Every factor registered in this filter.
    owners: BitSet,
    /// Per-factor record for removal: (op, constant).
    registered: HashMap<FactorId, (CmpOp, Value)>,
}

impl Default for GroupedFilter {
    fn default() -> Self {
        GroupedFilter {
            eq: HashMap::new(),
            ne: HashMap::new(),
            ne_all: BitSet::new(),
            gt: RangeIndex::new(RangeKind::Lower),
            lt: RangeIndex::new(RangeKind::Upper),
            owners: BitSet::new(),
            registered: HashMap::new(),
        }
    }
}

impl GroupedFilter {
    /// An empty grouped filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register factor `id`: `attribute <op> constant`. Errors if `id` is
    /// already present.
    pub fn insert(&mut self, id: FactorId, op: CmpOp, constant: Value) -> Result<()> {
        if self.registered.contains_key(&id) {
            return Err(TcqError::Capacity(format!(
                "factor {id} already registered in grouped filter"
            )));
        }
        match op {
            CmpOp::Eq => self.eq.entry(constant.clone()).or_default().insert(id),
            CmpOp::Ne => {
                self.ne.entry(constant.clone()).or_default().insert(id);
                self.ne_all.insert(id);
            }
            CmpOp::Gt | CmpOp::Ge => self.gt.insert(RangeEntry {
                constant: constant.clone(),
                strict: op == CmpOp::Gt,
                factor: id,
            }),
            CmpOp::Lt | CmpOp::Le => self.lt.insert(RangeEntry {
                constant: constant.clone(),
                strict: op == CmpOp::Lt,
                factor: id,
            }),
        }
        self.owners.insert(id);
        self.registered.insert(id, (op, constant));
        Ok(())
    }

    /// Remove factor `id`; no-op if absent.
    pub fn remove(&mut self, id: FactorId) {
        let Some((op, constant)) = self.registered.remove(&id) else {
            return;
        };
        self.owners.remove(id);
        match op {
            CmpOp::Eq => {
                if let Some(set) = self.eq.get_mut(&constant) {
                    set.remove(id);
                    if set.is_empty() {
                        self.eq.remove(&constant);
                    }
                }
            }
            CmpOp::Ne => {
                self.ne_all.remove(id);
                if let Some(set) = self.ne.get_mut(&constant) {
                    set.remove(id);
                    if set.is_empty() {
                        self.ne.remove(&constant);
                    }
                }
            }
            CmpOp::Gt | CmpOp::Ge => self.gt.remove(id, &constant),
            CmpOp::Lt | CmpOp::Le => self.lt.remove(id, &constant),
        }
    }

    /// All factors registered here.
    pub fn owners(&self) -> &BitSet {
        &self.owners
    }

    /// Number of registered factors.
    pub fn len(&self) -> usize {
        self.registered.len()
    }

    /// True when no factor is registered.
    pub fn is_empty(&self) -> bool {
        self.registered.is_empty()
    }

    /// Iterate every registered factor as `(id, op, constant)`, in no
    /// particular order. Used by differential tests and the scale bench to
    /// build a naive per-factor reference.
    pub fn iter_factors(&self) -> impl Iterator<Item = (FactorId, CmpOp, &Value)> + '_ {
        self.registered.iter().map(|(&id, (op, c))| (id, *op, c))
    }

    /// Mid-epoch bookkeeping counts for the two range indexes combined.
    pub fn epoch_stats(&self) -> EpochStats {
        EpochStats {
            pending: self.gt.pending.len() + self.lt.pending.len(),
            tombstones: self.gt.dead_count + self.lt.dead_count,
            entries: self.gt.entries.len() + self.lt.entries.len(),
        }
    }

    /// Approximate heap footprint of the index structures in bytes.
    pub fn approx_bytes(&self) -> usize {
        let map_entry = |m: &HashMap<Value, BitSet>| -> usize {
            m.iter()
                .map(|(k, v)| k.approx_bytes() + v.approx_bytes())
                .sum::<usize>()
                + m.capacity() * std::mem::size_of::<(Value, BitSet)>()
        };
        map_entry(&self.eq)
            + map_entry(&self.ne)
            + self.ne_all.approx_bytes()
            + self.gt.approx_bytes()
            + self.lt.approx_bytes()
            + self.owners.approx_bytes()
            + self.registered.capacity() * std::mem::size_of::<(FactorId, (CmpOp, Value))>()
            + self
                .registered
                .values()
                .map(|(_, c)| match c {
                    Value::Str(s) => s.len(),
                    _ => 0,
                })
                .sum::<usize>()
    }

    /// Probe with an attribute value: union into `out` the ids of every
    /// factor the value satisfies. A NULL probe satisfies nothing (SQL
    /// three-valued logic).
    pub fn eval(&self, value: &Value, out: &mut BitSet) {
        if value.is_null() {
            return;
        }
        if let Some(set) = self.eq.get(value) {
            out.union_with(set);
        }
        if !self.ne_all.is_empty() {
            match self.ne.get(value) {
                Some(excepted) => out.union_andnot(&self.ne_all, excepted),
                None => out.union_with(&self.ne_all),
            }
        }
        self.gt.probe(value, out);
        self.lt.probe(value, out);
    }

    /// Convenience: probe and collect into a fresh set.
    pub fn eval_collect(&self, value: &Value) -> BitSet {
        let mut out = BitSet::new();
        self.eval(value, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter_with(factors: &[(FactorId, CmpOp, Value)]) -> GroupedFilter {
        let mut f = GroupedFilter::new();
        for (id, op, v) in factors {
            f.insert(*id, *op, v.clone()).unwrap();
        }
        f
    }

    /// Reference implementation: evaluate each factor directly.
    fn naive(factors: &[(FactorId, CmpOp, Value)], v: &Value) -> BitSet {
        let mut out = BitSet::new();
        for (id, op, c) in factors {
            if let Ok(Some(ord)) = v.sql_cmp(c) {
                if op.matches(ord) {
                    out.insert(*id);
                }
            }
        }
        out
    }

    #[test]
    fn equality_factors() {
        let f = filter_with(&[
            (0, CmpOp::Eq, Value::str("MSFT")),
            (1, CmpOp::Eq, Value::str("IBM")),
            (2, CmpOp::Eq, Value::str("MSFT")),
        ]);
        let got = f.eval_collect(&Value::str("MSFT"));
        assert_eq!(got.iter().collect::<Vec<_>>(), vec![0, 2]);
        assert!(f.eval_collect(&Value::str("ORCL")).is_empty());
    }

    #[test]
    fn inequality_factors_match_unless_excepted() {
        let f = filter_with(&[(0, CmpOp::Ne, Value::Int(5)), (1, CmpOp::Ne, Value::Int(7))]);
        assert_eq!(
            f.eval_collect(&Value::Int(5)).iter().collect::<Vec<_>>(),
            vec![1]
        );
        assert_eq!(
            f.eval_collect(&Value::Int(6)).iter().collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn range_factors_strict_and_inclusive() {
        let f = filter_with(&[
            (0, CmpOp::Gt, Value::Float(50.0)),
            (1, CmpOp::Ge, Value::Float(50.0)),
            (2, CmpOp::Lt, Value::Float(50.0)),
            (3, CmpOp::Le, Value::Float(50.0)),
        ]);
        assert_eq!(
            f.eval_collect(&Value::Float(50.0))
                .iter()
                .collect::<Vec<_>>(),
            vec![1, 3]
        );
        assert_eq!(
            f.eval_collect(&Value::Float(51.0))
                .iter()
                .collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(
            f.eval_collect(&Value::Float(49.0))
                .iter()
                .collect::<Vec<_>>(),
            vec![2, 3]
        );
    }

    #[test]
    fn null_probe_satisfies_nothing() {
        let f = filter_with(&[
            (0, CmpOp::Ne, Value::Int(5)),
            (1, CmpOp::Gt, Value::Int(0)),
            (2, CmpOp::Eq, Value::Null),
        ]);
        assert!(f.eval_collect(&Value::Null).is_empty());
    }

    #[test]
    fn removal_unregisters() {
        let factors = [
            (0, CmpOp::Gt, Value::Int(10)),
            (1, CmpOp::Gt, Value::Int(20)),
            (2, CmpOp::Eq, Value::Int(30)),
            (3, CmpOp::Ne, Value::Int(30)),
        ];
        let mut f = filter_with(&factors);
        assert_eq!(f.len(), 4);
        f.remove(1);
        f.remove(3);
        assert_eq!(f.len(), 2);
        let got = f.eval_collect(&Value::Int(30));
        assert_eq!(got.iter().collect::<Vec<_>>(), vec![0, 2]);
        // Double-remove is a no-op.
        f.remove(1);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn duplicate_factor_id_rejected() {
        let mut f = GroupedFilter::new();
        f.insert(0, CmpOp::Eq, Value::Int(1)).unwrap();
        assert!(f.insert(0, CmpOp::Gt, Value::Int(2)).is_err());
    }

    #[test]
    fn mixed_int_float_constants_compare_numerically() {
        let f = filter_with(&[
            (0, CmpOp::Gt, Value::Int(50)),
            (1, CmpOp::Gt, Value::Float(49.5)),
        ]);
        let got = f.eval_collect(&Value::Float(49.8));
        assert_eq!(got.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn matches_naive_reference_on_dense_grid() {
        // All ops × constants 0..10 against probes -1..11 — exhaustive
        // agreement with per-factor evaluation.
        let mut factors = Vec::new();
        let mut id = 0;
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for c in 0..10i64 {
                factors.push((id, op, Value::Int(c)));
                id += 1;
            }
        }
        let f = filter_with(&factors);
        for probe in -1..=11i64 {
            let v = Value::Int(probe);
            assert_eq!(
                f.eval_collect(&v),
                naive(&factors, &v),
                "disagreement at probe {probe}"
            );
        }
    }

    #[test]
    fn matches_naive_across_epoch_rebuilds() {
        // Enough range factors to cross several pending-buffer rebuilds and
        // fill multiple prefix/suffix blocks, probed at block boundaries.
        let n = 4 * REBUILD_PENDING + 37;
        let mut factors = Vec::new();
        for i in 0..n {
            let op = match i % 4 {
                0 => CmpOp::Gt,
                1 => CmpOp::Ge,
                2 => CmpOp::Lt,
                _ => CmpOp::Le,
            };
            // Duplicate constants on purpose: equal runs must be walked in
            // full on both sides of the binary search.
            factors.push((i, op, Value::Int((i % 97) as i64)));
        }
        let f = filter_with(&factors);
        assert!(f.epoch_stats().entries > 2 * BLOCK, "must span blocks");
        for probe in -1..=98i64 {
            let v = Value::Int(probe);
            assert_eq!(
                f.eval_collect(&v),
                naive(&factors, &v),
                "disagreement at probe {probe}"
            );
        }
    }

    #[test]
    fn tombstoned_factor_is_masked_until_compaction() {
        // Fill past one rebuild so factors live in the compacted run, then
        // remove one: the probe must not return it even though its entry is
        // still physically present (mid-epoch tombstone).
        let n = REBUILD_PENDING + 10;
        let mut f = GroupedFilter::new();
        for i in 0..n {
            f.insert(i, CmpOp::Gt, Value::Int(i as i64)).unwrap();
        }
        f.remove(3);
        let stats = f.epoch_stats();
        assert_eq!(stats.tombstones, 1, "removal must tombstone, not compact");
        let got = f.eval_collect(&Value::Int(5));
        assert!(!got.contains(3));
        assert!(got.contains(0) && got.contains(4));
        // Reusing the tombstoned id must route through the pending buffer
        // and win over the dead entry.
        f.insert(3, CmpOp::Gt, Value::Int(100)).unwrap();
        assert!(!f.eval_collect(&Value::Int(5)).contains(3));
        assert!(f.eval_collect(&Value::Int(101)).contains(3));
    }

    #[test]
    fn heavy_removal_triggers_compaction() {
        let n = 2 * REBUILD_PENDING;
        let mut f = GroupedFilter::new();
        for i in 0..n {
            f.insert(i, CmpOp::Lt, Value::Int(i as i64)).unwrap();
        }
        for i in 0..n / 2 {
            f.remove(i * 2);
        }
        let stats = f.epoch_stats();
        assert!(
            stats.tombstones * 4 <= stats.entries + 64,
            "sustained removal must compact: {stats:?}"
        );
        let got = f.eval_collect(&Value::Int(-1));
        assert_eq!(got.len(), n / 2);
    }
}
