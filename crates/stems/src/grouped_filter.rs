//! Grouped filters (CACQ, §3.1).
//!
//! > "A grouped filter is an index for single-variable boolean factors over
//! > the same attribute. When a new query is inserted into the system, it is
//! > decomposed into its individual boolean factors. The single-variable
//! > boolean factors are then inserted into appropriate grouped filters."
//!
//! One grouped filter indexes all registered factors over **one attribute**.
//! Probing with an attribute value returns, in one pass, the set of factors
//! the value satisfies — instead of evaluating each query's predicate
//! separately. Internally:
//!
//! * `=` factors live in a hash map constant → factor set;
//! * `!=` factors live in a hash map of *exceptions* (all `!=` factors match
//!   unless the constant equals the probe value);
//! * `>` / `>=` factors live in a constant-sorted vector probed by binary
//!   search (factors with constants below the value match);
//! * `<` / `<=` factors likewise, mirrored.

use std::collections::HashMap;

use tcq_common::{BitSet, CmpOp, Result, TcqError, Value};

/// Identifies one registered boolean factor within a grouped filter. Factor
/// ids are assigned by the caller (typically a [`crate::QueryStem`]) so one
/// id space spans all of a query's factors across filters.
pub type FactorId = usize;

/// An entry in one of the two sorted range tables.
#[derive(Debug, Clone)]
struct RangeEntry {
    constant: Value,
    /// True for strict (`>` / `<`), false for inclusive (`>=` / `<=`).
    strict: bool,
    factor: FactorId,
}

/// A grouped filter over a single attribute.
#[derive(Default)]
pub struct GroupedFilter {
    eq: HashMap<Value, BitSet>,
    ne: HashMap<Value, BitSet>,
    /// All `!=` factors (they match unless excepted).
    ne_all: BitSet,
    /// Sorted ascending by constant: `value > constant` (and `>=`) factors.
    gt: Vec<RangeEntry>,
    /// Sorted ascending by constant: `value < constant` (and `<=`) factors.
    lt: Vec<RangeEntry>,
    /// Every factor registered in this filter.
    owners: BitSet,
    /// Per-factor record for removal: (op, constant).
    registered: HashMap<FactorId, (CmpOp, Value)>,
}

impl GroupedFilter {
    /// An empty grouped filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register factor `id`: `attribute <op> constant`. Errors if `id` is
    /// already present.
    pub fn insert(&mut self, id: FactorId, op: CmpOp, constant: Value) -> Result<()> {
        if self.registered.contains_key(&id) {
            return Err(TcqError::Capacity(format!(
                "factor {id} already registered in grouped filter"
            )));
        }
        match op {
            CmpOp::Eq => self.eq.entry(constant.clone()).or_default().insert(id),
            CmpOp::Ne => {
                self.ne.entry(constant.clone()).or_default().insert(id);
                self.ne_all.insert(id);
            }
            CmpOp::Gt | CmpOp::Ge => {
                let e = RangeEntry {
                    constant: constant.clone(),
                    strict: op == CmpOp::Gt,
                    factor: id,
                };
                let pos = self
                    .gt
                    .partition_point(|x| x.constant.total_cmp(&e.constant).is_lt());
                self.gt.insert(pos, e);
            }
            CmpOp::Lt | CmpOp::Le => {
                let e = RangeEntry {
                    constant: constant.clone(),
                    strict: op == CmpOp::Lt,
                    factor: id,
                };
                let pos = self
                    .lt
                    .partition_point(|x| x.constant.total_cmp(&e.constant).is_lt());
                self.lt.insert(pos, e);
            }
        }
        self.owners.insert(id);
        self.registered.insert(id, (op, constant));
        Ok(())
    }

    /// Remove factor `id`; no-op if absent.
    pub fn remove(&mut self, id: FactorId) {
        let Some((op, constant)) = self.registered.remove(&id) else {
            return;
        };
        self.owners.remove(id);
        match op {
            CmpOp::Eq => {
                if let Some(set) = self.eq.get_mut(&constant) {
                    set.remove(id);
                    if set.is_empty() {
                        self.eq.remove(&constant);
                    }
                }
            }
            CmpOp::Ne => {
                self.ne_all.remove(id);
                if let Some(set) = self.ne.get_mut(&constant) {
                    set.remove(id);
                    if set.is_empty() {
                        self.ne.remove(&constant);
                    }
                }
            }
            CmpOp::Gt | CmpOp::Ge => self.gt.retain(|e| e.factor != id),
            CmpOp::Lt | CmpOp::Le => self.lt.retain(|e| e.factor != id),
        }
    }

    /// All factors registered here.
    pub fn owners(&self) -> &BitSet {
        &self.owners
    }

    /// Number of registered factors.
    pub fn len(&self) -> usize {
        self.registered.len()
    }

    /// True when no factor is registered.
    pub fn is_empty(&self) -> bool {
        self.registered.is_empty()
    }

    /// Probe with an attribute value: union into `out` the ids of every
    /// factor the value satisfies. A NULL probe satisfies nothing (SQL
    /// three-valued logic).
    pub fn eval(&self, value: &Value, out: &mut BitSet) {
        if value.is_null() {
            return;
        }
        if let Some(set) = self.eq.get(value) {
            out.union_with(set);
        }
        if !self.ne_all.is_empty() {
            match self.ne.get(value) {
                Some(excepted) => {
                    let mut satisfied = self.ne_all.clone();
                    satisfied.difference_with(excepted);
                    out.union_with(&satisfied);
                }
                None => out.union_with(&self.ne_all),
            }
        }
        // value > c (strict) or value >= c: all entries with c < value, plus
        // entries with c == value that are inclusive.
        let upper = self
            .gt
            .partition_point(|e| e.constant.total_cmp(value).is_lt());
        for e in &self.gt[..upper] {
            out.insert(e.factor);
        }
        for e in &self.gt[upper..] {
            if e.constant.total_cmp(value).is_gt() {
                break;
            }
            if !e.strict {
                out.insert(e.factor);
            }
        }
        // value < c (strict) or value <= c: all entries with c > value, plus
        // inclusive entries with c == value.
        let lower = self
            .lt
            .partition_point(|e| e.constant.total_cmp(value).is_le());
        for e in &self.lt[lower..] {
            out.insert(e.factor);
        }
        // Walk the equal run backwards from `lower`.
        for e in self.lt[..lower].iter().rev() {
            if e.constant.total_cmp(value).is_lt() {
                break;
            }
            if !e.strict {
                out.insert(e.factor);
            }
        }
    }

    /// Convenience: probe and collect into a fresh set.
    pub fn eval_collect(&self, value: &Value) -> BitSet {
        let mut out = BitSet::new();
        self.eval(value, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter_with(factors: &[(FactorId, CmpOp, Value)]) -> GroupedFilter {
        let mut f = GroupedFilter::new();
        for (id, op, v) in factors {
            f.insert(*id, *op, v.clone()).unwrap();
        }
        f
    }

    /// Reference implementation: evaluate each factor directly.
    fn naive(factors: &[(FactorId, CmpOp, Value)], v: &Value) -> BitSet {
        let mut out = BitSet::new();
        for (id, op, c) in factors {
            if let Ok(Some(ord)) = v.sql_cmp(c) {
                if op.matches(ord) {
                    out.insert(*id);
                }
            }
        }
        out
    }

    #[test]
    fn equality_factors() {
        let f = filter_with(&[
            (0, CmpOp::Eq, Value::str("MSFT")),
            (1, CmpOp::Eq, Value::str("IBM")),
            (2, CmpOp::Eq, Value::str("MSFT")),
        ]);
        let got = f.eval_collect(&Value::str("MSFT"));
        assert_eq!(got.iter().collect::<Vec<_>>(), vec![0, 2]);
        assert!(f.eval_collect(&Value::str("ORCL")).is_empty());
    }

    #[test]
    fn inequality_factors_match_unless_excepted() {
        let f = filter_with(&[(0, CmpOp::Ne, Value::Int(5)), (1, CmpOp::Ne, Value::Int(7))]);
        assert_eq!(
            f.eval_collect(&Value::Int(5)).iter().collect::<Vec<_>>(),
            vec![1]
        );
        assert_eq!(
            f.eval_collect(&Value::Int(6)).iter().collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn range_factors_strict_and_inclusive() {
        let f = filter_with(&[
            (0, CmpOp::Gt, Value::Float(50.0)),
            (1, CmpOp::Ge, Value::Float(50.0)),
            (2, CmpOp::Lt, Value::Float(50.0)),
            (3, CmpOp::Le, Value::Float(50.0)),
        ]);
        assert_eq!(
            f.eval_collect(&Value::Float(50.0))
                .iter()
                .collect::<Vec<_>>(),
            vec![1, 3]
        );
        assert_eq!(
            f.eval_collect(&Value::Float(51.0))
                .iter()
                .collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(
            f.eval_collect(&Value::Float(49.0))
                .iter()
                .collect::<Vec<_>>(),
            vec![2, 3]
        );
    }

    #[test]
    fn null_probe_satisfies_nothing() {
        let f = filter_with(&[
            (0, CmpOp::Ne, Value::Int(5)),
            (1, CmpOp::Gt, Value::Int(0)),
            (2, CmpOp::Eq, Value::Null),
        ]);
        assert!(f.eval_collect(&Value::Null).is_empty());
    }

    #[test]
    fn removal_unregisters() {
        let factors = [
            (0, CmpOp::Gt, Value::Int(10)),
            (1, CmpOp::Gt, Value::Int(20)),
            (2, CmpOp::Eq, Value::Int(30)),
            (3, CmpOp::Ne, Value::Int(30)),
        ];
        let mut f = filter_with(&factors);
        assert_eq!(f.len(), 4);
        f.remove(1);
        f.remove(3);
        assert_eq!(f.len(), 2);
        let got = f.eval_collect(&Value::Int(30));
        assert_eq!(got.iter().collect::<Vec<_>>(), vec![0, 2]);
        // Double-remove is a no-op.
        f.remove(1);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn duplicate_factor_id_rejected() {
        let mut f = GroupedFilter::new();
        f.insert(0, CmpOp::Eq, Value::Int(1)).unwrap();
        assert!(f.insert(0, CmpOp::Gt, Value::Int(2)).is_err());
    }

    #[test]
    fn mixed_int_float_constants_compare_numerically() {
        let f = filter_with(&[
            (0, CmpOp::Gt, Value::Int(50)),
            (1, CmpOp::Gt, Value::Float(49.5)),
        ]);
        let got = f.eval_collect(&Value::Float(49.8));
        assert_eq!(got.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn matches_naive_reference_on_dense_grid() {
        // All ops × constants 0..10 against probes -1..11 — exhaustive
        // agreement with per-factor evaluation.
        let mut factors = Vec::new();
        let mut id = 0;
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for c in 0..10i64 {
                factors.push((id, op, Value::Int(c)));
                id += 1;
            }
        }
        let f = filter_with(&factors);
        for probe in -1..=11i64 {
            let v = Value::Int(probe);
            assert_eq!(
                f.eval_collect(&v),
                naive(&factors, &v),
                "disagreement at probe {probe}"
            );
        }
    }
}
