//! The SteM: a temporary, indexed repository of homogeneous tuples.
//!
//! The equality index is keyed by the *precomputed* FNV-1a hash of the
//! key value ([`tcq_common::hash_value`]), not by the value itself, so a
//! prehashed probe ([`SteM::probe_eq_hashed`]) touches the index without
//! hashing anything — the hash was computed once at ingress and rides on
//! the tuple ([`Tuple::key_hash`]). Buckets verify stored-key equality on
//! probe, so a 64-bit collision can never manufacture a false match; with
//! the hash/Eq coherence `tcq_common::value` pins, results are identical
//! to the old `HashMap<Value, _>` index.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use tcq_common::{hash_value, IdentityBuildHasher, Result, SchemaRef, TcqError, Tuple, Value};

/// Which index a SteM maintains on its key column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Hash index: O(1) equality probes (symmetric hash join, Figure 2).
    Hash,
    /// Ordered index: supports range probes (temporal band joins, §4.1.1
    /// example 4) in addition to equality probes.
    Ordered,
    /// Both indexes maintained.
    Both,
}

impl IndexKind {
    fn has_hash(self) -> bool {
        matches!(self, IndexKind::Hash | IndexKind::Both)
    }
    fn has_ordered(self) -> bool {
        matches!(self, IndexKind::Ordered | IndexKind::Both)
    }
}

/// Wrapper giving [`Value`] the total order needed for `BTreeMap` keys.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OrdValue(Value);

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A State Module: build / probe / evict over homogeneous tuples.
///
/// Eviction is timestamp-ordered: sliding windows call
/// [`SteM::evict_before_seq`] as the window's trailing edge advances, which
/// is how TelegraphCQ bounds the state of joins over infinite streams.
pub struct SteM {
    name: String,
    schema: SchemaRef,
    key_col: usize,
    kind: IndexKind,
    /// Slot-addressed storage; `None` marks an evicted slot.
    slots: Vec<Option<Tuple>>,
    /// Equality index keyed by the key value's FNV-1a hash. The identity
    /// build-hasher passes the (already well-mixed) hash straight
    /// through — no SipHash on the probe path.
    hash: HashMap<u64, Vec<u32>, IdentityBuildHasher>,
    ordered: BTreeMap<OrdValue, Vec<u32>>,
    /// (logical timestamp, slot) in arrival order, for eviction.
    arrival: VecDeque<(i64, u32)>,
    live: usize,
    /// Counters for adaptive routing policies and experiments.
    builds: u64,
    probes: u64,
    matches: u64,
    /// Key-hash computations this SteM actually performed (memoized hits
    /// carried in on the tuple are free and not counted) — the
    /// double-hash-removal regression test reads this.
    hash_computes: u64,
    /// Key-hash groups mutated (insert/evict/drain) since the last
    /// [`SteM::clear_dirty`]. `BTreeSet` so checkpoint export iterates in
    /// a deterministic order — delta checkpoints must be byte-identical
    /// across same-seed runs.
    dirty: BTreeSet<u64>,
}

impl SteM {
    /// Create a SteM over `schema`, indexed on column `key_col`.
    pub fn new(
        name: impl Into<String>,
        schema: SchemaRef,
        key_col: usize,
        kind: IndexKind,
    ) -> Result<Self> {
        if key_col >= schema.len() {
            return Err(TcqError::SchemaMismatch(format!(
                "key column {key_col} out of range for schema {schema}"
            )));
        }
        Ok(SteM {
            name: name.into(),
            schema,
            key_col,
            kind,
            slots: Vec::new(),
            hash: HashMap::default(),
            ordered: BTreeMap::new(),
            arrival: VecDeque::new(),
            live: 0,
            builds: 0,
            probes: 0,
            matches: 0,
            hash_computes: 0,
            dirty: BTreeSet::new(),
        })
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Schema of stored tuples.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The indexed column.
    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// Insert (build) a tuple. If the tuple carries a memoized key hash
    /// for this SteM's key column (computed upstream by partition routing
    /// or a prior probe), the hash index reuses it; otherwise one FNV
    /// pass is computed here and memoized on the stored tuple — so
    /// eviction and compaction never rehash.
    pub fn insert(&mut self, tuple: Tuple) -> Result<()> {
        if tuple.arity() != self.schema.len() {
            return Err(TcqError::SchemaMismatch(format!(
                "SteM {} expects arity {}, got {}",
                self.name,
                self.schema.len(),
                tuple.arity()
            )));
        }
        let seq = tuple.timestamp().seq();
        let slot = self.slots.len() as u32;
        let h = self.key_hash_of(&tuple);
        self.dirty.insert(h);
        if self.kind.has_hash() {
            self.hash.entry(h).or_default().push(slot);
        }
        if self.kind.has_ordered() {
            let key = tuple.value(self.key_col).clone();
            self.ordered.entry(OrdValue(key)).or_default().push(slot);
        }
        self.slots.push(Some(tuple));
        // Keep the eviction index sorted by timestamp. Streams deliver in
        // timestamp order (O(1) append); out-of-order inserts (e.g. state
        // absorbed from a Flux peer) pay a positional insert.
        if self.arrival.back().is_some_and(|&(last, _)| last > seq) {
            let pos = self.arrival.partition_point(|&(s, _)| s <= seq);
            self.arrival.insert(pos, (seq, slot));
        } else {
            self.arrival.push_back((seq, slot));
        }
        self.live += 1;
        self.builds += 1;
        Ok(())
    }

    /// The key hash of `t`, reusing its memo when present and billing a
    /// real computation to `hash_computes` otherwise.
    fn key_hash_of(&mut self, t: &Tuple) -> u64 {
        match t.cached_key_hash(self.key_col) {
            Some(h) => h,
            None => {
                self.hash_computes += 1;
                t.key_hash(self.key_col)
            }
        }
    }

    /// Probe for tuples whose key equals `key`, appending matches to `out`.
    /// Returns the number of matches. Computes the key's hash here; the
    /// prehashed hot path uses [`SteM::probe_eq_hashed`] instead.
    pub fn probe_eq(&mut self, key: &Value, out: &mut Vec<Tuple>) -> usize {
        if self.kind.has_hash() {
            self.hash_computes += 1;
            let h = hash_value(key);
            self.probe_eq_hashed(h, key, out)
        } else {
            self.probe_eq_ordered(key, out)
        }
    }

    /// Probe with a precomputed key hash (`hash` must be
    /// [`hash_value`]`(key)`; [`Tuple::key_hash`] produces exactly that).
    /// No hashing happens here — one bucket lookup plus a stored-key
    /// equality check per candidate (collision safety).
    pub fn probe_eq_hashed(&mut self, hash: u64, key: &Value, out: &mut Vec<Tuple>) -> usize {
        if !self.kind.has_hash() {
            return self.probe_eq_ordered(key, out);
        }
        self.probes += 1;
        let mut n = 0;
        if let Some(slots) = self.hash.get(&hash) {
            for &s in slots {
                if let Some(t) = &self.slots[s as usize] {
                    if t.value(self.key_col) == key {
                        out.push(t.clone());
                        n += 1;
                    }
                }
            }
        }
        self.matches += n as u64;
        n
    }

    /// Equality probe through the ordered index (ordered-only SteMs).
    fn probe_eq_ordered(&mut self, key: &Value, out: &mut Vec<Tuple>) -> usize {
        self.probes += 1;
        let mut n = 0;
        if let Some(slots) = self.ordered.get(&OrdValue(key.clone())) {
            for &s in slots {
                if let Some(t) = &self.slots[s as usize] {
                    out.push(t.clone());
                    n += 1;
                }
            }
        }
        self.matches += n as u64;
        n
    }

    /// Probe for tuples whose key lies in `[lo, hi]` (inclusive), appending
    /// matches to `out`. Requires an ordered index.
    pub fn probe_range(&mut self, lo: &Value, hi: &Value, out: &mut Vec<Tuple>) -> Result<usize> {
        if !self.kind.has_ordered() {
            return Err(TcqError::Executor(format!(
                "SteM {} has no ordered index for range probes",
                self.name
            )));
        }
        self.probes += 1;
        let mut n = 0;
        let range = self
            .ordered
            .range(OrdValue(lo.clone())..=OrdValue(hi.clone()));
        for (_, slots) in range {
            for &s in slots {
                if let Some(t) = &self.slots[s as usize] {
                    out.push(t.clone());
                    n += 1;
                }
            }
        }
        self.matches += n as u64;
        Ok(n)
    }

    /// Iterate over all live tuples (used for residual predicates the
    /// indexes cannot answer, and by Flux state movement).
    pub fn scan(&self) -> impl Iterator<Item = &Tuple> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Evict every tuple with logical timestamp `< seq` (the trailing edge
    /// of a sliding window). Returns the number evicted.
    pub fn evict_before_seq(&mut self, seq: i64) -> usize {
        let mut evicted = 0;
        while let Some(&(ts, slot)) = self.arrival.front() {
            if ts >= seq {
                break;
            }
            self.arrival.pop_front();
            if let Some(t) = self.slots[slot as usize].take() {
                let key = t.value(self.key_col);
                // insert() memoized the hash on the stored tuple, so
                // eviction is rehash-free (the fallback only fires for
                // tuples memoized on a different column upstream).
                let h = t
                    .cached_key_hash(self.key_col)
                    .unwrap_or_else(|| hash_value(key));
                self.dirty.insert(h);
                if self.kind.has_hash() {
                    if let Some(slots) = self.hash.get_mut(&h) {
                        slots.retain(|&s| s != slot);
                        if slots.is_empty() {
                            self.hash.remove(&h);
                        }
                    }
                }
                if self.kind.has_ordered() {
                    let ok = OrdValue(key.clone());
                    if let Some(slots) = self.ordered.get_mut(&ok) {
                        slots.retain(|&s| s != slot);
                        if slots.is_empty() {
                            self.ordered.remove(&ok);
                        }
                    }
                }
                self.live -= 1;
                evicted += 1;
            }
        }
        evicted
    }

    /// Drain all tuples out (Flux state movement: the whole partition moves
    /// to another node). Leaves the SteM empty but reusable. Every drained
    /// group is marked dirty: its content here is now empty, and the next
    /// checkpoint must record the clearing.
    pub fn drain_all(&mut self) -> Vec<Tuple> {
        let out: Vec<Tuple> = self.slots.iter_mut().filter_map(|s| s.take()).collect();
        for t in &out {
            let h = t
                .cached_key_hash(self.key_col)
                .unwrap_or_else(|| hash_value(t.value(self.key_col)));
            self.dirty.insert(h);
        }
        self.hash.clear();
        self.ordered.clear();
        self.arrival.clear();
        self.slots.clear();
        self.live = 0;
        out
    }

    /// Key-hash groups mutated since the last [`SteM::clear_dirty`], in
    /// ascending hash order (deterministic checkpoint deltas).
    pub fn dirty_groups(&self) -> impl Iterator<Item = u64> + '_ {
        self.dirty.iter().copied()
    }

    /// Number of currently dirty groups.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Mark every group clean — call only after the delta containing them
    /// has been durably committed.
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    /// Append all live tuples whose key hash is `hash` to `out`, in
    /// storage order. This is a group's *full current content* — a delta
    /// checkpoint writes it for every dirty hash, so an emptied group
    /// (all evicted) exports zero tuples, which restore reads as a clear.
    pub fn export_group(&self, hash: u64, out: &mut Vec<Tuple>) {
        if self.kind.has_hash() {
            if let Some(slots) = self.hash.get(&hash) {
                for &s in slots {
                    if let Some(t) = &self.slots[s as usize] {
                        out.push(t.clone());
                    }
                }
            }
        } else {
            for t in self.scan() {
                let h = t
                    .cached_key_hash(self.key_col)
                    .unwrap_or_else(|| hash_value(t.value(self.key_col)));
                if h == hash {
                    out.push(t.clone());
                }
            }
        }
    }

    /// Replace the group keyed by `hash` with `tuples` (restore path).
    /// Existing tuples of the group are removed first, so re-importing a
    /// checkpointed group is idempotent and an empty import clears it.
    /// Leaves the dirty set exactly as it was: restored state is clean
    /// with respect to the checkpoint it came from.
    pub fn import_group(&mut self, hash: u64, tuples: Vec<Tuple>) -> Result<()> {
        let stale: Vec<u32> = if self.kind.has_hash() {
            self.hash.get(&hash).cloned().unwrap_or_default()
        } else {
            self.slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.as_ref().map(|t| (i as u32, t)))
                .filter(|(_, t)| {
                    t.cached_key_hash(self.key_col)
                        .unwrap_or_else(|| hash_value(t.value(self.key_col)))
                        == hash
                })
                .map(|(i, _)| i)
                .collect()
        };
        for slot in stale {
            if let Some(t) = self.slots[slot as usize].take() {
                if self.kind.has_ordered() {
                    let ok = OrdValue(t.value(self.key_col).clone());
                    if let Some(slots) = self.ordered.get_mut(&ok) {
                        slots.retain(|&s| s != slot);
                        if slots.is_empty() {
                            self.ordered.remove(&ok);
                        }
                    }
                }
                self.arrival.retain(|&(_, s)| s != slot);
                self.live -= 1;
            }
        }
        if self.kind.has_hash() {
            self.hash.remove(&hash);
        }
        let dirty = std::mem::take(&mut self.dirty);
        let builds = self.builds;
        for t in tuples {
            self.insert(t)?;
        }
        self.builds = builds;
        self.dirty = dirty;
        Ok(())
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live tuple is stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// (builds, probes, matches) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.builds, self.probes, self.matches)
    }

    /// Key-hash computations this SteM performed itself. Memoized hashes
    /// arriving on tuples (from partition routing or a prior probe) are
    /// free; this counts only real FNV passes — the observable the
    /// hashed-exactly-once regression test pins.
    pub fn hash_computes(&self) -> u64 {
        self.hash_computes
    }

    /// Reclaim slot storage when most slots are evicted. Called
    /// opportunistically by long-running joins; invalidates nothing callers
    /// can observe (slots are private).
    pub fn compact(&mut self) {
        if self.slots.len() < 64 || self.live * 2 > self.slots.len() {
            return;
        }
        let old_slots = std::mem::take(&mut self.slots);
        self.hash.clear();
        self.ordered.clear();
        let mut old_arrival = std::mem::take(&mut self.arrival);
        // Rebuild in arrival order to preserve eviction semantics.
        let mut remap: HashMap<u32, Tuple> = HashMap::new();
        for (slot, t) in old_slots.into_iter().enumerate() {
            if let Some(t) = t {
                remap.insert(slot as u32, t);
            }
        }
        self.live = 0;
        let builds = self.builds; // insert() increments; restore after
        let dirty = std::mem::take(&mut self.dirty); // contents unchanged
        while let Some((_, slot)) = old_arrival.pop_front() {
            if let Some(t) = remap.remove(&slot) {
                // insert cannot fail: tuples came from this SteM
                let _ = self.insert(t);
            }
        }
        self.builds = builds;
        self.dirty = dirty;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{DataType, Field, Schema, Timestamp, TupleBuilder};

    fn schema() -> SchemaRef {
        Schema::qualified(
            "s",
            vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Str),
            ],
        )
        .into_ref()
    }

    fn t(k: i64, v: &str, ts: i64) -> Tuple {
        TupleBuilder::new(schema())
            .push(k)
            .push(v)
            .at(Timestamp::logical(ts))
            .build()
            .unwrap()
    }

    #[test]
    fn build_and_probe_eq() {
        let mut stem = SteM::new("S", schema(), 0, IndexKind::Hash).unwrap();
        stem.insert(t(1, "a", 1)).unwrap();
        stem.insert(t(2, "b", 2)).unwrap();
        stem.insert(t(1, "c", 3)).unwrap();
        let mut out = Vec::new();
        assert_eq!(stem.probe_eq(&Value::Int(1), &mut out), 2);
        assert_eq!(stem.probe_eq(&Value::Int(9), &mut out), 0);
        assert_eq!(out.len(), 2);
        assert_eq!(stem.counters(), (3, 2, 2));
    }

    #[test]
    fn range_probe_needs_ordered_index() {
        let mut hash_only = SteM::new("S", schema(), 0, IndexKind::Hash).unwrap();
        let mut out = Vec::new();
        assert!(hash_only
            .probe_range(&Value::Int(0), &Value::Int(5), &mut out)
            .is_err());

        let mut stem = SteM::new("S", schema(), 0, IndexKind::Ordered).unwrap();
        for k in 0..10 {
            stem.insert(t(k, "x", k)).unwrap();
        }
        let n = stem
            .probe_range(&Value::Int(3), &Value::Int(6), &mut out)
            .unwrap();
        assert_eq!(n, 4);
        let mut keys: Vec<i64> = out.iter().map(|t| t.value(0).as_int().unwrap()).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![3, 4, 5, 6]);
    }

    #[test]
    fn ordered_index_answers_eq_probes_too() {
        let mut stem = SteM::new("S", schema(), 0, IndexKind::Ordered).unwrap();
        stem.insert(t(5, "x", 1)).unwrap();
        let mut out = Vec::new();
        assert_eq!(stem.probe_eq(&Value::Int(5), &mut out), 1);
    }

    #[test]
    fn eviction_respects_window_edge() {
        let mut stem = SteM::new("S", schema(), 0, IndexKind::Both).unwrap();
        for ts in 1..=10 {
            stem.insert(t(ts % 3, "x", ts)).unwrap();
        }
        assert_eq!(stem.len(), 10);
        // Slide window: keep ts >= 6.
        assert_eq!(stem.evict_before_seq(6), 5);
        assert_eq!(stem.len(), 5);
        // Probes no longer see evicted tuples in either index.
        let mut out = Vec::new();
        stem.probe_eq(&Value::Int(0), &mut out);
        assert!(out.iter().all(|t| t.timestamp().seq() >= 6));
        out.clear();
        stem.probe_range(&Value::Int(0), &Value::Int(2), &mut out)
            .unwrap();
        assert!(out.iter().all(|t| t.timestamp().seq() >= 6));
        // Idempotent.
        assert_eq!(stem.evict_before_seq(6), 0);
    }

    #[test]
    fn drain_all_for_state_movement() {
        let mut stem = SteM::new("S", schema(), 0, IndexKind::Hash).unwrap();
        for ts in 1..=4 {
            stem.insert(t(ts, "x", ts)).unwrap();
        }
        let moved = stem.drain_all();
        assert_eq!(moved.len(), 4);
        assert!(stem.is_empty());
        // Reusable after drain.
        stem.insert(t(9, "y", 9)).unwrap();
        assert_eq!(stem.len(), 1);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut stem = SteM::new("S", schema(), 0, IndexKind::Hash).unwrap();
        let other = Schema::new(vec![Field::new("z", DataType::Int)]).into_ref();
        let bad = TupleBuilder::new(other).push(1i64).build().unwrap();
        assert!(stem.insert(bad).is_err());
    }

    #[test]
    fn key_col_out_of_range_rejected() {
        assert!(SteM::new("S", schema(), 7, IndexKind::Hash).is_err());
    }

    #[test]
    fn compact_preserves_contents_and_eviction_order() {
        let mut stem = SteM::new("S", schema(), 0, IndexKind::Both).unwrap();
        for ts in 1..=100 {
            stem.insert(t(ts % 5, "x", ts)).unwrap();
        }
        stem.evict_before_seq(80);
        assert_eq!(stem.len(), 21);
        stem.compact();
        assert_eq!(stem.len(), 21);
        let mut out = Vec::new();
        stem.probe_eq(&Value::Int(0), &mut out);
        assert!(out.iter().all(|t| t.timestamp().seq() >= 80));
        // Eviction still works post-compaction.
        assert_eq!(stem.evict_before_seq(90), 10);
        assert_eq!(stem.len(), 11);
    }

    #[test]
    fn prehashed_probe_skips_hash_computation() {
        let mut stem = SteM::new("S", schema(), 0, IndexKind::Hash).unwrap();
        let a = t(1, "a", 1);
        // Prehash at "ingress": the memo rides into insert, so the SteM
        // computes nothing.
        a.key_hash(0);
        stem.insert(a).unwrap();
        assert_eq!(stem.hash_computes(), 0);
        // A cold insert computes (and memoizes) exactly once.
        stem.insert(t(2, "b", 2)).unwrap();
        assert_eq!(stem.hash_computes(), 1);
        // Prehashed probe: zero computations, same matches.
        let probe = t(1, "x", 9);
        let h = probe.key_hash(0);
        let mut out = Vec::new();
        assert_eq!(stem.probe_eq_hashed(h, probe.value(0), &mut out), 1);
        assert_eq!(stem.hash_computes(), 1);
        // Legacy probe computes one hash per call.
        out.clear();
        assert_eq!(stem.probe_eq(&Value::Int(1), &mut out), 1);
        assert_eq!(stem.hash_computes(), 2);
    }

    #[test]
    fn hashed_bucket_verifies_stored_keys() {
        // Two different keys forced into one bucket (a manufactured
        // collision): the equality check must keep them apart.
        let mut stem = SteM::new("S", schema(), 0, IndexKind::Hash).unwrap();
        stem.insert(t(1, "a", 1)).unwrap();
        stem.insert(t(2, "b", 2)).unwrap();
        let h1 = tcq_common::hash_value(&Value::Int(1));
        let mut out = Vec::new();
        // Right hash, wrong key: bucket hit, key check rejects.
        assert_eq!(stem.probe_eq_hashed(h1, &Value::Int(2), &mut out), 0);
        assert_eq!(stem.probe_eq_hashed(h1, &Value::Int(1), &mut out), 1);
    }

    #[test]
    fn cross_type_keys_probe_equal_through_hash_index() {
        // Int(7) and Float(7.0) are equal and hash equal — a probe with
        // either representation must find both.
        let mut stem = SteM::new("S", schema(), 0, IndexKind::Hash).unwrap();
        stem.insert(t(7, "a", 1)).unwrap();
        let mut out = Vec::new();
        assert_eq!(stem.probe_eq(&Value::Float(7.0), &mut out), 1);
        let h = tcq_common::hash_value(&Value::Float(7.0));
        assert_eq!(stem.probe_eq_hashed(h, &Value::Float(7.0), &mut out), 1);
    }

    #[test]
    fn compact_reuses_memoized_hashes() {
        let mut stem = SteM::new("S", schema(), 0, IndexKind::Both).unwrap();
        for ts in 1..=100 {
            stem.insert(t(ts % 5, "x", ts)).unwrap();
        }
        let computes = stem.hash_computes();
        assert_eq!(computes, 100);
        stem.evict_before_seq(80);
        stem.compact();
        // Eviction and compaction reuse the memoized per-tuple hashes.
        assert_eq!(stem.hash_computes(), computes);
        let mut out = Vec::new();
        assert_eq!(
            stem.probe_eq_hashed(
                tcq_common::hash_value(&Value::Int(0)),
                &Value::Int(0),
                &mut out,
            ),
            out.len()
        );
        assert!(out.iter().all(|t| t.timestamp().seq() >= 80));
    }

    #[test]
    fn dirty_tracking_scales_with_churn_not_state() {
        let mut stem = SteM::new("S", schema(), 0, IndexKind::Hash).unwrap();
        for ts in 1..=100 {
            stem.insert(t(ts % 10, "x", ts)).unwrap();
        }
        assert_eq!(stem.dirty_len(), 10, "one dirty entry per touched group");
        stem.clear_dirty();
        assert_eq!(stem.dirty_len(), 0);
        // Touch exactly two groups: the delta is two, not the full state.
        stem.insert(t(3, "y", 101)).unwrap();
        stem.insert(t(7, "y", 102)).unwrap();
        assert_eq!(stem.dirty_len(), 2);
        let dirty: Vec<u64> = stem.dirty_groups().collect();
        assert_eq!(
            dirty,
            {
                let mut v = vec![
                    tcq_common::hash_value(&Value::Int(3)),
                    tcq_common::hash_value(&Value::Int(7)),
                ];
                v.sort_unstable();
                v
            },
            "dirty iteration is hash-ordered and exact"
        );
        // Eviction dirties the groups it empties.
        stem.clear_dirty();
        stem.evict_before_seq(11);
        assert_eq!(stem.dirty_len(), 10, "seqs 1..=10 span all ten groups");
        // Compaction is content-neutral: no new dirt.
        stem.clear_dirty();
        let mut big = SteM::new("B", schema(), 0, IndexKind::Both).unwrap();
        for ts in 1..=100 {
            big.insert(t(ts % 5, "x", ts)).unwrap();
        }
        big.evict_before_seq(80);
        big.clear_dirty();
        big.compact();
        assert_eq!(big.dirty_len(), 0, "compact dirties nothing");
    }

    #[test]
    fn export_import_group_roundtrip() {
        let mut a = SteM::new("A", schema(), 0, IndexKind::Both).unwrap();
        for ts in 1..=20 {
            a.insert(t(ts % 4, "x", ts)).unwrap();
        }
        let h = tcq_common::hash_value(&Value::Int(2));
        let mut group = Vec::new();
        a.export_group(h, &mut group);
        assert_eq!(group.len(), 5, "seqs 2,6,10,14,18");

        // Import into a fresh SteM: probes agree with the source.
        let mut b = SteM::new("B", schema(), 0, IndexKind::Both).unwrap();
        b.import_group(h, group.clone()).unwrap();
        assert_eq!(b.len(), 5);
        assert_eq!(b.dirty_len(), 0, "imported state is clean");
        let mut out = Vec::new();
        assert_eq!(b.probe_eq(&Value::Int(2), &mut out), 5);
        out.clear();
        assert_eq!(
            b.probe_range(&Value::Int(2), &Value::Int(2), &mut out)
                .unwrap(),
            5
        );
        // Re-import is idempotent (group replaced, not doubled).
        b.import_group(h, group).unwrap();
        assert_eq!(b.len(), 5);
        // Empty import clears the group.
        b.import_group(h, Vec::new()).unwrap();
        assert_eq!(b.len(), 0);
        out.clear();
        assert_eq!(b.probe_eq(&Value::Int(2), &mut out), 0);
        // Eviction ordering survives an out-of-order import.
        let mut c = SteM::new("C", schema(), 0, IndexKind::Hash).unwrap();
        c.insert(t(9, "late", 50)).unwrap();
        let mut g = Vec::new();
        a.export_group(tcq_common::hash_value(&Value::Int(1)), &mut g);
        c.import_group(tcq_common::hash_value(&Value::Int(1)), g)
            .unwrap();
        assert_eq!(c.evict_before_seq(14), 4, "seqs 1,5,9,13 evicted");
    }

    #[test]
    fn exported_empty_group_records_a_clearing() {
        let mut stem = SteM::new("S", schema(), 0, IndexKind::Hash).unwrap();
        stem.insert(t(1, "x", 1)).unwrap();
        stem.clear_dirty();
        stem.evict_before_seq(10);
        let h = tcq_common::hash_value(&Value::Int(1));
        assert_eq!(stem.dirty_groups().collect::<Vec<_>>(), vec![h]);
        let mut group = Vec::new();
        stem.export_group(h, &mut group);
        assert!(group.is_empty(), "emptied group exports zero tuples");
    }

    #[test]
    fn scan_sees_only_live() {
        let mut stem = SteM::new("S", schema(), 0, IndexKind::Hash).unwrap();
        for ts in 1..=6 {
            stem.insert(t(ts, "x", ts)).unwrap();
        }
        stem.evict_before_seq(4);
        let seqs: Vec<i64> = stem.scan().map(|t| t.timestamp().seq()).collect();
        assert_eq!(seqs, vec![4, 5, 6]);
    }
}
