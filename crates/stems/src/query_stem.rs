//! The Query SteM (PSoup, §3.2).
//!
//! > "It does this by indexing queries into a query SteM, which can be
//! > thought of as a generalization of the notion of a grouped filter."
//!
//! A [`QueryStem`] stores the SELECT-FROM-WHERE predicates of standing
//! queries over one stream schema. Probing a tuple returns the exact set of
//! satisfied query ids. To keep per-tuple cost sublinear in the number of
//! registered queries, queries are split into three tiers at registration:
//!
//! * **Anchored** — any query with at least one equality factor. Its first
//!   `col = const` factor becomes a hash *anchor* (`column → constant →
//!   candidate list`); a probe touches only the candidates in the probed
//!   value's bucket and verifies their remaining single-column factors
//!   directly. Cost is O(bucket), independent of the total query count.
//! * **Scan** — queries with only range/inequality factors. Their factors go
//!   into per-column [`GroupedFilter`]s; a probe unions satisfied factors
//!   and counts them per owning query (generation-stamped counters, no
//!   per-probe reset), accepting queries whose every factor was satisfied.
//!   Cost is O(satisfied factors), not O(registered queries).
//! * **Unindexed** — no single-column factor at all (match-all or pure
//!   residual); always candidates.
//!
//! Conjuncts that are not single-column factors become *residual* predicates
//! evaluated only for candidates that survived their tier. The probe path
//! allocates nothing: all per-probe state lives in a caller-supplied
//! [`MatchScratch`] ([`QueryStem::matching_into`]).

use std::collections::HashMap;

use tcq_common::{BitSet, CmpOp, Expr, Predicate, Result, SchemaRef, TcqError, Tuple, Value};

use crate::grouped_filter::{FactorId, GroupedFilter};

/// Identifies a standing query in a [`QueryStem`].
pub type QueryId = usize;

struct QueryEntry {
    /// Factor ids this query owns in the scan-tier grouped filters.
    factors: Vec<FactorId>,
    /// Residual conjuncts not indexable by grouped filters, each lowered
    /// to a [`Predicate`] (compiled kernel when the shape allows it).
    residual: Vec<Predicate>,
    /// Anchored tier: the `(column, constant)` equality this query is
    /// bucketed under.
    anchor: Option<(usize, Value)>,
    /// Anchored tier: remaining single-column factors, verified per
    /// candidate with SQL comparison semantics.
    verify: Vec<(usize, CmpOp, Value)>,
}

/// Reusable per-probe state for [`QueryStem::matching_into`]. Keeping it
/// outside the stem lets one allocation-free scratch serve every probe of a
/// pipeline; after warm-up no probe allocates.
#[derive(Default)]
pub struct MatchScratch {
    /// Satisfied-factor set, reused across per-column filter probes.
    satisfied: BitSet,
    /// Result set; only bits listed in `matched` are ever set.
    alive: BitSet,
    /// Matching query ids, sorted ascending after a successful probe.
    matched: Vec<QueryId>,
    /// Per-query satisfied scan-factor count, valid when stamped with `gen`.
    counts: Vec<u32>,
    stamps: Vec<u64>,
    gen: u64,
    /// Scan-tier queries touched by the current probe.
    touched: Vec<QueryId>,
}

impl MatchScratch {
    /// A fresh, empty scratch; grows to fit on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The queries matched by the last probe, ascending.
    pub fn matches(&self) -> &[QueryId] {
        &self.matched
    }

    /// The matched set of the last probe as a bitset.
    pub fn alive(&self) -> &BitSet {
        &self.alive
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.satisfied.approx_bytes()
            + self.alive.approx_bytes()
            + self.matched.capacity() * std::mem::size_of::<QueryId>()
            + self.counts.capacity() * std::mem::size_of::<u32>()
            + self.stamps.capacity() * std::mem::size_of::<u64>()
            + self.touched.capacity() * std::mem::size_of::<QueryId>()
    }

    /// Clear the previous probe's result in O(|matches|) — the alive bitset
    /// is never swept whole, so probe cost does not pick up an O(queries/64)
    /// memset as the registered population grows.
    fn begin(&mut self, qid_bound: usize) {
        for q in self.matched.drain(..) {
            self.alive.remove(q);
        }
        if self.counts.len() < qid_bound {
            self.counts.resize(qid_bound, 0);
            self.stamps.resize(qid_bound, 0);
        }
        self.gen += 1;
    }
}

/// An index over standing queries: probe with a tuple, get satisfied queries.
pub struct QueryStem {
    schema: SchemaRef,
    /// Scan tier: one grouped filter per referenced column.
    filters: HashMap<usize, GroupedFilter>,
    /// factor id -> owning query (scan tier only).
    factor_owner: Vec<QueryId>,
    /// factor id -> column, so removal touches exactly one filter.
    factor_col: Vec<usize>,
    /// Recycled factor ids.
    free_factors: Vec<FactorId>,
    /// Anchored tier: column -> constant -> candidate queries.
    anchors: HashMap<usize, HashMap<Value, Vec<QueryId>>>,
    /// Scan tier: per-query total indexed factor count (dense by query id).
    scan_total: Vec<u32>,
    /// Queries with no single-column factor (always candidates).
    unindexed: BitSet,
    queries: HashMap<QueryId, QueryEntry>,
    all_queries: BitSet,
    /// Queries with at least one residual conjunct.
    has_residual: BitSet,
    /// One past the highest query id ever registered.
    qid_bound: usize,
    /// Whether residual predicates are lowered to compiled kernels.
    compiled_kernels: bool,
}

impl QueryStem {
    /// An empty query SteM over tuples of `schema`, with residual
    /// predicates compiled to kernels where possible.
    pub fn new(schema: SchemaRef) -> Self {
        Self::with_compiled_kernels(schema, true)
    }

    /// Like [`QueryStem::new`], choosing whether residuals compile to
    /// kernels (`true`) or stay on the tree-walking interpreter (`false`).
    pub fn with_compiled_kernels(schema: SchemaRef, compiled_kernels: bool) -> Self {
        QueryStem {
            schema,
            filters: HashMap::new(),
            factor_owner: Vec::new(),
            factor_col: Vec::new(),
            free_factors: Vec::new(),
            anchors: HashMap::new(),
            scan_total: Vec::new(),
            unindexed: BitSet::new(),
            queries: HashMap::new(),
            all_queries: BitSet::new(),
            has_residual: BitSet::new(),
            qid_bound: 0,
            compiled_kernels,
        }
    }

    /// The stream schema queries are registered against.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Register query `id` with predicate `pred` (`None` = no WHERE clause,
    /// matches everything). Errors if `id` is taken or the predicate does
    /// not bind against the schema.
    pub fn insert_query(&mut self, id: QueryId, pred: Option<&Expr>) -> Result<()> {
        if self.queries.contains_key(&id) {
            return Err(TcqError::Capacity(format!("query {id} already registered")));
        }
        // Decompose fully (and fallibly) before registering anything, so a
        // bad predicate leaves the stem untouched.
        let mut single: Vec<(usize, CmpOp, Value)> = Vec::new();
        let mut residual = Vec::new();
        if let Some(pred) = pred {
            for factor in pred.conjuncts() {
                match factor.as_single_column_factor() {
                    Some((qual, name, op, constant)) if !constant.is_null() => {
                        let col = self.schema.index_of(qual, name)?;
                        single.push((col, op, constant.clone()));
                    }
                    _ => {
                        residual.push(Predicate::new(factor, &self.schema, self.compiled_kernels)?);
                    }
                }
            }
        }
        let mut entry = QueryEntry {
            factors: Vec::new(),
            residual,
            anchor: None,
            verify: Vec::new(),
        };
        if let Some(pos) = single.iter().position(|(_, op, _)| *op == CmpOp::Eq) {
            // Anchored: bucket under the first equality, verify the rest
            // per candidate.
            let (col, _, constant) = single.remove(pos);
            self.anchors
                .entry(col)
                .or_default()
                .entry(constant.clone())
                .or_default()
                .push(id);
            entry.anchor = Some((col, constant));
            entry.verify = single;
        } else if !single.is_empty() {
            // Scan tier: factors into the per-column grouped filters.
            for (col, op, constant) in single {
                let fid = self.alloc_factor(id, col);
                self.filters
                    .entry(col)
                    .or_default()
                    .insert(fid, op, constant)
                    .expect("fresh factor id cannot collide");
                entry.factors.push(fid);
            }
            if id >= self.scan_total.len() {
                self.scan_total.resize(id + 1, 0);
            }
            self.scan_total[id] = entry.factors.len() as u32;
        } else {
            self.unindexed.insert(id);
        }
        if !entry.residual.is_empty() {
            self.has_residual.insert(id);
        }
        self.queries.insert(id, entry);
        self.all_queries.insert(id);
        self.qid_bound = self.qid_bound.max(id + 1);
        Ok(())
    }

    /// Remove query `id`; errors if unknown. O(own factors + own bucket),
    /// not O(registered queries).
    pub fn remove_query(&mut self, id: QueryId) -> Result<()> {
        let entry = self
            .queries
            .remove(&id)
            .ok_or_else(|| TcqError::Executor(format!("query {id} not registered")))?;
        for fid in entry.factors {
            let col = self.factor_col[fid];
            if let Some(filter) = self.filters.get_mut(&col) {
                filter.remove(fid);
                if filter.is_empty() {
                    self.filters.remove(&col);
                }
            }
            self.free_factors.push(fid);
        }
        if let Some((col, constant)) = entry.anchor {
            if let Some(buckets) = self.anchors.get_mut(&col) {
                if let Some(cands) = buckets.get_mut(&constant) {
                    cands.retain(|&q| q != id);
                    if cands.is_empty() {
                        buckets.remove(&constant);
                    }
                }
                if buckets.is_empty() {
                    self.anchors.remove(&col);
                }
            }
        }
        if id < self.scan_total.len() {
            self.scan_total[id] = 0;
        }
        self.unindexed.remove(id);
        self.all_queries.remove(id);
        self.has_residual.remove(id);
        Ok(())
    }

    /// Number of standing queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when no query is registered.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Probe: the exact set of queries `tuple` satisfies, into a fresh set.
    ///
    /// Convenience wrapper over [`QueryStem::matching_into`]; allocates a
    /// scratch per call. Hot paths should hold a [`MatchScratch`] instead.
    pub fn matching(&self, tuple: &Tuple) -> Result<BitSet> {
        let mut scratch = MatchScratch::new();
        self.matching_into(tuple, &mut scratch)?;
        Ok(scratch.alive.clone())
    }

    /// Probe with caller-supplied scratch: after the call,
    /// [`MatchScratch::matches`] / [`MatchScratch::alive`] hold the exact
    /// satisfied query set. Allocation-free once the scratch is warm.
    pub fn matching_into(&self, tuple: &Tuple, scratch: &mut MatchScratch) -> Result<()> {
        scratch.begin(self.qid_bound);
        let MatchScratch {
            satisfied,
            alive,
            matched,
            counts,
            stamps,
            gen,
            touched,
        } = scratch;
        // Scan tier: count satisfied factors per owning query.
        for (&col, filter) in &self.filters {
            satisfied.clear();
            filter.eval(tuple.value(col), satisfied);
            for fid in satisfied.iter() {
                let q = self.factor_owner[fid];
                if stamps[q] != *gen {
                    stamps[q] = *gen;
                    counts[q] = 1;
                    touched.push(q);
                } else {
                    counts[q] += 1;
                }
            }
        }
        for &q in touched.iter() {
            if counts[q] == self.scan_total[q] {
                alive.insert(q);
                matched.push(q);
            }
        }
        touched.clear();
        // Anchored tier: only the probed value's bucket is examined.
        for (&col, buckets) in &self.anchors {
            let v = tuple.value(col);
            if v.is_null() {
                continue;
            }
            let Some(cands) = buckets.get(v) else {
                continue;
            };
            'cand: for &q in cands {
                let entry = &self.queries[&q];
                for (c, op, constant) in &entry.verify {
                    match tuple.value(*c).sql_cmp(constant)? {
                        Some(ord) if op.matches(ord) => {}
                        _ => continue 'cand,
                    }
                }
                alive.insert(q);
                matched.push(q);
            }
        }
        // Unindexed queries are always candidates.
        for q in self.unindexed.iter() {
            alive.insert(q);
            matched.push(q);
        }
        // Residuals run only for candidates that survived their tier.
        if self.has_residual.intersects(alive) {
            for &q in matched.iter() {
                if !self.has_residual.contains(q) {
                    continue;
                }
                for pred in &self.queries[&q].residual {
                    if !pred.eval_pred(tuple)? {
                        alive.remove(q);
                        break;
                    }
                }
            }
            matched.retain(|&q| alive.contains(q));
        }
        matched.sort_unstable();
        Ok(())
    }

    /// Approximate heap footprint of the stem's index structures in bytes.
    pub fn approx_bytes(&self) -> usize {
        let mut b = 0usize;
        for f in self.filters.values() {
            b += f.approx_bytes();
        }
        b += self.filters.capacity() * std::mem::size_of::<(usize, GroupedFilter)>();
        b += self.factor_owner.capacity() * std::mem::size_of::<QueryId>();
        b += self.factor_col.capacity() * std::mem::size_of::<usize>();
        b += self.free_factors.capacity() * std::mem::size_of::<FactorId>();
        b += self.scan_total.capacity() * std::mem::size_of::<u32>();
        b += self.unindexed.approx_bytes()
            + self.all_queries.approx_bytes()
            + self.has_residual.approx_bytes();
        for buckets in self.anchors.values() {
            b += buckets.capacity() * std::mem::size_of::<(Value, Vec<QueryId>)>();
            for (k, cands) in buckets {
                b += k.approx_bytes() + cands.capacity() * std::mem::size_of::<QueryId>();
            }
        }
        b += self.queries.capacity() * std::mem::size_of::<(QueryId, QueryEntry)>();
        for e in self.queries.values() {
            b += e.factors.capacity() * std::mem::size_of::<FactorId>();
            b += e.residual.capacity() * std::mem::size_of::<Predicate>();
            b += e.verify.capacity() * std::mem::size_of::<(usize, CmpOp, Value)>();
            for (_, _, v) in &e.verify {
                if let Value::Str(s) = v {
                    b += s.len();
                }
            }
            if let Some((_, Value::Str(s))) = &e.anchor {
                b += s.len();
            }
        }
        b
    }

    fn alloc_factor(&mut self, owner: QueryId, col: usize) -> FactorId {
        match self.free_factors.pop() {
            Some(fid) => {
                self.factor_owner[fid] = owner;
                self.factor_col[fid] = col;
                fid
            }
            None => {
                self.factor_owner.push(owner);
                self.factor_col.push(col);
                self.factor_owner.len() - 1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{CmpOp, DataType, Field, Schema, Timestamp, TupleBuilder, Value};

    fn schema() -> SchemaRef {
        Schema::qualified(
            "ClosingStockPrices",
            vec![
                Field::new("timestamp", DataType::Int),
                Field::new("stockSymbol", DataType::Str),
                Field::new("closingPrice", DataType::Float),
            ],
        )
        .into_ref()
    }

    fn tick(ts: i64, sym: &str, price: f64) -> Tuple {
        TupleBuilder::new(schema())
            .push(ts)
            .push(sym)
            .push(price)
            .at(Timestamp::logical(ts))
            .build()
            .unwrap()
    }

    fn msft_over(price: f64) -> Expr {
        Expr::col("stockSymbol")
            .cmp(CmpOp::Eq, Expr::lit("MSFT"))
            .and(Expr::col("closingPrice").cmp(CmpOp::Gt, Expr::lit(price)))
    }

    #[test]
    fn multi_query_matching() {
        let mut qs = QueryStem::new(schema());
        qs.insert_query(0, Some(&msft_over(50.0))).unwrap();
        qs.insert_query(1, Some(&msft_over(60.0))).unwrap();
        qs.insert_query(
            2,
            Some(&Expr::col("stockSymbol").cmp(CmpOp::Eq, Expr::lit("IBM"))),
        )
        .unwrap();
        qs.insert_query(3, None).unwrap(); // match-all

        let m = qs.matching(&tick(1, "MSFT", 55.0)).unwrap();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 3]);
        let m = qs.matching(&tick(2, "MSFT", 65.0)).unwrap();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 1, 3]);
        let m = qs.matching(&tick(3, "IBM", 10.0)).unwrap();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn two_factors_on_same_column_both_required() {
        // price > 10 AND price < 20: both factors land in the same grouped
        // filter; the query must match only when BOTH hold.
        let mut qs = QueryStem::new(schema());
        let pred = Expr::col("closingPrice")
            .cmp(CmpOp::Gt, Expr::lit(10.0))
            .and(Expr::col("closingPrice").cmp(CmpOp::Lt, Expr::lit(20.0)));
        qs.insert_query(0, Some(&pred)).unwrap();
        assert!(qs.matching(&tick(1, "X", 15.0)).unwrap().contains(0));
        assert!(!qs.matching(&tick(1, "X", 25.0)).unwrap().contains(0));
        assert!(!qs.matching(&tick(1, "X", 5.0)).unwrap().contains(0));
    }

    #[test]
    fn residual_predicates_evaluated_for_survivors() {
        let mut qs = QueryStem::new(schema());
        // timestamp * 2 > closingPrice is not single-column -> residual.
        let residual = Expr::Arith {
            op: tcq_common::ArithOp::Mul,
            lhs: Box::new(Expr::col("timestamp")),
            rhs: Box::new(Expr::lit(2i64)),
        }
        .cmp(CmpOp::Gt, Expr::col("closingPrice"));
        let pred = Expr::col("stockSymbol")
            .cmp(CmpOp::Eq, Expr::lit("MSFT"))
            .and(residual);
        qs.insert_query(0, Some(&pred)).unwrap();
        assert!(qs.matching(&tick(100, "MSFT", 150.0)).unwrap().contains(0));
        assert!(!qs.matching(&tick(10, "MSFT", 150.0)).unwrap().contains(0));
        // indexed factor fails -> residual never matters
        assert!(!qs.matching(&tick(100, "IBM", 150.0)).unwrap().contains(0));
    }

    #[test]
    fn remove_query_and_id_reuse() {
        let mut qs = QueryStem::new(schema());
        qs.insert_query(0, Some(&msft_over(50.0))).unwrap();
        qs.insert_query(1, Some(&msft_over(10.0))).unwrap();
        qs.remove_query(0).unwrap();
        assert_eq!(qs.len(), 1);
        let m = qs.matching(&tick(1, "MSFT", 60.0)).unwrap();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![1]);
        // Re-register id 0 with a different predicate; recycled factor ids
        // must not leak old ownership.
        qs.insert_query(
            0,
            Some(&Expr::col("stockSymbol").cmp(CmpOp::Eq, Expr::lit("ORCL"))),
        )
        .unwrap();
        let m = qs.matching(&tick(1, "ORCL", 60.0)).unwrap();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0]);
        assert!(qs.remove_query(7).is_err());
    }

    #[test]
    fn scan_tier_remove_and_factor_id_reuse() {
        // Range-only queries live in the scan tier; removing one and
        // re-registering its id must recycle factor ids without leaking
        // ownership or stale satisfied counts.
        let mut qs = QueryStem::new(schema());
        let band = |lo: f64, hi: f64| {
            Expr::col("closingPrice")
                .cmp(CmpOp::Ge, Expr::lit(lo))
                .and(Expr::col("closingPrice").cmp(CmpOp::Le, Expr::lit(hi)))
        };
        qs.insert_query(0, Some(&band(0.0, 10.0))).unwrap();
        qs.insert_query(1, Some(&band(5.0, 15.0))).unwrap();
        qs.remove_query(0).unwrap();
        qs.insert_query(0, Some(&band(100.0, 110.0))).unwrap();
        let m = qs.matching(&tick(1, "X", 7.0)).unwrap();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![1]);
        let m = qs.matching(&tick(1, "X", 105.0)).unwrap();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn duplicate_query_id_rejected() {
        let mut qs = QueryStem::new(schema());
        qs.insert_query(0, None).unwrap();
        assert!(qs.insert_query(0, None).is_err());
    }

    #[test]
    fn unknown_column_in_predicate_rejected() {
        let mut qs = QueryStem::new(schema());
        let pred = Expr::col("volume").cmp(CmpOp::Gt, Expr::lit(0i64));
        assert!(qs.insert_query(0, Some(&pred)).is_err());
    }

    #[test]
    fn null_attribute_kills_indexed_queries() {
        let s = Schema::new(vec![Field::new("x", DataType::Int)]).into_ref();
        let mut qs = QueryStem::new(s.clone());
        qs.insert_query(0, Some(&Expr::col("x").cmp(CmpOp::Ne, Expr::lit(5i64))))
            .unwrap();
        qs.insert_query(1, None).unwrap();
        let t = Tuple::new(s, vec![Value::Null], Timestamp::unknown()).unwrap();
        let m = qs.matching(&t).unwrap();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn null_attribute_kills_anchored_queries() {
        let s = Schema::new(vec![
            Field::new("x", DataType::Int),
            Field::new("y", DataType::Int),
        ])
        .into_ref();
        let mut qs = QueryStem::new(s.clone());
        // Anchored on x, verified on y — a NULL in either column kills it.
        let pred = Expr::col("x")
            .cmp(CmpOp::Eq, Expr::lit(1i64))
            .and(Expr::col("y").cmp(CmpOp::Gt, Expr::lit(0i64)));
        qs.insert_query(0, Some(&pred)).unwrap();
        let t = |x: Value, y: Value| Tuple::new(s.clone(), vec![x, y], Timestamp::unknown());
        assert!(qs
            .matching(&t(Value::Int(1), Value::Int(5)).unwrap())
            .unwrap()
            .contains(0));
        assert!(!qs
            .matching(&t(Value::Null, Value::Int(5)).unwrap())
            .unwrap()
            .contains(0));
        assert!(!qs
            .matching(&t(Value::Int(1), Value::Null).unwrap())
            .unwrap()
            .contains(0));
    }

    #[test]
    fn compiled_and_interpreted_residuals_agree() {
        // Same queries into a kernel-compiled stem and an interpreter-only
        // stem: every probe must return the identical query set.
        let mut compiled = QueryStem::new(schema());
        let mut interp = QueryStem::with_compiled_kernels(schema(), false);
        let residual = Expr::col("timestamp").cmp(CmpOp::Gt, Expr::col("closingPrice"));
        let pred = Expr::col("stockSymbol")
            .cmp(CmpOp::Eq, Expr::lit("MSFT"))
            .and(residual);
        for qs in [&mut compiled, &mut interp] {
            qs.insert_query(0, Some(&pred)).unwrap();
            qs.insert_query(1, Some(&msft_over(50.0))).unwrap();
        }
        let mut rng = tcq_common::rng::seeded(0x51D5);
        for i in 0..200 {
            let sym = ["MSFT", "IBM"][rng.gen_range(0..2usize)];
            let t = tick(i, sym, rng.gen_range(0.0..200.0));
            assert_eq!(
                compiled.matching(&t).unwrap(),
                interp.matching(&t).unwrap(),
                "divergence on {t:?}"
            );
        }
    }

    #[test]
    fn agrees_with_naive_evaluation_randomized() {
        let mut rng = tcq_common::rng::seeded(0xBEEF);
        let mut qs = QueryStem::new(schema());
        let mut preds = Vec::new();
        let syms = ["MSFT", "IBM", "ORCL"];
        for id in 0..64 {
            let sym = syms[rng.gen_range(0..3usize)];
            let lo = rng.gen_range(0.0..50.0);
            let hi = lo + rng.gen_range(0.0..50.0);
            let pred = Expr::col("stockSymbol")
                .cmp(CmpOp::Eq, Expr::lit(sym))
                .and(Expr::col("closingPrice").cmp(CmpOp::Ge, Expr::lit(lo)))
                .and(Expr::col("closingPrice").cmp(CmpOp::Le, Expr::lit(hi)));
            qs.insert_query(id, Some(&pred)).unwrap();
            preds.push(pred.bind(&schema()).unwrap());
        }
        for i in 0..500 {
            let t = tick(i, syms[rng.gen_range(0..3usize)], rng.gen_range(0.0..100.0));
            let fast = qs.matching(&t).unwrap();
            let slow: BitSet = preds
                .iter()
                .enumerate()
                .filter(|(_, p)| p.eval_pred(&t).unwrap())
                .map(|(i, _)| i)
                .collect();
            assert_eq!(fast, slow, "mismatch on tuple {t:?}");
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_probes() {
        let mut rng = tcq_common::rng::seeded(0x5C1A);
        let mut qs = QueryStem::new(schema());
        let syms = ["MSFT", "IBM", "ORCL"];
        for id in 0..32 {
            let pred = if id % 3 == 0 {
                msft_over(rng.gen_range(0.0..100.0))
            } else {
                Expr::col("closingPrice").cmp(CmpOp::Gt, Expr::lit(rng.gen_range(0.0..100.0)))
            };
            qs.insert_query(id, Some(&pred)).unwrap();
        }
        let mut scratch = MatchScratch::new();
        for i in 0..200 {
            let t = tick(i, syms[rng.gen_range(0..3usize)], rng.gen_range(0.0..120.0));
            qs.matching_into(&t, &mut scratch).unwrap();
            let fresh = qs.matching(&t).unwrap();
            assert_eq!(*scratch.alive(), fresh, "scratch diverged on probe {i}");
            assert_eq!(
                scratch.matches().to_vec(),
                fresh.iter().collect::<Vec<_>>(),
                "matches() must be the sorted matched set"
            );
        }
    }

    #[test]
    fn approx_bytes_grows_with_registration() {
        let mut qs = QueryStem::new(schema());
        let empty = qs.approx_bytes();
        for id in 0..256 {
            qs.insert_query(id, Some(&msft_over(id as f64))).unwrap();
        }
        let full = qs.approx_bytes();
        assert!(
            full > empty + 256 * 8,
            "memory accounting must track registrations: {empty} -> {full}"
        );
    }
}
