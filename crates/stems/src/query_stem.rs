//! The Query SteM (PSoup, §3.2).
//!
//! > "It does this by indexing queries into a query SteM, which can be
//! > thought of as a generalization of the notion of a grouped filter."
//!
//! A [`QueryStem`] stores the SELECT-FROM-WHERE predicates of standing
//! queries over one stream schema. Each query's predicate is decomposed
//! into boolean factors; single-column factors go into per-column
//! [`GroupedFilter`]s, anything else becomes a *residual* predicate
//! evaluated only for queries that survived the indexed factors. Probing a
//! tuple returns the exact set of satisfied query ids.

use std::collections::HashMap;

use tcq_common::{BitSet, Expr, Predicate, Result, SchemaRef, TcqError, Tuple};

use crate::grouped_filter::{FactorId, GroupedFilter};

/// Identifies a standing query in a [`QueryStem`].
pub type QueryId = usize;

struct QueryEntry {
    /// Factor ids this query owns (for removal).
    factors: Vec<FactorId>,
    /// Residual conjuncts not indexable by grouped filters, each lowered
    /// to a [`Predicate`] (compiled kernel when the shape allows it).
    residual: Vec<Predicate>,
}

/// An index over standing queries: probe with a tuple, get satisfied queries.
pub struct QueryStem {
    schema: SchemaRef,
    /// One grouped filter per referenced column.
    filters: HashMap<usize, GroupedFilter>,
    /// factor id -> owning query.
    factor_owner: Vec<QueryId>,
    /// Recycled factor ids.
    free_factors: Vec<FactorId>,
    queries: HashMap<QueryId, QueryEntry>,
    all_queries: BitSet,
    /// Queries with at least one residual conjunct.
    has_residual: BitSet,
    /// Whether residual predicates are lowered to compiled kernels.
    compiled_kernels: bool,
}

impl QueryStem {
    /// An empty query SteM over tuples of `schema`, with residual
    /// predicates compiled to kernels where possible.
    pub fn new(schema: SchemaRef) -> Self {
        Self::with_compiled_kernels(schema, true)
    }

    /// Like [`QueryStem::new`], choosing whether residuals compile to
    /// kernels (`true`) or stay on the tree-walking interpreter (`false`).
    pub fn with_compiled_kernels(schema: SchemaRef, compiled_kernels: bool) -> Self {
        QueryStem {
            schema,
            filters: HashMap::new(),
            factor_owner: Vec::new(),
            free_factors: Vec::new(),
            queries: HashMap::new(),
            all_queries: BitSet::new(),
            has_residual: BitSet::new(),
            compiled_kernels,
        }
    }

    /// The stream schema queries are registered against.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Register query `id` with predicate `pred` (`None` = no WHERE clause,
    /// matches everything). Errors if `id` is taken or the predicate does
    /// not bind against the schema.
    pub fn insert_query(&mut self, id: QueryId, pred: Option<&Expr>) -> Result<()> {
        if self.queries.contains_key(&id) {
            return Err(TcqError::Capacity(format!("query {id} already registered")));
        }
        let mut entry = QueryEntry {
            factors: Vec::new(),
            residual: Vec::new(),
        };
        if let Some(pred) = pred {
            for factor in pred.conjuncts() {
                match factor.as_single_column_factor() {
                    Some((qual, name, op, constant)) if !constant.is_null() => {
                        let col = self.schema.index_of(qual, name)?;
                        let fid = self.alloc_factor(id);
                        self.filters
                            .entry(col)
                            .or_default()
                            .insert(fid, op, constant.clone())
                            .expect("fresh factor id cannot collide");
                        entry.factors.push(fid);
                    }
                    _ => {
                        entry.residual.push(Predicate::new(
                            factor,
                            &self.schema,
                            self.compiled_kernels,
                        )?);
                    }
                }
            }
        }
        if !entry.residual.is_empty() {
            self.has_residual.insert(id);
        }
        self.queries.insert(id, entry);
        self.all_queries.insert(id);
        Ok(())
    }

    /// Remove query `id`; errors if unknown.
    pub fn remove_query(&mut self, id: QueryId) -> Result<()> {
        let entry = self
            .queries
            .remove(&id)
            .ok_or_else(|| TcqError::Executor(format!("query {id} not registered")))?;
        for fid in entry.factors {
            for filter in self.filters.values_mut() {
                filter.remove(fid);
            }
            self.free_factors.push(fid);
        }
        self.filters.retain(|_, f| !f.is_empty());
        self.all_queries.remove(id);
        self.has_residual.remove(id);
        Ok(())
    }

    /// Number of standing queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when no query is registered.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Probe: the exact set of queries `tuple` satisfies.
    ///
    /// One pass over the per-column grouped filters kills every query owning
    /// an unsatisfied indexed factor; residual predicates are then evaluated
    /// only for surviving queries that have them.
    pub fn matching(&self, tuple: &Tuple) -> Result<BitSet> {
        let mut alive = self.all_queries.clone();
        for (&col, filter) in &self.filters {
            let satisfied = filter.eval_collect(tuple.value(col));
            // Factors registered here but not satisfied kill their owners.
            let mut unsat = filter.owners().clone();
            unsat.difference_with(&satisfied);
            for fid in unsat.iter() {
                alive.remove(self.factor_owner[fid]);
            }
        }
        if self.has_residual.intersects(&alive) {
            let mut to_kill = Vec::new();
            for qid in alive.iter() {
                if !self.has_residual.contains(qid) {
                    continue;
                }
                let entry = &self.queries[&qid];
                for pred in &entry.residual {
                    if !pred.eval_pred(tuple)? {
                        to_kill.push(qid);
                        break;
                    }
                }
            }
            for qid in to_kill {
                alive.remove(qid);
            }
        }
        Ok(alive)
    }

    fn alloc_factor(&mut self, owner: QueryId) -> FactorId {
        match self.free_factors.pop() {
            Some(fid) => {
                self.factor_owner[fid] = owner;
                fid
            }
            None => {
                self.factor_owner.push(owner);
                self.factor_owner.len() - 1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{CmpOp, DataType, Field, Schema, Timestamp, TupleBuilder, Value};

    fn schema() -> SchemaRef {
        Schema::qualified(
            "ClosingStockPrices",
            vec![
                Field::new("timestamp", DataType::Int),
                Field::new("stockSymbol", DataType::Str),
                Field::new("closingPrice", DataType::Float),
            ],
        )
        .into_ref()
    }

    fn tick(ts: i64, sym: &str, price: f64) -> Tuple {
        TupleBuilder::new(schema())
            .push(ts)
            .push(sym)
            .push(price)
            .at(Timestamp::logical(ts))
            .build()
            .unwrap()
    }

    fn msft_over(price: f64) -> Expr {
        Expr::col("stockSymbol")
            .cmp(CmpOp::Eq, Expr::lit("MSFT"))
            .and(Expr::col("closingPrice").cmp(CmpOp::Gt, Expr::lit(price)))
    }

    #[test]
    fn multi_query_matching() {
        let mut qs = QueryStem::new(schema());
        qs.insert_query(0, Some(&msft_over(50.0))).unwrap();
        qs.insert_query(1, Some(&msft_over(60.0))).unwrap();
        qs.insert_query(
            2,
            Some(&Expr::col("stockSymbol").cmp(CmpOp::Eq, Expr::lit("IBM"))),
        )
        .unwrap();
        qs.insert_query(3, None).unwrap(); // match-all

        let m = qs.matching(&tick(1, "MSFT", 55.0)).unwrap();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 3]);
        let m = qs.matching(&tick(2, "MSFT", 65.0)).unwrap();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 1, 3]);
        let m = qs.matching(&tick(3, "IBM", 10.0)).unwrap();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn two_factors_on_same_column_both_required() {
        // price > 10 AND price < 20: both factors land in the same grouped
        // filter; the query must match only when BOTH hold.
        let mut qs = QueryStem::new(schema());
        let pred = Expr::col("closingPrice")
            .cmp(CmpOp::Gt, Expr::lit(10.0))
            .and(Expr::col("closingPrice").cmp(CmpOp::Lt, Expr::lit(20.0)));
        qs.insert_query(0, Some(&pred)).unwrap();
        assert!(qs.matching(&tick(1, "X", 15.0)).unwrap().contains(0));
        assert!(!qs.matching(&tick(1, "X", 25.0)).unwrap().contains(0));
        assert!(!qs.matching(&tick(1, "X", 5.0)).unwrap().contains(0));
    }

    #[test]
    fn residual_predicates_evaluated_for_survivors() {
        let mut qs = QueryStem::new(schema());
        // timestamp * 2 > closingPrice is not single-column -> residual.
        let residual = Expr::Arith {
            op: tcq_common::ArithOp::Mul,
            lhs: Box::new(Expr::col("timestamp")),
            rhs: Box::new(Expr::lit(2i64)),
        }
        .cmp(CmpOp::Gt, Expr::col("closingPrice"));
        let pred = Expr::col("stockSymbol")
            .cmp(CmpOp::Eq, Expr::lit("MSFT"))
            .and(residual);
        qs.insert_query(0, Some(&pred)).unwrap();
        assert!(qs.matching(&tick(100, "MSFT", 150.0)).unwrap().contains(0));
        assert!(!qs.matching(&tick(10, "MSFT", 150.0)).unwrap().contains(0));
        // indexed factor fails -> residual never matters
        assert!(!qs.matching(&tick(100, "IBM", 150.0)).unwrap().contains(0));
    }

    #[test]
    fn remove_query_and_id_reuse() {
        let mut qs = QueryStem::new(schema());
        qs.insert_query(0, Some(&msft_over(50.0))).unwrap();
        qs.insert_query(1, Some(&msft_over(10.0))).unwrap();
        qs.remove_query(0).unwrap();
        assert_eq!(qs.len(), 1);
        let m = qs.matching(&tick(1, "MSFT", 60.0)).unwrap();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![1]);
        // Re-register id 0 with a different predicate; recycled factor ids
        // must not leak old ownership.
        qs.insert_query(
            0,
            Some(&Expr::col("stockSymbol").cmp(CmpOp::Eq, Expr::lit("ORCL"))),
        )
        .unwrap();
        let m = qs.matching(&tick(1, "ORCL", 60.0)).unwrap();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0]);
        assert!(qs.remove_query(7).is_err());
    }

    #[test]
    fn duplicate_query_id_rejected() {
        let mut qs = QueryStem::new(schema());
        qs.insert_query(0, None).unwrap();
        assert!(qs.insert_query(0, None).is_err());
    }

    #[test]
    fn unknown_column_in_predicate_rejected() {
        let mut qs = QueryStem::new(schema());
        let pred = Expr::col("volume").cmp(CmpOp::Gt, Expr::lit(0i64));
        assert!(qs.insert_query(0, Some(&pred)).is_err());
    }

    #[test]
    fn null_attribute_kills_indexed_queries() {
        let s = Schema::new(vec![Field::new("x", DataType::Int)]).into_ref();
        let mut qs = QueryStem::new(s.clone());
        qs.insert_query(0, Some(&Expr::col("x").cmp(CmpOp::Ne, Expr::lit(5i64))))
            .unwrap();
        qs.insert_query(1, None).unwrap();
        let t = Tuple::new(s, vec![Value::Null], Timestamp::unknown()).unwrap();
        let m = qs.matching(&t).unwrap();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn compiled_and_interpreted_residuals_agree() {
        // Same queries into a kernel-compiled stem and an interpreter-only
        // stem: every probe must return the identical query set.
        let mut compiled = QueryStem::new(schema());
        let mut interp = QueryStem::with_compiled_kernels(schema(), false);
        let residual = Expr::col("timestamp").cmp(CmpOp::Gt, Expr::col("closingPrice"));
        let pred = Expr::col("stockSymbol")
            .cmp(CmpOp::Eq, Expr::lit("MSFT"))
            .and(residual);
        for qs in [&mut compiled, &mut interp] {
            qs.insert_query(0, Some(&pred)).unwrap();
            qs.insert_query(1, Some(&msft_over(50.0))).unwrap();
        }
        let mut rng = tcq_common::rng::seeded(0x51D5);
        for i in 0..200 {
            let sym = ["MSFT", "IBM"][rng.gen_range(0..2usize)];
            let t = tick(i, sym, rng.gen_range(0.0..200.0));
            assert_eq!(
                compiled.matching(&t).unwrap(),
                interp.matching(&t).unwrap(),
                "divergence on {t:?}"
            );
        }
    }

    #[test]
    fn agrees_with_naive_evaluation_randomized() {
        let mut rng = tcq_common::rng::seeded(0xBEEF);
        let mut qs = QueryStem::new(schema());
        let mut preds = Vec::new();
        let syms = ["MSFT", "IBM", "ORCL"];
        for id in 0..64 {
            let sym = syms[rng.gen_range(0..3usize)];
            let lo = rng.gen_range(0.0..50.0);
            let hi = lo + rng.gen_range(0.0..50.0);
            let pred = Expr::col("stockSymbol")
                .cmp(CmpOp::Eq, Expr::lit(sym))
                .and(Expr::col("closingPrice").cmp(CmpOp::Ge, Expr::lit(lo)))
                .and(Expr::col("closingPrice").cmp(CmpOp::Le, Expr::lit(hi)));
            qs.insert_query(id, Some(&pred)).unwrap();
            preds.push(pred.bind(&schema()).unwrap());
        }
        for i in 0..500 {
            let t = tick(i, syms[rng.gen_range(0..3usize)], rng.gen_range(0.0..100.0));
            let fast = qs.matching(&t).unwrap();
            let slow: BitSet = preds
                .iter()
                .enumerate()
                .filter(|(_, p)| p.eval_pred(&t).unwrap())
                .map(|(i, _)| i)
                .collect();
            assert_eq!(fast, slow, "mismatch on tuple {t:?}");
        }
    }
}
