//! SteMs — State Modules — and their query-side generalizations.
//!
//! A SteM (TelegraphCQ §2.2, Raman et al. \[RDH02\]) is "a temporary
//! repository of tuples, essentially corresponding to half of a traditional
//! join operator". It supports:
//!
//! * **build** — insert a tuple,
//! * **probe** — find matches for a tuple from another source, and
//! * **evict** — drop tuples that have fallen out of every window.
//!
//! Two SteMs plus an eddy implement a symmetric hash join (paper Figure 2);
//! adding a remote access method to the same plumbing yields the
//! *hybridized* joins of \[RDH02\].
//!
//! This crate also contains the machinery for shared multi-query processing:
//!
//! * [`GroupedFilter`] — CACQ's "index for single-variable boolean factors
//!   over the same attribute" (§3.1): one probe evaluates the corresponding
//!   predicates of *all* standing queries on an attribute at once.
//! * [`QueryStem`] — PSoup's index of whole queries ("a generalization of
//!   the notion of a grouped filter", §3.2): insert/remove queries, and for
//!   each arriving tuple compute the exact set of queries it satisfies.
//!
//! # Example: one probe answers many predicates
//!
//! ```
//! use tcq_common::{CmpOp, Value};
//! use tcq_stems::GroupedFilter;
//!
//! let mut filter = GroupedFilter::new();
//! filter.insert(0, CmpOp::Gt, Value::Float(50.0)).unwrap(); // price > 50
//! filter.insert(1, CmpOp::Gt, Value::Float(60.0)).unwrap(); // price > 60
//! filter.insert(2, CmpOp::Le, Value::Float(55.0)).unwrap(); // price <= 55
//!
//! let satisfied = filter.eval_collect(&Value::Float(55.0));
//! assert_eq!(satisfied.iter().collect::<Vec<_>>(), vec![0, 2]);
//! ```

#![warn(missing_docs)]

pub mod grouped_filter;
pub mod query_stem;
pub mod stem;

pub use grouped_filter::{EpochStats, GroupedFilter};
pub use query_stem::{MatchScratch, QueryId, QueryStem};
pub use stem::{IndexKind, SteM};
