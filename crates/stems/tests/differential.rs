//! Differential property tests for the epoch-rebuilt grouped filter and the
//! tiered query SteM: randomized interleaved insert/remove/probe sequences
//! checked against naive per-factor (resp. per-query) evaluation.
//!
//! Removals tombstone range entries and inserts buffer in a pending run
//! until a rebuild threshold trips, so interleaving guarantees many probes
//! land *mid-epoch* — after a removal, before compaction — where a stale
//! prefix-bitmap bit would surface instantly as a disagreement.

use std::collections::HashMap;

use tcq_common::{
    BitSet, CmpOp, DataType, Expr, Field, Schema, SchemaRef, Timestamp, Tuple, TupleBuilder, Value,
};
use tcq_stems::{GroupedFilter, MatchScratch, QueryStem};

const OPS: &[CmpOp] = &[
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

fn naive_eval(model: &HashMap<usize, (CmpOp, Value)>, v: &Value) -> BitSet {
    let mut out = BitSet::new();
    for (&id, (op, c)) in model {
        if let Ok(Some(ord)) = v.sql_cmp(c) {
            if op.matches(ord) {
                out.insert(id);
            }
        }
    }
    out
}

#[test]
fn grouped_filter_agrees_with_naive_under_churn() {
    let mut rng = tcq_common::rng::seeded(0x6F1_7E57);
    let mut filter = GroupedFilter::new();
    let mut model: HashMap<usize, (CmpOp, Value)> = HashMap::new();
    let mut live: Vec<usize> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut next_id = 0usize;
    let mut mid_epoch_probes = 0usize;

    // 6000 ops at 45/25/30 insert/remove/probe crosses several pending
    // rebuilds (threshold 256) and at least one tombstone compaction.
    for step in 0..6000 {
        let roll = rng.gen_range(0..100u32);
        if roll < 45 || live.is_empty() {
            // Insert, recycling ids like QueryStem does, so tombstoned ids
            // get reused while their dead entries still sit in the run.
            let id = free.pop().unwrap_or_else(|| {
                next_id += 1;
                next_id - 1
            });
            let op = OPS[rng.gen_range(0..OPS.len())];
            let c = Value::Int(rng.gen_range(0..200i64));
            filter.insert(id, op, c.clone()).unwrap();
            model.insert(id, (op, c));
            live.push(id);
        } else if roll < 70 {
            let idx = rng.gen_range(0..live.len());
            let id = live.swap_remove(idx);
            filter.remove(id);
            model.remove(&id);
            free.push(id);
        } else {
            let v = Value::Int(rng.gen_range(-5..205i64));
            let stats = filter.epoch_stats();
            if stats.pending > 0 || stats.tombstones > 0 {
                mid_epoch_probes += 1;
            }
            assert_eq!(
                filter.eval_collect(&v),
                naive_eval(&model, &v),
                "disagreement at step {step} probing {v:?} ({stats:?})"
            );
        }
        assert_eq!(filter.len(), model.len(), "factor count drift at {step}");
    }
    assert!(
        mid_epoch_probes > 100,
        "churn schedule must actually exercise mid-epoch probes, got {mid_epoch_probes}"
    );
}

fn schema() -> SchemaRef {
    Schema::qualified(
        "s",
        vec![
            Field::new("sensor", DataType::Int),
            Field::new("val", DataType::Float),
        ],
    )
    .into_ref()
}

fn reading(ts: i64, sensor: i64, val: f64) -> Tuple {
    TupleBuilder::new(schema())
        .push(sensor)
        .push(val)
        .at(Timestamp::logical(ts))
        .build()
        .unwrap()
}

/// A random predicate spanning all three stem tiers: anchored (sensor
/// equality + band), scan (band only), and unindexed (match-all).
fn random_pred(rng: &mut tcq_common::rng::TcqRng) -> Option<Expr> {
    let lo = rng.gen_range(0.0..80.0);
    let hi = lo + rng.gen_range(0.0..40.0);
    let band = Expr::col("val")
        .cmp(CmpOp::Ge, Expr::lit(lo))
        .and(Expr::col("val").cmp(CmpOp::Le, Expr::lit(hi)));
    match rng.gen_range(0..10u32) {
        0 => None,
        1..=5 => Some(
            Expr::col("sensor")
                .cmp(CmpOp::Eq, Expr::lit(rng.gen_range(0..16i64)))
                .and(band),
        ),
        _ => Some(band),
    }
}

#[test]
fn query_stem_agrees_with_naive_under_churn() {
    let mut rng = tcq_common::rng::seeded(0xC0_FFEE);
    let schema = schema();
    let mut qs = QueryStem::new(schema.clone());
    let mut scratch = MatchScratch::new();
    let mut model: HashMap<usize, Option<tcq_common::BoundExpr>> = HashMap::new();
    let mut next_q = 0usize;
    let mut freed: Vec<usize> = Vec::new();

    for step in 0..4000 {
        let roll = rng.gen_range(0..100u32);
        if roll < 40 || model.is_empty() {
            // Half the time reuse a removed query id (the server's shared
            // filter never does, but PSoup callers may).
            let id = if !freed.is_empty() && rng.gen_range(0..2u32) == 0 {
                freed.pop().unwrap()
            } else {
                next_q += 1;
                next_q - 1
            };
            let pred = random_pred(&mut rng);
            qs.insert_query(id, pred.as_ref()).unwrap();
            let bound = pred.map(|p| p.bind(&schema).unwrap());
            model.insert(id, bound);
        } else if roll < 65 {
            let ids: Vec<usize> = model.keys().copied().collect();
            let id = ids[rng.gen_range(0..ids.len())];
            qs.remove_query(id).unwrap();
            model.remove(&id);
            freed.push(id);
        } else {
            let t = reading(
                step as i64,
                rng.gen_range(0..20i64),
                rng.gen_range(-10.0..140.0),
            );
            qs.matching_into(&t, &mut scratch).unwrap();
            let mut expect: Vec<usize> = model
                .iter()
                .filter(|(_, p)| p.as_ref().is_none_or(|p| p.eval_pred(&t).unwrap()))
                .map(|(&id, _)| id)
                .collect();
            expect.sort_unstable();
            assert_eq!(
                scratch.matches(),
                expect.as_slice(),
                "disagreement at step {step} on {t:?}"
            );
        }
    }
}
