//! Stream storage: spooling history to disk, reading it back by window.
//!
//! §4.2.3/§4.3 of the paper: streamed data is prepared "for materialization
//! in the buffer pool (and possibly to disk)", and the storage manager must
//! serve "queries that access historical data" — backward windows, PSoup's
//! new-query-over-old-data — while absorbing "new bursty streaming data"
//! with sequential writes.
//!
//! The design follows that read/write asymmetry:
//!
//! * [`codec`] — a compact binary encoding for tuples (values + timestamps).
//! * [`StreamArchive`] — an append-only, page-structured segment file per
//!   stream. Writes are strictly sequential ("a log-structured file system
//!   would enhance write performance"); each sealed page records its
//!   logical-timestamp range so windowed reads touch only relevant pages
//!   (the "broadcast-disk style read behavior" the paper wants).
//! * [`BufferPool`] — a shared page cache with CLOCK eviction between the
//!   archives and the disk, with hit/miss counters for the experiments.
//! * [`CheckpointStore`] — a durable, incrementally written store of
//!   checkpoint fragments (SteM groups, aggregate partials, egress
//!   ledgers, ingress cursors) under the same checksummed-block
//!   discipline, for crash recovery of operator state.
//!
//! # Example: spool a stream, read a window back
//!
//! ```
//! use tcq_common::{DataType, Field, Schema, Timestamp, TupleBuilder};
//! use tcq_storage::{BufferPool, StreamArchive};
//!
//! let schema = Schema::new(vec![Field::new("v", DataType::Int)]).into_ref();
//! let pool = BufferPool::new(16, 4096);
//! let path = std::env::temp_dir().join(format!("tcq-doc-{}.seg", std::process::id()));
//! let mut archive = StreamArchive::create(&path, schema.clone(), pool).unwrap();
//!
//! for seq in 1..=1000i64 {
//!     let t = TupleBuilder::new(schema.clone())
//!         .push(seq)
//!         .at(Timestamp::logical(seq))
//!         .build()
//!         .unwrap();
//!     archive.append(&t).unwrap();
//! }
//! let mut window = Vec::new();
//! archive.scan_window(500, 509, &mut window).unwrap();
//! assert_eq!(window.len(), 10);
//! # std::fs::remove_file(path).ok();
//! ```

#![warn(missing_docs)]

pub mod archive;
pub mod checkpoint;
pub mod codec;
pub mod pool;

pub use archive::{ArchiveStats, CompactionReport, RecoveryReport, StreamArchive};
pub use checkpoint::{CheckpointRecovery, CheckpointStats, CheckpointStore};
pub use codec::{decode_tuple, encode_tuple};
pub use pool::{BufferPool, PoolStats};
