//! A shared buffer pool with CLOCK eviction.
//!
//! The paper (§4.3): "The buffer pool manager must be tuned to both accept
//! new bursty streaming data, as well as service queries that access
//! historical data." Archives write sealed pages through the pool and read
//! historical pages back through it; the pool bounds total memory across
//! all streams and evicts with a second-chance (CLOCK) policy.

use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::Arc;

use tcq_common::sync::Mutex;

use tcq_common::{Result, TcqError};

/// Identifies a page: (archive id, page number).
pub type PageKey = (u64, u64);

/// Pool statistics for the storage experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    /// Page reads served from memory.
    pub hits: u64,
    /// Page reads that went to disk.
    pub misses: u64,
    /// Pages evicted.
    pub evictions: u64,
    /// Pages written to disk.
    pub writes: u64,
}

struct Frame {
    key: PageKey,
    data: Arc<Vec<u8>>,
    referenced: bool,
}

struct PoolInner {
    capacity: usize,
    frames: Vec<Frame>,
    by_key: HashMap<PageKey, usize>,
    clock_hand: usize,
    stats: PoolStats,
}

/// A shared page cache. Cloning shares the pool (it is the process-wide
/// buffer pool of Figure 5's shared-memory infrastructure).
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<Mutex<PoolInner>>,
    page_size: usize,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages of `page_size` bytes.
    pub fn new(capacity: usize, page_size: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool {
            inner: Arc::new(Mutex::new(PoolInner {
                capacity,
                frames: Vec::with_capacity(capacity),
                by_key: HashMap::new(),
                clock_hand: 0,
                stats: PoolStats::default(),
            })),
            page_size,
        }
    }

    /// The configured page size.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Write a sealed page through the pool to `file` at the page's offset,
    /// and cache it.
    pub fn write_page(&self, file: &mut File, key: PageKey, data: Vec<u8>) -> Result<()> {
        if data.len() != self.page_size {
            return Err(TcqError::Storage(format!(
                "page size {} != pool page size {}",
                data.len(),
                self.page_size
            )));
        }
        let offset = key.1 * self.page_size as u64;
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(&data)?;
        let mut inner = self.inner.lock();
        inner.stats.writes += 1;
        let data = Arc::new(data);
        Self::install(&mut inner, key, data);
        Ok(())
    }

    /// Read a page, through the cache.
    pub fn read_page(&self, file: &mut File, key: PageKey) -> Result<Arc<Vec<u8>>> {
        {
            let mut inner = self.inner.lock();
            if let Some(&idx) = inner.by_key.get(&key) {
                inner.stats.hits += 1;
                inner.frames[idx].referenced = true;
                return Ok(Arc::clone(&inner.frames[idx].data));
            }
            inner.stats.misses += 1;
        }
        // Miss: read outside the lock, then install.
        let mut data = vec![0u8; self.page_size];
        let offset = key.1 * self.page_size as u64;
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(&mut data)?;
        let data = Arc::new(data);
        let mut inner = self.inner.lock();
        Self::install(&mut inner, key, Arc::clone(&data));
        Ok(data)
    }

    fn install(inner: &mut PoolInner, key: PageKey, data: Arc<Vec<u8>>) {
        if let Some(&idx) = inner.by_key.get(&key) {
            inner.frames[idx].data = data;
            inner.frames[idx].referenced = true;
            return;
        }
        if inner.frames.len() < inner.capacity {
            inner.frames.push(Frame {
                key,
                data,
                referenced: true,
            });
            inner.by_key.insert(key, inner.frames.len() - 1);
            return;
        }
        // CLOCK: find a frame with referenced == false, clearing bits as we
        // sweep. Terminates within two sweeps.
        loop {
            let idx = inner.clock_hand;
            inner.clock_hand = (inner.clock_hand + 1) % inner.frames.len();
            if inner.frames[idx].referenced {
                inner.frames[idx].referenced = false;
            } else {
                let old = inner.frames[idx].key;
                inner.by_key.remove(&old);
                inner.stats.evictions += 1;
                inner.frames[idx] = Frame {
                    key,
                    data,
                    referenced: true,
                };
                inner.by_key.insert(key, idx);
                return;
            }
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Drop every cached page (tests; simulates cold cache).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.frames.clear();
        inner.by_key.clear();
        inner.clock_hand = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file() -> (std::path::PathBuf, File) {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("tcq-pool-test-{}-{n}.dat", std::process::id()));
        let file = File::options()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        (path, file)
    }

    fn page(fill: u8, size: usize) -> Vec<u8> {
        vec![fill; size]
    }

    #[test]
    fn write_then_read_hits_cache() {
        let pool = BufferPool::new(4, 64);
        let (path, mut f) = temp_file();
        pool.write_page(&mut f, (1, 0), page(7, 64)).unwrap();
        let data = pool.read_page(&mut f, (1, 0)).unwrap();
        assert_eq!(data[0], 7);
        let st = pool.stats();
        assert_eq!((st.hits, st.misses), (1, 0));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn eviction_and_reread_from_disk() {
        let pool = BufferPool::new(2, 64);
        let (path, mut f) = temp_file();
        for p in 0..4u64 {
            pool.write_page(&mut f, (1, p), page(p as u8, 64)).unwrap();
        }
        assert_eq!(pool.cached_pages(), 2);
        assert!(pool.stats().evictions >= 2);
        // Page 0 was evicted; re-read goes to disk and returns the data.
        let data = pool.read_page(&mut f, (1, 0)).unwrap();
        assert_eq!(data[0], 0);
        assert!(pool.stats().misses >= 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn wrong_page_size_rejected() {
        let pool = BufferPool::new(2, 64);
        let (path, mut f) = temp_file();
        assert!(pool.write_page(&mut f, (1, 0), page(0, 32)).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn clock_gives_second_chance() {
        let pool = BufferPool::new(2, 64);
        let (path, mut f) = temp_file();
        pool.write_page(&mut f, (1, 0), page(0, 64)).unwrap();
        pool.write_page(&mut f, (1, 1), page(1, 64)).unwrap();
        // Installing page 2 sweeps: clears both reference bits, evicts the
        // frame the hand lands on second time (page 0). State afterwards:
        // [page2 referenced, page1 unreferenced].
        pool.write_page(&mut f, (1, 2), page(2, 64)).unwrap();
        // Installing page 3 must choose the UNreferenced page 1 and give
        // the referenced page 2 its second chance.
        pool.write_page(&mut f, (1, 3), page(3, 64)).unwrap();
        let before = pool.stats().hits;
        pool.read_page(&mut f, (1, 2)).unwrap();
        assert_eq!(
            pool.stats().hits,
            before + 1,
            "referenced page must survive"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn shared_clones_see_same_cache() {
        let pool = BufferPool::new(4, 64);
        let pool2 = pool.clone();
        let (path, mut f) = temp_file();
        pool.write_page(&mut f, (9, 0), page(9, 64)).unwrap();
        let d = pool2.read_page(&mut f, (9, 0)).unwrap();
        assert_eq!(d[0], 9);
        assert_eq!(pool2.stats().hits, 1);
        std::fs::remove_file(path).ok();
    }
}
