//! Binary tuple codec.
//!
//! Schema-aware: the schema travels out of band (one archive stores one
//! stream), so records carry only a timestamp, an arity, and tagged values.

use tcq_common::{Result, SchemaRef, TcqError, Timestamp, Tuple, Value};

/// Little-endian append helpers (the `BufMut` subset the codec needs,
/// implemented locally so storage carries no external dependency).
trait PutLe {
    fn put_u8(&mut self, v: u8);
    fn put_u16_le(&mut self, v: u16);
    fn put_u32_le(&mut self, v: u32);
    fn put_i64_le(&mut self, v: i64);
    fn put_f64_le(&mut self, v: f64);
    fn put_slice(&mut self, v: &[u8]);
}

impl PutLe for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }
}

/// Little-endian cursor helpers over `&mut &[u8]` (the `Buf` subset the
/// codec needs). Callers bounds-check via `remaining()` before each `get_*`.
trait TakeLe {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn get_u8(&mut self) -> u8;
    fn get_u16_le(&mut self) -> u16;
    fn get_u32_le(&mut self) -> u32;
    fn get_i64_le(&mut self) -> i64;
    fn get_f64_le(&mut self) -> f64;
}

impl TakeLe for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.advance(1);
        v
    }
    fn get_u16_le(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        let v = u16::from_le_bytes(head.try_into().expect("2 bytes"));
        *self = rest;
        v
    }
    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        let v = u32::from_le_bytes(head.try_into().expect("4 bytes"));
        *self = rest;
        v
    }
    fn get_i64_le(&mut self) -> i64 {
        let (head, rest) = self.split_at(8);
        let v = i64::from_le_bytes(head.try_into().expect("8 bytes"));
        *self = rest;
        v
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_i64_le() as u64)
    }
}

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;

/// Append the encoding of `tuple` to `buf`. Returns encoded length.
pub fn encode_tuple(tuple: &Tuple, buf: &mut Vec<u8>) -> usize {
    let start = buf.len();
    let ts = tuple.timestamp();
    let flags: u8 = (ts.logical.is_some() as u8) | ((ts.physical.is_some() as u8) << 1);
    buf.put_u8(flags);
    if let Some(l) = ts.logical {
        buf.put_i64_le(l);
    }
    if let Some(p) = ts.physical {
        buf.put_i64_le(p);
    }
    buf.put_u16_le(tuple.arity() as u16);
    for v in tuple.values() {
        match v {
            Value::Null => buf.put_u8(TAG_NULL),
            Value::Bool(b) => {
                buf.put_u8(TAG_BOOL);
                buf.put_u8(*b as u8);
            }
            Value::Int(i) => {
                buf.put_u8(TAG_INT);
                buf.put_i64_le(*i);
            }
            Value::Float(f) => {
                buf.put_u8(TAG_FLOAT);
                buf.put_f64_le(*f);
            }
            Value::Str(s) => {
                buf.put_u8(TAG_STR);
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
        }
    }
    buf.len() - start
}

/// Decode one tuple from the front of `buf`, advancing it. The tuple is
/// rebuilt against `schema` (arity is validated).
pub fn decode_tuple(buf: &mut &[u8], schema: &SchemaRef) -> Result<Tuple> {
    if buf.remaining() < 1 {
        return Err(TcqError::Storage("truncated record: missing flags".into()));
    }
    let flags = buf.get_u8();
    let mut ts = Timestamp::unknown();
    if flags & 1 != 0 {
        if buf.remaining() < 8 {
            return Err(TcqError::Storage("truncated record: logical ts".into()));
        }
        ts.logical = Some(buf.get_i64_le());
    }
    if flags & 2 != 0 {
        if buf.remaining() < 8 {
            return Err(TcqError::Storage("truncated record: physical ts".into()));
        }
        ts.physical = Some(buf.get_i64_le());
    }
    if buf.remaining() < 2 {
        return Err(TcqError::Storage("truncated record: arity".into()));
    }
    let arity = buf.get_u16_le() as usize;
    if arity != schema.len() {
        return Err(TcqError::SchemaMismatch(format!(
            "stored arity {arity} != schema arity {}",
            schema.len()
        )));
    }
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        if buf.remaining() < 1 {
            return Err(TcqError::Storage("truncated record: value tag".into()));
        }
        let v = match buf.get_u8() {
            TAG_NULL => Value::Null,
            TAG_BOOL => {
                if buf.remaining() < 1 {
                    return Err(TcqError::Storage("truncated bool".into()));
                }
                Value::Bool(buf.get_u8() != 0)
            }
            TAG_INT => {
                if buf.remaining() < 8 {
                    return Err(TcqError::Storage("truncated int".into()));
                }
                Value::Int(buf.get_i64_le())
            }
            TAG_FLOAT => {
                if buf.remaining() < 8 {
                    return Err(TcqError::Storage("truncated float".into()));
                }
                Value::Float(buf.get_f64_le())
            }
            TAG_STR => {
                if buf.remaining() < 4 {
                    return Err(TcqError::Storage("truncated string length".into()));
                }
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return Err(TcqError::Storage("truncated string body".into()));
                }
                let s = std::str::from_utf8(&buf[..len])
                    .map_err(|_| TcqError::Storage("invalid utf8 in stored string".into()))?
                    .to_string();
                buf.advance(len);
                Value::Str(s.into())
            }
            tag => return Err(TcqError::Storage(format!("unknown value tag {tag}"))),
        };
        values.push(v);
    }
    Tuple::new(schema.clone(), values, ts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{DataType, Field, Schema, TupleBuilder};

    fn schema() -> SchemaRef {
        Schema::qualified(
            "s",
            vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Str),
                Field::new("c", DataType::Float),
                Field::new("d", DataType::Bool),
            ],
        )
        .into_ref()
    }

    #[test]
    fn roundtrip_all_types() {
        let t = TupleBuilder::new(schema())
            .push(-42i64)
            .push("hello 'world'")
            .push(2.5)
            .push(true)
            .at(Timestamp::both(7, 123456))
            .build()
            .unwrap();
        let mut buf = Vec::new();
        let n = encode_tuple(&t, &mut buf);
        assert_eq!(n, buf.len());
        let mut slice = buf.as_slice();
        let back = decode_tuple(&mut slice, &schema()).unwrap();
        assert!(slice.is_empty());
        assert_eq!(back, t);
        assert_eq!(back.timestamp(), t.timestamp());
    }

    #[test]
    fn roundtrip_nulls_and_unknown_timestamp() {
        let t = Tuple::new(
            schema(),
            vec![Value::Null, Value::Null, Value::Null, Value::Null],
            Timestamp::unknown(),
        )
        .unwrap();
        let mut buf = Vec::new();
        encode_tuple(&t, &mut buf);
        let back = decode_tuple(&mut buf.as_slice(), &schema()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.timestamp(), Timestamp::unknown());
    }

    #[test]
    fn multiple_tuples_stream_decode() {
        let mut buf = Vec::new();
        for i in 0..10i64 {
            let t = TupleBuilder::new(schema())
                .push(i)
                .push(format!("s{i}"))
                .push(i as f64)
                .push(i % 2 == 0)
                .at(Timestamp::logical(i))
                .build()
                .unwrap();
            encode_tuple(&t, &mut buf);
        }
        let mut slice = buf.as_slice();
        for i in 0..10i64 {
            let t = decode_tuple(&mut slice, &schema()).unwrap();
            assert_eq!(t.timestamp().seq(), i);
        }
        assert!(slice.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let t = TupleBuilder::new(schema())
            .push(1i64)
            .push("abc")
            .push(1.0)
            .push(false)
            .at(Timestamp::logical(1))
            .build()
            .unwrap();
        let mut buf = Vec::new();
        encode_tuple(&t, &mut buf);
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            assert!(
                decode_tuple(&mut slice, &schema()).is_err(),
                "cut at {cut} should error"
            );
        }
    }

    #[test]
    fn arity_mismatch_rejected() {
        let narrow = Schema::new(vec![Field::new("x", DataType::Int)]).into_ref();
        let t = TupleBuilder::new(narrow.clone())
            .push(1i64)
            .at(Timestamp::logical(1))
            .build()
            .unwrap();
        let mut buf = Vec::new();
        encode_tuple(&t, &mut buf);
        assert!(decode_tuple(&mut buf.as_slice(), &schema()).is_err());
    }

    #[test]
    fn garbage_tag_rejected() {
        let buf = vec![0u8, 1, 0, 99]; // flags=0, arity=1, tag=99
        assert!(decode_tuple(
            &mut buf.as_slice(),
            &Schema::new(vec![Field::new("x", DataType::Int)]).into_ref()
        )
        .is_err());
    }
}
