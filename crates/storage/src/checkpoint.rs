//! The durable checkpoint store: epoch-delta blocks of engine state.
//!
//! Crash recovery needs a place to put snapshots of SteM indexes, window
//! partials, egress ledgers, and ingress cursors. A [`CheckpointStore`] is
//! one append-only file of *epoch blocks*, each carrying the fragments
//! dirtied since the previous epoch — checkpoints are incremental, so
//! their cost scales with churn, not total state size.
//!
//! Every block reuses the [`StreamArchive`](crate::StreamArchive) page
//! discipline: a 16-byte header `[magic][n_records][payload_len][fnv1a]`
//! whose checksum covers the payload, except blocks are variable-sized
//! (an epoch writes exactly what changed). On open the store scans the
//! longest valid *prefix* of blocks — unlike the archive, a mid-file
//! corrupt block stops the scan, because later epochs' deltas are only
//! meaningful on top of earlier ones — and replays fragments latest-wins
//! into an in-memory image. A torn tail block (crash mid-commit) fails
//! its checksum and is discarded: recovery loses at most the epoch being
//! written, never a committed one.
//!
//! Fragments are keyed `(component, key)`, both chosen by the caller
//! (e.g. `"q3/stem/0"` + a group hash). Writing an empty value is a
//! tombstone only by caller convention; the store itself is a plain
//! latest-wins map. Iteration orders are sorted, so two same-seed runs
//! produce byte-identical checkpoint files — determinism artifacts can be
//! diffed directly.
//!
//! Chaos: [`FaultPoint::CheckpointWrite`] is polled once per commit
//! (`Error` fails it softly, keeping the pending delta for retry;
//! `Overflow` makes it a torn write), and [`FaultPoint::CheckpointRead`]
//! once per block on open (`Error` truncates recovery to the prefix).

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use tcq_common::{
    CkptReader, CkptWriter, FaultAction, FaultPoint, Result, SharedInjector, TcqError,
};

use crate::archive::checksum;

/// Block header: `[u32 magic][u32 n_records][u32 payload_len][u32 fnv1a]`.
const BLOCK_HEADER: usize = 16;

/// Sentinel marking a valid checkpoint block ("TCQK").
const BLOCK_MAGIC: u32 = 0x5443_514B;

/// Write-path counters for one store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Epochs committed cleanly.
    pub epochs_committed: u64,
    /// Fragments persisted across all committed epochs.
    pub fragments_written: u64,
    /// Payload + header bytes persisted across all committed epochs.
    pub bytes_written: u64,
    /// Commits failed softly by an injected `Error` (delta kept).
    pub commit_faults: u64,
    /// Commits that became torn writes (injected `Overflow`); their
    /// fragments are lost and the delta is kept for retry.
    pub torn_commits: u64,
}

/// What [`CheckpointStore::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointRecovery {
    /// Valid epoch blocks replayed.
    pub epochs_recovered: u64,
    /// Fragments replayed (before latest-wins dedup).
    pub fragments_recovered: u64,
    /// Trailing bytes discarded (torn block or garbage past the prefix).
    pub truncated_bytes: u64,
}

/// A durable, incrementally written store of checkpoint fragments.
pub struct CheckpointStore {
    path: PathBuf,
    file: File,
    /// Last committed epoch (0 = nothing committed yet).
    epoch: u64,
    /// File length of the valid prefix; appends always start here, so a
    /// torn block from an earlier failed commit is overwritten on retry.
    good_len: u64,
    /// Latest-wins image: component → key → value. `BTreeMap` at both
    /// levels so restore iteration (and therefore everything rebuilt from
    /// it) is deterministically ordered.
    latest: BTreeMap<String, BTreeMap<Vec<u8>, Vec<u8>>>,
    /// Fragments staged for the next commit, in put order.
    pending: Vec<(String, Vec<u8>, Vec<u8>)>,
    stats: CheckpointStats,
    recovery: CheckpointRecovery,
    injector: Option<SharedInjector>,
}

impl CheckpointStore {
    /// Open (or create) the store at `path`, replaying the longest valid
    /// prefix of epoch blocks into the in-memory image.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_injector(path, None)
    }

    /// [`CheckpointStore::open`] with chaos: each block read polls
    /// [`FaultPoint::CheckpointRead`].
    pub fn open_with_injector(
        path: impl AsRef<Path>,
        injector: Option<SharedInjector>,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::options()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)?;
        let file_len = file.metadata()?.len();
        let mut bytes = Vec::with_capacity(file_len as usize);
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;

        let mut latest: BTreeMap<String, BTreeMap<Vec<u8>, Vec<u8>>> = BTreeMap::new();
        let mut epoch = 0u64;
        let mut recovery = CheckpointRecovery::default();
        let mut offset = 0usize;
        while offset + BLOCK_HEADER <= bytes.len() {
            if let Some(inj) = &injector {
                if let Some(FaultAction::Error(_)) = inj.poll(FaultPoint::CheckpointRead) {
                    break;
                }
            }
            let word = |i: usize| {
                u32::from_le_bytes(
                    bytes[offset + i * 4..offset + i * 4 + 4]
                        .try_into()
                        .expect("4 bytes"),
                )
            };
            if word(0) != BLOCK_MAGIC {
                break;
            }
            let n_records = word(1);
            let payload_len = word(2) as usize;
            let sum = word(3);
            let payload_start = offset + BLOCK_HEADER;
            if payload_start + payload_len > bytes.len() {
                break; // torn tail block
            }
            let payload = &bytes[payload_start..payload_start + payload_len];
            if checksum(payload) != sum {
                break;
            }
            let Ok((block_epoch, fragments)) = decode_block(payload, n_records) else {
                break;
            };
            // Epochs must ascend; a regression means the file was mixed
            // from two incarnations — keep the prefix only.
            if block_epoch <= epoch {
                break;
            }
            epoch = block_epoch;
            recovery.epochs_recovered += 1;
            recovery.fragments_recovered += fragments.len() as u64;
            for (component, key, value) in fragments {
                latest.entry(component).or_default().insert(key, value);
            }
            offset = payload_start + payload_len;
        }
        let good_len = offset as u64;
        recovery.truncated_bytes = file_len - good_len;
        if recovery.truncated_bytes > 0 {
            file.set_len(good_len)?;
        }
        Ok(CheckpointStore {
            path,
            file,
            epoch,
            good_len,
            latest,
            pending: Vec::new(),
            stats: CheckpointStats::default(),
            recovery,
            injector,
        })
    }

    /// Attach a chaos injector polled at [`FaultPoint::CheckpointWrite`]
    /// on every commit.
    pub fn attach_injector(&mut self, injector: SharedInjector) {
        self.injector = Some(injector);
    }

    /// The store's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Last committed epoch (0 when nothing has been committed).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// What recovery found when this store was opened.
    pub fn recovery(&self) -> CheckpointRecovery {
        self.recovery
    }

    /// Write-path counters.
    pub fn stats(&self) -> CheckpointStats {
        self.stats
    }

    /// Bytes of committed state on disk.
    pub fn file_len(&self) -> u64 {
        self.good_len
    }

    /// Fragments currently staged for the next commit.
    pub fn pending_fragments(&self) -> usize {
        self.pending.len()
    }

    /// Stage one fragment for the next commit. Within an epoch the last
    /// put for a `(component, key)` wins.
    pub fn put(&mut self, component: &str, key: &[u8], value: &[u8]) {
        self.pending
            .push((component.to_string(), key.to_vec(), value.to_vec()));
    }

    /// Durably commit the staged delta as the next epoch. Returns the new
    /// epoch number. On failure (injected or real I/O) the staged delta is
    /// kept, so the caller can retry — and must not mark upstream state
    /// clean until a commit succeeds.
    pub fn commit(&mut self) -> Result<u64> {
        let mut torn = false;
        if let Some(inj) = self.injector.clone() {
            match inj.poll(FaultPoint::CheckpointWrite) {
                Some(FaultAction::Error(msg)) => {
                    self.stats.commit_faults += 1;
                    return Err(TcqError::Storage(format!(
                        "injected checkpoint fault: {msg}"
                    )));
                }
                Some(FaultAction::Overflow) => torn = true,
                _ => {}
            }
        }
        let next_epoch = self.epoch + 1;
        let mut payload = CkptWriter::new();
        payload.put_u64(next_epoch);
        for (component, key, value) in &self.pending {
            payload.put_str(component);
            payload.put_bytes(key);
            payload.put_bytes(value);
        }
        let payload = payload.into_bytes();
        let mut block = Vec::with_capacity(BLOCK_HEADER + payload.len());
        block.extend_from_slice(&BLOCK_MAGIC.to_le_bytes());
        block.extend_from_slice(&(self.pending.len() as u32).to_le_bytes());
        block.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        block.extend_from_slice(&checksum(&payload).to_le_bytes());
        block.extend_from_slice(&payload);

        // Retry-after-torn: always start the block at the valid prefix.
        self.file.set_len(self.good_len)?;
        self.file.seek(SeekFrom::Start(self.good_len))?;
        if torn {
            // Injected torn write: only part of the block reaches disk —
            // the crash model for "power lost mid-commit". Recovery on
            // reopen rejects the block (bad checksum) and keeps the
            // committed prefix.
            let cut = BLOCK_HEADER + payload.len() / 2;
            self.file.write_all(&block[..cut])?;
            self.file.sync_data()?;
            self.stats.torn_commits += 1;
            return Err(TcqError::Storage("injected torn checkpoint commit".into()));
        }
        self.file.write_all(&block)?;
        self.file.sync_data()?;
        self.good_len += block.len() as u64;
        self.epoch = next_epoch;
        self.stats.epochs_committed += 1;
        self.stats.fragments_written += self.pending.len() as u64;
        self.stats.bytes_written += block.len() as u64;
        for (component, key, value) in self.pending.drain(..) {
            self.latest.entry(component).or_default().insert(key, value);
        }
        Ok(next_epoch)
    }

    /// The latest committed value for `(component, key)`, if any.
    pub fn get(&self, component: &str, key: &[u8]) -> Option<&[u8]> {
        self.latest
            .get(component)
            .and_then(|m| m.get(key))
            .map(|v| v.as_slice())
    }

    /// All committed fragments of one component, sorted by key.
    pub fn fragments(&self, component: &str) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.latest
            .get(component)
            .into_iter()
            .flat_map(|m| m.iter().map(|(k, v)| (k.as_slice(), v.as_slice())))
    }

    /// All component names with committed fragments, sorted.
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.latest.keys().map(|s| s.as_str())
    }

    /// Total committed fragments in the latest-wins image.
    pub fn len(&self) -> usize {
        self.latest.values().map(|m| m.len()).sum()
    }

    /// True when no fragment has ever been committed (or recovered).
    pub fn is_empty(&self) -> bool {
        self.latest.is_empty()
    }
}

/// One decoded fragment: `(component, key, value)`.
type Fragment = (String, Vec<u8>, Vec<u8>);

/// Decode one block payload: `[u64 epoch]` then `n_records` fragments of
/// `[str component][bytes key][bytes value]`.
fn decode_block(payload: &[u8], n_records: u32) -> Result<(u64, Vec<Fragment>)> {
    let mut r = CkptReader::new(payload);
    let epoch = r.get_u64("block epoch")?;
    let mut fragments = Vec::with_capacity(n_records as usize);
    for _ in 0..n_records {
        let component = r.get_str("fragment component")?;
        let key = r.get_bytes("fragment key")?;
        let value = r.get_bytes("fragment value")?;
        fragments.push((component, key, value));
    }
    if !r.is_empty() {
        return Err(TcqError::Storage(
            "checkpoint block has trailing bytes".into(),
        ));
    }
    Ok((epoch, fragments))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use tcq_common::FaultPlan;

    fn temp_path(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("tcq-ckpt-{tag}-{}-{n}.ckpt", std::process::id()))
    }

    #[test]
    fn commit_reopen_latest_wins() {
        let path = temp_path("roundtrip");
        {
            let mut s = CheckpointStore::open(&path).unwrap();
            s.put("a/stem", b"k1", b"v1");
            s.put("a/stem", b"k2", b"v2");
            assert_eq!(s.commit().unwrap(), 1);
            s.put("a/stem", b"k1", b"v1b"); // overwritten in epoch 2
            s.put("cursor/s", b"", b"42");
            assert_eq!(s.commit().unwrap(), 2);
        }
        let s = CheckpointStore::open(&path).unwrap();
        assert_eq!(s.epoch(), 2);
        assert_eq!(s.recovery().epochs_recovered, 2);
        assert_eq!(s.get("a/stem", b"k1"), Some(b"v1b".as_slice()));
        assert_eq!(s.get("a/stem", b"k2"), Some(b"v2".as_slice()));
        assert_eq!(s.get("cursor/s", b""), Some(b"42".as_slice()));
        assert_eq!(s.len(), 3);
        let keys: Vec<&[u8]> = s.fragments("a/stem").map(|(k, _)| k).collect();
        assert_eq!(keys, vec![b"k1".as_slice(), b"k2".as_slice()]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_epochs_and_empty_store() {
        let path = temp_path("empty");
        {
            let mut s = CheckpointStore::open(&path).unwrap();
            assert!(s.is_empty());
            assert_eq!(s.commit().unwrap(), 1, "empty epoch commits fine");
        }
        let s = CheckpointStore::open(&path).unwrap();
        assert_eq!(s.epoch(), 1);
        assert!(s.is_empty());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn torn_tail_block_is_discarded_on_open() {
        let path = temp_path("torn");
        let good_len;
        {
            let mut s = CheckpointStore::open(&path).unwrap();
            s.put("c", b"k", b"committed");
            s.commit().unwrap();
            good_len = s.file_len();
            s.put("c", b"k", b"torn-away");
            s.commit().unwrap();
        }
        // Tear the second block: chop the file mid-block.
        let full = std::fs::metadata(&path).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(full - 3)
            .unwrap();
        let s = CheckpointStore::open(&path).unwrap();
        assert_eq!(s.epoch(), 1, "torn epoch lost, committed prefix kept");
        assert_eq!(s.get("c", b"k"), Some(b"committed".as_slice()));
        assert!(s.recovery().truncated_bytes > 0);
        assert_eq!(s.file_len(), good_len, "file truncated back to prefix");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn injected_commit_error_keeps_delta_for_retry() {
        let path = temp_path("inj-err");
        let injector = FaultPlan::new(3)
            .at(
                FaultPoint::CheckpointWrite,
                1,
                FaultAction::Error("disk gone".into()),
            )
            .build_shared();
        let mut s = CheckpointStore::open(&path).unwrap();
        s.attach_injector(injector.clone());
        s.put("c", b"k", b"v");
        assert!(s.commit().is_err());
        assert_eq!(s.stats().commit_faults, 1);
        assert_eq!(s.pending_fragments(), 1, "delta kept");
        assert_eq!(s.commit().unwrap(), 1, "retry succeeds");
        assert_eq!(s.get("c", b"k"), Some(b"v".as_slice()));
        assert_eq!(injector.log().len(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn injected_torn_commit_recovers_prefix_and_retries() {
        let path = temp_path("inj-torn");
        let injector = FaultPlan::new(3)
            .at(FaultPoint::CheckpointWrite, 2, FaultAction::Overflow)
            .build_shared();
        {
            let mut s = CheckpointStore::open(&path).unwrap();
            s.attach_injector(injector);
            s.put("c", b"k", b"epoch1");
            s.commit().unwrap();
            s.put("c", b"k", b"epoch2");
            assert!(s.commit().is_err(), "torn commit reports failure");
            assert_eq!(s.stats().torn_commits, 1);
            // The same live store retries over the torn bytes.
            assert_eq!(s.commit().unwrap(), 2);
            assert_eq!(s.get("c", b"k"), Some(b"epoch2".as_slice()));
        }
        // And the file on disk holds both epochs, cleanly.
        let s = CheckpointStore::open(&path).unwrap();
        assert_eq!(s.epoch(), 2);
        assert_eq!(s.recovery().truncated_bytes, 0);
        assert_eq!(s.get("c", b"k"), Some(b"epoch2".as_slice()));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn crash_after_torn_commit_keeps_committed_prefix() {
        let path = temp_path("crash-torn");
        let injector = FaultPlan::new(3)
            .at(FaultPoint::CheckpointWrite, 2, FaultAction::Overflow)
            .build_shared();
        {
            let mut s = CheckpointStore::open(&path).unwrap();
            s.attach_injector(injector);
            s.put("c", b"k", b"epoch1");
            s.commit().unwrap();
            s.put("c", b"k", b"epoch2");
            assert!(s.commit().is_err());
            // Crash here: the store is dropped with a torn tail on disk.
        }
        let s = CheckpointStore::open(&path).unwrap();
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.get("c", b"k"), Some(b"epoch1".as_slice()));
        assert!(s.recovery().truncated_bytes > 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn injected_read_fault_truncates_recovery_to_prefix() {
        let path = temp_path("inj-read");
        {
            let mut s = CheckpointStore::open(&path).unwrap();
            for i in 0..3 {
                s.put("c", b"k", format!("epoch{}", i + 1).as_bytes());
                s.commit().unwrap();
            }
        }
        let injector = FaultPlan::new(3)
            .at(
                FaultPoint::CheckpointRead,
                3,
                FaultAction::Error("bad sector".into()),
            )
            .build_shared();
        let s = CheckpointStore::open_with_injector(&path, Some(injector)).unwrap();
        assert_eq!(s.epoch(), 2, "scan stopped at the unreadable block");
        assert_eq!(s.get("c", b"k"), Some(b"epoch2".as_slice()));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn same_puts_produce_byte_identical_files() {
        let write = |path: &Path| {
            let mut s = CheckpointStore::open(path).unwrap();
            s.put("b/agg", b"", b"partial");
            s.put("a/stem", b"g1", b"t1t2");
            s.commit().unwrap();
            s.put("a/stem", b"g2", b"t3");
            s.commit().unwrap();
        };
        let p1 = temp_path("det1");
        let p2 = temp_path("det2");
        write(&p1);
        write(&p2);
        assert_eq!(
            std::fs::read(&p1).unwrap(),
            std::fs::read(&p2).unwrap(),
            "checkpoint files are deterministic artifacts"
        );
        std::fs::remove_file(p1).ok();
        std::fs::remove_file(p2).ok();
    }

    #[test]
    fn mixed_incarnation_epoch_regression_rejected() {
        // A block whose epoch does not ascend ends the valid prefix.
        let path = temp_path("regress");
        {
            let mut s = CheckpointStore::open(&path).unwrap();
            s.put("c", b"k", b"v1");
            s.commit().unwrap();
        }
        // Append a duplicate of the first block (epoch 1 again).
        let bytes = std::fs::read(&path).unwrap();
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&bytes).unwrap();
        drop(f);
        let s = CheckpointStore::open(&path).unwrap();
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.recovery().epochs_recovered, 1);
        assert!(s.recovery().truncated_bytes > 0);
        std::fs::remove_file(path).ok();
    }
}
