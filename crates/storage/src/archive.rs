//! The stream archive: append-only page-structured history of one stream.

use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tcq_common::{Result, SchemaRef, TcqError, Tuple};

use crate::codec::{decode_tuple, encode_tuple};
use crate::pool::BufferPool;

/// Page layout: `[u32 n_records][records...]` padded with zeros to the page
/// size. Record boundaries are implicit in the codec.
const PAGE_HEADER: usize = 4;

static NEXT_ARCHIVE_ID: AtomicU64 = AtomicU64::new(1);

/// Metadata for one sealed page.
#[derive(Debug, Clone, Copy)]
struct PageMeta {
    min_seq: i64,
    max_seq: i64,
    records: u32,
}

/// Append-only on-disk history of one stream, windowed-readable.
///
/// Writes go to an in-memory tail page, sealed (written through the shared
/// [`BufferPool`]) when full, so disk writes are strictly sequential.
/// Reads serve window scans: each sealed page records its logical-timestamp
/// range, and [`StreamArchive::scan_window`] touches only overlapping pages.
pub struct StreamArchive {
    id: u64,
    schema: SchemaRef,
    pool: BufferPool,
    path: PathBuf,
    file: File,
    pages: Vec<PageMeta>,
    tail: Vec<u8>,
    tail_records: u32,
    tail_min: i64,
    tail_max: i64,
    total_records: u64,
}

impl StreamArchive {
    /// Create (truncating) an archive at `path` for a stream of `schema`.
    pub fn create(path: impl AsRef<Path>, schema: SchemaRef, pool: BufferPool) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::options()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(StreamArchive {
            id: NEXT_ARCHIVE_ID.fetch_add(1, Ordering::Relaxed),
            schema,
            pool,
            path,
            file,
            pages: Vec::new(),
            tail: Vec::new(),
            tail_records: 0,
            tail_min: i64::MAX,
            tail_max: i64::MIN,
            total_records: 0,
        })
    }

    /// The stream schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// File system path of the segment file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one tuple (must carry a logical timestamp; archives are
    /// ordered by it).
    pub fn append(&mut self, tuple: &Tuple) -> Result<()> {
        let seq = tuple
            .timestamp()
            .logical
            .ok_or_else(|| TcqError::Storage("archived tuples need logical timestamps".into()))?;
        let mut record = Vec::new();
        encode_tuple(tuple, &mut record);
        let payload_capacity = self.pool.page_size() - PAGE_HEADER;
        if record.len() > payload_capacity {
            return Err(TcqError::Storage(format!(
                "tuple of {} bytes exceeds page payload of {payload_capacity} bytes",
                record.len()
            )));
        }
        if self.tail.len() + record.len() > payload_capacity {
            self.seal_tail()?;
        }
        self.tail.extend_from_slice(&record);
        self.tail_records += 1;
        self.tail_min = self.tail_min.min(seq);
        self.tail_max = self.tail_max.max(seq);
        self.total_records += 1;
        Ok(())
    }

    fn seal_tail(&mut self) -> Result<()> {
        if self.tail_records == 0 {
            return Ok(());
        }
        let mut page = Vec::with_capacity(self.pool.page_size());
        page.extend_from_slice(&self.tail_records.to_le_bytes());
        page.extend_from_slice(&self.tail);
        page.resize(self.pool.page_size(), 0);
        let page_no = self.pages.len() as u64;
        self.pool
            .write_page(&mut self.file, (self.id, page_no), page)?;
        self.pages.push(PageMeta {
            min_seq: self.tail_min,
            max_seq: self.tail_max,
            records: self.tail_records,
        });
        self.tail.clear();
        self.tail_records = 0;
        self.tail_min = i64::MAX;
        self.tail_max = i64::MIN;
        Ok(())
    }

    /// Force the tail page to disk (e.g. before handing the archive to a
    /// historical query).
    pub fn flush(&mut self) -> Result<()> {
        self.seal_tail()?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Total appended tuples.
    pub fn len(&self) -> u64 {
        self.total_records
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.total_records == 0
    }

    /// Sealed pages so far.
    pub fn sealed_pages(&self) -> usize {
        self.pages.len()
    }

    /// Scan the window `[left, right]` (inclusive, logical time), appending
    /// matching tuples to `out` in storage order. Touches only pages whose
    /// range overlaps the window, plus the in-memory tail.
    pub fn scan_window(&mut self, left: i64, right: i64, out: &mut Vec<Tuple>) -> Result<usize> {
        let before = out.len();
        for page_no in 0..self.pages.len() {
            let meta = self.pages[page_no];
            if meta.max_seq < left || meta.min_seq > right {
                continue;
            }
            let data = self
                .pool
                .read_page(&mut self.file, (self.id, page_no as u64))?;
            let n =
                u32::from_le_bytes(data[..PAGE_HEADER].try_into().expect("page header present"));
            if n != meta.records {
                return Err(TcqError::Storage(format!(
                    "page {page_no} corrupt: header says {n} records, index says {}",
                    meta.records
                )));
            }
            let mut slice = &data[PAGE_HEADER..];
            for _ in 0..n {
                let t = decode_tuple(&mut slice, &self.schema)?;
                let seq = t.timestamp().seq();
                if left <= seq && seq <= right {
                    out.push(t);
                }
            }
        }
        // Tail (unsealed) records.
        if self.tail_records > 0 && self.tail_min <= right && self.tail_max >= left {
            let mut slice = self.tail.as_slice();
            for _ in 0..self.tail_records {
                let t = decode_tuple(&mut slice, &self.schema)?;
                let seq = t.timestamp().seq();
                if left <= seq && seq <= right {
                    out.push(t);
                }
            }
        }
        Ok(out.len() - before)
    }
}

impl Drop for StreamArchive {
    fn drop(&mut self) {
        let _ = self.seal_tail();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{DataType, Field, Schema, Timestamp, TupleBuilder};

    fn schema() -> SchemaRef {
        Schema::qualified(
            "s",
            vec![
                Field::new("seq", DataType::Int),
                Field::new("payload", DataType::Str),
            ],
        )
        .into_ref()
    }

    fn tuple(seq: i64) -> Tuple {
        TupleBuilder::new(schema())
            .push(seq)
            .push(format!("payload-{seq}"))
            .at(Timestamp::logical(seq))
            .build()
            .unwrap()
    }

    fn temp_path(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("tcq-archive-{tag}-{}-{n}.seg", std::process::id()))
    }

    #[test]
    fn spool_and_scan_roundtrip() {
        let pool = BufferPool::new(8, 512);
        let path = temp_path("roundtrip");
        let mut a = StreamArchive::create(&path, schema(), pool).unwrap();
        for seq in 1..=500 {
            a.append(&tuple(seq)).unwrap();
        }
        assert_eq!(a.len(), 500);
        assert!(a.sealed_pages() > 1, "should spill to multiple pages");

        let mut out = Vec::new();
        let n = a.scan_window(100, 150, &mut out).unwrap();
        assert_eq!(n, 51);
        let seqs: Vec<i64> = out.iter().map(|t| t.timestamp().seq()).collect();
        assert_eq!(seqs, (100..=150).collect::<Vec<_>>());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn scan_includes_unsealed_tail() {
        let pool = BufferPool::new(8, 4096);
        let path = temp_path("tail");
        let mut a = StreamArchive::create(&path, schema(), pool).unwrap();
        for seq in 1..=10 {
            a.append(&tuple(seq)).unwrap();
        }
        assert_eq!(a.sealed_pages(), 0, "everything still in the tail");
        let mut out = Vec::new();
        assert_eq!(a.scan_window(5, 20, &mut out).unwrap(), 6);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn windowed_scan_skips_unrelated_pages() {
        // Small pool so cold reads are visible; page range pruning means a
        // narrow window reads only 1-2 pages.
        let pool = BufferPool::new(2, 512);
        let path = temp_path("prune");
        let mut a = StreamArchive::create(&path, schema(), pool.clone()).unwrap();
        for seq in 1..=2000 {
            a.append(&tuple(seq)).unwrap();
        }
        a.flush().unwrap();
        pool.clear();
        let before = pool.stats().misses;
        let mut out = Vec::new();
        a.scan_window(1000, 1005, &mut out).unwrap();
        assert_eq!(out.len(), 6);
        let touched = pool.stats().misses - before;
        assert!(
            touched <= 2,
            "narrow window should touch at most 2 pages, touched {touched}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn backward_windows_replay_history() {
        // The browsing pattern of §4.1: windows moving backward from now.
        let pool = BufferPool::new(4, 512);
        let path = temp_path("backward");
        let mut a = StreamArchive::create(&path, schema(), pool).unwrap();
        for seq in 1..=100 {
            a.append(&tuple(seq)).unwrap();
        }
        for (l, r) in [(91, 100), (81, 90), (71, 80)] {
            let mut out = Vec::new();
            assert_eq!(a.scan_window(l, r, &mut out).unwrap(), 10);
            assert!(out.iter().all(|t| {
                let s = t.timestamp().seq();
                l <= s && s <= r
            }));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn tuple_without_logical_timestamp_rejected() {
        let pool = BufferPool::new(2, 512);
        let path = temp_path("nots");
        let mut a = StreamArchive::create(&path, schema(), pool).unwrap();
        let t = TupleBuilder::new(schema())
            .push(1i64)
            .push("x")
            .at(Timestamp::physical(5))
            .build()
            .unwrap();
        assert!(a.append(&t).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn oversized_tuple_rejected() {
        let pool = BufferPool::new(2, 128);
        let path = temp_path("big");
        let mut a = StreamArchive::create(&path, schema(), pool).unwrap();
        let big = TupleBuilder::new(schema())
            .push(1i64)
            .push("y".repeat(1000))
            .at(Timestamp::logical(1))
            .build()
            .unwrap();
        assert!(a.append(&big).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bounded_memory_via_shared_pool() {
        // Many archives share one small pool; total cached pages stays at
        // the pool capacity regardless of data volume.
        let pool = BufferPool::new(4, 512);
        let mut archives = Vec::new();
        let mut paths = Vec::new();
        for i in 0..4 {
            let p = temp_path(&format!("multi{i}"));
            archives.push(StreamArchive::create(&p, schema(), pool.clone()).unwrap());
            paths.push(p);
        }
        for a in &mut archives {
            for seq in 1..=300 {
                a.append(&tuple(seq)).unwrap();
            }
        }
        assert!(pool.cached_pages() <= 4);
        // All archives still readable.
        for a in &mut archives {
            let mut out = Vec::new();
            assert_eq!(a.scan_window(250, 260, &mut out).unwrap(), 11);
        }
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }
}
