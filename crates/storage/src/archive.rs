//! The stream archive: append-only page-structured history of one stream.

use std::fs::File;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tcq_common::{FaultAction, FaultPoint, Result, SchemaRef, SharedInjector, TcqError, Tuple};

use crate::codec::{decode_tuple, encode_tuple};
use crate::pool::BufferPool;

/// Page layout: `[u32 magic][u32 n_records][u32 payload_len][u32 checksum]`
/// followed by the record payload, zero-padded to the page size. The
/// checksum covers the payload bytes, so a torn write (a page that only
/// partially reached disk) is detectable on reopen.
const PAGE_HEADER: usize = 16;

/// Sentinel marking a valid archive page ("TCQA").
const PAGE_MAGIC: u32 = 0x5443_5141;

static NEXT_ARCHIVE_ID: AtomicU64 = AtomicU64::new(1);

/// FNV-1a over `bytes` — the in-tree page checksum (no external deps).
/// Shared with the checkpoint store so both durable formats carry the
/// same integrity discipline.
pub(crate) fn checksum(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Metadata for one sealed page.
#[derive(Debug, Clone, Copy)]
struct PageMeta {
    /// On-disk page number (sparse when torn pages were skipped).
    page_no: u64,
    min_seq: i64,
    max_seq: i64,
    records: u32,
}

/// Counters for one archive's write path: every appended tuple is either
/// readable (`len()`), lost to an injected torn write (`lost_records`), or
/// was rejected with an error before being accepted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArchiveStats {
    /// Tuples accepted by `append` (including those later lost to a torn
    /// page seal).
    pub appended: u64,
    /// Pages sealed cleanly.
    pub sealed_pages: u64,
    /// Page seals that became torn writes (injected chaos).
    pub torn_pages: u64,
    /// Records lost inside torn pages: `appended - lost_records` equals
    /// the readable record count.
    pub lost_records: u64,
}

/// What [`StreamArchive::open`] found on disk: the longest valid prefix of
/// pages is kept, corrupt full pages are skipped, and a trailing partial
/// (torn) page is truncated so appends can resume.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Valid pages recovered.
    pub pages_kept: usize,
    /// Full-size pages that failed validation (bad magic, checksum, or
    /// undecodable records) and were skipped.
    pub pages_skipped: usize,
    /// Records readable after recovery.
    pub records_recovered: u64,
    /// Bytes of trailing partial page truncated away.
    pub truncated_bytes: u64,
}

/// What [`StreamArchive::compact`] did: how many on-disk page slots the
/// segment occupied before and after densification, and the file bytes
/// given back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// On-disk page slots before compaction (including holes left by
    /// skipped corrupt pages and torn writes).
    pub pages_before: u64,
    /// On-disk page slots after compaction — equals the live page count.
    pub pages_after: u64,
    /// File bytes reclaimed by the final truncation.
    pub bytes_reclaimed: u64,
}

/// Append-only on-disk history of one stream, windowed-readable.
///
/// Writes go to an in-memory tail page, sealed (written through the shared
/// [`BufferPool`]) when full, so disk writes are strictly sequential.
/// Reads serve window scans: each sealed page records its logical-timestamp
/// range, and [`StreamArchive::scan_window`] touches only overlapping pages.
///
/// Crash safety: every page carries a magic word, record count, payload
/// length, and payload checksum. [`StreamArchive::open`] rebuilds the page
/// index from disk, skipping any page that fails validation and truncating
/// a torn trailing write, so a crashed server resumes appending where the
/// last *valid* page ended.
pub struct StreamArchive {
    id: u64,
    schema: SchemaRef,
    pool: BufferPool,
    path: PathBuf,
    file: File,
    pages: Vec<PageMeta>,
    /// Next on-disk page number (≥ `pages.len()` when pages were skipped
    /// during recovery or torn by chaos).
    next_page: u64,
    tail: Vec<u8>,
    tail_records: u32,
    tail_min: i64,
    tail_max: i64,
    total_records: u64,
    stats: ArchiveStats,
    recovery: Option<RecoveryReport>,
    injector: Option<SharedInjector>,
    /// Set by an injected `ArchiveAppend`/`Overflow` fault: the next page
    /// seal writes only a partial page (a torn write).
    torn_pending: bool,
}

impl StreamArchive {
    /// Create (truncating) an archive at `path` for a stream of `schema`.
    pub fn create(path: impl AsRef<Path>, schema: SchemaRef, pool: BufferPool) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::options()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(StreamArchive {
            id: NEXT_ARCHIVE_ID.fetch_add(1, Ordering::Relaxed),
            schema,
            pool,
            path,
            file,
            pages: Vec::new(),
            next_page: 0,
            tail: Vec::new(),
            tail_records: 0,
            tail_min: i64::MAX,
            tail_max: i64::MIN,
            total_records: 0,
            stats: ArchiveStats::default(),
            recovery: None,
            injector: None,
            torn_pending: false,
        })
    }

    /// Open an existing archive at `path`, recovering whatever valid pages
    /// it holds (creates an empty one if the file does not exist).
    ///
    /// Recovery invariant: the readable contents after `open` are exactly
    /// the pages whose header magic, record count, payload length, and
    /// payload checksum all validate and whose records decode against
    /// `schema`. Corrupt full-size pages are skipped and counted; a
    /// trailing partial page (a torn write interrupted mid-page) is
    /// truncated so subsequent appends land on a fresh page boundary.
    pub fn open(path: impl AsRef<Path>, schema: SchemaRef, pool: BufferPool) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        // A stale `.tmp` means a compaction crashed before its atomic
        // rename: the segment at `path` is still the complete old one, so
        // the half-built rewrite is garbage to discard.
        std::fs::remove_file(compact_tmp_path(&path)).ok();
        let mut file = File::options()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)?;
        let page_size = pool.page_size() as u64;
        let file_len = file.metadata()?.len();
        let full_pages = file_len / page_size;
        let id = NEXT_ARCHIVE_ID.fetch_add(1, Ordering::Relaxed);

        let mut pages = Vec::new();
        let mut total_records = 0u64;
        let mut skipped = 0usize;
        for page_no in 0..full_pages {
            let data = pool.read_page(&mut file, (id, page_no))?;
            match validate_page(&data, &schema) {
                Some((records, min_seq, max_seq)) => {
                    pages.push(PageMeta {
                        page_no,
                        min_seq,
                        max_seq,
                        records,
                    });
                    total_records += records as u64;
                }
                None => skipped += 1,
            }
        }
        let truncated_bytes = file_len - full_pages * page_size;
        if truncated_bytes > 0 {
            file.set_len(full_pages * page_size)?;
        }
        let recovery = RecoveryReport {
            pages_kept: pages.len(),
            pages_skipped: skipped,
            records_recovered: total_records,
            truncated_bytes,
        };
        let sealed = pages.len() as u64;
        Ok(StreamArchive {
            id,
            schema,
            pool,
            path,
            file,
            pages,
            next_page: full_pages,
            tail: Vec::new(),
            tail_records: 0,
            tail_min: i64::MAX,
            tail_max: i64::MIN,
            total_records,
            stats: ArchiveStats {
                appended: total_records,
                sealed_pages: sealed,
                ..Default::default()
            },
            recovery: Some(recovery),
            injector: None,
            torn_pending: false,
        })
    }

    /// Attach a chaos injector polled at [`FaultPoint::ArchiveAppend`]:
    /// `Error` fails the append softly, `Overflow` turns the next page
    /// seal into a torn write.
    pub fn attach_injector(&mut self, injector: SharedInjector) {
        self.injector = Some(injector);
    }

    /// What recovery found, if this archive was [`StreamArchive::open`]ed.
    pub fn recovery(&self) -> Option<RecoveryReport> {
        self.recovery
    }

    /// Write-path counters.
    pub fn stats(&self) -> ArchiveStats {
        self.stats
    }

    /// The stream schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// File system path of the segment file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one tuple (must carry a logical timestamp; archives are
    /// ordered by it).
    pub fn append(&mut self, tuple: &Tuple) -> Result<()> {
        if let Some(injector) = &self.injector {
            match injector.poll(FaultPoint::ArchiveAppend) {
                Some(FaultAction::Error(msg)) => {
                    return Err(TcqError::Storage(format!("injected archive fault: {msg}")));
                }
                Some(FaultAction::Overflow) => self.torn_pending = true,
                _ => {}
            }
        }
        let seq = tuple
            .timestamp()
            .logical
            .ok_or_else(|| TcqError::Storage("archived tuples need logical timestamps".into()))?;
        let mut record = Vec::new();
        encode_tuple(tuple, &mut record);
        let payload_capacity = self.pool.page_size() - PAGE_HEADER;
        if record.len() > payload_capacity {
            return Err(TcqError::Storage(format!(
                "tuple of {} bytes exceeds page payload of {payload_capacity} bytes",
                record.len()
            )));
        }
        if self.tail.len() + record.len() > payload_capacity {
            self.seal_tail()?;
        }
        self.tail.extend_from_slice(&record);
        self.tail_records += 1;
        self.tail_min = self.tail_min.min(seq);
        self.tail_max = self.tail_max.max(seq);
        self.total_records += 1;
        self.stats.appended += 1;
        Ok(())
    }

    fn seal_tail(&mut self) -> Result<()> {
        if self.tail_records == 0 {
            return Ok(());
        }
        let mut page = Vec::with_capacity(self.pool.page_size());
        page.extend_from_slice(&PAGE_MAGIC.to_le_bytes());
        page.extend_from_slice(&self.tail_records.to_le_bytes());
        page.extend_from_slice(&(self.tail.len() as u32).to_le_bytes());
        page.extend_from_slice(&checksum(&self.tail).to_le_bytes());
        page.extend_from_slice(&self.tail);
        let page_no = self.next_page;
        self.next_page += 1;
        if self.torn_pending {
            // Injected torn write: only part of the page reaches disk —
            // the crash model for "power lost mid-write". The page gets no
            // index entry (live scans skip it) and its records move from
            // readable to lost; recovery on reopen detects the bad
            // checksum and skips or truncates it.
            self.torn_pending = false;
            self.stats.torn_pages += 1;
            self.stats.lost_records += self.tail_records as u64;
            self.total_records -= self.tail_records as u64;
            page.truncate(PAGE_HEADER + self.tail.len() / 2);
            self.file
                .seek(SeekFrom::Start(page_no * self.pool.page_size() as u64))?;
            self.file.write_all(&page)?;
        } else {
            page.resize(self.pool.page_size(), 0);
            self.pool
                .write_page(&mut self.file, (self.id, page_no), page)?;
            self.pages.push(PageMeta {
                page_no,
                min_seq: self.tail_min,
                max_seq: self.tail_max,
                records: self.tail_records,
            });
            self.stats.sealed_pages += 1;
        }
        self.tail.clear();
        self.tail_records = 0;
        self.tail_min = i64::MAX;
        self.tail_max = i64::MIN;
        Ok(())
    }

    /// Force the tail page to disk (e.g. before handing the archive to a
    /// historical query).
    pub fn flush(&mut self) -> Result<()> {
        self.seal_tail()?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Rewrite the segment densely around dead page slots.
    ///
    /// Recovery ([`StreamArchive::open`]) and injected torn writes leave
    /// holes: page slots on disk that hold corrupt or partial data and are
    /// absent from the index, so the file is larger than its live contents
    /// and page numbering is sparse. `compact` seals the tail, slides every
    /// live page down to the lowest slot (preserving storage order),
    /// truncates the file to exactly `live_pages * page_size`, and
    /// renumbers the index densely.
    ///
    /// The rewritten slots are cached under a **fresh archive id**, so any
    /// stale [`BufferPool`] entry keyed by the old `(id, page_no)` can
    /// never alias a slot whose contents moved. Readable contents are
    /// unchanged — only dead bytes are dropped — and a subsequent
    /// [`StreamArchive::open`] sees a hole-free segment
    /// (`pages_skipped == 0`, `truncated_bytes == 0`).
    ///
    /// Crash safety: the dense segment is built in a sibling `.tmp` file,
    /// synced, then swapped in with an atomic rename. A crash at any point
    /// leaves either the complete old segment (rename not reached; `open`
    /// discards the stale `.tmp`) or the complete new one — never a mix.
    /// [`FaultPoint::ArchiveAppend`] is polled once between the rewrite
    /// and the swap, the worst possible crash instant, to let chaos plans
    /// pin exactly that.
    pub fn compact(&mut self) -> Result<CompactionReport> {
        self.seal_tail()?;
        let page_size = self.pool.page_size() as u64;
        let pages_before = self.next_page;
        let tmp = compact_tmp_path(&self.path);
        let mut tmp_file = File::options()
            .create(true)
            .read(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        let new_id = NEXT_ARCHIVE_ID.fetch_add(1, Ordering::Relaxed);
        for (slot, meta) in self.pages.iter().enumerate() {
            let data = self
                .pool
                .read_page(&mut self.file, (self.id, meta.page_no))?;
            self.pool
                .write_page(&mut tmp_file, (new_id, slot as u64), data.to_vec())?;
        }
        tmp_file.sync_data()?;
        if let Some(injector) = &self.injector {
            if let Some(FaultAction::Error(msg)) = injector.poll(FaultPoint::ArchiveAppend) {
                // Simulated crash between rewrite and swap: the finished
                // `.tmp` stays behind (as after a real crash) and the
                // archive keeps serving the old segment untouched.
                return Err(TcqError::Storage(format!(
                    "injected compaction fault: {msg}"
                )));
            }
        }
        std::fs::rename(&tmp, &self.path)?;
        // The old handle still maps the replaced inode; reopen the path.
        self.file = File::options().read(true).write(true).open(&self.path)?;
        self.file.sync_data()?;
        let live = self.pages.len() as u64;
        self.id = new_id;
        for (slot, meta) in self.pages.iter_mut().enumerate() {
            meta.page_no = slot as u64;
        }
        self.next_page = live;
        Ok(CompactionReport {
            pages_before,
            pages_after: live,
            bytes_reclaimed: pages_before.saturating_sub(live) * page_size,
        })
    }

    /// Total readable tuples (appended minus torn-write losses).
    pub fn len(&self) -> u64 {
        self.total_records
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.total_records == 0
    }

    /// Sealed (valid) pages so far.
    pub fn sealed_pages(&self) -> usize {
        self.pages.len()
    }

    /// Scan the window `[left, right]` (inclusive, logical time), appending
    /// matching tuples to `out` in storage order. Touches only pages whose
    /// range overlaps the window, plus the in-memory tail. Every page read
    /// is re-validated against its header checksum.
    pub fn scan_window(&mut self, left: i64, right: i64, out: &mut Vec<Tuple>) -> Result<usize> {
        let before = out.len();
        for idx in 0..self.pages.len() {
            let meta = self.pages[idx];
            if meta.max_seq < left || meta.min_seq > right {
                continue;
            }
            let data = self
                .pool
                .read_page(&mut self.file, (self.id, meta.page_no))?;
            let (n, payload) = parse_header(&data).ok_or_else(|| {
                TcqError::Storage(format!("page {} corrupt: bad header", meta.page_no))
            })?;
            if n != meta.records {
                return Err(TcqError::Storage(format!(
                    "page {} corrupt: header says {n} records, index says {}",
                    meta.page_no, meta.records
                )));
            }
            let mut slice = payload;
            for _ in 0..n {
                let t = decode_tuple(&mut slice, &self.schema)?;
                let seq = t.timestamp().seq();
                if left <= seq && seq <= right {
                    out.push(t);
                }
            }
        }
        // Tail (unsealed) records.
        if self.tail_records > 0 && self.tail_min <= right && self.tail_max >= left {
            let mut slice = self.tail.as_slice();
            for _ in 0..self.tail_records {
                let t = decode_tuple(&mut slice, &self.schema)?;
                let seq = t.timestamp().seq();
                if left <= seq && seq <= right {
                    out.push(t);
                }
            }
        }
        Ok(out.len() - before)
    }
}

/// Sibling path where [`StreamArchive::compact`] builds the dense rewrite
/// before atomically renaming it over the segment.
fn compact_tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Parse and checksum-validate a page header; returns `(records, payload)`.
fn parse_header(data: &[u8]) -> Option<(u32, &[u8])> {
    if data.len() < PAGE_HEADER {
        return None;
    }
    let word = |i: usize| u32::from_le_bytes(data[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    if word(0) != PAGE_MAGIC {
        return None;
    }
    let records = word(1);
    let payload_len = word(2) as usize;
    let sum = word(3);
    if payload_len > data.len() - PAGE_HEADER {
        return None;
    }
    let payload = &data[PAGE_HEADER..PAGE_HEADER + payload_len];
    if checksum(payload) != sum {
        return None;
    }
    Some((records, payload))
}

/// Full validation for recovery: header + checksum + every record decodes
/// with a logical timestamp. Returns `(records, min_seq, max_seq)`.
fn validate_page(data: &[u8], schema: &SchemaRef) -> Option<(u32, i64, i64)> {
    let (records, payload) = parse_header(data)?;
    if records == 0 {
        return None;
    }
    let mut slice = payload;
    let mut min_seq = i64::MAX;
    let mut max_seq = i64::MIN;
    for _ in 0..records {
        let t = decode_tuple(&mut slice, schema).ok()?;
        let seq = t.timestamp().logical?;
        min_seq = min_seq.min(seq);
        max_seq = max_seq.max(seq);
    }
    Some((records, min_seq, max_seq))
}

impl Drop for StreamArchive {
    fn drop(&mut self) {
        let _ = self.seal_tail();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{DataType, FaultPlan, Field, Schema, Timestamp, TupleBuilder};

    fn schema() -> SchemaRef {
        Schema::qualified(
            "s",
            vec![
                Field::new("seq", DataType::Int),
                Field::new("payload", DataType::Str),
            ],
        )
        .into_ref()
    }

    fn tuple(seq: i64) -> Tuple {
        TupleBuilder::new(schema())
            .push(seq)
            .push(format!("payload-{seq}"))
            .at(Timestamp::logical(seq))
            .build()
            .unwrap()
    }

    fn temp_path(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("tcq-archive-{tag}-{}-{n}.seg", std::process::id()))
    }

    #[test]
    fn spool_and_scan_roundtrip() {
        let pool = BufferPool::new(8, 512);
        let path = temp_path("roundtrip");
        let mut a = StreamArchive::create(&path, schema(), pool).unwrap();
        for seq in 1..=500 {
            a.append(&tuple(seq)).unwrap();
        }
        assert_eq!(a.len(), 500);
        assert!(a.sealed_pages() > 1, "should spill to multiple pages");

        let mut out = Vec::new();
        let n = a.scan_window(100, 150, &mut out).unwrap();
        assert_eq!(n, 51);
        let seqs: Vec<i64> = out.iter().map(|t| t.timestamp().seq()).collect();
        assert_eq!(seqs, (100..=150).collect::<Vec<_>>());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn scan_includes_unsealed_tail() {
        let pool = BufferPool::new(8, 4096);
        let path = temp_path("tail");
        let mut a = StreamArchive::create(&path, schema(), pool).unwrap();
        for seq in 1..=10 {
            a.append(&tuple(seq)).unwrap();
        }
        assert_eq!(a.sealed_pages(), 0, "everything still in the tail");
        let mut out = Vec::new();
        assert_eq!(a.scan_window(5, 20, &mut out).unwrap(), 6);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn windowed_scan_skips_unrelated_pages() {
        // Small pool so cold reads are visible; page range pruning means a
        // narrow window reads only 1-2 pages.
        let pool = BufferPool::new(2, 512);
        let path = temp_path("prune");
        let mut a = StreamArchive::create(&path, schema(), pool.clone()).unwrap();
        for seq in 1..=2000 {
            a.append(&tuple(seq)).unwrap();
        }
        a.flush().unwrap();
        pool.clear();
        let before = pool.stats().misses;
        let mut out = Vec::new();
        a.scan_window(1000, 1005, &mut out).unwrap();
        assert_eq!(out.len(), 6);
        let touched = pool.stats().misses - before;
        assert!(
            touched <= 2,
            "narrow window should touch at most 2 pages, touched {touched}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn backward_windows_replay_history() {
        // The browsing pattern of §4.1: windows moving backward from now.
        let pool = BufferPool::new(4, 512);
        let path = temp_path("backward");
        let mut a = StreamArchive::create(&path, schema(), pool).unwrap();
        for seq in 1..=100 {
            a.append(&tuple(seq)).unwrap();
        }
        for (l, r) in [(91, 100), (81, 90), (71, 80)] {
            let mut out = Vec::new();
            assert_eq!(a.scan_window(l, r, &mut out).unwrap(), 10);
            assert!(out.iter().all(|t| {
                let s = t.timestamp().seq();
                l <= s && s <= r
            }));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn tuple_without_logical_timestamp_rejected() {
        let pool = BufferPool::new(2, 512);
        let path = temp_path("nots");
        let mut a = StreamArchive::create(&path, schema(), pool).unwrap();
        let t = TupleBuilder::new(schema())
            .push(1i64)
            .push("x")
            .at(Timestamp::physical(5))
            .build()
            .unwrap();
        assert!(a.append(&t).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn oversized_tuple_rejected() {
        let pool = BufferPool::new(2, 128);
        let path = temp_path("big");
        let mut a = StreamArchive::create(&path, schema(), pool).unwrap();
        let big = TupleBuilder::new(schema())
            .push(1i64)
            .push("y".repeat(1000))
            .at(Timestamp::logical(1))
            .build()
            .unwrap();
        assert!(a.append(&big).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bounded_memory_via_shared_pool() {
        // Many archives share one small pool; total cached pages stays at
        // the pool capacity regardless of data volume.
        let pool = BufferPool::new(4, 512);
        let mut archives = Vec::new();
        let mut paths = Vec::new();
        for i in 0..4 {
            let p = temp_path(&format!("multi{i}"));
            archives.push(StreamArchive::create(&p, schema(), pool.clone()).unwrap());
            paths.push(p);
        }
        for a in &mut archives {
            for seq in 1..=300 {
                a.append(&tuple(seq)).unwrap();
            }
        }
        assert!(pool.cached_pages() <= 4);
        // All archives still readable.
        for a in &mut archives {
            let mut out = Vec::new();
            assert_eq!(a.scan_window(250, 260, &mut out).unwrap(), 11);
        }
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn reopen_roundtrip_scan_agrees() {
        // Satellite: write, drop, open, scan_window agrees.
        let pool = BufferPool::new(8, 512);
        let path = temp_path("reopen");
        {
            let mut a = StreamArchive::create(&path, schema(), pool.clone()).unwrap();
            for seq in 1..=500 {
                a.append(&tuple(seq)).unwrap();
            }
            // Drop seals the tail.
        }
        let mut b = StreamArchive::open(&path, schema(), pool).unwrap();
        let rec = b.recovery().unwrap();
        assert_eq!(rec.records_recovered, 500);
        assert_eq!(rec.pages_skipped, 0);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(b.len(), 500);
        let mut out = Vec::new();
        assert_eq!(b.scan_window(100, 150, &mut out).unwrap(), 51);
        let seqs: Vec<i64> = out.iter().map(|t| t.timestamp().seq()).collect();
        assert_eq!(seqs, (100..=150).collect::<Vec<_>>());
        // And appends resume cleanly after reopen.
        for seq in 501..=600 {
            b.append(&tuple(seq)).unwrap();
        }
        out.clear();
        assert_eq!(b.scan_window(495, 505, &mut out).unwrap(), 11);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn torn_tail_page_truncated_on_open() {
        // Simulate a crash mid-write: a partial trailing page on disk.
        let pool = BufferPool::new(8, 512);
        let path = temp_path("torn-tail");
        let full_len;
        {
            let mut a = StreamArchive::create(&path, schema(), pool.clone()).unwrap();
            for seq in 1..=300 {
                a.append(&tuple(seq)).unwrap();
            }
            a.flush().unwrap();
            full_len = std::fs::metadata(&path).unwrap().len();
        }
        // Tear the last page: chop the file mid-page.
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(full_len - 100)
            .unwrap();
        let mut b = StreamArchive::open(&path, schema(), pool).unwrap();
        let rec = b.recovery().unwrap();
        assert!(rec.truncated_bytes > 0, "partial tail page truncated");
        assert!(rec.records_recovered < 300, "tail page records lost");
        assert!(rec.records_recovered > 0, "valid prefix recovered");
        // The recovered prefix is contiguous from seq 1.
        let mut out = Vec::new();
        let n = b.scan_window(1, 300, &mut out).unwrap();
        assert_eq!(n as u64, rec.records_recovered);
        let seqs: Vec<i64> = out.iter().map(|t| t.timestamp().seq()).collect();
        assert_eq!(seqs, (1..=rec.records_recovered as i64).collect::<Vec<_>>());
        // Appends resume on a fresh page boundary.
        b.append(&tuple(1000)).unwrap();
        b.flush().unwrap();
        out.clear();
        assert_eq!(b.scan_window(1000, 1000, &mut out).unwrap(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_page_skipped_on_open() {
        // Flip payload bytes inside an interior page: the checksum catches
        // it, recovery skips that page, and the rest stays readable.
        let pool = BufferPool::new(8, 512);
        let path = temp_path("corrupt");
        {
            let mut a = StreamArchive::create(&path, schema(), pool.clone()).unwrap();
            for seq in 1..=300 {
                a.append(&tuple(seq)).unwrap();
            }
            a.flush().unwrap();
        }
        {
            let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(512 + PAGE_HEADER as u64)).unwrap();
            f.write_all(&[0xFF; 32]).unwrap();
        }
        let mut b = StreamArchive::open(&path, schema(), pool).unwrap();
        let rec = b.recovery().unwrap();
        assert_eq!(rec.pages_skipped, 1, "exactly the corrupted page skipped");
        assert!(rec.records_recovered < 300);
        let mut out = Vec::new();
        let n = b.scan_window(1, 300, &mut out).unwrap();
        assert_eq!(n as u64, rec.records_recovered);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn injected_torn_write_is_counted_and_recoverable() {
        // FaultPoint::ArchiveAppend + Overflow: the next seal is torn. The
        // live archive accounts the loss; reopen skips the torn page.
        let pool = BufferPool::new(8, 512);
        let path = temp_path("inj-torn");
        let injector = FaultPlan::new(9)
            .at(FaultPoint::ArchiveAppend, 30, FaultAction::Overflow)
            .build_shared();
        let appended = 300u64;
        let (live_len, live_stats) = {
            let mut a = StreamArchive::create(&path, schema(), pool.clone()).unwrap();
            a.attach_injector(injector.clone());
            for seq in 1..=appended as i64 {
                a.append(&tuple(seq)).unwrap();
            }
            a.flush().unwrap();
            (a.len(), a.stats())
        };
        assert_eq!(live_stats.appended, appended);
        assert_eq!(live_stats.torn_pages, 1);
        assert!(live_stats.lost_records > 0);
        assert_eq!(live_len, appended - live_stats.lost_records);
        assert_eq!(injector.log().len(), 1);

        let mut b = StreamArchive::open(&path, schema(), pool).unwrap();
        let rec = b.recovery().unwrap();
        assert_eq!(
            rec.records_recovered, live_len,
            "recovery agrees with the live archive's readable count"
        );
        let mut out = Vec::new();
        assert_eq!(
            b.scan_window(1, appended as i64, &mut out).unwrap() as u64,
            live_len
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn injected_append_error_is_soft() {
        let pool = BufferPool::new(8, 512);
        let path = temp_path("inj-err");
        let injector = FaultPlan::new(9)
            .at(
                FaultPoint::ArchiveAppend,
                5,
                FaultAction::Error("disk hiccup".into()),
            )
            .build_shared();
        let mut a = StreamArchive::create(&path, schema(), pool).unwrap();
        a.attach_injector(injector);
        let mut errors = 0;
        for seq in 1..=20 {
            if a.append(&tuple(seq)).is_err() {
                errors += 1;
            }
        }
        assert_eq!(errors, 1, "exactly the injected append fails");
        assert_eq!(a.len(), 19, "the failed tuple is not archived");
        let mut out = Vec::new();
        assert_eq!(a.scan_window(1, 20, &mut out).unwrap(), 19);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn compact_rewrites_recovered_segment_densely() {
        // Corrupt an interior page, recover around it, compact, and reopen:
        // the compacted segment is dense (no skipped pages, no slack bytes)
        // and scans agree before and after at every step.
        let pool = BufferPool::new(8, 512);
        let path = temp_path("compact");
        {
            let mut a = StreamArchive::create(&path, schema(), pool.clone()).unwrap();
            for seq in 1..=300 {
                a.append(&tuple(seq)).unwrap();
            }
            a.flush().unwrap();
        }
        {
            let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(512 + PAGE_HEADER as u64)).unwrap();
            f.write_all(&[0xFF; 32]).unwrap();
        }
        let mut b = StreamArchive::open(&path, schema(), pool.clone()).unwrap();
        let rec = b.recovery().unwrap();
        assert_eq!(rec.pages_skipped, 1);
        let mut before = Vec::new();
        b.scan_window(1, 300, &mut before).unwrap();
        assert_eq!(before.len() as u64, rec.records_recovered);

        let report = b.compact().unwrap();
        assert_eq!(report.pages_before, report.pages_after + 1);
        assert_eq!(report.bytes_reclaimed, 512);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            report.pages_after * 512,
            "file truncated to exactly the live pages"
        );
        let mut after = Vec::new();
        b.scan_window(1, 300, &mut after).unwrap();
        assert_eq!(before, after, "compaction preserves readable contents");
        // Appends keep working on the compacted segment.
        b.append(&tuple(1000)).unwrap();
        b.flush().unwrap();
        drop(b);

        let mut c = StreamArchive::open(&path, schema(), pool).unwrap();
        let rec2 = c.recovery().unwrap();
        assert_eq!(rec2.pages_skipped, 0, "reopened segment is hole-free");
        assert_eq!(rec2.truncated_bytes, 0);
        assert_eq!(rec2.records_recovered, rec.records_recovered + 1);
        let mut reopened = Vec::new();
        c.scan_window(1, 300, &mut reopened).unwrap();
        assert_eq!(before, reopened, "reopen-after-compact scan agrees");
        let mut late = Vec::new();
        assert_eq!(c.scan_window(1000, 1000, &mut late).unwrap(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn compact_on_dense_segment_is_a_noop() {
        let pool = BufferPool::new(8, 512);
        let path = temp_path("compact-noop");
        let mut a = StreamArchive::create(&path, schema(), pool).unwrap();
        for seq in 1..=200 {
            a.append(&tuple(seq)).unwrap();
        }
        let report = a.compact().unwrap();
        assert_eq!(report.pages_before, report.pages_after);
        assert_eq!(report.bytes_reclaimed, 0);
        let mut out = Vec::new();
        assert_eq!(a.scan_window(1, 200, &mut out).unwrap(), 200);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn crash_mid_compaction_yields_old_segment_intact() {
        // Satellite: an injected fault between the dense rewrite and the
        // atomic swap must leave the OLD segment fully readable — never a
        // mix — and reopen must discard the half-built `.tmp`.
        let pool = BufferPool::new(8, 512);
        let path = temp_path("compact-crash");
        {
            let mut a = StreamArchive::create(&path, schema(), pool.clone()).unwrap();
            for seq in 1..=300 {
                a.append(&tuple(seq)).unwrap();
            }
            a.flush().unwrap();
        }
        // Corrupt an interior page so compaction has real work to do.
        {
            let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(512 + PAGE_HEADER as u64)).unwrap();
            f.write_all(&[0xFF; 32]).unwrap();
        }
        let mut b = StreamArchive::open(&path, schema(), pool.clone()).unwrap();
        let recovered = b.recovery().unwrap().records_recovered;
        let sparse_len = std::fs::metadata(&path).unwrap().len();
        let mut before = Vec::new();
        b.scan_window(1, 300, &mut before).unwrap();

        let injector = FaultPlan::new(9)
            .at(
                FaultPoint::ArchiveAppend,
                1,
                FaultAction::Error("power cut".into()),
            )
            .build_shared();
        b.attach_injector(injector);
        assert!(b.compact().is_err(), "compaction dies before the swap");
        let tmp = compact_tmp_path(&path);
        assert!(tmp.exists(), "crash leaves the half-built rewrite behind");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            sparse_len,
            "old segment untouched"
        );
        // The live archive keeps serving the old segment.
        let mut still = Vec::new();
        b.scan_window(1, 300, &mut still).unwrap();
        assert_eq!(before, still);
        drop(b);

        // Reopen: the old segment, in full — and the stale tmp is gone.
        let mut c = StreamArchive::open(&path, schema(), pool.clone()).unwrap();
        assert!(!tmp.exists(), "stale .tmp discarded on open");
        assert_eq!(c.recovery().unwrap().records_recovered, recovered);
        let mut reopened = Vec::new();
        c.scan_window(1, 300, &mut reopened).unwrap();
        assert_eq!(before, reopened, "either old or new, never a mix");

        // A retry (no fault) completes and densifies.
        let report = c.compact().unwrap();
        assert_eq!(report.bytes_reclaimed, 512);
        assert!(!tmp.exists(), "successful compaction consumes the tmp");
        drop(c);
        let mut d = StreamArchive::open(&path, schema(), pool).unwrap();
        assert_eq!(d.recovery().unwrap().pages_skipped, 0);
        let mut dense = Vec::new();
        d.scan_window(1, 300, &mut dense).unwrap();
        assert_eq!(before, dense);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn open_on_missing_file_starts_empty() {
        let pool = BufferPool::new(4, 512);
        let path = temp_path("fresh-open");
        let mut a = StreamArchive::open(&path, schema(), pool).unwrap();
        assert!(a.is_empty());
        assert_eq!(a.recovery().unwrap(), RecoveryReport::default());
        a.append(&tuple(1)).unwrap();
        assert_eq!(a.len(), 1);
        std::fs::remove_file(path).ok();
    }
}
