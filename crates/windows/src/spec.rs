//! The for-loop window specification and its semantics.

use std::fmt;

use tcq_common::{Result, TcqError};

/// A linear expression over the loop variable `t` and the query start time
/// `ST`: `t_coeff·t + st_coeff·ST + constant`. This covers every window
/// expression in the paper's examples (`1`, `5`, `101`, `t`, `t - 4`,
/// `ST + 50`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinExpr {
    /// Coefficient of `t`.
    pub t_coeff: i64,
    /// Coefficient of `ST` (query start time).
    pub st_coeff: i64,
    /// Constant term.
    pub constant: i64,
}

impl LinExpr {
    /// The constant `c`.
    pub const fn constant(c: i64) -> Self {
        LinExpr {
            t_coeff: 0,
            st_coeff: 0,
            constant: c,
        }
    }

    /// The loop variable `t`.
    pub const fn t() -> Self {
        LinExpr {
            t_coeff: 1,
            st_coeff: 0,
            constant: 0,
        }
    }

    /// `t + off`.
    pub const fn t_plus(off: i64) -> Self {
        LinExpr {
            t_coeff: 1,
            st_coeff: 0,
            constant: off,
        }
    }

    /// The query start time `ST`.
    pub const fn st() -> Self {
        LinExpr {
            t_coeff: 0,
            st_coeff: 1,
            constant: 0,
        }
    }

    /// `ST + off`.
    pub const fn st_plus(off: i64) -> Self {
        LinExpr {
            t_coeff: 0,
            st_coeff: 1,
            constant: off,
        }
    }

    /// Evaluate at concrete `t` and `st`.
    pub fn eval(&self, t: i64, st: i64) -> i64 {
        self.t_coeff * t + self.st_coeff * st + self.constant
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        if self.t_coeff != 0 {
            if self.t_coeff == 1 {
                write!(f, "t")?;
            } else {
                write!(f, "{}*t", self.t_coeff)?;
            }
            wrote = true;
        }
        if self.st_coeff != 0 {
            if wrote {
                write!(f, " + ")?;
            }
            if self.st_coeff == 1 {
                write!(f, "ST")?;
            } else {
                write!(f, "{}*ST", self.st_coeff)?;
            }
            wrote = true;
        }
        if self.constant != 0 || !wrote {
            if wrote {
                if self.constant >= 0 {
                    write!(f, " + {}", self.constant)?;
                } else {
                    write!(f, " - {}", -self.constant)?;
                }
            } else {
                write!(f, "{}", self.constant)?;
            }
        }
        Ok(())
    }
}

/// The continue-condition operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondOp {
    /// `t == bound` (the paper's snapshot idiom `t == 0`).
    Eq,
    /// `t < bound`.
    Lt,
    /// `t <= bound`.
    Le,
    /// `t > bound` (backward-moving windows).
    Gt,
    /// `t >= bound`.
    Ge,
}

/// The loop's continue condition: `t <op> bound`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Condition {
    /// Operator.
    pub op: CondOp,
    /// Bound expression (may reference ST, not `t`).
    pub bound: LinExpr,
}

impl Condition {
    /// Check at concrete `t`, `st`.
    pub fn holds(&self, t: i64, st: i64) -> Result<bool> {
        if self.bound.t_coeff != 0 {
            return Err(TcqError::InvalidWindow(
                "continue condition bound must not reference t".into(),
            ));
        }
        let b = self.bound.eval(0, st);
        Ok(match self.op {
            CondOp::Eq => t == b,
            CondOp::Lt => t < b,
            CondOp::Le => t <= b,
            CondOp::Gt => t > b,
            CondOp::Ge => t >= b,
        })
    }
}

/// The loop's per-iteration change to `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// `t += k` (k may be negative: backward windows; the paper: "windows
    /// can also be defined to move … in the reverse-timestamp direction").
    Add(i64),
    /// `t = k` (the paper's snapshot idiom `t = -1`, which falsifies
    /// `t == 0` after the single iteration).
    Set(i64),
}

impl Step {
    /// Apply to `t`.
    pub fn apply(&self, t: i64) -> i64 {
        match self {
            Step::Add(k) => t + k,
            Step::Set(k) => *k,
        }
    }
}

/// One `WindowIs(stream, left, right)` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowIs {
    /// The stream (or alias) this window applies to.
    pub stream: String,
    /// Left end, inclusive.
    pub left: LinExpr,
    /// Right end, inclusive.
    pub right: LinExpr,
}

impl WindowIs {
    /// Construct.
    pub fn new(stream: impl Into<String>, left: LinExpr, right: LinExpr) -> Self {
        WindowIs {
            stream: stream.into(),
            left,
            right,
        }
    }
}

/// The for-loop: one per "group of streams that exhibit the same window
/// transition behavior" (§4.1.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForLoop {
    /// Initial value of `t` (may reference ST).
    pub init: LinExpr,
    /// Continue condition.
    pub cond: Condition,
    /// Per-iteration change.
    pub step: Step,
    /// One WindowIs per stream in the group.
    pub windows: Vec<WindowIs>,
}

/// One stream's concrete window at one loop iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowInstance {
    /// Left end (inclusive).
    pub left: i64,
    /// Right end (inclusive).
    pub right: i64,
}

impl WindowInstance {
    /// Does the window contain logical time `seq`?
    pub fn contains(&self, seq: i64) -> bool {
        self.left <= seq && seq <= self.right
    }

    /// Window width in logical time units (0 for an empty window).
    pub fn width(&self) -> i64 {
        (self.right - self.left + 1).max(0)
    }
}

/// All streams' windows at one loop iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowAssignment {
    /// The loop variable's value.
    pub t: i64,
    /// Per-stream windows, parallel to [`ForLoop::windows`].
    pub windows: Vec<(String, WindowInstance)>,
}

impl WindowAssignment {
    /// The window for a given stream.
    pub fn window_for(&self, stream: &str) -> Option<WindowInstance> {
        self.windows
            .iter()
            .find(|(s, _)| s.eq_ignore_ascii_case(stream))
            .map(|(_, w)| *w)
    }

    /// The largest right end across streams — the stream time at which this
    /// iteration's answer can be finalized.
    pub fn close_time(&self) -> i64 {
        self.windows
            .iter()
            .map(|(_, w)| w.right)
            .max()
            .unwrap_or(i64::MIN)
    }
}

/// Iterator over a for-loop's concrete window assignments.
pub struct WindowSeq {
    spec: ForLoop,
    st: i64,
    t: i64,
    done: bool,
    iterations: u64,
    /// Safety valve for run-away specs in tests/analysis; `None` for
    /// continuous queries which are legitimately infinite.
    max_iterations: Option<u64>,
}

impl WindowSeq {
    /// Instantiate a loop at query start time `st`.
    pub fn new(spec: ForLoop, st: i64) -> Self {
        let t = spec.init.eval(0, st);
        WindowSeq {
            spec,
            st,
            t,
            done: false,
            iterations: 0,
            max_iterations: None,
        }
    }

    /// Bound the number of iterations (for analysis of infinite specs).
    pub fn with_max_iterations(mut self, max: u64) -> Self {
        self.max_iterations = Some(max);
        self
    }

    /// Classify this loop's first WindowIs (see [`classify`]).
    pub fn kind(&self) -> Result<WindowKind> {
        classify(&self.spec)
    }

    /// The iterator's current position — everything a checkpoint needs to
    /// resume this loop later with [`WindowSeq::seek`].
    pub fn position(&self) -> WindowSeqPos {
        WindowSeqPos {
            t: self.t,
            iterations: self.iterations,
            done: self.done,
        }
    }

    /// The query start time `ST` this loop was anchored at. Window bounds
    /// are linear in `(t, ST)`, so a checkpoint must persist `ST` next to
    /// the [`WindowSeqPos`] for [`WindowSeq::seek`] to be exact.
    pub fn start_time(&self) -> i64 {
        self.st
    }

    /// Re-anchor the loop at a restored query start time (always paired
    /// with [`WindowSeq::seek`] when resuming from a checkpoint).
    pub fn set_start_time(&mut self, st: i64) {
        self.st = st;
    }

    /// Jump to a previously captured position. The spec and `st` must be
    /// the ones this position was captured from (a checkpoint restores
    /// both); the sequence then continues exactly where it left off.
    pub fn seek(&mut self, pos: WindowSeqPos) {
        self.t = pos.t;
        self.iterations = pos.iterations;
        self.done = pos.done;
    }

    /// Advance past `n` window assignments without keeping them, e.g. to
    /// skip windows already finalized before a crash. Returns how many
    /// assignments were actually consumed (fewer when the loop ends
    /// first); errors surface as in iteration.
    pub fn fast_forward(&mut self, n: u64) -> Result<u64> {
        let mut consumed = 0;
        while consumed < n {
            match self.next() {
                Some(Ok(_)) => consumed += 1,
                Some(Err(e)) => return Err(e),
                None => break,
            }
        }
        Ok(consumed)
    }
}

/// A resumable [`WindowSeq`] position (see [`WindowSeq::position`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSeqPos {
    /// The loop variable's next value.
    pub t: i64,
    /// Assignments already produced.
    pub iterations: u64,
    /// Whether the loop had terminated.
    pub done: bool,
}

impl Iterator for WindowSeq {
    type Item = Result<WindowAssignment>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if let Some(max) = self.max_iterations {
            if self.iterations >= max {
                self.done = true;
                return None;
            }
        }
        match self.spec.cond.holds(self.t, self.st) {
            Err(e) => {
                self.done = true;
                return Some(Err(e));
            }
            Ok(false) => {
                self.done = true;
                return None;
            }
            Ok(true) => {}
        }
        let mut windows = Vec::with_capacity(self.spec.windows.len());
        for w in &self.spec.windows {
            let left = w.left.eval(self.t, self.st);
            let right = w.right.eval(self.t, self.st);
            if left > right {
                self.done = true;
                return Some(Err(TcqError::InvalidWindow(format!(
                    "window [{left}, {right}] on {} has left > right at t={}",
                    w.stream, self.t
                ))));
            }
            windows.push((w.stream.clone(), WindowInstance { left, right }));
        }
        let t = self.t;
        self.t = self.spec.step.apply(self.t);
        self.iterations += 1;
        // A Set step that leaves t unchanged would loop forever on the same
        // assignment; treat the iteration after a no-op Set as terminal.
        if let Step::Set(k) = self.spec.step {
            if k == t {
                self.done = true;
            }
        }
        Some(Ok(WindowAssignment { t, windows }))
    }
}

/// The §4.1 window taxonomy, derived from the spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// Executes exactly once over one window.
    Snapshot,
    /// Fixed left end, right end moves forward.
    Landmark,
    /// Both ends move forward. `hop` = distance between consecutive
    /// windows, `width` = window size; `hop > width` means "some portions
    /// of the stream are never involved in the processing of the query"
    /// (§4.1.2).
    Sliding {
        /// Distance between consecutive windows.
        hop: i64,
        /// Window width.
        width: i64,
    },
    /// Both ends move backward over history.
    Backward,
    /// Degenerate: a fixed window repeated (e.g. zero step).
    Fixed,
}

impl WindowKind {
    /// Whether per-window memory is bounded by the spec alone ("if [logical
    /// timestamps are] used, then the memory requirements of a window can
    /// be known a priori", §4.1.2).
    pub fn bounded_memory(&self) -> bool {
        !matches!(self, WindowKind::Landmark)
    }

    /// Hop size exceeding width ⇒ stream segments skipped (§4.1.2).
    pub fn skips_data(&self) -> bool {
        matches!(self, WindowKind::Sliding { hop, width } if hop > width)
    }
}

/// Classify a for-loop's first WindowIs.
pub fn classify(spec: &ForLoop) -> Result<WindowKind> {
    let w = spec
        .windows
        .first()
        .ok_or_else(|| TcqError::InvalidWindow("for-loop with no WindowIs".into()))?;
    // Snapshot idioms: an Eq condition (true for exactly one t) or a Set
    // step (which either terminates after one iteration or degenerates).
    if spec.cond.op == CondOp::Eq {
        return Ok(WindowKind::Snapshot);
    }
    let step = match spec.step {
        Step::Add(k) => k,
        Step::Set(_) => return Ok(WindowKind::Snapshot),
    };
    if step == 0 {
        return Ok(WindowKind::Fixed);
    }
    let left_rate = w.left.t_coeff * step;
    let right_rate = w.right.t_coeff * step;
    Ok(match (left_rate, right_rate) {
        (0, 0) => WindowKind::Fixed,
        (0, r) if r > 0 => WindowKind::Landmark,
        (l, r) if l > 0 && r > 0 => {
            // width from the expressions at the same t (t-independent when
            // both coefficients are equal; otherwise report the initial).
            let t0 = spec.init.eval(0, 0);
            let width = w.right.eval(t0, 0) - w.left.eval(t0, 0) + 1;
            WindowKind::Sliding { hop: right_rate, width }
        }
        (l, r) if l < 0 && r < 0 => WindowKind::Backward,
        _ => {
            return Err(TcqError::InvalidWindow(format!(
                "window ends move in opposite directions (left rate {left_rate}, right rate {right_rate})"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §4.1.1 example 1 — snapshot: first five trading days.
    fn snapshot_spec() -> ForLoop {
        ForLoop {
            init: LinExpr::constant(0),
            cond: Condition {
                op: CondOp::Eq,
                bound: LinExpr::constant(0),
            },
            step: Step::Set(-1),
            windows: vec![WindowIs::new(
                "ClosingStockPrices",
                LinExpr::constant(1),
                LinExpr::constant(5),
            )],
        }
    }

    /// §4.1.1 example 2 — landmark: [101, t] for t in 101..=1000.
    fn landmark_spec() -> ForLoop {
        ForLoop {
            init: LinExpr::constant(101),
            cond: Condition {
                op: CondOp::Le,
                bound: LinExpr::constant(1000),
            },
            step: Step::Add(1),
            windows: vec![WindowIs::new(
                "ClosingStockPrices",
                LinExpr::constant(101),
                LinExpr::t(),
            )],
        }
    }

    /// §4.1.1 example 3 — sliding: [t-4, t], t from ST by 5, for 50 days.
    fn sliding_spec() -> ForLoop {
        ForLoop {
            init: LinExpr::st(),
            cond: Condition {
                op: CondOp::Lt,
                bound: LinExpr::st_plus(50),
            },
            step: Step::Add(5),
            windows: vec![WindowIs::new(
                "ClosingStockPrices",
                LinExpr::t_plus(-4),
                LinExpr::t(),
            )],
        }
    }

    /// §4.1.1 example 4 — band join: both aliases share [t-4, t].
    fn band_spec() -> ForLoop {
        ForLoop {
            init: LinExpr::st(),
            cond: Condition {
                op: CondOp::Lt,
                bound: LinExpr::st_plus(20),
            },
            step: Step::Add(1),
            windows: vec![
                WindowIs::new("c1", LinExpr::t_plus(-4), LinExpr::t()),
                WindowIs::new("c2", LinExpr::t_plus(-4), LinExpr::t()),
            ],
        }
    }

    #[test]
    fn snapshot_runs_exactly_once() {
        let seq: Vec<_> = WindowSeq::new(snapshot_spec(), 7)
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(seq.len(), 1);
        assert_eq!(
            seq[0].window_for("closingstockprices").unwrap(),
            WindowInstance { left: 1, right: 5 }
        );
        assert_eq!(classify(&snapshot_spec()).unwrap(), WindowKind::Snapshot);
    }

    #[test]
    fn landmark_grows_from_fixed_left() {
        let seq: Vec<_> = WindowSeq::new(landmark_spec(), 0)
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(seq.len(), 900);
        assert_eq!(
            seq[0].windows[0].1,
            WindowInstance {
                left: 101,
                right: 101
            }
        );
        assert_eq!(
            seq.last().unwrap().windows[0].1,
            WindowInstance {
                left: 101,
                right: 1000
            }
        );
        let kind = classify(&landmark_spec()).unwrap();
        assert_eq!(kind, WindowKind::Landmark);
        assert!(!kind.bounded_memory());
    }

    #[test]
    fn sliding_hops_by_five() {
        let st = 100;
        let seq: Vec<_> = WindowSeq::new(sliding_spec(), st)
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(seq.len(), 10);
        assert_eq!(
            seq[0].windows[0].1,
            WindowInstance {
                left: 96,
                right: 100
            }
        );
        assert_eq!(
            seq[1].windows[0].1,
            WindowInstance {
                left: 101,
                right: 105
            }
        );
        let kind = classify(&sliding_spec()).unwrap();
        assert_eq!(kind, WindowKind::Sliding { hop: 5, width: 5 });
        assert!(!kind.skips_data(), "hop == width covers the stream exactly");
        assert!(kind.bounded_memory());
    }

    #[test]
    fn hop_exceeding_width_skips_data() {
        let mut spec = sliding_spec();
        spec.step = Step::Add(10);
        assert!(classify(&spec).unwrap().skips_data());
    }

    #[test]
    fn band_join_windows_move_in_unison() {
        let seq: Vec<_> = WindowSeq::new(band_spec(), 50)
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(seq.len(), 20);
        for wa in &seq {
            assert_eq!(wa.window_for("c1"), wa.window_for("c2"));
            assert_eq!(wa.close_time(), wa.t);
        }
    }

    #[test]
    fn backward_windows() {
        // "windows that move backwards starting from the present time"
        let spec = ForLoop {
            init: LinExpr::st(),
            cond: Condition {
                op: CondOp::Gt,
                bound: LinExpr::constant(0),
            },
            step: Step::Add(-10),
            windows: vec![WindowIs::new("s", LinExpr::t_plus(-9), LinExpr::t())],
        };
        assert_eq!(classify(&spec).unwrap(), WindowKind::Backward);
        let seq: Vec<_> = WindowSeq::new(spec, 30)
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(seq.len(), 3);
        assert_eq!(
            seq[0].windows[0].1,
            WindowInstance {
                left: 21,
                right: 30
            }
        );
        assert_eq!(seq[2].windows[0].1, WindowInstance { left: 1, right: 10 });
    }

    #[test]
    fn invalid_window_left_after_right() {
        let spec = ForLoop {
            init: LinExpr::constant(0),
            cond: Condition {
                op: CondOp::Le,
                bound: LinExpr::constant(5),
            },
            step: Step::Add(1),
            windows: vec![WindowIs::new("s", LinExpr::constant(10), LinExpr::t())],
        };
        let mut seq = WindowSeq::new(spec, 0);
        assert!(seq.next().unwrap().is_err());
        assert!(seq.next().is_none(), "iterator fuses after error");
    }

    #[test]
    fn condition_referencing_t_in_bound_rejected() {
        let spec = ForLoop {
            init: LinExpr::constant(0),
            cond: Condition {
                op: CondOp::Lt,
                bound: LinExpr::t(),
            },
            step: Step::Add(1),
            windows: vec![WindowIs::new("s", LinExpr::t(), LinExpr::t())],
        };
        assert!(WindowSeq::new(spec, 0).next().unwrap().is_err());
    }

    #[test]
    fn max_iterations_bounds_infinite_specs() {
        // An unbounded continuous query: t >= 0 forever.
        let spec = ForLoop {
            init: LinExpr::constant(0),
            cond: Condition {
                op: CondOp::Ge,
                bound: LinExpr::constant(0),
            },
            step: Step::Add(1),
            windows: vec![WindowIs::new("s", LinExpr::t(), LinExpr::t())],
        };
        let n = WindowSeq::new(spec, 0).with_max_iterations(100).count();
        assert_eq!(n, 100);
    }

    #[test]
    fn position_seek_and_fast_forward_resume_exactly() {
        // Emit 4 windows, checkpoint the position, emit the rest; a fresh
        // iterator seeked to the checkpoint must produce the same tail.
        let st = 100;
        let mut live = WindowSeq::new(sliding_spec(), st);
        for _ in 0..4 {
            live.next().unwrap().unwrap();
        }
        let pos = live.position();
        let tail: Vec<_> = live.collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(tail.len(), 6);

        let mut restored = WindowSeq::new(sliding_spec(), st);
        restored.seek(pos);
        let resumed: Vec<_> = restored.collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(resumed, tail);

        // fast_forward is equivalent to discarding that many assignments,
        // and reports early loop termination instead of over-consuming.
        let mut ff = WindowSeq::new(sliding_spec(), st);
        assert_eq!(ff.fast_forward(4).unwrap(), 4);
        assert_eq!(ff.position(), pos);
        assert_eq!(ff.fast_forward(100).unwrap(), 6, "loop ends after 10");
        assert!(ff.position().done);
        assert_eq!(ff.fast_forward(1).unwrap(), 0);
    }

    #[test]
    fn window_instance_queries() {
        let w = WindowInstance { left: 3, right: 7 };
        assert!(w.contains(3) && w.contains(7) && !w.contains(8));
        assert_eq!(w.width(), 5);
    }

    #[test]
    fn linexpr_display() {
        assert_eq!(LinExpr::t_plus(-4).to_string(), "t - 4");
        assert_eq!(LinExpr::st_plus(50).to_string(), "ST + 50");
        assert_eq!(LinExpr::constant(0).to_string(), "0");
        assert_eq!(LinExpr::constant(101).to_string(), "101");
    }

    #[test]
    fn opposite_direction_windows_rejected() {
        let spec = ForLoop {
            init: LinExpr::constant(0),
            cond: Condition {
                op: CondOp::Le,
                bound: LinExpr::constant(5),
            },
            step: Step::Add(1),
            windows: vec![WindowIs::new(
                "s",
                LinExpr {
                    t_coeff: -1,
                    st_coeff: 0,
                    constant: 0,
                },
                LinExpr::t(),
            )],
        };
        assert!(classify(&spec).is_err());
    }
}
