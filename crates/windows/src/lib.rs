//! TelegraphCQ window semantics (§4.1).
//!
//! > "We support much more general windows than the landmark and sliding
//! > windows described above. This is done using a for-loop construct to
//! > declare the sequence of windows over which the user desires the
//! > answers to the query: a variable `t` moves over the timeline as the
//! > for-loop iterates, and the left and right ends (inclusive) of each
//! > window in the sequence, and the stopping condition for the query can
//! > be defined with respect to this variable `t`."
//!
//! ```text
//! for(t = initial_value; continue_condition(t); change(t)) {
//!     WindowIs(Stream A, left_end(t), right_end(t));
//!     WindowIs(Stream B, left_end(t), right_end(t));
//! }
//! ```
//!
//! This crate is the executable form of that construct:
//!
//! * [`LinExpr`] — the linear expressions in `t` and the query start time
//!   `ST` that the paper's examples use for window ends and bounds.
//! * [`ForLoop`] / [`WindowIs`] — the loop itself.
//! * [`WindowSeq`] — iterate the concrete window assignments.
//! * [`WindowKind`] / classification — snapshot / landmark / sliding /
//!   hopping / backward, with the §4.1.2 consequences (memory bounds,
//!   skipped stream segments) computable from the spec.
//!
//! # Example: the paper's sliding-window loop
//!
//! ```
//! use tcq_windows::{classify, CondOp, Condition, ForLoop, LinExpr, Step, WindowIs, WindowKind, WindowSeq};
//!
//! // for (t = ST; t < ST + 50; t += 5) { WindowIs(S, t - 4, t); }
//! let spec = ForLoop {
//!     init: LinExpr::st(),
//!     cond: Condition { op: CondOp::Lt, bound: LinExpr::st_plus(50) },
//!     step: Step::Add(5),
//!     windows: vec![WindowIs::new("S", LinExpr::t_plus(-4), LinExpr::t())],
//! };
//! assert_eq!(classify(&spec).unwrap(), WindowKind::Sliding { hop: 5, width: 5 });
//!
//! let assignments: Vec<_> = WindowSeq::new(spec, 100)
//!     .collect::<tcq_common::Result<Vec<_>>>()
//!     .unwrap();
//! assert_eq!(assignments.len(), 10);
//! assert_eq!(assignments[0].window_for("S").unwrap().left, 96);
//! assert_eq!(assignments[0].window_for("S").unwrap().right, 100);
//! ```

#![warn(missing_docs)]

pub mod spec;

pub use spec::{
    classify, CondOp, Condition, ForLoop, LinExpr, Step, WindowAssignment, WindowInstance,
    WindowIs, WindowKind, WindowSeq, WindowSeqPos,
};
