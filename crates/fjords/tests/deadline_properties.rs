//! Property tests for the deadline-bounded blocking endpoints
//! [`Producer::enqueue_blocking_deadline`] and
//! [`Consumer::dequeue_blocking_deadline`], checked against the
//! non-blocking variants they must mirror. Invariants:
//!
//! 1. With a zero deadline the deadline ops are observationally identical
//!    to `enqueue`/`dequeue`: same FIFO order, same `Full`/`Empty`
//!    outcomes, same `enqueued`/`dequeued`/`full_rejections` accounting.
//! 2. A timeout surfaces as back-pressure (`EnqueueError::Full` with the
//!    message returned, one `full_rejections` tick) or as
//!    `DequeueResult::Empty` — never as an error or a lost message.
//! 3. Disconnection wins over the deadline: a dead consumer side reports
//!    `Disconnected` immediately; a dead producer side still drains the
//!    buffered suffix in order before reporting `Disconnected`.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use tcq_common::rng::seeded;
use tcq_common::{DataType, Field, Schema, SchemaRef, Timestamp, TupleBuilder};
use tcq_fjords::{fjord, DequeueResult, EnqueueError, FjordMessage, QueueKind};

fn schema() -> SchemaRef {
    Schema::new(vec![Field::new("id", DataType::Int)]).into_ref()
}

/// Message `id` encodes global production order; punctuations reuse the
/// id as their timestamp so order is observable for every variant.
fn msg(schema: &SchemaRef, id: i64, kind: u64) -> FjordMessage {
    match kind {
        0..=7 => FjordMessage::Tuple(
            TupleBuilder::new(schema.clone())
                .push(id)
                .at(Timestamp::logical(id))
                .build()
                .unwrap(),
        ),
        _ => FjordMessage::Punct(Timestamp::logical(id)),
    }
}

fn id_of(m: &FjordMessage) -> i64 {
    match m {
        FjordMessage::Tuple(t) => t.value(0).as_int().unwrap(),
        FjordMessage::Punct(ts) => ts.seq(),
        FjordMessage::Eof => -1,
    }
}

/// Seeded interleavings of the deadline ops (zero deadline, so they can
/// never block) against the plain non-blocking ops, with a shared
/// reference model. Both families must agree on order, outcomes, and
/// counters — including the `full_rejections` tick a timed-out enqueue
/// shares with a rejected non-blocking enqueue.
fn run_interleaving(seed: u64, capacity: usize, ops: usize) {
    let s = schema();
    let mut rng = seeded(seed);
    let (p, c) = fjord(capacity, QueueKind::Push);

    let mut model: VecDeque<FjordMessage> = VecDeque::new();
    let mut consumed: Vec<FjordMessage> = Vec::new();
    let mut next_id: i64 = 0;
    let (mut enq, mut deq, mut rej): (u64, u64, u64) = (0, 0, 0);

    for _ in 0..ops {
        match rng.gen_range(0..4u32) {
            // Non-blocking enqueue (reference behaviour).
            0 => {
                let m = msg(&s, next_id, rng.next_u64() % 10);
                match p.enqueue(m.clone()) {
                    Ok(()) => {
                        assert!(model.len() < capacity, "accepted into a full queue");
                        model.push_back(m);
                        next_id += 1;
                        enq += 1;
                    }
                    Err(_) => {
                        assert_eq!(model.len(), capacity, "spurious Full");
                        rej += 1;
                    }
                }
            }
            // Deadline enqueue with a zero deadline: must behave exactly
            // like the non-blocking enqueue, message handed back on Full.
            1 => {
                let m = msg(&s, next_id, rng.next_u64() % 10);
                match p.enqueue_blocking_deadline(m.clone(), Duration::ZERO) {
                    Ok(()) => {
                        assert!(model.len() < capacity, "accepted into a full queue");
                        model.push_back(m);
                        next_id += 1;
                        enq += 1;
                    }
                    Err(EnqueueError::Full(back)) => {
                        assert_eq!(model.len(), capacity, "spurious timeout-Full");
                        assert_eq!(back, m, "rejected message came back altered");
                        rej += 1;
                    }
                    Err(EnqueueError::Disconnected(_)) => unreachable!("consumer alive"),
                }
            }
            // Non-blocking dequeue (reference behaviour).
            2 => match c.dequeue() {
                DequeueResult::Msg(m) => {
                    assert_eq!(Some(&m), model.front(), "FIFO violated");
                    model.pop_front();
                    consumed.push(m);
                    deq += 1;
                }
                DequeueResult::Empty => assert!(model.is_empty()),
                DequeueResult::Disconnected => unreachable!("producer alive"),
            },
            // Deadline dequeue with a zero deadline: identical outcomes.
            _ => match c.dequeue_blocking_deadline(Duration::ZERO) {
                DequeueResult::Msg(m) => {
                    assert_eq!(Some(&m), model.front(), "FIFO violated by deadline op");
                    model.pop_front();
                    consumed.push(m);
                    deq += 1;
                }
                DequeueResult::Empty => assert!(model.is_empty(), "spurious timeout-Empty"),
                DequeueResult::Disconnected => unreachable!("producer alive"),
            },
        }
        let stats = c.stats();
        assert!(stats.len <= capacity, "capacity exceeded");
        assert_eq!(stats.len, model.len(), "length diverged from model");
        assert_eq!(stats.enqueued, enq, "enqueued counter diverged");
        assert_eq!(stats.dequeued, deq, "dequeued counter diverged");
        assert_eq!(stats.full_rejections, rej, "full_rejections diverged");
    }

    let ids: Vec<i64> = consumed.iter().map(id_of).collect();
    assert!(
        ids.windows(2).all(|w| w[0] < w[1]),
        "seed {seed}: consumed ids out of order: {ids:?}"
    );
}

#[test]
fn seeded_deadline_interleavings_match_nonblocking_model() {
    for seed in 0..12u64 {
        for &capacity in &[1usize, 2, 3, 7, 16] {
            run_interleaving(0xDEAD_0000 + seed * 31 + capacity as u64, capacity, 2_000);
        }
    }
}

/// A timed-out enqueue is back-pressure, not an error: the caller gets
/// the exact message back as `Full` after waiting at least the deadline,
/// one `full_rejections` tick is recorded, and the queue is untouched —
/// a later retry with room succeeds.
#[test]
fn enqueue_deadline_timeout_is_full_with_message_returned() {
    let s = schema();
    let (p, c) = fjord(2, QueueKind::Push);
    p.enqueue(msg(&s, 0, 0)).unwrap();
    p.enqueue(msg(&s, 1, 0)).unwrap();

    let m = msg(&s, 2, 0);
    let deadline = Duration::from_millis(30);
    let start = Instant::now();
    match p.enqueue_blocking_deadline(m.clone(), deadline) {
        Err(EnqueueError::Full(back)) => assert_eq!(back, m, "message altered on timeout"),
        other => panic!("expected timeout-Full, got {other:?}"),
    }
    assert!(start.elapsed() >= deadline, "gave up before the deadline");
    let stats = c.stats();
    assert_eq!(
        stats.full_rejections, 1,
        "timeout must tick full_rejections"
    );
    assert_eq!(stats.len, 2, "queue contents disturbed by timeout");

    // Free a slot; the retry lands and FIFO order holds.
    assert_eq!(id_of(&c.dequeue_blocking().unwrap()), 0);
    p.enqueue_blocking_deadline(m, Duration::from_secs(5))
        .unwrap();
    assert_eq!(id_of(&c.dequeue_blocking().unwrap()), 1);
    assert_eq!(id_of(&c.dequeue_blocking().unwrap()), 2);
}

/// A timed-out dequeue is `Empty` — the same answer the non-blocking
/// `dequeue` gives — after waiting at least the deadline, with no
/// counter movement.
#[test]
fn dequeue_deadline_timeout_is_empty() {
    let s = schema();
    let (p, c) = fjord(4, QueueKind::Push);
    let deadline = Duration::from_millis(30);
    let start = Instant::now();
    assert_eq!(c.dequeue_blocking_deadline(deadline), DequeueResult::Empty);
    assert!(start.elapsed() >= deadline, "gave up before the deadline");
    assert_eq!(c.stats().dequeued, 0);

    // A message arriving later is still observed normally.
    p.enqueue(msg(&s, 7, 0)).unwrap();
    match c.dequeue_blocking_deadline(Duration::from_secs(5)) {
        DequeueResult::Msg(m) => assert_eq!(id_of(&m), 7),
        other => panic!("expected message, got {other:?}"),
    }
}

/// Disconnection beats the deadline on the producer side: once every
/// consumer is gone, the enqueue reports `Disconnected` (with the
/// message handed back for spilling) without waiting out the deadline.
#[test]
fn enqueue_deadline_reports_disconnect_immediately() {
    let s = schema();
    let (p, c) = fjord(1, QueueKind::Push);
    p.enqueue(msg(&s, 0, 0)).unwrap(); // full, so a wait would be needed
    drop(c);
    let m = msg(&s, 1, 0);
    let start = Instant::now();
    match p.enqueue_blocking_deadline(m.clone(), Duration::from_secs(30)) {
        Err(EnqueueError::Disconnected(back)) => assert_eq!(back, m),
        other => panic!("expected Disconnected, got {other:?}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "blocked on a dead consumer side"
    );
}

/// Disconnection on the consumer side still drains the buffered suffix
/// in FIFO order first — `Disconnected` only once the queue is truly
/// empty, even with a zero deadline.
#[test]
fn dequeue_deadline_drains_before_reporting_disconnect() {
    let s = schema();
    let (p, c) = fjord(8, QueueKind::Push);
    for id in 0..5 {
        p.enqueue(msg(&s, id, if id == 4 { 8 } else { 0 })).unwrap();
    }
    drop(p);
    for id in 0..5 {
        match c.dequeue_blocking_deadline(Duration::ZERO) {
            DequeueResult::Msg(m) => assert_eq!(id_of(&m), id, "drain out of order"),
            other => panic!("expected buffered message {id}, got {other:?}"),
        }
    }
    assert_eq!(
        c.dequeue_blocking_deadline(Duration::from_secs(30)),
        DequeueResult::Disconnected,
        "empty queue with no producers must not wait out the deadline"
    );
}

/// Cross-thread: a producer retrying on timeout-Full and a consumer
/// retrying on timeout-Empty — both with short deadlines on a tiny
/// queue — still deliver everything exactly once and in order, and the
/// counters balance (`enqueued == dequeued == N`, every timeout
/// accounted as a rejection).
#[test]
fn threaded_deadline_retries_are_exact_and_ordered() {
    const N: i64 = 2_000;
    let s = schema();
    let (p, c) = fjord(4, QueueKind::Pull);
    let producer = std::thread::spawn(move || {
        let mut rejections = 0u64;
        for id in 0..N {
            let mut m = if id % 100 == 99 {
                FjordMessage::Punct(Timestamp::logical(id))
            } else {
                msg(&s, id, 0)
            };
            loop {
                match p.enqueue_blocking_deadline(m, Duration::from_millis(1)) {
                    Ok(()) => break,
                    Err(EnqueueError::Full(back)) => {
                        rejections += 1;
                        m = back;
                    }
                    Err(EnqueueError::Disconnected(_)) => panic!("consumer vanished"),
                }
            }
        }
        rejections
    });
    let mut ids = Vec::new();
    loop {
        match c.dequeue_blocking_deadline(Duration::from_millis(1)) {
            DequeueResult::Msg(m) => ids.push(id_of(&m)),
            DequeueResult::Empty => continue,
            DequeueResult::Disconnected => break,
        }
    }
    let rejections = producer.join().unwrap();
    assert_eq!(ids, (0..N).collect::<Vec<_>>(), "exactly once, in order");
    let stats = c.stats();
    assert_eq!(stats.enqueued, N as u64);
    assert_eq!(stats.dequeued, N as u64);
    assert_eq!(
        stats.full_rejections, rejections,
        "every timeout must tick full_rejections exactly once"
    );
}
