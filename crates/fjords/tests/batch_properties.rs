//! Property tests for the batched Fjord endpoints: seeded-RNG
//! interleavings of `enqueue_batch`/`dequeue_batch` with the per-message
//! operations, checked against a reference model. Invariants:
//!
//! 1. FIFO order — the dequeued sequence equals the model's sequence, so
//!    `Punct`/`Eof` can never be reordered past data tuples.
//! 2. Capacity is never exceeded.
//! 3. Exact counter accounting for `enqueued`, `dequeued`, and
//!    `displaced`.

use std::collections::VecDeque;

use tcq_common::rng::seeded;
use tcq_common::{DataType, Field, Schema, SchemaRef, Timestamp, TupleBuilder};
use tcq_fjords::{fjord, BatchDequeueResult, DequeueResult, FjordMessage, QueueKind};

fn schema() -> SchemaRef {
    Schema::new(vec![Field::new("id", DataType::Int)]).into_ref()
}

/// Message `id` encodes global production order; punctuations reuse the
/// id as their timestamp so order is observable for every variant.
fn msg(schema: &SchemaRef, id: i64, kind: u64) -> FjordMessage {
    match kind {
        0..=7 => FjordMessage::Tuple(
            TupleBuilder::new(schema.clone())
                .push(id)
                .at(Timestamp::logical(id))
                .build()
                .unwrap(),
        ),
        8 => FjordMessage::Punct(Timestamp::logical(id)),
        _ => FjordMessage::Eof,
    }
}

/// The production id a message carries, for order checking.
fn id_of(m: &FjordMessage) -> i64 {
    match m {
        FjordMessage::Tuple(t) => t.value(0).as_int().unwrap(),
        FjordMessage::Punct(ts) => ts.seq(),
        FjordMessage::Eof => -1,
    }
}

fn run_interleaving(seed: u64, capacity: usize, ops: usize) {
    let s = schema();
    let mut rng = seeded(seed);
    let (p, c) = fjord(capacity, QueueKind::Push);

    // Reference model of the buffered queue, plus the full sequence of
    // messages the consumer should observe, in order.
    let mut model: VecDeque<FjordMessage> = VecDeque::new();
    let mut consumed: Vec<FjordMessage> = Vec::new();
    let mut next_id: i64 = 0;
    let (mut enq, mut deq, mut disp): (u64, u64, u64) = (0, 0, 0);

    for _ in 0..ops {
        match rng.gen_range(0..5u32) {
            // Per-message enqueue.
            0 => {
                let m = msg(&s, next_id, rng.next_u64() % 10);
                match p.enqueue(m.clone()) {
                    Ok(()) => {
                        assert!(model.len() < capacity, "accepted into a full queue");
                        model.push_back(m);
                        next_id += 1;
                        enq += 1;
                    }
                    Err(_) => assert_eq!(model.len(), capacity, "spurious Full"),
                }
            }
            // Batch enqueue of a random run of messages.
            1 => {
                let n = rng.gen_range(0..9usize);
                let mut batch: Vec<FjordMessage> = (0..n)
                    .map(|i| msg(&s, next_id + i as i64, rng.next_u64() % 10))
                    .collect();
                let before = batch.clone();
                let accepted = p.enqueue_batch(&mut batch).unwrap();
                assert_eq!(accepted, n.min(capacity - model.len()), "prefix size");
                assert_eq!(batch.len(), n - accepted, "refused suffix stays");
                assert_eq!(&batch[..], &before[accepted..], "suffix order intact");
                model.extend(before.into_iter().take(accepted));
                next_id += accepted as i64;
                enq += accepted as u64;
            }
            // Displacing enqueue (sheds the oldest buffered tuple when full).
            2 => {
                let m = msg(&s, next_id, rng.next_u64() % 10);
                match p.enqueue_displacing(m.clone()) {
                    Ok(None) => {
                        model.push_back(m);
                        next_id += 1;
                        enq += 1;
                    }
                    Ok(Some(old)) => {
                        let idx = model
                            .iter()
                            .position(|x| matches!(x, FjordMessage::Tuple(_)))
                            .expect("displaced from a control-only queue");
                        assert_eq!(model.remove(idx).unwrap(), old, "displaced oldest tuple");
                        model.push_back(m);
                        next_id += 1;
                        enq += 1;
                        disp += 1;
                    }
                    Err(_) => {
                        assert!(
                            model.iter().all(|x| !matches!(x, FjordMessage::Tuple(_))),
                            "Full despite a displaceable tuple"
                        );
                    }
                }
            }
            // Per-message dequeue.
            3 => match c.dequeue() {
                DequeueResult::Msg(m) => {
                    assert_eq!(Some(&m), model.front(), "FIFO violated");
                    model.pop_front();
                    consumed.push(m);
                    deq += 1;
                }
                DequeueResult::Empty => assert!(model.is_empty()),
                DequeueResult::Disconnected => unreachable!("producer alive"),
            },
            // Batch dequeue.
            _ => {
                let max = rng.gen_range(1..9usize);
                let mut out = Vec::new();
                match c.dequeue_batch(&mut out, max) {
                    BatchDequeueResult::Msgs(n) => {
                        assert_eq!(n, out.len());
                        assert_eq!(n, max.min(model.len()), "popped more than buffered");
                        for m in out {
                            assert_eq!(Some(&m), model.front(), "FIFO violated in batch");
                            model.pop_front();
                            consumed.push(m);
                            deq += 1;
                        }
                    }
                    BatchDequeueResult::Empty => assert!(model.is_empty()),
                    BatchDequeueResult::Disconnected => unreachable!("producer alive"),
                }
            }
        }
        let stats = c.stats();
        assert!(stats.len <= capacity, "capacity exceeded");
        assert_eq!(stats.len, model.len(), "length diverged from model");
        assert_eq!(stats.enqueued, enq, "enqueued counter diverged");
        assert_eq!(stats.dequeued, deq, "dequeued counter diverged");
        assert_eq!(stats.displaced, disp, "displaced counter diverged");
    }

    // Control messages never jumped past data: every message's production
    // id is visible and, minus the displaced gaps, the consumed order must
    // be strictly increasing (Eof carries no id and is exempt).
    let ids: Vec<i64> = consumed.iter().map(id_of).filter(|&i| i >= 0).collect();
    assert!(
        ids.windows(2).all(|w| w[0] < w[1]),
        "seed {seed}: consumed ids out of order: {ids:?}"
    );
}

#[test]
fn seeded_interleavings_hold_invariants() {
    for seed in 0..12u64 {
        for &capacity in &[1usize, 2, 3, 7, 16] {
            run_interleaving(0xBA7C_0000 + seed * 31 + capacity as u64, capacity, 2_000);
        }
    }
}

/// Cross-thread: a batch producer and a batch consumer with a tiny queue
/// still deliver everything exactly once and in order, control messages
/// included.
#[test]
fn threaded_batch_transfer_is_exact_and_ordered() {
    const N: i64 = 5_000;
    let s = schema();
    let (p, c) = fjord(8, QueueKind::Pull);
    let producer = std::thread::spawn(move || {
        let mut rng = seeded(0xFEED_BEEF);
        let mut id = 0i64;
        while id < N {
            let n = rng.gen_range(1..17usize).min((N - id) as usize);
            let mut batch: Vec<FjordMessage> = (0..n)
                .map(|i| {
                    let id = id + i as i64;
                    // Every 100th message is a punctuation at the same id.
                    if id % 100 == 99 {
                        FjordMessage::Punct(Timestamp::logical(id))
                    } else {
                        msg(&s, id, 0)
                    }
                })
                .collect();
            p.enqueue_batch_blocking(&mut batch).unwrap();
            id += n as i64;
        }
        let mut eof = vec![FjordMessage::Eof];
        p.enqueue_batch_blocking(&mut eof).unwrap();
    });
    let mut ids = Vec::new();
    let mut out = Vec::new();
    'outer: loop {
        out.clear();
        c.dequeue_batch_blocking(&mut out, 16).unwrap();
        for m in &out {
            if m.is_eof() {
                break 'outer;
            }
            ids.push(id_of(m));
        }
    }
    producer.join().unwrap();
    assert_eq!(ids, (0..N).collect::<Vec<_>>(), "exactly once, in order");
}
