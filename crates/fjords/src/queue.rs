//! The Fjord queue itself: a bounded MPMC queue with both blocking and
//! non-blocking endpoints, disconnection tracking, and counters for
//! back-pressure-aware routing policies.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tcq_common::progress::ChannelProbe;
use tcq_common::sync::{Condvar, Mutex};

use tcq_common::{Result, TcqError, Timestamp, Tuple};

/// What flows along a Fjord: data tuples plus in-band control.
#[derive(Debug, Clone, PartialEq)]
pub enum FjordMessage {
    /// A data tuple.
    Tuple(Tuple),
    /// A punctuation/heartbeat: no tuple with timestamp ≤ this will follow.
    /// Window operators use punctuations to close windows on sparse streams.
    Punct(Timestamp),
    /// End of stream ("the Eddy shuts down its connected modules when the
    /// end of all of its input streams has been reached", §2.2).
    Eof,
}

impl FjordMessage {
    /// The contained tuple, if any.
    pub fn tuple(self) -> Option<Tuple> {
        match self {
            FjordMessage::Tuple(t) => Some(t),
            _ => None,
        }
    }

    /// True for `Eof`.
    pub fn is_eof(&self) -> bool {
        matches!(self, FjordMessage::Eof)
    }
}

/// The intended endpoint discipline for a queue (see crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Blocking enqueue, blocking dequeue — iterator-style pull pipelines.
    Pull,
    /// Non-blocking enqueue and dequeue — streaming push pipelines.
    Push,
    /// Non-blocking enqueue, blocking dequeue — Graefe Exchange semantics.
    Exchange,
}

/// Non-blocking enqueue failure.
#[derive(Debug, PartialEq)]
pub enum EnqueueError {
    /// Queue at capacity; caller should yield and retry (back-pressure).
    Full(FjordMessage),
    /// All consumers dropped; message returned so the caller can spill it.
    Disconnected(FjordMessage),
}

/// Non-blocking dequeue outcome.
#[derive(Debug, PartialEq)]
pub enum DequeueResult {
    /// A message was available.
    Msg(FjordMessage),
    /// Queue empty; "control is returned to the consumer when the queue is
    /// empty" (§2.3) — the consumer should pursue other work or yield.
    Empty,
    /// Queue empty and all producers dropped: no message will ever arrive.
    Disconnected,
}

/// Non-blocking batch dequeue outcome ([`Consumer::dequeue_batch`]).
#[derive(Debug, PartialEq)]
pub enum BatchDequeueResult {
    /// `n ≥ 1` messages were appended to the caller's buffer in FIFO order.
    Msgs(usize),
    /// Queue empty; pursue other work or yield.
    Empty,
    /// Queue empty and all producers dropped: no message will ever arrive.
    Disconnected,
}

/// Point-in-time statistics for a queue, used by back-pressure routing and
/// by the experiment harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueStats {
    /// Messages currently buffered.
    pub len: usize,
    /// Capacity.
    pub capacity: usize,
    /// Total successful enqueues since creation.
    pub enqueued: u64,
    /// Total successful dequeues since creation.
    pub dequeued: u64,
    /// Enqueue attempts rejected with `Full`.
    pub full_rejections: u64,
    /// Buffered tuples displaced by [`Producer::enqueue_displacing`]
    /// (shed-oldest degradation).
    pub displaced: u64,
}

impl QueueStats {
    /// Fill fraction in [0, 1].
    pub fn fill(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.len as f64 / self.capacity as f64
        }
    }
}

struct Shared {
    q: Mutex<VecDeque<FjordMessage>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    kind: QueueKind,
    producers: AtomicUsize,
    consumers: AtomicUsize,
    enqueued: AtomicUsize,
    dequeued: AtomicUsize,
    full_rejections: AtomicUsize,
    displaced: AtomicUsize,
    probe: Option<Arc<ChannelProbe>>,
}

/// Create a Fjord of the given capacity and discipline, returning its two
/// endpoints. Capacity must be at least 1.
pub fn fjord(capacity: usize, kind: QueueKind) -> (Producer, Consumer) {
    fjord_inner(capacity, kind, None)
}

/// Like [`fjord`], but every message movement is mirrored into `probe` so
/// a [`tcq_common::progress::ProgressRegistry`] watchdog can observe the
/// channel's frontier. The probe only records counters — queue behaviour
/// is identical to an unprobed fjord.
pub fn fjord_with_probe(
    capacity: usize,
    kind: QueueKind,
    probe: Arc<ChannelProbe>,
) -> (Producer, Consumer) {
    fjord_inner(capacity, kind, Some(probe))
}

fn fjord_inner(
    capacity: usize,
    kind: QueueKind,
    probe: Option<Arc<ChannelProbe>>,
) -> (Producer, Consumer) {
    assert!(capacity >= 1, "fjord capacity must be >= 1");
    let shared = Arc::new(Shared {
        q: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
        kind,
        producers: AtomicUsize::new(1),
        consumers: AtomicUsize::new(1),
        enqueued: AtomicUsize::new(0),
        dequeued: AtomicUsize::new(0),
        full_rejections: AtomicUsize::new(0),
        displaced: AtomicUsize::new(0),
        probe,
    });
    (
        Producer {
            shared: Arc::clone(&shared),
        },
        Consumer { shared },
    )
}

/// Writing end of a Fjord. Clonable: several producers may feed one queue
/// (e.g. many modules bounce tuples back to one eddy).
pub struct Producer {
    shared: Arc<Shared>,
}

/// Reading end of a Fjord. Clonable for work-sharing consumers.
pub struct Consumer {
    shared: Arc<Shared>,
}

impl Producer {
    /// Non-blocking enqueue.
    pub fn enqueue(&self, msg: FjordMessage) -> std::result::Result<(), EnqueueError> {
        if self.shared.consumers.load(Ordering::Acquire) == 0 {
            return Err(EnqueueError::Disconnected(msg));
        }
        let mut q = self.shared.q.lock();
        if q.len() >= self.shared.capacity {
            self.shared.full_rejections.fetch_add(1, Ordering::Relaxed);
            self.shared.probe_reject(1);
            return Err(EnqueueError::Full(msg));
        }
        self.shared.probe_in(&msg);
        q.push_back(msg);
        drop(q);
        self.shared.enqueued.fetch_add(1, Ordering::Relaxed);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue `msg`, displacing the oldest buffered *tuple* when the
    /// queue is full — the shed-oldest degradation policy ("drop from the
    /// front", keeping the freshest data). Returns the displaced message,
    /// if any. Control messages (punctuations, Eof) are never displaced;
    /// if the buffer holds only control messages the call fails `Full`.
    pub fn enqueue_displacing(
        &self,
        msg: FjordMessage,
    ) -> std::result::Result<Option<FjordMessage>, EnqueueError> {
        if self.shared.consumers.load(Ordering::Acquire) == 0 {
            return Err(EnqueueError::Disconnected(msg));
        }
        let mut q = self.shared.q.lock();
        if q.len() < self.shared.capacity {
            self.shared.probe_in(&msg);
            q.push_back(msg);
            drop(q);
            self.shared.enqueued.fetch_add(1, Ordering::Relaxed);
            self.shared.not_empty.notify_one();
            return Ok(None);
        }
        let Some(idx) = q.iter().position(|m| matches!(m, FjordMessage::Tuple(_))) else {
            drop(q);
            self.shared.full_rejections.fetch_add(1, Ordering::Relaxed);
            self.shared.probe_reject(1);
            return Err(EnqueueError::Full(msg));
        };
        let displaced = q.remove(idx);
        self.shared.probe_in(&msg);
        if let Some(d) = &displaced {
            self.shared.probe_out(d);
        }
        q.push_back(msg);
        drop(q);
        self.shared.displaced.fetch_add(1, Ordering::Relaxed);
        self.shared.enqueued.fetch_add(1, Ordering::Relaxed);
        self.shared.not_empty.notify_one();
        Ok(displaced)
    }

    /// Blocking enqueue: waits while full, errors when all consumers left.
    pub fn enqueue_blocking(&self, msg: FjordMessage) -> Result<()> {
        let mut q = self.shared.q.lock();
        loop {
            if self.shared.consumers.load(Ordering::Acquire) == 0 {
                return Err(TcqError::Disconnected("consumer side"));
            }
            if q.len() < self.shared.capacity {
                self.shared.probe_in(&msg);
                q.push_back(msg);
                drop(q);
                self.shared.enqueued.fetch_add(1, Ordering::Relaxed);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            // Bounded wait so we recheck disconnection even if the consumer
            // vanished without a final notify.
            self.shared
                .not_full
                .wait_for(&mut q, Duration::from_millis(50));
        }
    }

    /// Deadline-bounded blocking enqueue: waits for space at most
    /// `deadline`, then gives up with **timeout-as-backpressure**
    /// semantics — the message comes back as [`EnqueueError::Full`]
    /// exactly as the non-blocking [`Producer::enqueue`] would return it
    /// (one `full_rejections` tick), so callers degrade to their existing
    /// retry/shed logic instead of wedging forever. Ordering, counters,
    /// and disconnection reporting are otherwise identical to
    /// [`Producer::enqueue_blocking`].
    pub fn enqueue_blocking_deadline(
        &self,
        msg: FjordMessage,
        deadline: Duration,
    ) -> std::result::Result<(), EnqueueError> {
        let start = std::time::Instant::now();
        let mut q = self.shared.q.lock();
        loop {
            if self.shared.consumers.load(Ordering::Acquire) == 0 {
                return Err(EnqueueError::Disconnected(msg));
            }
            if q.len() < self.shared.capacity {
                self.shared.probe_in(&msg);
                q.push_back(msg);
                drop(q);
                self.shared.enqueued.fetch_add(1, Ordering::Relaxed);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                drop(q);
                self.shared.full_rejections.fetch_add(1, Ordering::Relaxed);
                self.shared.probe_reject(1);
                return Err(EnqueueError::Full(msg));
            }
            let wait = (deadline - elapsed).min(Duration::from_millis(50));
            self.shared.not_full.wait_for(&mut q, wait);
        }
    }

    /// Non-blocking batch enqueue: moves the longest prefix of `msgs` that
    /// fits under a **single** lock acquisition, preserving order (so
    /// punctuations and `Eof` can never be reordered past the data tuples
    /// they follow). Accepted messages are drained from the front of
    /// `msgs`; the refused suffix stays for the caller to retry. Returns
    /// the number accepted. Counters advance exactly as if each message
    /// had been offered individually: `enqueued` by the accepted count,
    /// `full_rejections` by the refused count. Errors `Disconnected` with
    /// `msgs` untouched when every consumer is gone.
    pub fn enqueue_batch(&self, msgs: &mut Vec<FjordMessage>) -> Result<usize> {
        if msgs.is_empty() {
            return Ok(0);
        }
        if self.shared.consumers.load(Ordering::Acquire) == 0 {
            return Err(TcqError::Disconnected("consumer side"));
        }
        let mut q = self.shared.q.lock();
        let room = self.shared.capacity.saturating_sub(q.len());
        let accepted = room.min(msgs.len());
        self.shared.probe_in_batch(&msgs[..accepted]);
        q.extend(msgs.drain(..accepted));
        drop(q);
        let refused = msgs.len();
        if refused > 0 {
            self.shared
                .full_rejections
                .fetch_add(refused, Ordering::Relaxed);
            self.shared.probe_reject(refused as u64);
        }
        if accepted > 0 {
            self.shared.enqueued.fetch_add(accepted, Ordering::Relaxed);
            if accepted == 1 {
                self.shared.not_empty.notify_one();
            } else {
                self.shared.not_empty.notify_all();
            }
        }
        Ok(accepted)
    }

    /// Blocking batch enqueue: moves **all** of `msgs` into the queue,
    /// waiting for space and transferring each freed chunk under one lock
    /// acquisition. Returns the total moved (the original length). Errors
    /// once every consumer has disconnected; the unsent suffix stays in
    /// `msgs` in order.
    pub fn enqueue_batch_blocking(&self, msgs: &mut Vec<FjordMessage>) -> Result<usize> {
        let total = msgs.len();
        let mut q = self.shared.q.lock();
        loop {
            if self.shared.consumers.load(Ordering::Acquire) == 0 {
                return Err(TcqError::Disconnected("consumer side"));
            }
            let room = self.shared.capacity.saturating_sub(q.len());
            let accepted = room.min(msgs.len());
            if accepted > 0 {
                self.shared.probe_in_batch(&msgs[..accepted]);
                q.extend(msgs.drain(..accepted));
                self.shared.enqueued.fetch_add(accepted, Ordering::Relaxed);
                if accepted == 1 {
                    self.shared.not_empty.notify_one();
                } else {
                    self.shared.not_empty.notify_all();
                }
            }
            if msgs.is_empty() {
                return Ok(total);
            }
            // Bounded wait so we recheck disconnection even if the consumer
            // vanished without a final notify.
            self.shared
                .not_full
                .wait_for(&mut q, Duration::from_millis(50));
        }
    }

    /// Convenience: enqueue a tuple, blocking.
    pub fn send_tuple(&self, t: Tuple) -> Result<()> {
        self.enqueue_blocking(FjordMessage::Tuple(t))
    }

    /// Convenience: signal end-of-stream, blocking.
    pub fn send_eof(&self) -> Result<()> {
        self.enqueue_blocking(FjordMessage::Eof)
    }

    /// Convenience: enqueue a punctuation, blocking.
    pub fn send_punct(&self, ts: Timestamp) -> Result<()> {
        self.enqueue_blocking(FjordMessage::Punct(ts))
    }

    /// The queue's discipline.
    pub fn kind(&self) -> QueueKind {
        self.shared.kind
    }

    /// Snapshot statistics.
    pub fn stats(&self) -> QueueStats {
        self.shared.stats()
    }
}

impl Consumer {
    /// Non-blocking dequeue.
    pub fn dequeue(&self) -> DequeueResult {
        let mut q = self.shared.q.lock();
        match q.pop_front() {
            Some(msg) => {
                drop(q);
                self.shared.probe_out(&msg);
                self.shared.dequeued.fetch_add(1, Ordering::Relaxed);
                self.shared.not_full.notify_one();
                DequeueResult::Msg(msg)
            }
            None => {
                drop(q);
                if self.shared.producers.load(Ordering::Acquire) == 0 {
                    DequeueResult::Disconnected
                } else {
                    DequeueResult::Empty
                }
            }
        }
    }

    /// Blocking dequeue: waits for a message, errors once the queue is empty
    /// and every producer has disconnected.
    pub fn dequeue_blocking(&self) -> Result<FjordMessage> {
        let mut q = self.shared.q.lock();
        loop {
            if let Some(msg) = q.pop_front() {
                drop(q);
                self.shared.probe_out(&msg);
                self.shared.dequeued.fetch_add(1, Ordering::Relaxed);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if self.shared.producers.load(Ordering::Acquire) == 0 {
                return Err(TcqError::Disconnected("producer side"));
            }
            self.shared
                .not_empty
                .wait_for(&mut q, Duration::from_millis(50));
        }
    }

    /// Deadline-bounded blocking dequeue: waits for a message at most
    /// `deadline`, then gives up with [`DequeueResult::Empty`] — exactly
    /// what the non-blocking [`Consumer::dequeue`] reports on an empty
    /// queue — so callers degrade to their pursue-other-work path instead
    /// of wedging forever. Ordering, counters, and disconnection
    /// reporting are otherwise identical to [`Consumer::dequeue_blocking`].
    pub fn dequeue_blocking_deadline(&self, deadline: Duration) -> DequeueResult {
        let start = std::time::Instant::now();
        let mut q = self.shared.q.lock();
        loop {
            if let Some(msg) = q.pop_front() {
                drop(q);
                self.shared.probe_out(&msg);
                self.shared.dequeued.fetch_add(1, Ordering::Relaxed);
                self.shared.not_full.notify_one();
                return DequeueResult::Msg(msg);
            }
            if self.shared.producers.load(Ordering::Acquire) == 0 {
                return DequeueResult::Disconnected;
            }
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                return DequeueResult::Empty;
            }
            let wait = (deadline - elapsed).min(Duration::from_millis(50));
            self.shared.not_empty.wait_for(&mut q, wait);
        }
    }

    /// Non-blocking batch dequeue: pops up to `max` messages under a
    /// **single** lock acquisition, appending them to `out` in FIFO order
    /// (control messages keep their position relative to data tuples).
    /// `dequeued` advances by the popped count.
    pub fn dequeue_batch(&self, out: &mut Vec<FjordMessage>, max: usize) -> BatchDequeueResult {
        if max == 0 {
            return BatchDequeueResult::Empty;
        }
        let mut q = self.shared.q.lock();
        let n = q.len().min(max);
        if n == 0 {
            drop(q);
            return if self.shared.producers.load(Ordering::Acquire) == 0 {
                BatchDequeueResult::Disconnected
            } else {
                BatchDequeueResult::Empty
            };
        }
        out.extend(q.drain(..n));
        drop(q);
        self.shared.probe_out_batch(&out[out.len() - n..]);
        self.shared.dequeued.fetch_add(n, Ordering::Relaxed);
        if n == 1 {
            self.shared.not_full.notify_one();
        } else {
            self.shared.not_full.notify_all();
        }
        BatchDequeueResult::Msgs(n)
    }

    /// Blocking batch dequeue: waits until at least one message is
    /// available, then pops up to `max` under the same lock acquisition,
    /// appending to `out`. Returns the count. Errors once the queue is
    /// empty and every producer has disconnected.
    pub fn dequeue_batch_blocking(&self, out: &mut Vec<FjordMessage>, max: usize) -> Result<usize> {
        if max == 0 {
            return Ok(0);
        }
        let mut q = self.shared.q.lock();
        loop {
            let n = q.len().min(max);
            if n > 0 {
                out.extend(q.drain(..n));
                drop(q);
                self.shared.probe_out_batch(&out[out.len() - n..]);
                self.shared.dequeued.fetch_add(n, Ordering::Relaxed);
                if n == 1 {
                    self.shared.not_full.notify_one();
                } else {
                    self.shared.not_full.notify_all();
                }
                return Ok(n);
            }
            if self.shared.producers.load(Ordering::Acquire) == 0 {
                return Err(TcqError::Disconnected("producer side"));
            }
            self.shared
                .not_empty
                .wait_for(&mut q, Duration::from_millis(50));
        }
    }

    /// Drain every currently buffered message without blocking.
    pub fn drain(&self) -> Vec<FjordMessage> {
        let mut q = self.shared.q.lock();
        let msgs: Vec<FjordMessage> = q.drain(..).collect();
        drop(q);
        self.shared.probe_out_batch(&msgs);
        self.shared
            .dequeued
            .fetch_add(msgs.len(), Ordering::Relaxed);
        if !msgs.is_empty() {
            self.shared.not_full.notify_all();
        }
        msgs
    }

    /// The queue's discipline.
    pub fn kind(&self) -> QueueKind {
        self.shared.kind
    }

    /// Snapshot statistics.
    pub fn stats(&self) -> QueueStats {
        self.shared.stats()
    }

    /// Current buffered length (for back-pressure policies).
    pub fn len(&self) -> usize {
        self.shared.q.lock().len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Shared {
    #[inline]
    fn probe_in(&self, msg: &FjordMessage) {
        if let Some(p) = &self.probe {
            p.note_enqueue(1);
            match msg {
                FjordMessage::Punct(_) => p.note_punct(),
                FjordMessage::Eof => p.note_eof_in(),
                FjordMessage::Tuple(_) => {}
            }
        }
    }

    #[inline]
    fn probe_in_batch(&self, msgs: &[FjordMessage]) {
        if let Some(p) = &self.probe {
            p.note_enqueue(msgs.len() as u64);
            for m in msgs {
                match m {
                    FjordMessage::Punct(_) => p.note_punct(),
                    FjordMessage::Eof => p.note_eof_in(),
                    FjordMessage::Tuple(_) => {}
                }
            }
        }
    }

    #[inline]
    fn probe_reject(&self, n: u64) {
        if let Some(p) = &self.probe {
            p.note_reject(n);
        }
    }

    #[inline]
    fn probe_out(&self, msg: &FjordMessage) {
        if let Some(p) = &self.probe {
            p.note_dequeue(1);
            if msg.is_eof() {
                p.note_eof_out();
            }
        }
    }

    #[inline]
    fn probe_out_batch(&self, msgs: &[FjordMessage]) {
        if let Some(p) = &self.probe {
            p.note_dequeue(msgs.len() as u64);
            if msgs.iter().any(|m| m.is_eof()) {
                p.note_eof_out();
            }
        }
    }

    fn stats(&self) -> QueueStats {
        QueueStats {
            len: self.q.lock().len(),
            capacity: self.capacity,
            enqueued: self.enqueued.load(Ordering::Relaxed) as u64,
            dequeued: self.dequeued.load(Ordering::Relaxed) as u64,
            full_rejections: self.full_rejections.load(Ordering::Relaxed) as u64,
            displaced: self.displaced.load(Ordering::Relaxed) as u64,
        }
    }
}

impl Clone for Producer {
    fn clone(&self) -> Self {
        self.shared.producers.fetch_add(1, Ordering::AcqRel);
        Producer {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Clone for Consumer {
    fn clone(&self) -> Self {
        self.shared.consumers.fetch_add(1, Ordering::AcqRel);
        Consumer {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Drop for Producer {
    fn drop(&mut self) {
        if self.shared.producers.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last producer gone: wake blocked consumers so they observe it.
            self.shared.not_empty.notify_all();
        }
    }
}

impl Drop for Consumer {
    fn drop(&mut self) {
        if self.shared.consumers.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{DataType, Field, Schema, TupleBuilder};

    fn t(x: i64) -> Tuple {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).into_ref();
        TupleBuilder::new(schema)
            .push(x)
            .at(Timestamp::logical(x))
            .build()
            .unwrap()
    }

    #[test]
    fn push_queue_nonblocking_roundtrip() {
        let (p, c) = fjord(4, QueueKind::Push);
        assert_eq!(c.dequeue(), DequeueResult::Empty);
        p.enqueue(FjordMessage::Tuple(t(1))).unwrap();
        p.enqueue(FjordMessage::Eof).unwrap();
        assert_eq!(c.dequeue(), DequeueResult::Msg(FjordMessage::Tuple(t(1))));
        assert_eq!(c.dequeue(), DequeueResult::Msg(FjordMessage::Eof));
        assert_eq!(c.dequeue(), DequeueResult::Empty);
    }

    #[test]
    fn full_queue_rejects_and_counts() {
        let (p, c) = fjord(2, QueueKind::Push);
        p.enqueue(FjordMessage::Tuple(t(1))).unwrap();
        p.enqueue(FjordMessage::Tuple(t(2))).unwrap();
        match p.enqueue(FjordMessage::Tuple(t(3))) {
            Err(EnqueueError::Full(FjordMessage::Tuple(back))) => assert_eq!(back, t(3)),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(c.stats().full_rejections, 1);
        assert_eq!(c.stats().len, 2);
    }

    #[test]
    fn enqueue_displacing_sheds_oldest_tuple_only() {
        let (p, c) = fjord(2, QueueKind::Push);
        p.enqueue(FjordMessage::Tuple(t(1))).unwrap();
        p.enqueue(FjordMessage::Tuple(t(2))).unwrap();
        // Full: the oldest tuple (1) makes room for 3.
        let displaced = p.enqueue_displacing(FjordMessage::Tuple(t(3))).unwrap();
        assert_eq!(displaced, Some(FjordMessage::Tuple(t(1))));
        assert_eq!(c.stats().displaced, 1);
        assert_eq!(c.dequeue(), DequeueResult::Msg(FjordMessage::Tuple(t(2))));
        assert_eq!(c.dequeue(), DequeueResult::Msg(FjordMessage::Tuple(t(3))));
        // Control messages are never displaced.
        let (p, _c2) = fjord(1, QueueKind::Push);
        p.enqueue(FjordMessage::Eof).unwrap();
        assert!(matches!(
            p.enqueue_displacing(FjordMessage::Tuple(t(4))),
            Err(EnqueueError::Full(_))
        ));
    }

    #[test]
    fn disconnected_consumer_detected() {
        let (p, c) = fjord(2, QueueKind::Push);
        drop(c);
        assert!(matches!(
            p.enqueue(FjordMessage::Eof),
            Err(EnqueueError::Disconnected(_))
        ));
        assert!(p.enqueue_blocking(FjordMessage::Eof).is_err());
    }

    #[test]
    fn disconnected_producer_detected_after_drain() {
        let (p, c) = fjord(2, QueueKind::Push);
        p.enqueue(FjordMessage::Tuple(t(9))).unwrap();
        drop(p);
        // Buffered message still delivered...
        assert!(matches!(c.dequeue(), DequeueResult::Msg(_)));
        // ...then disconnection reported.
        assert_eq!(c.dequeue(), DequeueResult::Disconnected);
        assert!(c.dequeue_blocking().is_err());
    }

    #[test]
    fn blocking_pull_across_threads() {
        let (p, c) = fjord(1, QueueKind::Pull);
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                p.send_tuple(t(i)).unwrap();
            }
            p.send_eof().unwrap();
        });
        let mut seen = 0;
        loop {
            match c.dequeue_blocking().unwrap() {
                FjordMessage::Tuple(tp) => {
                    assert_eq!(tp, t(seen));
                    seen += 1;
                }
                FjordMessage::Eof => break,
                FjordMessage::Punct(_) => {}
            }
        }
        assert_eq!(seen, 100);
        h.join().unwrap();
    }

    #[test]
    fn cloned_producers_all_count() {
        let (p, c) = fjord(8, QueueKind::Push);
        let p2 = p.clone();
        drop(p);
        p2.enqueue(FjordMessage::Tuple(t(1))).unwrap();
        drop(p2);
        assert!(matches!(c.dequeue(), DequeueResult::Msg(_)));
        assert_eq!(c.dequeue(), DequeueResult::Disconnected);
    }

    #[test]
    fn drain_takes_everything() {
        let (p, c) = fjord(8, QueueKind::Push);
        for i in 0..5 {
            p.enqueue(FjordMessage::Tuple(t(i))).unwrap();
        }
        let msgs = c.drain();
        assert_eq!(msgs.len(), 5);
        assert_eq!(c.stats().dequeued, 5);
        assert_eq!(c.dequeue(), DequeueResult::Empty);
    }

    #[test]
    fn exchange_semantics_nonblocking_enqueue_blocking_dequeue() {
        // §2.3: "Fjords can provide Exchange semantics using a blocking
        // dequeue and a non-blocking enqueue."
        let (p, c) = fjord(4, QueueKind::Exchange);
        assert_eq!(p.kind(), QueueKind::Exchange);
        let h = std::thread::spawn(move || c.dequeue_blocking().unwrap());
        std::thread::sleep(Duration::from_millis(20));
        p.enqueue(FjordMessage::Tuple(t(42))).unwrap();
        assert_eq!(h.join().unwrap(), FjordMessage::Tuple(t(42)));
    }

    #[test]
    fn enqueue_batch_takes_prefix_and_counts_refusals() {
        let (p, c) = fjord(3, QueueKind::Push);
        let mut msgs: Vec<FjordMessage> = (1..=5).map(|i| FjordMessage::Tuple(t(i))).collect();
        assert_eq!(p.enqueue_batch(&mut msgs).unwrap(), 3);
        // Refused suffix stays, in order.
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0], FjordMessage::Tuple(t(4)));
        let s = c.stats();
        assert_eq!(s.enqueued, 3);
        assert_eq!(s.full_rejections, 2);
        assert_eq!(s.len, 3);
        // FIFO preserved.
        for i in 1..=3 {
            assert_eq!(c.dequeue(), DequeueResult::Msg(FjordMessage::Tuple(t(i))));
        }
    }

    #[test]
    fn enqueue_batch_disconnected_leaves_messages() {
        let (p, c) = fjord(4, QueueKind::Push);
        drop(c);
        let mut msgs = vec![FjordMessage::Eof];
        assert!(p.enqueue_batch(&mut msgs).is_err());
        assert_eq!(msgs.len(), 1, "messages stay with the caller");
    }

    #[test]
    fn dequeue_batch_pops_up_to_max_in_order() {
        let (p, c) = fjord(8, QueueKind::Push);
        for i in 1..=5 {
            p.enqueue(FjordMessage::Tuple(t(i))).unwrap();
        }
        p.enqueue(FjordMessage::Punct(Timestamp::logical(5)))
            .unwrap();
        p.enqueue(FjordMessage::Eof).unwrap();
        let mut out = Vec::new();
        assert_eq!(c.dequeue_batch(&mut out, 4), BatchDequeueResult::Msgs(4));
        assert_eq!(c.dequeue_batch(&mut out, 100), BatchDequeueResult::Msgs(3));
        assert_eq!(c.dequeue_batch(&mut out, 4), BatchDequeueResult::Empty);
        assert_eq!(out.len(), 7);
        // Control messages kept their position after the data tuples.
        assert_eq!(out[5], FjordMessage::Punct(Timestamp::logical(5)));
        assert!(out[6].is_eof());
        assert_eq!(c.stats().dequeued, 7);
        drop(p);
        assert_eq!(
            c.dequeue_batch(&mut out, 4),
            BatchDequeueResult::Disconnected
        );
    }

    #[test]
    fn batch_blocking_roundtrip_across_threads() {
        let (p, c) = fjord(4, QueueKind::Pull);
        let h = std::thread::spawn(move || {
            let mut msgs: Vec<FjordMessage> = (0..100).map(|i| FjordMessage::Tuple(t(i))).collect();
            msgs.push(FjordMessage::Eof);
            assert_eq!(p.enqueue_batch_blocking(&mut msgs).unwrap(), 101);
            assert!(msgs.is_empty());
        });
        let mut out = Vec::new();
        while !out.last().is_some_and(|m: &FjordMessage| m.is_eof()) {
            c.dequeue_batch_blocking(&mut out, 8).unwrap();
        }
        assert_eq!(out.len(), 101);
        for (i, m) in out.iter().take(100).enumerate() {
            assert_eq!(*m, FjordMessage::Tuple(t(i as i64)));
        }
        h.join().unwrap();
    }

    #[test]
    fn stats_fill_fraction() {
        let (p, c) = fjord(4, QueueKind::Push);
        p.enqueue(FjordMessage::Tuple(t(1))).unwrap();
        p.enqueue(FjordMessage::Tuple(t(2))).unwrap();
        assert!((c.stats().fill() - 0.5).abs() < 1e-9);
    }
}

#[cfg(test)]
mod stress_tests {
    use super::*;
    use tcq_common::{DataType, Field, Schema, Timestamp, Tuple, TupleBuilder};

    fn tagged(producer: i64, seq: i64) -> Tuple {
        let schema = Schema::new(vec![
            Field::new("producer", DataType::Int),
            Field::new("seq", DataType::Int),
        ])
        .into_ref();
        TupleBuilder::new(schema)
            .push(producer)
            .push(seq)
            .at(Timestamp::logical(seq))
            .build()
            .unwrap()
    }

    /// Many producers, one consumer, a tiny queue: nothing lost, nothing
    /// duplicated, per-producer FIFO preserved.
    #[test]
    fn mpsc_stress_preserves_per_producer_order() {
        const PRODUCERS: i64 = 4;
        const PER_PRODUCER: i64 = 5_000;
        let (p, c) = fjord(16, QueueKind::Push);
        let mut handles = Vec::new();
        for producer in 0..PRODUCERS {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                for seq in 0..PER_PRODUCER {
                    p.enqueue_blocking(FjordMessage::Tuple(tagged(producer, seq)))
                        .unwrap();
                }
            }));
        }
        drop(p);
        let mut last_seq = vec![-1i64; PRODUCERS as usize];
        let mut total = 0u64;
        loop {
            match c.dequeue_blocking() {
                Ok(FjordMessage::Tuple(t)) => {
                    let producer = t.value(0).as_int().unwrap() as usize;
                    let seq = t.value(1).as_int().unwrap();
                    assert!(
                        seq > last_seq[producer],
                        "producer {producer} reordered: {seq} after {}",
                        last_seq[producer]
                    );
                    last_seq[producer] = seq;
                    total += 1;
                }
                Ok(_) => {}
                Err(_) => break, // all producers disconnected, queue drained
            }
        }
        assert_eq!(total, (PRODUCERS * PER_PRODUCER) as u64);
        for h in handles {
            h.join().unwrap();
        }
    }

    /// Work-sharing consumers: several consumers split one queue's messages
    /// with no loss or duplication.
    #[test]
    fn mpmc_stress_splits_without_loss() {
        const N: i64 = 20_000;
        const CONSUMERS: usize = 3;
        let (p, c) = fjord(32, QueueKind::Push);
        let mut consumer_handles = Vec::new();
        for _ in 0..CONSUMERS {
            let c = c.clone();
            consumer_handles.push(std::thread::spawn(move || {
                let mut seen = Vec::new();
                loop {
                    match c.dequeue_blocking() {
                        Ok(FjordMessage::Tuple(t)) => {
                            seen.push(t.value(1).as_int().unwrap());
                        }
                        Ok(_) => {}
                        Err(_) => break,
                    }
                }
                seen
            }));
        }
        drop(c);
        for seq in 0..N {
            p.enqueue_blocking(FjordMessage::Tuple(tagged(0, seq)))
                .unwrap();
        }
        drop(p);
        let mut all: Vec<i64> = Vec::new();
        for h in consumer_handles {
            all.extend(h.join().unwrap());
        }
        all.sort_unstable();
        assert_eq!(
            all,
            (0..N).collect::<Vec<_>>(),
            "exactly-once across consumers"
        );
    }
}
