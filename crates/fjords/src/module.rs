//! The non-preemptive module (state machine) contract.
//!
//! TelegraphCQ's executor maps queries onto "Execution Objects" (threads)
//! hosting "Dispatch Units" that are *non-preemptive* and "follow the Fjords
//! model … which gives us control over their scheduling" (§4.2.2). The
//! [`Module`] trait is that model: the scheduler hands a module a quantum,
//! the module performs at most that much work using only non-blocking Fjord
//! operations, then returns control with a status.

use tcq_common::Result;

/// What a module reports after a scheduling quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModuleStatus {
    /// Made progress and has more input buffered: schedule again soon.
    Ready,
    /// No input available (or output full): yield; re-schedule later.
    Idle,
    /// All inputs reached EOF and all output flushed: never schedule again.
    Done,
}

impl ModuleStatus {
    /// Combine statuses of submodules: Done only when all done; Ready wins
    /// over Idle.
    pub fn merge(self, other: ModuleStatus) -> ModuleStatus {
        use ModuleStatus::*;
        match (self, other) {
            (Done, Done) => Done,
            (Ready, _) | (_, Ready) => Ready,
            _ => Idle,
        }
    }
}

/// A composable dataflow module, "analogous to the operators used in
/// traditional database query engines, or the modules used in composable
/// network routers" (§2).
///
/// Modules own their endpoints (constructed with [`crate::fjord`] pairs at
/// plan-wiring time) and all per-module state. `run` must not block.
pub trait Module: Send {
    /// A short, stable diagnostic name (e.g. `"select(price>50)"`).
    fn name(&self) -> &str;

    /// Perform up to `quantum` units of work (typically: process up to
    /// `quantum` input messages). Must use only non-blocking queue calls.
    fn run(&mut self, quantum: usize) -> Result<ModuleStatus>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{fjord, DequeueResult, FjordMessage, QueueKind};
    use tcq_common::{DataType, Field, Schema, Timestamp, TupleBuilder};

    /// A toy pass-through module used to validate the contract.
    struct Identity {
        input: crate::queue::Consumer,
        output: crate::queue::Producer,
        done: bool,
    }

    impl Module for Identity {
        fn name(&self) -> &str {
            "identity"
        }

        fn run(&mut self, quantum: usize) -> Result<ModuleStatus> {
            if self.done {
                return Ok(ModuleStatus::Done);
            }
            for _ in 0..quantum {
                match self.input.dequeue() {
                    DequeueResult::Msg(FjordMessage::Eof) => {
                        let _ = self.output.enqueue(FjordMessage::Eof);
                        self.done = true;
                        return Ok(ModuleStatus::Done);
                    }
                    DequeueResult::Msg(m) => {
                        if let Err(crate::queue::EnqueueError::Full(_)) = self.output.enqueue(m) {
                            return Ok(ModuleStatus::Idle);
                        }
                    }
                    DequeueResult::Empty => return Ok(ModuleStatus::Idle),
                    DequeueResult::Disconnected => {
                        self.done = true;
                        return Ok(ModuleStatus::Done);
                    }
                }
            }
            Ok(ModuleStatus::Ready)
        }
    }

    #[test]
    fn quantum_bounds_work_and_statuses_progress() {
        let (src_p, src_c) = fjord(64, QueueKind::Push);
        let (out_p, out_c) = fjord(64, QueueKind::Push);
        let mut m = Identity {
            input: src_c,
            output: out_p,
            done: false,
        };

        let schema = Schema::new(vec![Field::new("x", DataType::Int)]).into_ref();
        for i in 0..10i64 {
            let t = TupleBuilder::new(schema.clone())
                .push(i)
                .at(Timestamp::logical(i))
                .build()
                .unwrap();
            src_p.enqueue(FjordMessage::Tuple(t)).unwrap();
        }
        src_p.enqueue(FjordMessage::Eof).unwrap();

        // First quantum of 4: Ready (more input buffered).
        assert_eq!(m.run(4).unwrap(), ModuleStatus::Ready);
        assert_eq!(out_c.stats().enqueued, 4);
        // Exhaust: 6 tuples + EOF within quantum 100 -> Done.
        assert_eq!(m.run(100).unwrap(), ModuleStatus::Done);
        assert_eq!(out_c.stats().enqueued, 11);
        // Idempotent once done.
        assert_eq!(m.run(1).unwrap(), ModuleStatus::Done);
    }

    #[test]
    fn merge_semantics() {
        use ModuleStatus::*;
        assert_eq!(Done.merge(Done), Done);
        assert_eq!(Done.merge(Idle), Idle);
        assert_eq!(Idle.merge(Ready), Ready);
        assert_eq!(Ready.merge(Done), Ready);
        assert_eq!(Idle.merge(Idle), Idle);
    }
}
