//! Fjords — the inter-module communication API (TelegraphCQ §2.3).
//!
//! > "The key advantage of Fjords is that they allow query plans to use a
//! > mixture of push and pull connections between modules, thereby being
//! > able to execute query plans over any combination of streaming and
//! > static data sources."
//!
//! A Fjord is a bounded queue of [`FjordMessage`]s connecting a producer
//! module to a consumer module. The paper distinguishes three wirings,
//! realized here by choosing blocking vs non-blocking endpoint operations:
//!
//! | kind       | enqueue (producer) | dequeue (consumer) |
//! |------------|--------------------|--------------------|
//! | *pull*     | blocking           | blocking           |
//! | *push*     | non-blocking       | non-blocking       |
//! | *exchange* | non-blocking       | blocking           |
//!
//! All endpoints expose both blocking and non-blocking calls; [`QueueKind`]
//! merely records the intended discipline so plan wiring is self-describing
//! and so the executor can assert that its non-preemptive dispatch units
//! only ever use the non-blocking calls ("an overarching principle of
//! TelegraphCQ is to avoid blocking operations", §4.2.3).
//!
//! The [`Module`] trait is the state-machine contract every dataflow module
//! implements: the executor repeatedly grants a module a *quantum* of work;
//! the module does bounded work using only non-blocking queue operations and
//! reports whether it is [`ModuleStatus::Ready`] for more,
//! [`ModuleStatus::Idle`] (no input available), or [`ModuleStatus::Done`].

#![warn(missing_docs)]

pub mod module;
pub mod queue;

pub use module::{Module, ModuleStatus};
pub use queue::{
    fjord, fjord_with_probe, BatchDequeueResult, Consumer, DequeueResult, EnqueueError,
    FjordMessage, Producer, QueueKind, QueueStats,
};
