//! Synthetic stream generators with experiment-grade control knobs.

use tcq_common::rng::{seeded, TcqRng};
use tcq_common::{DataType, Field, Result, Schema, SchemaRef, Timestamp, Tuple, Value};

use crate::source::{Source, SourceStatus};

/// The paper's `ClosingStockPrices(timestamp, stockSymbol, closingPrice)`
/// stream (§4.1.1): one tick per (trading day, symbol), prices following a
/// per-symbol random walk. Deterministic under a fixed seed.
pub struct StockTicks {
    schema: SchemaRef,
    symbols: Vec<(String, f64)>,
    day: i64,
    next_symbol: usize,
    max_days: Option<i64>,
    rng: TcqRng,
    /// Per-step price drift scale.
    volatility: f64,
}

impl StockTicks {
    /// The `ClosingStockPrices` schema, qualified by `qualifier`.
    pub fn schema_for(qualifier: &str) -> SchemaRef {
        Schema::qualified(
            qualifier,
            vec![
                Field::new("timestamp", DataType::Int),
                Field::new("stockSymbol", DataType::Str),
                Field::new("closingPrice", DataType::Float),
            ],
        )
        .into_ref()
    }

    /// A generator over `symbols`, starting at day 1, all prices at 50.
    pub fn new(qualifier: &str, symbols: &[&str], seed: u64) -> Self {
        StockTicks {
            schema: Self::schema_for(qualifier),
            symbols: symbols.iter().map(|s| (s.to_string(), 50.0)).collect(),
            day: 1,
            next_symbol: 0,
            max_days: None,
            rng: seeded(seed),
            volatility: 1.0,
        }
    }

    /// Stop after `days` trading days (finite source).
    pub fn with_max_days(mut self, days: i64) -> Self {
        self.max_days = Some(days);
        self
    }

    /// Scale the per-step random walk.
    pub fn with_volatility(mut self, volatility: f64) -> Self {
        self.volatility = volatility;
        self
    }

    fn tick(&mut self) -> Option<Tuple> {
        if let Some(max) = self.max_days {
            if self.day > max {
                return None;
            }
        }
        let idx = self.next_symbol;
        let drift: f64 = self.rng.gen_range(-1.0..1.0) * self.volatility;
        let (sym, price) = {
            let entry = &mut self.symbols[idx];
            entry.1 = (entry.1 + drift).max(0.01);
            (entry.0.clone(), entry.1)
        };
        let day = self.day;
        self.next_symbol += 1;
        if self.next_symbol == self.symbols.len() {
            self.next_symbol = 0;
            self.day += 1;
        }
        Some(Tuple::new_unchecked(
            self.schema.clone(),
            vec![Value::Int(day), Value::Str(sym.into()), Value::Float(price)],
            Timestamp::logical(day),
        ))
    }
}

impl Source for StockTicks {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn next_batch(&mut self, max: usize, out: &mut Vec<Tuple>) -> Result<SourceStatus> {
        for _ in 0..max {
            match self.tick() {
                Some(t) => out.push(t),
                None => return Ok(SourceStatus::Exhausted),
            }
        }
        Ok(SourceStatus::Ready)
    }
}

/// A network-monitor stream: `(timestamp, srcAddr, dstAddr, bytes, proto)`
/// with Zipf-like skew on source addresses — the partitioning-hostile
/// workload of the Flux experiments (\[SHCF03\]).
pub struct NetworkPackets {
    schema: SchemaRef,
    seq: i64,
    hosts: i64,
    /// Zipf exponent; 0.0 = uniform, larger = more skew.
    skew: f64,
    /// Precomputed CDF over host ranks.
    cdf: Vec<f64>,
    max_packets: Option<i64>,
    rng: TcqRng,
    /// Burst pattern: (on, off) packets; during off phases the source is
    /// Idle, modelling bursty arrival.
    burst: Option<(u32, u32)>,
    burst_pos: u32,
}

impl NetworkPackets {
    /// The packet schema, qualified.
    pub fn schema_for(qualifier: &str) -> SchemaRef {
        Schema::qualified(
            qualifier,
            vec![
                Field::new("timestamp", DataType::Int),
                Field::new("srcAddr", DataType::Int),
                Field::new("dstAddr", DataType::Int),
                Field::new("bytes", DataType::Int),
                Field::new("proto", DataType::Str),
            ],
        )
        .into_ref()
    }

    /// A generator over `hosts` source addresses with the given skew.
    pub fn new(qualifier: &str, hosts: i64, skew: f64, seed: u64) -> Self {
        assert!(hosts >= 1);
        let mut weights: Vec<f64> = (1..=hosts).map(|r| 1.0 / (r as f64).powf(skew)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        NetworkPackets {
            schema: Self::schema_for(qualifier),
            seq: 0,
            hosts,
            skew,
            cdf: weights,
            max_packets: None,
            rng: seeded(seed),
            burst: None,
            burst_pos: 0,
        }
    }

    /// Finite source of `n` packets.
    pub fn with_max_packets(mut self, n: i64) -> Self {
        self.max_packets = Some(n);
        self
    }

    /// Bursty arrival: `on` packets available, then `off` idle polls.
    pub fn with_burst(mut self, on: u32, off: u32) -> Self {
        self.burst = Some((on, off));
        self
    }

    /// The configured skew exponent.
    pub fn skew(&self) -> f64 {
        self.skew
    }

    fn draw_host(&mut self) -> i64 {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN in cdf"))
        {
            Ok(i) | Err(i) => (i as i64 + 1).min(self.hosts),
        }
    }
}

impl Source for NetworkPackets {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn next_batch(&mut self, max: usize, out: &mut Vec<Tuple>) -> Result<SourceStatus> {
        for _ in 0..max {
            if let Some(n) = self.max_packets {
                if self.seq >= n {
                    return Ok(SourceStatus::Exhausted);
                }
            }
            if let Some((on, off)) = self.burst {
                self.burst_pos = (self.burst_pos + 1) % (on + off);
                if self.burst_pos >= on {
                    return Ok(SourceStatus::Idle);
                }
            }
            self.seq += 1;
            let src = self.draw_host();
            let dst = self.rng.gen_range(1..=self.hosts);
            let bytes = self.rng.gen_range(40..1500i64);
            let proto = if self.rng.gen_bool(0.8) { "tcp" } else { "udp" };
            out.push(Tuple::new_unchecked(
                self.schema.clone(),
                vec![
                    Value::Int(self.seq),
                    Value::Int(src),
                    Value::Int(dst),
                    Value::Int(bytes),
                    Value::str(proto),
                ],
                Timestamp::logical(self.seq),
            ));
        }
        Ok(SourceStatus::Ready)
    }
}

/// Sensor readings `(timestamp, sensorId, temperature)` with slow drift and
/// dropout periods per sensor.
pub struct SensorReadings {
    schema: SchemaRef,
    seq: i64,
    sensors: Vec<SensorState>,
    next_sensor: usize,
    max_readings: Option<i64>,
    rng: TcqRng,
    dropout_prob: f64,
}

struct SensorState {
    id: i64,
    temp: f64,
    /// Remaining readings to skip (powered down).
    down_for: u32,
}

impl SensorReadings {
    /// The reading schema, qualified.
    pub fn schema_for(qualifier: &str) -> SchemaRef {
        Schema::qualified(
            qualifier,
            vec![
                Field::new("timestamp", DataType::Int),
                Field::new("sensorId", DataType::Int),
                Field::new("temperature", DataType::Float),
            ],
        )
        .into_ref()
    }

    /// `n_sensors` sensors starting at 20°C.
    pub fn new(qualifier: &str, n_sensors: usize, seed: u64) -> Self {
        SensorReadings {
            schema: Self::schema_for(qualifier),
            seq: 0,
            sensors: (0..n_sensors)
                .map(|i| SensorState {
                    id: i as i64,
                    temp: 20.0,
                    down_for: 0,
                })
                .collect(),
            next_sensor: 0,
            max_readings: None,
            rng: seeded(seed),
            dropout_prob: 0.0,
        }
    }

    /// Probability per reading that a sensor goes down for a while.
    pub fn with_dropout(mut self, prob: f64) -> Self {
        self.dropout_prob = prob;
        self
    }

    /// Finite source of `n` readings.
    pub fn with_max_readings(mut self, n: i64) -> Self {
        self.max_readings = Some(n);
        self
    }
}

impl Source for SensorReadings {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn next_batch(&mut self, max: usize, out: &mut Vec<Tuple>) -> Result<SourceStatus> {
        let mut produced = 0;
        let mut attempts = 0;
        while produced < max {
            if let Some(n) = self.max_readings {
                if self.seq >= n {
                    return Ok(SourceStatus::Exhausted);
                }
            }
            attempts += 1;
            if attempts > max * 4 + 8 {
                // Everything is down; report idle rather than spin.
                return Ok(SourceStatus::Idle);
            }
            let idx = self.next_sensor;
            self.next_sensor = (self.next_sensor + 1) % self.sensors.len();
            let dropout = self.dropout_prob > 0.0 && self.rng.gen_bool(self.dropout_prob);
            let down_len = if dropout {
                self.rng.gen_range(3..20u32)
            } else {
                0
            };
            let drift = self.rng.gen_range(-0.2..0.2);
            let s = &mut self.sensors[idx];
            if s.down_for > 0 {
                s.down_for -= 1;
                continue;
            }
            if dropout {
                s.down_for = down_len;
                continue;
            }
            s.temp += drift;
            self.seq += 1;
            out.push(Tuple::new_unchecked(
                self.schema.clone(),
                vec![Value::Int(self.seq), Value::Int(s.id), Value::Float(s.temp)],
                Timestamp::logical(self.seq),
            ));
            produced += 1;
        }
        Ok(SourceStatus::Ready)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_ticks_cover_all_symbols_each_day() {
        let mut g =
            StockTicks::new("ClosingStockPrices", &["MSFT", "IBM", "ORCL"], 1).with_max_days(10);
        let mut out = Vec::new();
        assert_eq!(
            g.next_batch(1000, &mut out).unwrap(),
            SourceStatus::Exhausted
        );
        assert_eq!(out.len(), 30);
        // day 1 has exactly the three symbols
        let day1: Vec<&str> = out
            .iter()
            .filter(|t| t.timestamp().seq() == 1)
            .map(|t| t.value(1).as_str().unwrap())
            .collect();
        assert_eq!(day1, vec!["MSFT", "IBM", "ORCL"]);
        // prices positive
        assert!(out.iter().all(|t| t.value(2).as_float().unwrap() > 0.0));
    }

    #[test]
    fn stock_ticks_deterministic_under_seed() {
        let collect = || {
            let mut g = StockTicks::new("s", &["A", "B"], 42).with_max_days(50);
            let mut out = Vec::new();
            g.next_batch(10_000, &mut out).unwrap();
            out
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn network_skew_concentrates_traffic() {
        let count_top_host = |skew: f64| {
            let mut g = NetworkPackets::new("net", 100, skew, 7).with_max_packets(5000);
            let mut out = Vec::new();
            g.next_batch(10_000, &mut out).unwrap();
            out.iter()
                .filter(|t| t.value(1).as_int().unwrap() == 1)
                .count()
        };
        let uniform = count_top_host(0.0);
        let skewed = count_top_host(1.5);
        assert!(
            skewed > uniform * 5,
            "skew should concentrate on host 1: uniform={uniform}, skewed={skewed}"
        );
    }

    #[test]
    fn network_burst_reports_idle() {
        let mut g = NetworkPackets::new("net", 10, 0.0, 3).with_burst(5, 5);
        let mut out = Vec::new();
        let mut idles = 0;
        for _ in 0..20 {
            if g.next_batch(3, &mut out).unwrap() == SourceStatus::Idle {
                idles += 1;
            }
        }
        assert!(idles > 0, "bursty source must sometimes be idle");
        assert!(!out.is_empty());
    }

    #[test]
    fn sensors_drop_out_but_stream_continues() {
        let mut g = SensorReadings::new("sensors", 5, 11)
            .with_dropout(0.2)
            .with_max_readings(500);
        let mut out = Vec::new();
        loop {
            match g.next_batch(64, &mut out).unwrap() {
                SourceStatus::Exhausted => break,
                SourceStatus::Ready | SourceStatus::Idle => {}
            }
        }
        assert_eq!(out.len(), 500);
        // timestamps strictly increasing
        assert!(out
            .windows(2)
            .all(|w| w[0].timestamp().seq() < w[1].timestamp().seq()));
    }
}
