//! The source abstraction and simple sources.

use std::io::BufRead;
use std::path::Path;

use tcq_common::{DataType, Result, SchemaRef, TcqError, Timestamp, Tuple, Value};

/// What a source reports after a batch request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceStatus {
    /// Produced tuples and has more immediately available.
    Ready,
    /// Nothing right now (bursty source in an off period); try again later.
    Idle,
    /// The source is finished (finite sources; infinite ones never report
    /// this).
    Exhausted,
}

/// A data source a wrapper can drain.
pub trait Source: Send {
    /// The schema of produced tuples.
    fn schema(&self) -> &SchemaRef;

    /// Produce up to `max` tuples into `out`.
    fn next_batch(&mut self, max: usize, out: &mut Vec<Tuple>) -> Result<SourceStatus>;
}

/// Replays a fixed vector of tuples (tests and benches).
pub struct VecSource {
    schema: SchemaRef,
    tuples: std::vec::IntoIter<Tuple>,
}

impl VecSource {
    /// Wrap a vector. All tuples must match `schema`'s arity.
    pub fn new(schema: SchemaRef, tuples: Vec<Tuple>) -> Result<Self> {
        if let Some(bad) = tuples.iter().find(|t| t.arity() != schema.len()) {
            return Err(TcqError::SchemaMismatch(format!(
                "VecSource tuple {bad:?} does not match schema {schema}"
            )));
        }
        Ok(VecSource {
            schema,
            tuples: tuples.into_iter(),
        })
    }
}

impl Source for VecSource {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn next_batch(&mut self, max: usize, out: &mut Vec<Tuple>) -> Result<SourceStatus> {
        for _ in 0..max {
            match self.tuples.next() {
                Some(t) => out.push(t),
                None => return Ok(SourceStatus::Exhausted),
            }
        }
        Ok(SourceStatus::Ready)
    }
}

/// Reads a comma-separated file against a schema, stamping logical
/// timestamps by line number (1-based).
pub struct CsvSource {
    schema: SchemaRef,
    lines: std::io::Lines<std::io::BufReader<std::fs::File>>,
    line_no: i64,
    exhausted: bool,
}

impl CsvSource {
    /// Open `path`; fields are parsed per the schema's column types.
    pub fn open(path: impl AsRef<Path>, schema: SchemaRef) -> Result<Self> {
        let file = std::fs::File::open(path)?;
        Ok(CsvSource {
            schema,
            lines: std::io::BufReader::new(file).lines(),
            line_no: 0,
            exhausted: false,
        })
    }

    fn parse_line(&self, line: &str) -> Result<Tuple> {
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != self.schema.len() {
            return Err(TcqError::SchemaMismatch(format!(
                "CSV line {} has {} fields, schema {} needs {}",
                self.line_no,
                parts.len(),
                self.schema,
                self.schema.len()
            )));
        }
        let mut values = Vec::with_capacity(parts.len());
        for (i, raw) in parts.iter().enumerate() {
            let raw = raw.trim();
            let v = if raw.is_empty() {
                Value::Null
            } else {
                match self.schema.field(i).data_type {
                    DataType::Int => Value::Int(raw.parse::<i64>().map_err(|_| {
                        TcqError::Storage(format!("line {}: bad int '{raw}'", self.line_no))
                    })?),
                    DataType::Float => Value::Float(raw.parse::<f64>().map_err(|_| {
                        TcqError::Storage(format!("line {}: bad float '{raw}'", self.line_no))
                    })?),
                    DataType::Bool => Value::Bool(raw.eq_ignore_ascii_case("true") || raw == "1"),
                    DataType::Str => Value::str(raw),
                }
            };
            values.push(v);
        }
        Tuple::new(
            self.schema.clone(),
            values,
            Timestamp::logical(self.line_no),
        )
    }
}

impl Source for CsvSource {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn next_batch(&mut self, max: usize, out: &mut Vec<Tuple>) -> Result<SourceStatus> {
        if self.exhausted {
            return Ok(SourceStatus::Exhausted);
        }
        for _ in 0..max {
            match self.lines.next() {
                Some(line) => {
                    let line = line?;
                    if line.trim().is_empty() {
                        continue;
                    }
                    self.line_no += 1;
                    out.push(self.parse_line(&line)?);
                }
                None => {
                    self.exhausted = true;
                    return Ok(SourceStatus::Exhausted);
                }
            }
        }
        Ok(SourceStatus::Ready)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{Field, Schema, TupleBuilder};

    fn schema() -> SchemaRef {
        Schema::qualified(
            "s",
            vec![
                Field::new("ts", DataType::Int),
                Field::new("sym", DataType::Str),
                Field::new("price", DataType::Float),
            ],
        )
        .into_ref()
    }

    #[test]
    fn vec_source_batches_and_exhausts() {
        let ts: Vec<Tuple> = (1..=5)
            .map(|i| {
                TupleBuilder::new(schema())
                    .push(i)
                    .push("A")
                    .push(i as f64)
                    .at(Timestamp::logical(i))
                    .build()
                    .unwrap()
            })
            .collect();
        let mut src = VecSource::new(schema(), ts).unwrap();
        let mut out = Vec::new();
        assert_eq!(src.next_batch(3, &mut out).unwrap(), SourceStatus::Ready);
        assert_eq!(out.len(), 3);
        assert_eq!(
            src.next_batch(10, &mut out).unwrap(),
            SourceStatus::Exhausted
        );
        assert_eq!(out.len(), 5);
        assert_eq!(
            src.next_batch(1, &mut out).unwrap(),
            SourceStatus::Exhausted
        );
    }

    #[test]
    fn vec_source_rejects_wrong_arity() {
        let other = Schema::new(vec![Field::new("x", DataType::Int)]).into_ref();
        let t = TupleBuilder::new(other).push(1i64).build().unwrap();
        assert!(VecSource::new(schema(), vec![t]).is_err());
    }

    #[test]
    fn csv_source_parses_types_and_stamps_timestamps() {
        let path = std::env::temp_dir().join(format!("tcq-csv-{}.csv", std::process::id()));
        std::fs::write(&path, "1,MSFT,50.5\n2,IBM,80.0\n\n3,,2.5\n").unwrap();
        let mut src = CsvSource::open(&path, schema()).unwrap();
        let mut out = Vec::new();
        assert_eq!(
            src.next_batch(10, &mut out).unwrap(),
            SourceStatus::Exhausted
        );
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].value(1), &Value::str("MSFT"));
        assert_eq!(out[0].value(2), &Value::Float(50.5));
        assert_eq!(out[1].timestamp().seq(), 2);
        assert_eq!(out[2].value(1), &Value::Null, "empty field is NULL");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_source_reports_bad_fields() {
        let path = std::env::temp_dir().join(format!("tcq-badcsv-{}.csv", std::process::id()));
        std::fs::write(&path, "1,MSFT,not_a_float\n").unwrap();
        let mut src = CsvSource::open(&path, schema()).unwrap();
        let mut out = Vec::new();
        assert!(src.next_batch(10, &mut out).is_err());
        std::fs::remove_file(path).ok();
    }
}
