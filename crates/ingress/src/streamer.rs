//! Streamers: wrapper-process threads delivering sources into Fjords.
//!
//! §4.2.3: "Streamed data is delivered from the Wrapper process to the
//! Executor via streamers. A streamer produces tuples for a stream …
//! the responsibility of fetching data from the network devolves to the
//! Wrapper process, which uses a pool of threads to implement non-blocking
//! I/O." A [`Streamer`] is one such thread: it drains a [`Source`] and
//! enqueues into a push Fjord, yielding under back-pressure instead of
//! blocking the pipeline.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use tcq_common::{FaultAction, FaultPoint, Result, SharedInjector};
use tcq_fjords::{EnqueueError, FjordMessage, Producer};

use crate::source::{Source, SourceStatus};

/// Handle to a running streamer thread.
pub struct Streamer {
    handle: Option<JoinHandle<Result<()>>>,
    stop: Arc<AtomicBool>,
    delivered: Arc<AtomicU64>,
    shed: Arc<AtomicU64>,
    name: String,
}

impl Streamer {
    /// Spawn a streamer draining `source` into `output`. Sends `Eof` when
    /// the source exhausts or the streamer is stopped.
    pub fn spawn(name: impl Into<String>, source: Box<dyn Source>, output: Producer) -> Streamer {
        Self::spawn_with_injector(name, source, output, None)
    }

    /// Spawn a streamer that polls `injector` at
    /// [`FaultPoint::FjordEnqueue`] before enqueuing each tuple: an
    /// injected `Overflow` sheds the tuple (counted), an injected `Error`
    /// fails the streamer.
    pub fn spawn_with_injector(
        name: impl Into<String>,
        mut source: Box<dyn Source>,
        output: Producer,
        injector: Option<SharedInjector>,
    ) -> Streamer {
        let name = name.into();
        let stop = Arc::new(AtomicBool::new(false));
        let delivered = Arc::new(AtomicU64::new(0));
        let shed = Arc::new(AtomicU64::new(0));
        let stop2 = Arc::clone(&stop);
        let delivered2 = Arc::clone(&delivered);
        let shed2 = Arc::clone(&shed);
        let tname = name.clone();
        let handle = std::thread::Builder::new()
            .name(format!("streamer-{tname}"))
            .spawn(move || -> Result<()> {
                let mut batch: Vec<tcq_common::Tuple> = Vec::with_capacity(64);
                'outer: loop {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    batch.clear();
                    let status = source.next_batch(64, &mut batch)?;
                    for t in batch.drain(..) {
                        if let Some(injector) = &injector {
                            match injector.poll(FaultPoint::FjordEnqueue) {
                                Some(FaultAction::Overflow) => {
                                    // Injected full queue: shed and count.
                                    shed2.fetch_add(1, Ordering::Relaxed);
                                    continue;
                                }
                                Some(FaultAction::Error(msg)) => {
                                    let _ = output.enqueue(FjordMessage::Eof);
                                    return Err(tcq_common::TcqError::Ingress(format!(
                                        "injected enqueue fault: {msg}"
                                    )));
                                }
                                _ => {}
                            }
                        }
                        let mut msg = FjordMessage::Tuple(t);
                        loop {
                            match output.enqueue(msg) {
                                Ok(()) => {
                                    delivered2.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                Err(EnqueueError::Full(m)) => {
                                    // Back-pressure: yield, retry.
                                    if stop2.load(Ordering::Acquire) {
                                        break 'outer;
                                    }
                                    msg = m;
                                    std::thread::yield_now();
                                }
                                Err(EnqueueError::Disconnected(_)) => break 'outer,
                            }
                        }
                    }
                    match status {
                        SourceStatus::Exhausted => break,
                        SourceStatus::Idle => std::thread::yield_now(),
                        SourceStatus::Ready => {}
                    }
                }
                // Best effort EOF; consumer may already be gone.
                let _ = output.enqueue(FjordMessage::Eof);
                Ok(())
            })
            .expect("spawn streamer thread");
        Streamer {
            handle: Some(handle),
            stop,
            delivered,
            shed,
            name,
        }
    }

    /// Tuples delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Tuples shed by injected enqueue overflows.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// The streamer's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Request stop and wait for the thread.
    pub fn stop(mut self) -> Result<()> {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            join_streamer(h, &self.name)?;
        }
        Ok(())
    }

    /// Wait for the source to exhaust (finite sources).
    pub fn join(mut self) -> Result<()> {
        if let Some(h) = self.handle.take() {
            join_streamer(h, &self.name)?;
        }
        Ok(())
    }
}

/// Join the streamer thread, converting a panic into an error that
/// carries the panic message (`&str` and `String` payloads — the two
/// `panic!` produces) instead of discarding it.
fn join_streamer(h: JoinHandle<Result<()>>, name: &str) -> Result<()> {
    match h.join() {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(tcq_common::TcqError::Executor(format!(
                "streamer {name} panicked: {msg}"
            )))
        }
    }
}

impl Drop for Streamer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::StockTicks;
    use crate::source::VecSource;
    use tcq_fjords::{fjord, DequeueResult, QueueKind};

    #[test]
    fn streamer_delivers_everything_then_eof() {
        let g = StockTicks::new("s", &["A", "B"], 5).with_max_days(100);
        let (p, c) = fjord(16, QueueKind::Push);
        let s = Streamer::spawn("stocks", Box::new(g), p);
        let mut got = 0;
        loop {
            match c.dequeue() {
                DequeueResult::Msg(FjordMessage::Tuple(_)) => got += 1,
                DequeueResult::Msg(FjordMessage::Eof) => break,
                DequeueResult::Msg(FjordMessage::Punct(_)) => {}
                DequeueResult::Empty => std::thread::yield_now(),
                DequeueResult::Disconnected => break,
            }
        }
        assert_eq!(got, 200);
        assert_eq!(s.delivered(), 200);
        s.join().unwrap();
    }

    #[test]
    fn backpressure_does_not_lose_tuples() {
        // Tiny queue + slow consumer: all tuples still arrive, in order.
        let g = StockTicks::new("s", &["A"], 7).with_max_days(500);
        let (p, c) = fjord(2, QueueKind::Push);
        let s = Streamer::spawn("stocks", Box::new(g), p);
        let mut seqs = Vec::new();
        loop {
            match c.dequeue() {
                DequeueResult::Msg(FjordMessage::Tuple(t)) => {
                    seqs.push(t.timestamp().seq());
                    if seqs.len() % 50 == 0 {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                }
                DequeueResult::Msg(FjordMessage::Eof) => break,
                DequeueResult::Empty => std::thread::yield_now(),
                _ => break,
            }
        }
        assert_eq!(seqs.len(), 500);
        assert!(seqs.windows(2).all(|w| w[0] <= w[1]), "order preserved");
        s.join().unwrap();
    }

    #[test]
    fn stop_terminates_infinite_sources() {
        let g = StockTicks::new("s", &["A"], 9); // infinite
        let (p, c) = fjord(8, QueueKind::Push);
        let s = Streamer::spawn("stocks", Box::new(g), p);
        // consume a few then stop
        let mut got = 0;
        while got < 20 {
            if let DequeueResult::Msg(FjordMessage::Tuple(_)) = c.dequeue() {
                got += 1;
            } else {
                std::thread::yield_now();
            }
        }
        s.stop().unwrap();
        // queue drains to Eof or disconnect; either way we terminate
    }

    #[test]
    fn dropped_consumer_stops_streamer() {
        let g = StockTicks::new("s", &["A"], 9);
        let (p, c) = fjord(8, QueueKind::Push);
        let s = Streamer::spawn("stocks", Box::new(g), p);
        drop(c);
        // join returns (thread noticed disconnection)
        s.join().unwrap();
    }

    #[test]
    fn panic_message_survives_join() {
        use crate::source::SourceStatus;
        use tcq_common::{Result, SchemaRef, Tuple};

        struct PanickingSource(SchemaRef);
        impl crate::source::Source for PanickingSource {
            fn schema(&self) -> &SchemaRef {
                &self.0
            }
            fn next_batch(&mut self, _max: usize, _out: &mut Vec<Tuple>) -> Result<SourceStatus> {
                panic!("sensor wire cut at packet 17");
            }
        }

        let (p, _c) = fjord(8, QueueKind::Push);
        let src = PanickingSource(StockTicks::schema_for("s"));
        let s = Streamer::spawn("flaky", Box::new(src), p);
        let err = s.join().unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("sensor wire cut at packet 17"),
            "panic payload must reach the caller, got: {text}"
        );
        assert!(text.contains("flaky"), "error names the streamer: {text}");
    }

    #[test]
    fn finite_vec_source_roundtrip() {
        let schema = StockTicks::schema_for("s");
        let tuples: Vec<_> = {
            let mut g = StockTicks::new("s", &["A"], 3).with_max_days(10);
            let mut out = Vec::new();
            g.next_batch(100, &mut out).unwrap();
            out
        };
        let n = tuples.len();
        let src = VecSource::new(schema, tuples).unwrap();
        let (p, c) = fjord(64, QueueKind::Push);
        let s = Streamer::spawn("vec", Box::new(src), p);
        s.join().unwrap();
        let msgs = c.drain();
        assert_eq!(msgs.len(), n + 1); // + Eof
        assert!(msgs.last().unwrap().is_eof());
    }
}
