//! Supervised ingress: keep flaky sources flowing.
//!
//! TelegraphCQ ingests "from an uncertain world": wrappers talk to network
//! feeds and sensors that disconnect, emit garbage, or crash (§2.3 notes
//! sensors "may have run out of power or temporarily disconnected"). A
//! [`Supervisor`] is a [`Streamer`](crate::Streamer) hardened for that
//! world: it catches source panics and errors, restarts the source with
//! capped exponential backoff, filters malformed tuples, and applies a
//! configurable [`DegradePolicy`] when the downstream Fjord stays full —
//! all reported through [`SupervisorStats`] so loss is *accounted*, never
//! silent.
//!
//! The source is rebuilt by a [`SourceFactory`] closure receiving the
//! restart attempt number and the count of tuples already delivered, so
//! resumable sources can skip what the pipeline has already seen
//! (exactly-once across restarts).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use tcq_common::sync::Mutex;
use tcq_common::{
    FaultAction, FaultPoint, Result, Schema, SharedInjector, TcqError, Timestamp, Tuple,
};
use tcq_fjords::{EnqueueError, FjordMessage, Producer};

use crate::source::{Source, SourceStatus};

/// Rebuilds the supervised source after a failure. Receives the restart
/// attempt (0 for the initial build) and how many tuples have already
/// been delivered downstream, so a resumable source can skip them.
pub type SourceFactory = Box<dyn FnMut(u64, u64) -> Result<Box<dyn Source>> + Send>;

/// What to do with tuples when the downstream Fjord stays full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradePolicy {
    /// Never drop: yield and retry until the consumer catches up (the
    /// default — loss-free but the source stalls).
    Backpressure,
    /// Drop the *oldest* queued tuple to make room (freshest data wins —
    /// the right policy for monitoring streams).
    ShedOldest,
    /// Drop the incoming tuple (cheapest; keeps the queue's history).
    ShedNewest,
    /// Under overflow keep one tuple in `keep_one_in`, dropping the rest
    /// (graceful quality degradation instead of a hard stall).
    Sample {
        /// Keep every `keep_one_in`-th overflowing tuple (≥ 1).
        keep_one_in: u32,
    },
    /// Token-bucket admission: each *offered* tuple refills `rate`
    /// millitokens (capped at `burst` whole tokens); keeping an
    /// overflowing tuple spends one whole token (1000 millitokens),
    /// otherwise it sheds. Time advances per tuple, not per wall-clock
    /// second, so drop patterns are deterministic and seed-reproducible.
    /// Compared with [`DegradePolicy::Sample`], short bursts are absorbed
    /// loss-free (the bucket drains instead of shedding) while sustained
    /// overflow converges to keeping `rate / 1000` of the overflow.
    TokenBucket {
        /// Millitokens refilled per offered tuple (1000 keeps every
        /// overflowing tuple; 250 converges to one in four).
        rate: u32,
        /// Bucket capacity in whole tokens — the number of back-to-back
        /// overflowing tuples absorbable after a quiet spell.
        burst: u32,
    },
}

/// Deterministic overflow-admission state for one supervised run.
///
/// Pure bookkeeping — no threads, no clock. [`OverflowGate::offered`] is
/// called exactly once per tuple the source hands over, advancing
/// token-bucket time; the admit/shed decision for an overflowing tuple is
/// then made once (never re-rolled on enqueue retries), keeping the shed
/// pattern a pure function of the tuple sequence.
#[derive(Debug, Clone)]
pub struct OverflowGate {
    /// Millitokens regained per offered tuple.
    rate: u64,
    /// Bucket capacity in millitokens.
    cap: u64,
    /// Current fill, in millitokens.
    tokens: u64,
    /// Overflow arrivals seen (drives [`DegradePolicy::Sample`]).
    overflow_seq: u64,
}

/// Millitokens spent to keep one overflowing tuple.
const TOKEN: u64 = 1000;

impl OverflowGate {
    /// Gate for `policy`; non-token-bucket policies get an inert gate.
    pub fn new(policy: DegradePolicy) -> Self {
        match policy {
            DegradePolicy::TokenBucket { rate, burst } => OverflowGate {
                rate: rate as u64,
                cap: burst as u64 * TOKEN,
                // Start full: the configured burst is available immediately.
                tokens: burst as u64 * TOKEN,
                overflow_seq: 0,
            },
            _ => OverflowGate {
                rate: 0,
                cap: 0,
                tokens: 0,
                overflow_seq: 0,
            },
        }
    }

    /// One tuple offered: refill the bucket. Call exactly once per tuple.
    pub fn offered(&mut self) {
        self.tokens = (self.tokens + self.rate).min(self.cap);
    }

    /// Decide an overflowing tuple's fate under the token bucket: `true`
    /// spends a token and keeps it (back-pressure until it fits), `false`
    /// sheds it.
    pub fn admit_overflow(&mut self) -> bool {
        if self.tokens >= TOKEN {
            self.tokens -= TOKEN;
            true
        } else {
            false
        }
    }

    /// Decide an overflow arrival under [`DegradePolicy::Sample`]: `true`
    /// keeps this one (it is the `keep_one_in`-th), `false` sheds it.
    pub fn sample_keeps(&mut self, keep_one_in: u32) -> bool {
        self.overflow_seq += 1;
        keep_one_in <= 1 || self.overflow_seq.is_multiple_of(keep_one_in as u64)
    }
}

/// Supervision knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Give up after this many restarts (the stream then EOFs).
    pub max_restarts: u64,
    /// First restart delay; doubles per consecutive failure.
    pub initial_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
    /// Overflow behaviour.
    pub policy: DegradePolicy,
    /// Resume cursor: tuples this stream already delivered before a
    /// restore. Seeds the delivered counter, so the first factory call
    /// sees the pre-crash total and resumable sources skip what was
    /// already consumed.
    pub initial_delivered: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_restarts: 8,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            policy: DegradePolicy::Backpressure,
            initial_delivered: 0,
        }
    }
}

/// Per-stream supervision counters. Every dropped or rejected tuple shows
/// up here: `delivered + shed + malformed` accounts for every tuple the
/// source produced.
#[derive(Debug, Clone, Default)]
pub struct SupervisorStats {
    /// Tuples delivered downstream.
    pub delivered: u64,
    /// Source restarts performed (panics + errors that were retried).
    pub restarts: u64,
    /// Restarts caused by a panicking source.
    pub panics: u64,
    /// Restarts caused by a source read error.
    pub source_errors: u64,
    /// Tuples dropped by the degradation policy (shed-oldest counts the
    /// displaced victim, shed-newest/sample the rejected arrival).
    pub shed: u64,
    /// Malformed (schema-arity-mismatched) tuples filtered out.
    pub malformed: u64,
    /// True once the restart budget is exhausted and the stream EOFed.
    pub gave_up: bool,
    /// Message of the most recent failure, if any.
    pub last_failure: Option<String>,
}

#[derive(Default)]
struct SharedStats {
    delivered: AtomicU64,
    restarts: AtomicU64,
    panics: AtomicU64,
    source_errors: AtomicU64,
    shed: AtomicU64,
    malformed: AtomicU64,
    gave_up: AtomicBool,
    last_failure: Mutex<Option<String>>,
}

impl SharedStats {
    fn snapshot(&self) -> SupervisorStats {
        SupervisorStats {
            delivered: self.delivered.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            source_errors: self.source_errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            gave_up: self.gave_up.load(Ordering::Relaxed),
            last_failure: self.last_failure.lock().clone(),
        }
    }
}

/// Why one supervised run of the source ended.
enum RunEnd {
    Exhausted,
    Stopped,
    Disconnected,
    Failed(String),
}

/// Handle to a supervised ingress thread.
pub struct Supervisor {
    handle: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    stats: Arc<SharedStats>,
    name: String,
}

impl Supervisor {
    /// Spawn a supervised streamer: build a source via `factory`, drain it
    /// into `output`, and on panic or error rebuild and resume per
    /// `config`. EOF is sent exactly once — when the source exhausts, the
    /// restart budget runs out, or `stop` is requested.
    pub fn spawn(
        name: impl Into<String>,
        mut factory: SourceFactory,
        output: Producer,
        config: SupervisorConfig,
    ) -> Supervisor {
        let name = name.into();
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(SharedStats::default());
        stats
            .delivered
            .store(config.initial_delivered, Ordering::Relaxed);
        let stop2 = Arc::clone(&stop);
        let stats2 = Arc::clone(&stats);
        let tname = name.clone();
        let handle = std::thread::Builder::new()
            .name(format!("supervisor-{tname}"))
            .spawn(move || {
                let mut attempt: u64 = 0;
                loop {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    let delivered = stats2.delivered.load(Ordering::Relaxed);
                    let mut source = match factory(attempt, delivered) {
                        Ok(s) => s,
                        Err(e) => {
                            record_failure(&stats2, &format!("factory: {e}"));
                            stats2.source_errors.fetch_add(1, Ordering::Relaxed);
                            attempt += 1;
                            if attempt > config.max_restarts {
                                stats2.gave_up.store(true, Ordering::Relaxed);
                                break;
                            }
                            stats2.restarts.fetch_add(1, Ordering::Relaxed);
                            backoff(&config, attempt, &stop2);
                            continue;
                        }
                    };
                    let end = catch_unwind(AssertUnwindSafe(|| {
                        run_source(&mut source, &output, &stop2, &stats2, config.policy)
                    }));
                    match end {
                        Ok(RunEnd::Exhausted) | Ok(RunEnd::Stopped) => break,
                        Ok(RunEnd::Disconnected) => return, // consumer gone: no Eof possible
                        Ok(RunEnd::Failed(msg)) => {
                            record_failure(&stats2, &msg);
                            stats2.source_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(payload) => {
                            let msg = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "non-string panic payload".to_string());
                            record_failure(&stats2, &format!("panic: {msg}"));
                            stats2.panics.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    attempt += 1;
                    if attempt > config.max_restarts {
                        stats2.gave_up.store(true, Ordering::Relaxed);
                        break;
                    }
                    stats2.restarts.fetch_add(1, Ordering::Relaxed);
                    backoff(&config, attempt, &stop2);
                }
                let _ = output.enqueue(FjordMessage::Eof);
            })
            .expect("spawn supervisor thread");
        Supervisor {
            handle: Some(handle),
            stop,
            stats,
            name,
        }
    }

    /// Current counters.
    pub fn stats(&self) -> SupervisorStats {
        self.stats.snapshot()
    }

    /// Tuples delivered so far.
    pub fn delivered(&self) -> u64 {
        self.stats.delivered.load(Ordering::Relaxed)
    }

    /// The supervised stream's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Request stop and wait; returns the final counters.
    pub fn stop(mut self) -> SupervisorStats {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.stats.snapshot()
    }

    /// Wait for the stream to end (exhaustion or exhausted restart
    /// budget); returns the final counters.
    pub fn join(mut self) -> SupervisorStats {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.stats.snapshot()
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn record_failure(stats: &SharedStats, msg: &str) {
    *stats.last_failure.lock() = Some(msg.to_string());
}

/// Sleep `initial * 2^(attempt-1)` capped at `max_backoff`, in small
/// chunks so a stop request interrupts the wait.
fn backoff(config: &SupervisorConfig, attempt: u64, stop: &AtomicBool) {
    let exp = attempt.saturating_sub(1).min(20) as u32;
    let delay = config
        .initial_backoff
        .saturating_mul(1u32 << exp)
        .min(config.max_backoff);
    let chunk = Duration::from_millis(5);
    let mut remaining = delay;
    while remaining > Duration::ZERO && !stop.load(Ordering::Acquire) {
        let step = remaining.min(chunk);
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
}

/// Drain `source` into `output` until it ends, honouring the degradation
/// policy. Malformed tuples (arity != source schema arity) are filtered
/// and counted, not delivered.
fn run_source(
    source: &mut Box<dyn Source>,
    output: &Producer,
    stop: &AtomicBool,
    stats: &SharedStats,
    policy: DegradePolicy,
) -> RunEnd {
    let expected_arity = source.schema().len();
    let mut batch: Vec<Tuple> = Vec::with_capacity(64);
    let mut gate = OverflowGate::new(policy);
    loop {
        if stop.load(Ordering::Acquire) {
            return RunEnd::Stopped;
        }
        batch.clear();
        let status = match source.next_batch(64, &mut batch) {
            Ok(s) => s,
            Err(e) => return RunEnd::Failed(e.to_string()),
        };
        for t in batch.drain(..) {
            if t.arity() != expected_arity {
                stats.malformed.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            match deliver(output, t, stop, stats, policy, &mut gate) {
                Ok(true) => {}
                Ok(false) => return RunEnd::Stopped,
                Err(()) => return RunEnd::Disconnected,
            }
        }
        match status {
            SourceStatus::Exhausted => return RunEnd::Exhausted,
            SourceStatus::Idle => std::thread::yield_now(),
            SourceStatus::Ready => {}
        }
    }
}

/// Deliver one tuple under `policy`. `Ok(true)` = continue, `Ok(false)` =
/// stop requested mid-backpressure, `Err(())` = consumer disconnected.
fn deliver(
    output: &Producer,
    t: Tuple,
    stop: &AtomicBool,
    stats: &SharedStats,
    policy: DegradePolicy,
    gate: &mut OverflowGate,
) -> std::result::Result<bool, ()> {
    gate.offered();
    let mut msg = FjordMessage::Tuple(t);
    // The token-bucket verdict is rolled once per tuple, on its first
    // overflow — not per retry — so shed patterns stay deterministic.
    let mut admitted = false;
    loop {
        match policy {
            DegradePolicy::ShedOldest => {
                return match output.enqueue_displacing(msg) {
                    Ok(displaced) => {
                        stats.delivered.fetch_add(1, Ordering::Relaxed);
                        if displaced.is_some() {
                            // The victim moves from delivered to shed:
                            // delivered + shed still equals produced.
                            stats.delivered.fetch_sub(1, Ordering::Relaxed);
                            stats.shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(true)
                    }
                    Err(EnqueueError::Full(_)) => {
                        // Queue full of control messages: fall back to shed.
                        stats.shed.fetch_add(1, Ordering::Relaxed);
                        Ok(true)
                    }
                    Err(EnqueueError::Disconnected(_)) => Err(()),
                };
            }
            _ => match output.enqueue(msg) {
                Ok(()) => {
                    stats.delivered.fetch_add(1, Ordering::Relaxed);
                    return Ok(true);
                }
                Err(EnqueueError::Full(m)) => match policy {
                    DegradePolicy::Backpressure => {
                        if stop.load(Ordering::Acquire) {
                            return Ok(false);
                        }
                        msg = m;
                        std::thread::yield_now();
                    }
                    DegradePolicy::ShedNewest => {
                        stats.shed.fetch_add(1, Ordering::Relaxed);
                        return Ok(true);
                    }
                    DegradePolicy::Sample { keep_one_in } => {
                        if !gate.sample_keeps(keep_one_in) {
                            stats.shed.fetch_add(1, Ordering::Relaxed);
                            return Ok(true);
                        }
                        // The kept sample waits for room (backpressure).
                        if stop.load(Ordering::Acquire) {
                            return Ok(false);
                        }
                        msg = m;
                        std::thread::yield_now();
                    }
                    DegradePolicy::TokenBucket { .. } => {
                        if !admitted && !gate.admit_overflow() {
                            stats.shed.fetch_add(1, Ordering::Relaxed);
                            return Ok(true);
                        }
                        admitted = true;
                        // A token was spent: this tuple is kept, waiting
                        // for room like backpressure.
                        if stop.load(Ordering::Acquire) {
                            return Ok(false);
                        }
                        msg = m;
                        std::thread::yield_now();
                    }
                    DegradePolicy::ShedOldest => unreachable!("handled above"),
                },
                Err(EnqueueError::Disconnected(_)) => return Err(()),
            },
        }
    }
}

/// Wrap a source with a chaos injector: [`FaultPoint::SourceRead`] faults
/// turn into read errors, panics, stalls, or malformed (empty) tuples —
/// the adversary the [`Supervisor`] exists to survive.
pub struct ChaosSource {
    inner: Box<dyn Source>,
    injector: SharedInjector,
}

impl ChaosSource {
    /// Wrap `inner`, polling `injector` before every read.
    pub fn new(inner: Box<dyn Source>, injector: SharedInjector) -> Self {
        ChaosSource { inner, injector }
    }
}

impl Source for ChaosSource {
    fn schema(&self) -> &tcq_common::SchemaRef {
        self.inner.schema()
    }

    fn next_batch(&mut self, max: usize, out: &mut Vec<Tuple>) -> Result<SourceStatus> {
        match self.injector.poll(FaultPoint::SourceRead) {
            Some(FaultAction::Error(msg)) => {
                return Err(TcqError::Ingress(format!("injected read error: {msg}")));
            }
            Some(FaultAction::Panic(msg)) => panic!("{msg}"),
            Some(FaultAction::MalformedTuple) => {
                // An arity-0 tuple: garbage relative to any real schema.
                let empty = Schema::new(vec![]).into_ref();
                out.push(Tuple::new(empty, vec![], Timestamp::unknown())?);
                return Ok(SourceStatus::Ready);
            }
            Some(FaultAction::Stall { .. }) => return Ok(SourceStatus::Idle),
            _ => {}
        }
        self.inner.next_batch(max, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::StockTicks;
    use crate::source::VecSource;
    use tcq_common::{FaultPlan, SchemaRef};
    use tcq_fjords::{fjord, DequeueResult, QueueKind};

    fn quick_config(policy: DegradePolicy) -> SupervisorConfig {
        SupervisorConfig {
            max_restarts: 8,
            initial_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(2),
            policy,
            initial_delivered: 0,
        }
    }

    fn stock_tuples(n: u32) -> (SchemaRef, Vec<Tuple>) {
        let schema = StockTicks::schema_for("s");
        let mut g = StockTicks::new("s", &["A"], 5).with_max_days(n as i64);
        let mut out = Vec::new();
        loop {
            if g.next_batch(1024, &mut out).unwrap() == SourceStatus::Exhausted {
                break;
            }
        }
        (schema, out)
    }

    /// Delivers one tuple per call; panics once it has handed out
    /// `panic_after` tuples (if set).
    struct FlakyVec {
        schema: SchemaRef,
        tuples: Vec<Tuple>,
        pos: usize,
        panic_after: Option<usize>,
    }

    impl Source for FlakyVec {
        fn schema(&self) -> &SchemaRef {
            &self.schema
        }
        fn next_batch(&mut self, _max: usize, out: &mut Vec<Tuple>) -> Result<SourceStatus> {
            if let Some(n) = self.panic_after {
                if self.pos >= n {
                    panic!("flaky source died after {n} tuples");
                }
            }
            if self.pos >= self.tuples.len() {
                return Ok(SourceStatus::Exhausted);
            }
            out.push(self.tuples[self.pos].clone());
            self.pos += 1;
            Ok(SourceStatus::Ready)
        }
    }

    #[test]
    fn restart_after_panic_resumes_exactly_once() {
        let (schema, master) = stock_tuples(100);
        let total = master.len();
        let expect: Vec<i64> = master.iter().map(|t| t.timestamp().seq()).collect();
        let factory: SourceFactory = {
            let master = master.clone();
            let schema = schema.clone();
            Box::new(move |attempt, delivered| {
                Ok(Box::new(FlakyVec {
                    schema: schema.clone(),
                    tuples: master[delivered as usize..].to_vec(),
                    pos: 0,
                    // only the first incarnation is flaky
                    panic_after: if attempt == 0 { Some(40) } else { None },
                }))
            })
        };
        let (p, c) = fjord(256, QueueKind::Push);
        let s = Supervisor::spawn(
            "flaky",
            factory,
            p,
            quick_config(DegradePolicy::Backpressure),
        );
        let mut seqs = Vec::new();
        loop {
            match c.dequeue() {
                DequeueResult::Msg(FjordMessage::Tuple(t)) => seqs.push(t.timestamp().seq()),
                DequeueResult::Msg(FjordMessage::Eof) => break,
                DequeueResult::Msg(FjordMessage::Punct(_)) => {}
                DequeueResult::Empty => std::thread::yield_now(),
                DequeueResult::Disconnected => break,
            }
        }
        let stats = s.join();
        assert_eq!(seqs, expect, "every tuple exactly once, in order");
        assert_eq!(stats.delivered, total as u64);
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.restarts, 1);
        assert!(!stats.gave_up);
        let failure = stats.last_failure.unwrap();
        assert!(failure.contains("flaky source died"), "got: {failure}");
    }

    #[test]
    fn initial_delivered_seeds_the_resume_cursor() {
        // A restored server passes the checkpointed delivery count; the
        // factory sees it on the first attempt (skipping consumed input)
        // and the counter continues from there, so totals span the crash.
        let (schema, master) = stock_tuples(50);
        let total = master.len();
        let already = (total / 2) as u64;
        let factory: SourceFactory = {
            let master = master.clone();
            let schema = schema.clone();
            Box::new(move |attempt, delivered| {
                assert_eq!(attempt, 0);
                assert_eq!(delivered, already, "factory must see the seeded cursor");
                Ok(Box::new(VecSource::new(
                    schema.clone(),
                    master[delivered as usize..].to_vec(),
                )?))
            })
        };
        let mut config = quick_config(DegradePolicy::Backpressure);
        config.initial_delivered = already;
        let (p, c) = fjord(256, QueueKind::Push);
        let s = Supervisor::spawn("resumed", factory, p, config);
        let mut got = 0u64;
        loop {
            match c.dequeue() {
                DequeueResult::Msg(FjordMessage::Tuple(_)) => got += 1,
                DequeueResult::Msg(FjordMessage::Eof) => break,
                DequeueResult::Msg(FjordMessage::Punct(_)) => {}
                DequeueResult::Empty => std::thread::yield_now(),
                DequeueResult::Disconnected => break,
            }
        }
        let stats = s.join();
        assert_eq!(got, total as u64 - already, "only the tail re-streams");
        assert_eq!(
            stats.delivered, total as u64,
            "counter continues from the seed"
        );
        assert_eq!(stats.restarts, 0);
    }

    #[test]
    fn gives_up_after_restart_budget() {
        struct AlwaysErr(SchemaRef);
        impl Source for AlwaysErr {
            fn schema(&self) -> &SchemaRef {
                &self.0
            }
            fn next_batch(&mut self, _max: usize, _out: &mut Vec<Tuple>) -> Result<SourceStatus> {
                Err(TcqError::Ingress("wire down".into()))
            }
        }
        let schema = StockTicks::schema_for("s");
        let factory: SourceFactory = Box::new(move |_, _| Ok(Box::new(AlwaysErr(schema.clone()))));
        let (p, c) = fjord(8, QueueKind::Push);
        let mut cfg = quick_config(DegradePolicy::Backpressure);
        cfg.max_restarts = 3;
        let s = Supervisor::spawn("doomed", factory, p, cfg);
        let stats = s.join();
        assert!(stats.gave_up);
        assert_eq!(stats.restarts, 3);
        assert_eq!(stats.source_errors, 4, "initial try + 3 retries");
        assert_eq!(stats.delivered, 0);
        // The stream still terminates cleanly for the consumer.
        let msgs = c.drain();
        assert!(msgs.last().unwrap().is_eof());
    }

    #[test]
    fn shed_newest_drops_arrivals_and_accounts_them() {
        let (schema, master) = stock_tuples(50);
        let total = master.len() as u64;
        let src = VecSource::new(schema, master).unwrap();
        let factory: SourceFactory = {
            let mut src = Some(src);
            Box::new(move |_, _| Ok(Box::new(src.take().expect("single run")) as Box<dyn Source>))
        };
        let (p, c) = fjord(4, QueueKind::Push);
        let s = Supervisor::spawn("shed", factory, p, quick_config(DegradePolicy::ShedNewest));
        let stats = s.join();
        let got = c
            .drain()
            .iter()
            .filter(|m| matches!(m, FjordMessage::Tuple(_)))
            .count() as u64;
        assert_eq!(stats.delivered + stats.shed, total, "every tuple accounted");
        assert_eq!(
            got, stats.delivered,
            "delivered matches what is in the queue"
        );
        assert!(stats.shed > 0, "tiny queue must overflow");
    }

    #[test]
    fn shed_oldest_keeps_the_freshest_tuples() {
        let (schema, master) = stock_tuples(50);
        let total = master.len() as u64;
        let tail: Vec<i64> = master[master.len() - 4..]
            .iter()
            .map(|t| t.timestamp().seq())
            .collect();
        let src = VecSource::new(schema, master).unwrap();
        let factory: SourceFactory = {
            let mut src = Some(src);
            Box::new(move |_, _| Ok(Box::new(src.take().expect("single run")) as Box<dyn Source>))
        };
        let (p, c) = fjord(4, QueueKind::Push);
        let s = Supervisor::spawn("fresh", factory, p, quick_config(DegradePolicy::ShedOldest));
        let stats = s.join();
        let seqs: Vec<i64> = c
            .drain()
            .into_iter()
            .filter_map(|m| match m {
                FjordMessage::Tuple(t) => Some(t.timestamp().seq()),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, tail, "queue holds exactly the 4 freshest tuples");
        assert_eq!(stats.delivered + stats.shed, total, "every tuple accounted");
        assert_eq!(stats.delivered, 4);
    }

    #[test]
    fn sample_policy_degrades_instead_of_stalling() {
        let (schema, master) = stock_tuples(200);
        let total = master.len() as u64;
        let src = VecSource::new(schema, master).unwrap();
        let factory: SourceFactory = {
            let mut src = Some(src);
            Box::new(move |_, _| Ok(Box::new(src.take().expect("single run")) as Box<dyn Source>))
        };
        let (p, c) = fjord(2, QueueKind::Push);
        let s = Supervisor::spawn(
            "sampled",
            factory,
            p,
            quick_config(DegradePolicy::Sample { keep_one_in: 4 }),
        );
        // Slow consumer: drains with a delay so the queue stays hot.
        let consumer = std::thread::spawn(move || {
            let mut got = 0u64;
            loop {
                match c.dequeue() {
                    DequeueResult::Msg(FjordMessage::Tuple(_)) => {
                        got += 1;
                        std::thread::sleep(Duration::from_micros(50));
                    }
                    DequeueResult::Msg(FjordMessage::Eof) => break,
                    DequeueResult::Msg(FjordMessage::Punct(_)) => {}
                    DequeueResult::Empty => std::thread::yield_now(),
                    DequeueResult::Disconnected => break,
                }
            }
            got
        });
        let stats = s.join();
        let got = consumer.join().unwrap();
        assert_eq!(stats.delivered + stats.shed, total, "every tuple accounted");
        assert_eq!(got, stats.delivered);
        assert!(!stats.gave_up);
    }

    /// Drive a gate over a synthetic overflow pattern: `overflows(i)` says
    /// whether tuple `i` hits a full queue. Returns each overflowing
    /// tuple's fate (`true` = kept) in offer order.
    fn drive_gate(
        policy: DegradePolicy,
        tuples: usize,
        overflows: impl Fn(usize) -> bool,
    ) -> Vec<bool> {
        let mut gate = OverflowGate::new(policy);
        let mut fates = Vec::new();
        for i in 0..tuples {
            gate.offered();
            if overflows(i) {
                let kept = match policy {
                    DegradePolicy::TokenBucket { .. } => gate.admit_overflow(),
                    DegradePolicy::Sample { keep_one_in } => gate.sample_keeps(keep_one_in),
                    _ => true,
                };
                fates.push(kept);
            }
        }
        fates
    }

    fn longest_shed_run(fates: &[bool]) -> usize {
        let mut worst = 0;
        let mut run = 0;
        for &kept in fates {
            if kept {
                run = 0;
            } else {
                run += 1;
                worst = worst.max(run);
            }
        }
        worst
    }

    #[test]
    fn token_bucket_absorbs_intermittent_overflow_sample_sheds() {
        // Every 10th of 1000 tuples overflows: nine quiet tuples refill
        // 2250 millitokens between overflows, so the bucket never runs
        // dry — zero loss. Sample{4} sheds three out of four regardless.
        let bucket = drive_gate(
            DegradePolicy::TokenBucket {
                rate: 250,
                burst: 2,
            },
            1000,
            |i| i % 10 == 9,
        );
        let sample = drive_gate(DegradePolicy::Sample { keep_one_in: 4 }, 1000, |i| {
            i % 10 == 9
        });
        assert_eq!(bucket.len(), 100);
        assert!(bucket.iter().all(|&kept| kept), "bucket absorbs the burst");
        let sample_shed = sample.iter().filter(|&&kept| !kept).count();
        assert_eq!(sample_shed, 75, "sample blindly sheds 3 in 4");
    }

    #[test]
    fn token_bucket_matches_sample_rate_under_sustained_overflow() {
        // Every tuple overflows: both policies converge to keeping one in
        // four, and the bucket's worst consecutive-shed run is no longer
        // than sample's (equal smoothness at the same average rate).
        let bucket = drive_gate(
            DegradePolicy::TokenBucket {
                rate: 250,
                burst: 2,
            },
            1000,
            |_| true,
        );
        let sample = drive_gate(DegradePolicy::Sample { keep_one_in: 4 }, 1000, |_| true);
        let bucket_kept = bucket.iter().filter(|&&kept| kept).count();
        let sample_kept = sample.iter().filter(|&&kept| kept).count();
        assert!(
            (bucket_kept as i64 - sample_kept as i64).abs() <= 3,
            "both keep ~1 in 4: bucket {bucket_kept}, sample {sample_kept}"
        );
        assert!(
            longest_shed_run(&bucket) <= longest_shed_run(&sample),
            "token bucket is no burstier than sampling"
        );
    }

    #[test]
    fn overflow_gate_is_deterministic() {
        let policy = DegradePolicy::TokenBucket {
            rate: 333,
            burst: 3,
        };
        let a = drive_gate(policy, 5000, |i| i % 7 < 3);
        let b = drive_gate(policy, 5000, |i| i % 7 < 3);
        assert_eq!(a, b, "same pattern, same fates");
    }

    #[test]
    fn token_bucket_policy_degrades_instead_of_stalling() {
        let (schema, master) = stock_tuples(200);
        let total = master.len() as u64;
        let src = VecSource::new(schema, master).unwrap();
        let factory: SourceFactory = {
            let mut src = Some(src);
            Box::new(move |_, _| Ok(Box::new(src.take().expect("single run")) as Box<dyn Source>))
        };
        let (p, c) = fjord(2, QueueKind::Push);
        let s = Supervisor::spawn(
            "bucketed",
            factory,
            p,
            quick_config(DegradePolicy::TokenBucket {
                rate: 100,
                burst: 1,
            }),
        );
        // Slow consumer keeps the queue hot so the bucket actually gates.
        let consumer = std::thread::spawn(move || {
            let mut got = 0u64;
            loop {
                match c.dequeue() {
                    DequeueResult::Msg(FjordMessage::Tuple(_)) => {
                        got += 1;
                        std::thread::sleep(Duration::from_micros(50));
                    }
                    DequeueResult::Msg(FjordMessage::Eof) => break,
                    DequeueResult::Msg(FjordMessage::Punct(_)) => {}
                    DequeueResult::Empty => std::thread::yield_now(),
                    DequeueResult::Disconnected => break,
                }
            }
            got
        });
        let stats = s.join();
        let got = consumer.join().unwrap();
        assert_eq!(stats.delivered + stats.shed, total, "every tuple accounted");
        assert_eq!(got, stats.delivered);
        assert!(stats.shed > 0, "tiny queue plus slow consumer must shed");
        assert!(!stats.gave_up);
    }

    #[test]
    fn chaos_source_faults_are_survived_and_counted() {
        let (schema, master) = stock_tuples(60);
        let total = master.len();
        let injector = FaultPlan::new(0xC0FFEE)
            .at(FaultPoint::SourceRead, 3, FaultAction::MalformedTuple)
            .at(
                FaultPoint::SourceRead,
                5,
                FaultAction::Error("carrier lost".into()),
            )
            .at(
                FaultPoint::SourceRead,
                9,
                FaultAction::Panic("wrapper segfault".into()),
            )
            .build_shared();
        let factory: SourceFactory = {
            let master = master.clone();
            let schema = schema.clone();
            let injector = injector.clone();
            Box::new(move |_, delivered| {
                let inner = FlakyVec {
                    schema: schema.clone(),
                    tuples: master[delivered as usize..].to_vec(),
                    pos: 0,
                    panic_after: None,
                };
                Ok(Box::new(ChaosSource::new(
                    Box::new(inner),
                    injector.clone(),
                )))
            })
        };
        let (p, c) = fjord(256, QueueKind::Push);
        let s = Supervisor::spawn(
            "chaos",
            factory,
            p,
            quick_config(DegradePolicy::Backpressure),
        );
        let mut got = 0usize;
        loop {
            match c.dequeue() {
                DequeueResult::Msg(FjordMessage::Tuple(_)) => got += 1,
                DequeueResult::Msg(FjordMessage::Eof) => break,
                DequeueResult::Msg(FjordMessage::Punct(_)) => {}
                DequeueResult::Empty => std::thread::yield_now(),
                DequeueResult::Disconnected => break,
            }
        }
        let stats = s.join();
        assert_eq!(got, total, "all real tuples still arrive");
        assert_eq!(stats.delivered, total as u64);
        assert_eq!(stats.malformed, 1, "injected garbage filtered out");
        assert_eq!(stats.source_errors, 1);
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.restarts, 2);
        assert!(!stats.gave_up);
    }
}
