//! Ingress: wrappers, streamers, and synthetic workloads (§4.2.3).
//!
//! > "Two types of sources are supported: pull sources, as found in
//! > 'traditional' federated database systems, \[and\] push sources, where
//! > connections can be initiated either by the Wrapper (Push-client) or by
//! > the data source itself (Push-server)."
//!
//! We do not have the paper's live web/sensor feeds, so this crate provides
//! faithful synthetic equivalents with the control knobs the constituent
//! papers' experiments relied on:
//!
//! * [`StockTicks`] — the paper's own `ClosingStockPrices` schema (§4.1.1):
//!   one tick per (trading day, symbol), prices following a seeded random
//!   walk.
//! * [`NetworkPackets`] — a network-monitor stream (Tribeca-style) with
//!   configurable key skew, for the Flux load-balancing experiments.
//! * [`SensorReadings`] — sensor samples with drift and dropout (sensors
//!   "may have run out of power or temporarily disconnected", §2.3).
//! * [`VecSource`] / [`CsvSource`] — replay a fixed set of tuples / a CSV
//!   file.
//! * [`Streamer`] — the wrapper-process thread: drains any [`Source`] into
//!   a Fjord push queue, honouring back-pressure, stamping arrival order.
//! * [`Supervisor`] — a chaos-hardened streamer: restarts panicking or
//!   erroring sources with capped exponential backoff, filters malformed
//!   tuples, and degrades gracefully (shed/sample) under sustained
//!   overflow, with every lost tuple accounted in [`SupervisorStats`].

#![warn(missing_docs)]

pub mod generators;
pub mod source;
pub mod streamer;
pub mod supervisor;

pub use generators::{NetworkPackets, SensorReadings, StockTicks};
pub use source::{CsvSource, Source, SourceStatus, VecSource};
pub use streamer::Streamer;
pub use supervisor::{
    ChaosSource, DegradePolicy, OverflowGate, SourceFactory, Supervisor, SupervisorConfig,
    SupervisorStats,
};
