//! Physical planning: from [`AnalyzedQuery`] to a DU shape.
//!
//! TelegraphCQ "parses, analyzes, and optimizes [a query] into an adaptive
//! plan, that is, a plan that includes the adaptive operators described in
//! Section 2" (§4.2.1). The planner here decides *which execution mode*
//! (§4.2.2) a query runs in and prepares the pieces; the server assembles
//! the DU and submits it under the query's footprint class.

use tcq_common::{Expr, Result, TcqError};
use tcq_operators::{AggFunc, AggSpec};
use tcq_query::AnalyzedQuery;
use tcq_windows::{classify, WindowKind};

use crate::plans::ResolvedAgg;

/// Which execution mode a query runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// Single stream, scalar projection: joins the stream's shared CACQ
    /// filter DU.
    SharedFilter,
    /// Single stream with aggregates: a dedicated window-driver DU.
    Aggregate,
    /// Multi-source equi-join: a dedicated eddy DU.
    Join,
    /// Snapshot/backward windows over history: answered from the stream
    /// archive at submission time, then closed.
    Historical,
}

/// Decide the execution mode.
pub fn plan_kind(aq: &AnalyzedQuery) -> Result<PlanKind> {
    if aq.is_join() {
        if !aq.aggregates.is_empty() {
            return Err(TcqError::Analysis(
                "aggregates over joins are not yet supported".into(),
            ));
        }
        if let Some(w) = &aq.window {
            match classify(w)? {
                WindowKind::Snapshot | WindowKind::Backward => {
                    return Err(TcqError::Analysis(
                        "historical (snapshot/backward) windows over joins are not supported; \
                         use a single-stream historical query per side"
                            .into(),
                    ))
                }
                _ => {}
            }
        }
        return Ok(PlanKind::Join);
    }
    if let Some(w) = &aq.window {
        match classify(w)? {
            WindowKind::Snapshot | WindowKind::Backward => return Ok(PlanKind::Historical),
            _ => {}
        }
    }
    if aq.aggregates.is_empty() {
        Ok(PlanKind::SharedFilter)
    } else {
        Ok(PlanKind::Aggregate)
    }
}

/// Remove source qualifiers from every column reference — safe for
/// single-source queries, whose DUs run against the stream's base schema
/// regardless of the alias the query used.
pub fn strip_qualifiers(expr: &Expr) -> Expr {
    match expr {
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Column { name, .. } => Expr::col(name.clone()),
        Expr::Cmp { op, lhs, rhs } => Expr::Cmp {
            op: *op,
            lhs: Box::new(strip_qualifiers(lhs)),
            rhs: Box::new(strip_qualifiers(rhs)),
        },
        Expr::Arith { op, lhs, rhs } => Expr::Arith {
            op: *op,
            lhs: Box::new(strip_qualifiers(lhs)),
            rhs: Box::new(strip_qualifiers(rhs)),
        },
        Expr::And(a, b) => Expr::And(Box::new(strip_qualifiers(a)), Box::new(strip_qualifiers(b))),
        Expr::Or(a, b) => Expr::Or(Box::new(strip_qualifiers(a)), Box::new(strip_qualifiers(b))),
        Expr::Not(e) => Expr::Not(Box::new(strip_qualifiers(e))),
    }
}

/// The conjunction of a single-source query's factors, qualifier-stripped.
pub fn stripped_predicate(aq: &AnalyzedQuery) -> Option<Expr> {
    let parts: Vec<Expr> = aq
        .single_factors
        .iter()
        .map(|(_, f)| strip_qualifiers(f))
        .collect();
    Expr::from_conjuncts(parts)
}

/// The conjunction of factors owned by one source of a (join) query,
/// qualifiers preserved (join DUs see alias-qualified tuples).
pub fn source_predicate(aq: &AnalyzedQuery, source: usize) -> Option<Expr> {
    let parts: Vec<Expr> = aq
        .single_factors
        .iter()
        .filter(|(s, _)| *s == source)
        .map(|(_, f)| f.clone())
        .collect();
    Expr::from_conjuncts(parts)
}

/// Resolve the SELECT list's aggregates against the (single) source's base
/// schema. Arguments must be bare columns (the paper's examples all are).
pub fn resolve_aggregates(aq: &AnalyzedQuery) -> Result<Vec<ResolvedAgg>> {
    let schema = &aq.sources[0].def.schema;
    let mut out = Vec::with_capacity(aq.aggregates.len());
    for item in &aq.aggregates {
        let func = AggFunc::parse(&item.func)
            .ok_or_else(|| TcqError::Analysis(format!("unknown aggregate {}", item.func)))?;
        let spec = match &item.arg {
            None => AggSpec::count_star(),
            Some(Expr::Column { name, .. }) => AggSpec::over(func, schema.index_of(None, name)?),
            Some(other) => {
                return Err(TcqError::Analysis(format!(
                    "aggregate arguments must be bare columns, got {other}"
                )))
            }
        };
        out.push(ResolvedAgg {
            spec,
            name: item.name.clone(),
        });
    }
    Ok(out)
}

/// The sliding-window width to bound join state with, per source alias:
/// `Some(width)` for sliding/hopping windows, `None` (unbounded) for
/// landmark and for static tables.
pub fn join_window_width(aq: &AnalyzedQuery, alias: &str) -> Result<Option<i64>> {
    let Some(w) = &aq.window else { return Ok(None) };
    let Some(wi) = w
        .windows
        .iter()
        .find(|wi| wi.stream.eq_ignore_ascii_case(alias))
    else {
        return Ok(None);
    };
    match classify(w)? {
        WindowKind::Sliding { .. } => {
            // width from the WindowIs at its first instantiation; for the
            // linear windows we support, width is t-independent when both
            // coefficients match.
            let t0 = 0;
            Ok(Some(wi.right.eval(t0, 0) - wi.left.eval(t0, 0) + 1))
        }
        WindowKind::Landmark | WindowKind::Fixed => Ok(None),
        WindowKind::Snapshot | WindowKind::Backward => Ok(None),
    }
}

/// Rewrite column qualifiers per `map` (alias → stream name), leaving
/// unqualified and unmapped references untouched. Used when a query joins
/// a *shared* plan whose schemas are stream-name qualified.
pub fn requalify(expr: &Expr, map: &std::collections::HashMap<String, String>) -> Expr {
    match expr {
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Column { qualifier, name } => {
            let qualifier = qualifier.as_ref().map(|q| {
                map.get(&q.to_ascii_lowercase())
                    .cloned()
                    .unwrap_or_else(|| q.clone())
            });
            Expr::Column {
                qualifier,
                name: name.clone(),
            }
        }
        Expr::Cmp { op, lhs, rhs } => Expr::Cmp {
            op: *op,
            lhs: Box::new(requalify(lhs, map)),
            rhs: Box::new(requalify(rhs, map)),
        },
        Expr::Arith { op, lhs, rhs } => Expr::Arith {
            op: *op,
            lhs: Box::new(requalify(lhs, map)),
            rhs: Box::new(requalify(rhs, map)),
        },
        Expr::And(a, b) => Expr::And(Box::new(requalify(a, map)), Box::new(requalify(b, map))),
        Expr::Or(a, b) => Expr::Or(Box::new(requalify(a, map)), Box::new(requalify(b, map))),
        Expr::Not(e) => Expr::Not(Box::new(requalify(e, map))),
    }
}

/// Is this join query shareable under CACQ's shared-SteM assumptions?
/// Exactly two *distinct* physical streams, one equi-join pair, no cross
/// factors (band predicates need per-query joined-tuple filters), and the
/// same window width on both sides.
pub fn shareable_join(aq: &AnalyzedQuery) -> Result<bool> {
    if aq.sources.len() != 2 || aq.join_pairs.len() != 1 || !aq.cross_factors.is_empty() {
        return Ok(false);
    }
    if aq.sources[0].name.eq_ignore_ascii_case(&aq.sources[1].name) {
        return Ok(false); // self-joins run dedicated
    }
    let w0 = join_window_width(aq, &aq.sources[0].alias)?;
    let w1 = join_window_width(aq, &aq.sources[1].alias)?;
    Ok(w0 == w1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{Catalog, CmpOp, DataType, Field, Schema, SourceKind};
    use tcq_query::{analyze, parse};

    fn catalog() -> Catalog {
        let c = Catalog::new();
        let stock = Schema::new(vec![
            Field::new("timestamp", DataType::Int),
            Field::new("stockSymbol", DataType::Str),
            Field::new("closingPrice", DataType::Float),
        ])
        .into_ref();
        c.register("ClosingStockPrices", stock, SourceKind::PushStream)
            .unwrap();
        c
    }

    fn analyzed(src: &str) -> AnalyzedQuery {
        analyze(&parse(src).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn plan_kinds() {
        assert_eq!(
            plan_kind(&analyzed("SELECT * FROM ClosingStockPrices")).unwrap(),
            PlanKind::SharedFilter
        );
        assert_eq!(
            plan_kind(&analyzed(
                "SELECT AVG(closingPrice) FROM ClosingStockPrices"
            ))
            .unwrap(),
            PlanKind::Aggregate
        );
        assert_eq!(
            plan_kind(&analyzed(
                "SELECT closingPrice, timestamp FROM ClosingStockPrices \
                 WHERE stockSymbol = 'MSFT' \
                 for (; t==0; t = -1) { WindowIs(ClosingStockPrices, 1, 5); }"
            ))
            .unwrap(),
            PlanKind::Historical
        );
        assert_eq!(
            plan_kind(&analyzed(
                "SELECT c2.* FROM ClosingStockPrices c1, ClosingStockPrices c2 \
                 WHERE c1.timestamp = c2.timestamp \
                 for (t = ST; t >= 0; t++) { WindowIs(c1, t-4, t); WindowIs(c2, t-4, t); }"
            ))
            .unwrap(),
            PlanKind::Join
        );
    }

    #[test]
    fn strip_qualifiers_rewrites_columns() {
        let e = Expr::qcol("s", "price").cmp(CmpOp::Gt, Expr::lit(1.0));
        let s = strip_qualifiers(&e);
        assert_eq!(s, Expr::col("price").cmp(CmpOp::Gt, Expr::lit(1.0)));
    }

    #[test]
    fn stripped_predicate_conjunction() {
        let aq = analyzed(
            "SELECT * FROM ClosingStockPrices s \
             WHERE s.stockSymbol = 'MSFT' AND s.closingPrice > 50.0",
        );
        let pred = stripped_predicate(&aq).unwrap();
        assert_eq!(pred.conjuncts().len(), 2);
        assert!(pred.columns().iter().all(|(q, _)| q.is_none()));
    }

    #[test]
    fn resolve_aggregates_paper_query() {
        let aq = analyzed(
            "SELECT AVG(closingPrice), COUNT(*) FROM ClosingStockPrices \
             WHERE stockSymbol = 'MSFT'",
        );
        let aggs = resolve_aggregates(&aq).unwrap();
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].spec.column, Some(2));
        assert_eq!(aggs[1].spec.column, None);
    }

    #[test]
    fn sliding_window_width() {
        let aq = analyzed(
            "SELECT c2.* FROM ClosingStockPrices c1, ClosingStockPrices c2 \
             WHERE c1.timestamp = c2.timestamp \
             for (t = ST; t >= 0; t++) { WindowIs(c1, t-4, t); WindowIs(c2, t-4, t); }",
        );
        assert_eq!(join_window_width(&aq, "c1").unwrap(), Some(5));
        assert_eq!(join_window_width(&aq, "nope").unwrap(), None);
    }

    #[test]
    fn aggregate_over_join_rejected() {
        let aq = analyzed(
            "SELECT COUNT(*) FROM ClosingStockPrices c1, ClosingStockPrices c2 \
             WHERE c1.timestamp = c2.timestamp \
             for (t = ST; t >= 0; t++) { WindowIs(c1, t-4, t); WindowIs(c2, t-4, t); }",
        );
        assert!(plan_kind(&aq).is_err());
    }
}
