//! The TelegraphCQ server: everything from Figure 5, in one process.
//!
//! > "The listener accepts multiple continuous queries and adds them
//! > dynamically to the running executor. When a query is received, the
//! > server parses, analyzes, and optimizes it into an adaptive plan …
//! > The plans are then placed in the query plan queue (QPQueue) … The
//! > executor continually picks up fresh queries … Query results are placed
//! > in client-specific output queues."
//!
//! [`TelegraphCQ`] wires the crates below into that architecture:
//!
//! * catalog + front-end ([`tcq_query`]) — parse / analyze / plan;
//! * ingress ([`tcq_ingress`]) — wrapper threads (streamers) feeding
//!   per-stream Fjords;
//! * a **stream dispatcher** DU per stream — stamps arrival order, spools
//!   history to a [`tcq_storage::StreamArchive`], and fans tuples out to
//!   every standing query's input queue;
//! * query DUs ([`plans`]) — a *shared* CACQ-style filter DU per stream
//!   (all single-stream selection queries share one QueryStem pass), plus
//!   dedicated eddy DUs for joins and window-driver DUs for aggregates;
//! * the executor ([`tcq_executor`]) — EO threads hosting the DUs, classed
//!   by query footprint;
//! * egress ([`tcq_egress`]) — push/pull result delivery per client.
//!
//! The paper's FrontEnd/Executor/Wrapper *process* split (a PostgreSQL
//! artifact) becomes a thread split; the shared-memory queues become
//! Fjords. See DESIGN.md's substitution table.

#![warn(missing_docs)]

pub mod dispatcher;
pub mod exchange;
pub mod planner;
pub mod plans;
pub mod server;
pub mod shared_join;

pub use dispatcher::OverloadPolicy;
pub use server::{
    CheckpointReport, LivenessConfig, PolicyKind, QueryInfo, ServerConfig, SharedMemoryStat,
    TcpTransportConfig, TelegraphCQ, TransportConfig,
};
