//! Flux-style exchange: partition-parallel execution of a dedicated join
//! (`ServerConfig::partitions > 1`).
//!
//! The paper's Flux modules "encapsulate adaptive state partitioning and
//! dataflow routing" (§2.3, [SHCF03]) so one continuous query can span
//! many processors. This module is the in-process version of that idea:
//! an *exchange* operator in the Volcano sense, built from three DUs and
//! 2P+1 Fjords.
//!
//! ```text
//!             ingress fjords (one per stream)
//!                     │
//!               ┌─────▼──────┐     schedule fjord (run grants)
//!               │ PartitionDu ├───────────────────────────┐
//!               └┬─────┬─────┘                            │
//!     partition  │ ... │  fjords (P)                      │
//!        ┌───────▼┐   ┌▼───────┐                          │
//!        │WorkerDu│   │WorkerDu│   (P cloned eddies,      │
//!        └───────┬┘   └┬───────┘    distinct EOs)         │
//!      output    │ ... │  fjords (P)                      │
//!               ┌▼─────▼─────┐                            │
//!               │  MergeDu   ◄────────────────────────────┘
//!               └─────┬──────┘
//!                     ▼ egress (one offer sequence, canonical order)
//! ```
//!
//! # Determinism
//!
//! The delivered results and the egress ledger must be byte-identical to
//! the sequential (`P = 1`) plan for the same seed — the same contract
//! PR 3 established for `io_batch`. Three mechanisms carry it:
//!
//! 1. **Canonical order.** The partitioner's drain order over its input
//!    fjords *is* the canonical total order: it is exactly the order a
//!    sequential `JoinCqDu` with the same `io_batch` would feed its eddy.
//!    Each tuple is hashed on its join-key value with the in-tree FNV-1a
//!    ([`tcq_common::hash_value`] — deterministic across runs, machines,
//!    *and* std versions, unlike `DefaultHasher`). The hash is memoized on
//!    the tuple itself, so the SteM that later builds or probes on the
//!    same key column reuses it instead of rehashing: one hash per tuple
//!    end to end. The tuple is appended to partition fjord `p`. Maximal
//!    runs of
//!    consecutive same-partition tuples are delimited by a `Punct` in the
//!    partition fjord, and each run start emits one grant
//!    (`Punct(logical(p))`) into the schedule fjord. The schedule is
//!    therefore a serialization of the canonical order by run.
//! 2. **Identical workers.** All P eddies are built by the same
//!    `build_join_eddy` call with the same policy kind and seed, and each
//!    partition owns its SteM state outright — per-partition ownership by
//!    construction (worker state lives inside the `WorkerDu`), so there
//!    is no cross-partition locking on the probe path at all, let alone
//!    contention. Hash partitioning on the transitively-equal join key
//!    (see [`partitionable`]) co-locates every possible match, and each
//!    worker sees its sub-stream in canonical-order restriction, so the
//!    multiset *and order* of outputs per run equal the sequential eddy's
//!    outputs for the same input run.
//! 3. **Ordered merge.** The merger replays grants from the schedule
//!    fjord strictly in order; for each grant it drains that partition's
//!    output fjord up to the run-closing `Punct` and hands the run to the
//!    egress router as one batch. Egress offers therefore happen in the
//!    canonical order, so ledger counters, retry decisions, and fault
//!    polls at `EgressDeliver` fire identically for any P.
//!
//! The exchange DUs poll no fault points on the data path shared with
//! the sequential plan; every such point (SourceRead, FjordEnqueue,
//! ArchiveAppend, EgressDeliver, …) sits upstream of the partitioner or
//! downstream of the merger, so a seeded chaos schedule observes the same
//! per-message poll sequence at any P (`tests/server_chaos.rs` asserts
//! this end to end). The two liveness points are exchange-local and do
//! not disturb that contract: a worker polls
//! [`FaultPoint::DropPunctuation`] per run-closing punct it forwards and
//! the merger polls [`FaultPoint::StallConsumer`] per schedule grant it
//! consumes — per-point counters are independent and rate draws only
//! happen for rates registered at the polled point, so plans that don't
//! mention the liveness points replay bit-for-bit as before.
//!
//! # Backpressure and deadlock freedom
//!
//! The partitioner stages everything through an ordered outbox and drains
//! it strictly FIFO with non-blocking enqueues; when the head message's
//! fjord is full it parks. FIFO matters: every message of an earlier run
//! was *delivered* before the head blocked, so the merger can always
//! finish the runs it has grants for, which drains worker outputs, which
//! drains partition fjords, which unblocks the head. No cycle waits on a
//! later message.

use std::collections::VecDeque;

use tcq_common::{
    hash_value, FaultAction, FaultPoint, Result, SchemaRef, SharedInjector, Timestamp, Tuple,
};
use tcq_eddy::Eddy;
use tcq_egress::EgressRouter;
use tcq_executor::{DispatchUnit, ModuleStatus};
use tcq_fjords::{BatchDequeueResult, Consumer, FjordMessage, Producer};
use tcq_query::AnalyzedQuery;

use crate::dispatcher::DEFAULT_IO_BATCH;
use crate::plans::{LazyProject, QueryId};

/// Whether a join query can run partition-parallel.
///
/// Requires at least one equi-join pair, every physical stream consumed
/// under exactly one alias (self-joins interleave per-alias eddy entries
/// per tuple, which a partitioned plan cannot reproduce), and a connected
/// equi-join graph. Connectivity plus the one-key-per-source rule (the
/// multi-key SteM error) make all key values inside any joined tuple
/// transitively equal, so hash-partitioning each source on its key
/// co-locates every possible match in one partition.
pub fn partitionable(aq: &AnalyzedQuery) -> bool {
    if aq.sources.len() < 2 || aq.join_pairs.is_empty() {
        return false;
    }
    let mut names: Vec<String> = aq
        .sources
        .iter()
        .map(|s| s.name.to_ascii_lowercase())
        .collect();
    names.sort_unstable();
    if names.windows(2).any(|w| w[0] == w[1]) {
        return false;
    }
    let mut parent: Vec<usize> = (0..aq.sources.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for jp in &aq.join_pairs {
        let (a, b) = (find(&mut parent, jp.left), find(&mut parent, jp.right));
        parent[a] = b;
    }
    let root = find(&mut parent, 0);
    (1..aq.sources.len()).all(|i| find(&mut parent, i) == root)
}

/// Footprint class for the `k`-th exchange DU of query `qid`. The top bit
/// keeps these off the single-bit stream classes, so every exchange DU is
/// a fresh class and the registry places it on the least-loaded EO —
/// submitting the P workers in sequence spreads them across distinct EOs
/// whenever `eos` allows.
pub fn du_class(qid: QueryId, k: usize) -> u64 {
    (1u64 << 63) | ((qid as u64 & 0x00FF_FFFF) << 8) | (k as u64 & 0xFF)
}

/// Where a staged partitioner message is bound.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Hop {
    Part(usize),
    Schedule,
}

/// One ingress stream feeding the partitioner.
pub struct ExchangeInput {
    consumer: Consumer,
    alias: SchemaRef,
    key_col: usize,
    eof: bool,
}

impl ExchangeInput {
    /// New input draining `consumer`; tuples are re-qualified to `alias`
    /// and hash-partitioned on `key_col` (an index into `alias`).
    pub fn new(consumer: Consumer, alias: SchemaRef, key_col: usize) -> Self {
        ExchangeInput {
            consumer,
            alias,
            key_col,
            eof: false,
        }
    }
}

/// The exchange's producer half: establishes the canonical total order,
/// hash-splits it into P partition fjords, and journals the run order
/// into the schedule fjord. See the module docs for the protocol.
pub struct PartitionDu {
    name: String,
    inputs: Vec<ExchangeInput>,
    parts: Vec<Producer>,
    schedule: Producer,
    floor: i64,
    deadline: i64,
    io_batch: usize,
    msg_buf: Vec<FjordMessage>,
    /// Ordered staging area; drained strictly FIFO so a full fjord can
    /// never reorder the canonical sequence.
    outbox: VecDeque<(Hop, FjordMessage)>,
    open_run: Option<usize>,
    finished: bool,
    /// When set (the default), the routing hash is memoized on the tuple
    /// so downstream SteMs reuse it; when clear, every route hashes
    /// afresh and leaves no memo (the pre-kernel per-site behaviour).
    prehash: bool,
    /// Fresh hash computations performed while routing (memo hits are
    /// free) — the partitioner's half of the hashed-exactly-once story.
    hash_computes: u64,
}

impl PartitionDu {
    /// New partitioner over `inputs`, splitting into `parts.len()`
    /// partition fjords with run grants journaled to `schedule`.
    /// `floor`/`deadline` bound the query's window extent exactly as in
    /// the sequential `JoinCqDu`.
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<ExchangeInput>,
        parts: Vec<Producer>,
        schedule: Producer,
        floor: i64,
        deadline: i64,
    ) -> Self {
        PartitionDu {
            name: name.into(),
            inputs,
            parts,
            schedule,
            floor,
            deadline,
            io_batch: DEFAULT_IO_BATCH,
            msg_buf: Vec::new(),
            outbox: VecDeque::new(),
            open_run: None,
            finished: false,
            prehash: true,
            hash_computes: 0,
        }
    }

    /// Set the hot-path batch size (messages per Fjord lock).
    pub fn with_io_batch(mut self, io_batch: usize) -> Self {
        self.io_batch = io_batch.max(1);
        self
    }

    /// Enable or disable hash memoization on routed tuples (default on).
    pub fn with_prehash(mut self, enabled: bool) -> Self {
        self.prehash = enabled;
        self
    }

    /// Fresh key-hash computations performed while routing.
    pub fn hash_computes(&self) -> u64 {
        self.hash_computes
    }

    fn route(&mut self, t: Tuple, key_col: usize) {
        // Same FNV-1a either way, so partition assignment is independent
        // of the toggle; prehash additionally memoizes the hash on the
        // tuple for downstream SteM reuse.
        let hash = if self.prehash {
            match t.cached_key_hash(key_col) {
                Some(h) => h,
                None => {
                    self.hash_computes += 1;
                    t.key_hash(key_col)
                }
            }
        } else {
            self.hash_computes += 1;
            hash_value(t.value(key_col))
        };
        let p = (hash % self.parts.len() as u64) as usize;
        if self.open_run != Some(p) {
            self.close_run();
            self.open_run = Some(p);
            self.outbox.push_back((
                Hop::Schedule,
                FjordMessage::Punct(Timestamp::logical(p as i64)),
            ));
        }
        self.outbox
            .push_back((Hop::Part(p), FjordMessage::Tuple(t)));
    }

    fn close_run(&mut self) {
        if let Some(p) = self.open_run.take() {
            self.outbox.push_back((
                Hop::Part(p),
                FjordMessage::Punct(Timestamp::logical(p as i64)),
            ));
        }
    }

    /// Drain the outbox strictly in order, batching maximal same-fjord
    /// prefixes into one lock acquisition each; stop at the first refusal
    /// (back-pressure). Returns how many messages were placed.
    fn flush_outbox(&mut self) -> usize {
        let mut sent = 0;
        let mut batch: Vec<FjordMessage> = Vec::new();
        while let Some(&(hop, _)) = self.outbox.front() {
            batch.clear();
            while let Some(&(h, _)) = self.outbox.front() {
                if h != hop || batch.len() >= self.io_batch {
                    break;
                }
                batch.push(self.outbox.pop_front().expect("front checked").1);
            }
            let producer = match hop {
                Hop::Part(p) => &self.parts[p],
                Hop::Schedule => &self.schedule,
            };
            match producer.enqueue_batch(&mut batch) {
                Ok(n) => {
                    sent += n;
                    if !batch.is_empty() {
                        // Refused suffix: restore it at the front, in order.
                        for msg in batch.drain(..).rev() {
                            self.outbox.push_front((hop, msg));
                        }
                        break;
                    }
                }
                Err(_) => {
                    // Downstream dropped (query stopped mid-teardown):
                    // nothing wants the data, so the staged tail is moot.
                    self.outbox.clear();
                    break;
                }
            }
        }
        sent
    }
}

impl DispatchUnit for PartitionDu {
    fn name(&self) -> &str {
        &self.name
    }

    fn buffered(&self) -> usize {
        self.outbox.len()
    }

    /// Close the open run early and retry the staged tail. Run boundaries
    /// only affect how the merger batches deliveries — tuple order and the
    /// egress ledger are identical for any run split — so an early close
    /// is always contract-preserving.
    fn nudge(&mut self) -> bool {
        let had_open = self.open_run.is_some();
        self.close_run();
        self.flush_outbox() > 0 || had_open
    }

    fn run(&mut self, quantum: usize) -> Result<ModuleStatus> {
        let mut did_work = self.flush_outbox() > 0;
        if !self.outbox.is_empty() {
            // Head-of-line blocked on a full fjord; draining inputs now
            // would only grow the outbox.
            return Ok(if did_work {
                ModuleStatus::Ready
            } else {
                ModuleStatus::Idle
            });
        }
        if self.finished {
            return Ok(ModuleStatus::Done);
        }
        let per_input = quantum.div_ceil(self.inputs.len().max(1));
        for i in 0..self.inputs.len() {
            if self.inputs[i].eof {
                continue;
            }
            let mut remaining = per_input;
            while remaining > 0 && !self.inputs[i].eof {
                let mut msgs = std::mem::take(&mut self.msg_buf);
                let max = self.io_batch.min(remaining);
                match self.inputs[i].consumer.dequeue_batch(&mut msgs, max) {
                    BatchDequeueResult::Msgs(n) => remaining = remaining.saturating_sub(n),
                    BatchDequeueResult::Empty => {
                        self.msg_buf = msgs;
                        break;
                    }
                    BatchDequeueResult::Disconnected => {
                        self.msg_buf = msgs;
                        self.inputs[i].eof = true;
                        break;
                    }
                }
                for msg in msgs.drain(..) {
                    match msg {
                        FjordMessage::Tuple(t) if !self.inputs[i].eof => {
                            did_work = true;
                            let seq = t.timestamp().seq();
                            if seq < self.floor {
                                continue;
                            }
                            if seq > self.deadline {
                                // Stream time passed the final window
                                // (timestamps are monotone per stream).
                                self.inputs[i].eof = true;
                                continue;
                            }
                            let t = t.with_schema(self.inputs[i].alias.clone())?;
                            let key_col = self.inputs[i].key_col;
                            self.route(t, key_col);
                        }
                        FjordMessage::Tuple(_) | FjordMessage::Punct(_) => {}
                        FjordMessage::Eof => self.inputs[i].eof = true,
                    }
                }
                self.msg_buf = msgs;
            }
        }
        if self.inputs.iter().all(|i| i.eof) {
            self.close_run();
            for p in 0..self.parts.len() {
                self.outbox.push_back((Hop::Part(p), FjordMessage::Eof));
            }
            self.outbox.push_back((Hop::Schedule, FjordMessage::Eof));
            self.finished = true;
            did_work = true;
        }
        self.flush_outbox();
        if self.finished && self.outbox.is_empty() {
            return Ok(ModuleStatus::Done);
        }
        Ok(if did_work {
            ModuleStatus::Ready
        } else {
            ModuleStatus::Idle
        })
    }
}

// (tests at the bottom of this file exercise the partition/merge protocol
// without workers; end-to-end coverage lives in tests/server_chaos.rs.)

/// One partition's worker: a full clone of the query's eddy (SteMs,
/// filters, band predicates) plus projection, consuming partition fjord
/// `k` and producing projected results — with run-closing `Punct`s
/// forwarded in place — into output fjord `k`. The eddy and its SteM
/// state are owned by value: per-partition ownership means the probe hot
/// path takes no locks shared with any other partition.
pub struct WorkerDu {
    name: String,
    input: Consumer,
    output: Producer,
    eddy: Eddy,
    project: LazyProject,
    io_batch: usize,
    msg_buf: Vec<FjordMessage>,
    emitted: Vec<Tuple>,
    /// Contiguous tuples of the currently-open run awaiting the eddy.
    batch: Vec<Tuple>,
    outbox: Vec<FjordMessage>,
    input_eof: bool,
    finished: bool,
    /// Run-closing punctuations an injected fault swallowed
    /// ([`FaultPoint::DropPunctuation`]). While any are owed the worker
    /// refuses further input — the punct must land *before* the next
    /// run's outputs — so the merger wedges waiting for the run to close
    /// until the watchdog nudges us into re-emitting.
    owed_puncts: Vec<Timestamp>,
    /// Input dequeued after a punct was dropped, parked until the owed
    /// puncts are re-emitted (preserves exact output order).
    carry: VecDeque<FjordMessage>,
    injector: Option<SharedInjector>,
}

impl WorkerDu {
    /// New worker bridging `input` (partition fjord) to `output` (output
    /// fjord) through `eddy` and `project`.
    pub fn new(
        name: impl Into<String>,
        input: Consumer,
        output: Producer,
        eddy: Eddy,
        project: LazyProject,
    ) -> Self {
        WorkerDu {
            name: name.into(),
            input,
            output,
            eddy,
            project,
            io_batch: DEFAULT_IO_BATCH,
            msg_buf: Vec::new(),
            emitted: Vec::new(),
            batch: Vec::new(),
            outbox: Vec::new(),
            input_eof: false,
            finished: false,
            owed_puncts: Vec::new(),
            carry: VecDeque::new(),
            injector: None,
        }
    }

    /// Set the hot-path batch size (messages per Fjord lock).
    pub fn with_io_batch(mut self, io_batch: usize) -> Self {
        self.io_batch = io_batch.max(1);
        self
    }

    /// Attach the chaos injector: each run-closing punctuation about to be
    /// forwarded polls [`FaultPoint::DropPunctuation`].
    pub fn with_injector(mut self, injector: SharedInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Push the pending run prefix through the eddy; outputs join the
    /// outbox ahead of the (not yet seen) run-closing punct.
    fn process_pending(&mut self) -> Result<()> {
        if self.batch.is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut self.batch);
        self.emitted.clear();
        self.eddy.process_batch(batch, &mut self.emitted)?;
        for e in self.emitted.drain(..) {
            let out = self.project.apply(&e)?;
            self.outbox.push(FjordMessage::Tuple(out));
        }
        Ok(())
    }

    /// Route one input message through the worker. While a dropped punct
    /// is owed the message is parked in `carry` instead — emitting
    /// anything past the missing run boundary would corrupt the merge
    /// order.
    fn absorb(&mut self, msg: FjordMessage) -> Result<()> {
        if !self.owed_puncts.is_empty() {
            self.carry.push_back(msg);
            return Ok(());
        }
        match msg {
            FjordMessage::Tuple(t) => self.batch.push(t),
            FjordMessage::Punct(ts) => {
                self.process_pending()?;
                let dropped = self
                    .injector
                    .as_ref()
                    .and_then(|inj| inj.poll(FaultPoint::DropPunctuation))
                    .is_some();
                if dropped {
                    self.owed_puncts.push(ts);
                } else {
                    self.outbox.push(FjordMessage::Punct(ts));
                }
            }
            FjordMessage::Eof => self.input_eof = true,
        }
        Ok(())
    }

    fn flush_outbox(&mut self) -> usize {
        if self.outbox.is_empty() {
            return 0;
        }
        match self.output.enqueue_batch(&mut self.outbox) {
            Ok(n) => n,
            Err(_) => {
                // Merger gone: query teardown in progress.
                self.outbox.clear();
                0
            }
        }
    }
}

impl DispatchUnit for WorkerDu {
    fn name(&self) -> &str {
        &self.name
    }

    fn buffered(&self) -> usize {
        self.outbox.len() + self.batch.len() + self.carry.len() + self.owed_puncts.len()
    }

    /// Re-emit dropped run-closing punctuations. The parked `carry` input
    /// replays through the normal path on the next quantum.
    fn nudge(&mut self) -> bool {
        if self.owed_puncts.is_empty() {
            return false;
        }
        for ts in std::mem::take(&mut self.owed_puncts) {
            self.outbox.push(FjordMessage::Punct(ts));
        }
        self.flush_outbox();
        true
    }

    fn run(&mut self, quantum: usize) -> Result<ModuleStatus> {
        let mut did_work = self.flush_outbox() > 0;
        if !self.outbox.is_empty() {
            // Output fjord full: stop consuming until the merger catches
            // up, or run-output order would need reassembly downstream.
            return Ok(if did_work {
                ModuleStatus::Ready
            } else {
                ModuleStatus::Idle
            });
        }
        if !self.owed_puncts.is_empty() {
            // An injected fault swallowed a run-closing punct: the worker
            // is wedged by design until the watchdog nudges it.
            return Ok(ModuleStatus::Idle);
        }
        if self.finished {
            return Ok(ModuleStatus::Done);
        }
        // Replay input parked behind a previously-dropped punct first:
        // it precedes anything still in the fjord.
        while self.owed_puncts.is_empty() {
            let Some(msg) = self.carry.pop_front() else {
                break;
            };
            did_work = true;
            self.absorb(msg)?;
        }
        let mut remaining = quantum;
        while remaining > 0 && !self.input_eof && self.owed_puncts.is_empty() {
            let mut msgs = std::mem::take(&mut self.msg_buf);
            match self
                .input
                .dequeue_batch(&mut msgs, self.io_batch.min(remaining))
            {
                BatchDequeueResult::Msgs(n) => remaining = remaining.saturating_sub(n),
                BatchDequeueResult::Empty => {
                    self.msg_buf = msgs;
                    break;
                }
                BatchDequeueResult::Disconnected => {
                    self.msg_buf = msgs;
                    self.input_eof = true;
                    break;
                }
            }
            for msg in msgs.drain(..) {
                did_work |= !matches!(msg, FjordMessage::Eof);
                self.absorb(msg)?;
            }
            self.msg_buf = msgs;
        }
        // A run prefix without its punct yet: process it now — its
        // outputs precede the punct either way, so order is intact and
        // latency stays low while the run is starved.
        self.process_pending()?;
        if self.input_eof && self.owed_puncts.is_empty() && self.carry.is_empty() && !self.finished
        {
            self.outbox.push(FjordMessage::Eof);
            self.finished = true;
            did_work = true;
        }
        self.flush_outbox();
        if self.finished && self.outbox.is_empty() {
            return Ok(ModuleStatus::Done);
        }
        Ok(if did_work {
            ModuleStatus::Ready
        } else {
            ModuleStatus::Idle
        })
    }
}

/// The exchange's consumer half: replays the schedule fjord's grants in
/// order, drains each granted partition's output fjord up to the
/// run-closing punct, and delivers every completed run to the egress
/// router as one batch — restoring the canonical total order exactly.
pub struct MergeDu {
    name: String,
    schedule: Consumer,
    outputs: Vec<Consumer>,
    egress: EgressRouter,
    qid: QueryId,
    io_batch: usize,
    msg_buf: Vec<FjordMessage>,
    /// Messages dequeued from an output fjord past the current run's
    /// punct; consumed before touching the fjord again.
    pending: Vec<VecDeque<FjordMessage>>,
    run_buf: Vec<Tuple>,
    current: Option<usize>,
    schedule_eof: bool,
    outputs_eof: Vec<bool>,
    done: bool,
    /// Remaining quanta this merger refuses to work, set by an injected
    /// [`FaultPoint::StallConsumer`] fault (a deterministic wedged
    /// consumer). Cleared by [`DispatchUnit::escalate`] — the watchdog's
    /// failover to the ordered-outbox drain.
    stall_budget: u64,
    injector: Option<SharedInjector>,
}

impl MergeDu {
    /// New merger over `outputs.len()` partitions, delivering to `egress`
    /// under query `qid`.
    pub fn new(
        name: impl Into<String>,
        schedule: Consumer,
        outputs: Vec<Consumer>,
        egress: EgressRouter,
        qid: QueryId,
    ) -> Self {
        let n = outputs.len();
        MergeDu {
            name: name.into(),
            schedule,
            outputs,
            egress,
            qid,
            io_batch: DEFAULT_IO_BATCH,
            msg_buf: Vec::new(),
            pending: (0..n).map(|_| VecDeque::new()).collect(),
            run_buf: Vec::new(),
            current: None,
            schedule_eof: false,
            outputs_eof: vec![false; n],
            done: false,
            stall_budget: 0,
            injector: None,
        }
    }

    /// Set the hot-path batch size (messages per Fjord lock).
    pub fn with_io_batch(mut self, io_batch: usize) -> Self {
        self.io_batch = io_batch.max(1);
        self
    }

    /// Attach the chaos injector: each schedule grant consumed polls
    /// [`FaultPoint::StallConsumer`].
    pub fn with_injector(mut self, injector: SharedInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Complete the current run: one egress offer sequence in canonical
    /// order (ledger counters and fault polls fire exactly as at P=1).
    fn finish_run(&mut self) {
        if !self.run_buf.is_empty() {
            self.egress.deliver_batch([self.qid], &self.run_buf);
            self.run_buf.clear();
        }
        self.current = None;
    }
}

impl DispatchUnit for MergeDu {
    fn name(&self) -> &str {
        &self.name
    }

    fn buffered(&self) -> usize {
        self.run_buf.len() + self.pending.iter().map(|p| p.len()).sum::<usize>()
    }

    /// Failover: clear an injected consumer wedge so the ordered-outbox
    /// drain resumes exactly where it stopped (zero loss, canonical order
    /// intact — the stall never consumed or reordered anything).
    fn escalate(&mut self) -> bool {
        if self.stall_budget > 0 {
            self.stall_budget = 0;
            true
        } else {
            false
        }
    }

    fn run(&mut self, quantum: usize) -> Result<ModuleStatus> {
        if self.done {
            return Ok(ModuleStatus::Done);
        }
        if self.stall_budget > 0 {
            // Injected wedge: refuse to touch the schedule or any output
            // fjord. The watchdog must notice the frozen frontier.
            self.stall_budget -= 1;
            return Ok(ModuleStatus::Idle);
        }
        let mut did_work = false;
        let mut remaining = quantum;
        'outer: while remaining > 0 && self.stall_budget == 0 {
            let Some(p) = self.current else {
                if self.schedule_eof {
                    break 'outer;
                }
                let mut msgs = std::mem::take(&mut self.msg_buf);
                match self.schedule.dequeue_batch(&mut msgs, 1) {
                    BatchDequeueResult::Msgs(_) => {
                        remaining = remaining.saturating_sub(1);
                        match msgs.pop().expect("one message") {
                            FjordMessage::Punct(ts) => {
                                did_work = true;
                                self.current = Some(ts.seq() as usize);
                                if let Some(FaultAction::Stall { ticks }) = self
                                    .injector
                                    .as_ref()
                                    .and_then(|inj| inj.poll(FaultPoint::StallConsumer))
                                {
                                    self.stall_budget = ticks;
                                }
                            }
                            FjordMessage::Eof => {
                                did_work = true;
                                self.schedule_eof = true;
                            }
                            // The partitioner never sends tuples here.
                            FjordMessage::Tuple(_) => {}
                        }
                        self.msg_buf = msgs;
                        continue 'outer;
                    }
                    BatchDequeueResult::Empty => {
                        self.msg_buf = msgs;
                        break 'outer;
                    }
                    BatchDequeueResult::Disconnected => {
                        self.msg_buf = msgs;
                        self.schedule_eof = true;
                        continue 'outer;
                    }
                }
            };
            // Drain partition p's output up to the run-closing punct.
            loop {
                let mut run_done = false;
                while let Some(msg) = self.pending[p].pop_front() {
                    match msg {
                        FjordMessage::Tuple(t) => self.run_buf.push(t),
                        FjordMessage::Punct(_) => {
                            did_work = true;
                            self.finish_run();
                            run_done = true;
                            break;
                        }
                        FjordMessage::Eof => {
                            // Teardown mid-run: deliver what arrived.
                            did_work = true;
                            self.finish_run();
                            self.outputs_eof[p] = true;
                            run_done = true;
                            break;
                        }
                    }
                }
                if run_done {
                    continue 'outer;
                }
                if remaining == 0 {
                    break 'outer;
                }
                let mut msgs = std::mem::take(&mut self.msg_buf);
                match self.outputs[p].dequeue_batch(&mut msgs, self.io_batch.min(remaining)) {
                    BatchDequeueResult::Msgs(n) => {
                        remaining = remaining.saturating_sub(n);
                        self.pending[p].extend(msgs.drain(..));
                        self.msg_buf = msgs;
                    }
                    BatchDequeueResult::Empty => {
                        // Starved mid-run: the worker hasn't caught up.
                        self.msg_buf = msgs;
                        break 'outer;
                    }
                    BatchDequeueResult::Disconnected => {
                        self.msg_buf = msgs;
                        self.pending[p].push_back(FjordMessage::Eof);
                    }
                }
            }
        }
        // Finale: after the schedule closes, every worker still owes an
        // Eof (their fjords may also hold puncts for runs the schedule
        // granted before we saw its Eof — those were consumed above).
        if self.schedule_eof && self.current.is_none() {
            let mut all = true;
            for p in 0..self.outputs.len() {
                if self.outputs_eof[p] {
                    continue;
                }
                loop {
                    if let Some(msg) = self.pending[p].pop_front() {
                        if matches!(msg, FjordMessage::Eof) {
                            self.outputs_eof[p] = true;
                            break;
                        }
                        continue;
                    }
                    let mut msgs = std::mem::take(&mut self.msg_buf);
                    match self.outputs[p].dequeue_batch(&mut msgs, self.io_batch) {
                        BatchDequeueResult::Msgs(_) => {
                            self.pending[p].extend(msgs.drain(..));
                            self.msg_buf = msgs;
                        }
                        BatchDequeueResult::Empty => {
                            self.msg_buf = msgs;
                            all = false;
                            break;
                        }
                        BatchDequeueResult::Disconnected => {
                            self.msg_buf = msgs;
                            self.outputs_eof[p] = true;
                            break;
                        }
                    }
                }
                if !self.outputs_eof[p] {
                    all = false;
                }
            }
            if all {
                self.done = true;
                return Ok(ModuleStatus::Done);
            }
        }
        Ok(if did_work {
            ModuleStatus::Ready
        } else {
            ModuleStatus::Idle
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{Catalog, DataType, Field, Schema, SourceKind, TupleBuilder};
    use tcq_fjords::{fjord, QueueKind};
    use tcq_query::{analyze, parse};

    fn catalog() -> Catalog {
        let c = Catalog::new();
        for name in ["a", "b", "c"] {
            let s = Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ])
            .into_ref();
            c.register(name, s, SourceKind::PushStream).unwrap();
        }
        c
    }

    fn analyzed(src: &str) -> AnalyzedQuery {
        analyze(&parse(src).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn partitionable_shapes() {
        // Two streams, one equi-join: eligible.
        assert!(partitionable(&analyzed(
            "SELECT a.v FROM a a, b b WHERE a.k = b.k \
             for (t = ST; t >= 0; t++) { WindowIs(a, t - 10, t); WindowIs(b, t - 10, t); }"
        )));
        // Three streams joined through a common key: connected, eligible.
        assert!(partitionable(&analyzed(
            "SELECT a.v FROM a a, b b, c c WHERE a.k = b.k AND a.k = c.k \
             for (t = ST; t >= 0; t++) { WindowIs(a, t - 10, t); WindowIs(b, t - 10, t); \
             WindowIs(c, t - 10, t); }"
        )));
        // Self-join: same physical stream under two aliases — ineligible.
        assert!(!partitionable(&analyzed(
            "SELECT x.v FROM a x, a y WHERE x.k = y.k \
             for (t = ST; t >= 0; t++) { WindowIs(x, t - 10, t); WindowIs(y, t - 10, t); }"
        )));
        // Single stream: nothing to partition against.
        assert!(!partitionable(&analyzed(
            "SELECT a.v FROM a a WHERE a.v > 0"
        )));
    }

    #[test]
    fn du_classes_are_fresh_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for qid in 0..4 {
            for k in 0..9 {
                let c = du_class(qid, k);
                assert!(c & (1 << 63) != 0, "top bit set");
                assert!(seen.insert(c), "class collision qid={qid} k={k}");
            }
        }
    }

    /// A worker-less exchange: the partition fjords double as the output
    /// fjords (tuples pass through "identity workers"), so the merger
    /// must hand the egress router exactly the canonical input order.
    #[test]
    fn partition_then_merge_restores_canonical_order() {
        const P: usize = 3;
        const N: i64 = 500;
        let schema = Schema::qualified(
            "s",
            vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ],
        )
        .into_ref();
        let (in_prod, in_cons) = fjord(2048, QueueKind::Push);
        let mut parts = Vec::new();
        let mut outs = Vec::new();
        for _ in 0..P {
            let (p, c) = fjord(64, QueueKind::Push);
            parts.push(p);
            outs.push(c);
        }
        let (sched_p, sched_c) = fjord(128, QueueKind::Push);
        let mut part = PartitionDu::new(
            "part",
            vec![ExchangeInput::new(in_cons, schema.clone(), 0)],
            parts,
            sched_p,
            i64::MIN,
            i64::MAX,
        )
        .with_io_batch(8);
        let egress = EgressRouter::new();
        egress.register_pull_client(1, 4096).unwrap();
        egress.subscribe(1, 7).unwrap();
        let mut merge = MergeDu::new("merge", sched_c, outs, egress.clone(), 7).with_io_batch(8);

        for i in 0..N {
            let t = TupleBuilder::new(schema.clone())
                .push(i * 7 % 11) // key: hops between partitions
                .push(i)
                .at(Timestamp::logical(i + 1))
                .build()
                .unwrap();
            in_prod.enqueue(FjordMessage::Tuple(t)).unwrap();
        }
        in_prod.send_eof().unwrap();

        // Interleave the two DUs until both retire; small quanta plus
        // small fjords exercise the back-pressure/outbox path.
        let mut part_done = false;
        let mut merge_done = false;
        for _ in 0..100_000 {
            if !part_done && part.run(16).unwrap() == ModuleStatus::Done {
                part_done = true;
            }
            if !merge_done && merge.run(16).unwrap() == ModuleStatus::Done {
                merge_done = true;
            }
            if part_done && merge_done {
                break;
            }
        }
        assert!(part_done && merge_done, "exchange must quiesce");

        let got = egress.fetch(1, 4096).unwrap();
        assert_eq!(got.len(), N as usize);
        for (i, (q, t)) in got.iter().enumerate() {
            assert_eq!(*q, 7);
            assert_eq!(
                t.value(1).as_int().unwrap(),
                i as i64,
                "delivery must follow canonical (arrival) order"
            );
        }
    }

    /// The hashed-exactly-once contract end to end: the partitioner
    /// computes each routed tuple's key hash once (memoized on the
    /// tuple), and the per-partition SteMs that later build and probe on
    /// the same key reuse the memo, computing zero hashes of their own.
    /// With prehash off, every site hashes for itself — the counters
    /// recover the old per-site totals.
    #[test]
    fn key_hash_computed_once_across_exchange_and_stems() {
        use tcq_operators::{module::EddyModule, StemOp};
        use tcq_stems::IndexKind;
        const P: usize = 2;
        const N: i64 = 100;
        let s = Schema::qualified(
            "s",
            vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ],
        )
        .into_ref();
        let tt = Schema::qualified(
            "t",
            vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ],
        )
        .into_ref();
        let run = |prehash: bool| -> (u64, u64, usize) {
            let (sp, sc) = fjord(4096, QueueKind::Push);
            let (tp, tc) = fjord(4096, QueueKind::Push);
            let mut parts = Vec::new();
            let mut outs = Vec::new();
            for _ in 0..P {
                let (p, c) = fjord(4096, QueueKind::Push);
                parts.push(p);
                outs.push(c);
            }
            let (sched_p, _sched_c) = fjord(4096, QueueKind::Push);
            let mut part = PartitionDu::new(
                "part",
                vec![
                    ExchangeInput::new(sc, s.clone(), 0),
                    ExchangeInput::new(tc, tt.clone(), 0),
                ],
                parts,
                sched_p,
                i64::MIN,
                i64::MAX,
            )
            .with_prehash(prehash);
            // Builds from s arrive before probes from t (separate inputs;
            // the partitioner drains input 0 first).
            for i in 0..N {
                let b = TupleBuilder::new(s.clone())
                    .push(i % 13)
                    .push(i)
                    .at(Timestamp::logical(i + 1))
                    .build()
                    .unwrap();
                sp.enqueue(FjordMessage::Tuple(b)).unwrap();
            }
            sp.send_eof().unwrap();
            for i in 0..N {
                let pr = TupleBuilder::new(tt.clone())
                    .push(i % 13)
                    .push(i)
                    .at(Timestamp::logical(N + i + 1))
                    .build()
                    .unwrap();
                tp.enqueue(FjordMessage::Tuple(pr)).unwrap();
            }
            tp.send_eof().unwrap();
            for _ in 0..100_000 {
                if part.run(64).unwrap() == ModuleStatus::Done {
                    break;
                }
            }
            let part_hashes = part.hash_computes();
            // Drop the partitioner so the partition fjords disconnect and
            // the blocking drains below terminate.
            drop(part);
            // Worker side: one SteM(s) per partition, probed by t.k.
            let mut matches = 0usize;
            let mut stem_hashes = 0u64;
            for c in &outs {
                let mut stem = StemOp::new(
                    "SteM(s)",
                    s.clone(),
                    "s",
                    0,
                    (Some("t".into()), "k".into()),
                    IndexKind::Hash,
                )
                .unwrap()
                .with_prehash(prehash);
                while let Ok(msg) = c.dequeue_blocking() {
                    if let FjordMessage::Tuple(tu) = msg {
                        matches += stem.process(&tu).unwrap().outputs.len();
                    }
                }
                stem_hashes += stem.hash_computes();
            }
            (part_hashes, stem_hashes, matches)
        };
        let (part_on, stem_on, matches_on) = run(true);
        let (part_off, stem_off, matches_off) = run(false);
        // Same join results either way.
        assert_eq!(matches_on, matches_off);
        assert!(matches_on > 0, "the workload must actually join");
        // Prehash: 2N tuples hashed once each at the partitioner, zero at
        // the SteMs. Legacy: the partitioner hashes 2N and the SteMs hash
        // again for every build and probe — double the total.
        assert_eq!((part_on, stem_on), (2 * N as u64, 0));
        assert_eq!(part_off, 2 * N as u64);
        assert_eq!(stem_off, 2 * N as u64);
    }
}
