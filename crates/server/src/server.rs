//! The `TelegraphCQ` server facade.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tcq_common::sync::Mutex;

use tcq_common::{
    Catalog, CkptReader, CkptWriter, FaultPlan, FiredFault, Predicate, Result, SchemaRef,
    SharedInjector, SourceKind, TcqError, Tuple,
};
use tcq_common::{ProgressRegistry, ProgressSnapshot};
use tcq_eddy::{
    Eddy, EddyConfig, FixedPolicy, GreedyPolicy, LotteryPolicy, ModuleSpec, RandomPolicy,
    RoutingPolicy,
};
use tcq_egress::{ClientId, ColumnDelivery, Delivery, EgressPolicy, EgressRouter, EgressStats};
use tcq_executor::{DuId, Executor, ExecutorConfig, StallDiagnosis, WatchdogConfig};
use tcq_fjords::{fjord, fjord_with_probe, Consumer, Producer, QueueKind};
use tcq_ingress::{
    ChaosSource, Source, SourceFactory, Streamer, Supervisor, SupervisorConfig, SupervisorStats,
};
use tcq_operators::{SelectOp, StemOp};
use tcq_query::{analyze, parse, AnalyzedQuery};
use tcq_stems::IndexKind;
use tcq_storage::{
    BufferPool, CheckpointRecovery, CheckpointStats, CheckpointStore, StreamArchive,
};
use tcq_windows::WindowSeq;

use crate::dispatcher::{OverloadPolicy, StreamDispatcher, SubscriberSet};
use crate::exchange::{self, ExchangeInput, MergeDu, PartitionDu, WorkerDu};
use crate::planner::{
    self, plan_kind, resolve_aggregates, source_predicate, stripped_predicate, PlanKind,
};
use crate::plans::{
    AggCqState, AggregateCqDu, FilterCqDu, FilterCqShared, JoinCqDu, JoinInput, LazyProject,
    QueryId,
};
use crate::shared_join::{SharedJoinDu, SharedJoinKey, SharedJoinShared};

/// Which routing policy new eddies use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Ticket lottery (the adaptive default).
    Lottery,
    /// Static order (non-adaptive baseline).
    Fixed,
    /// Uniform random.
    Random,
    /// Rank by observed selectivity/cost.
    Greedy,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Execution Objects (threads).
    pub eos: usize,
    /// DU scheduling quantum.
    pub quantum: usize,
    /// Capacity of every Fjord queue.
    pub queue_capacity: usize,
    /// Directory for stream archives; `None` disables history (historical
    /// queries will error).
    pub archive_dir: Option<PathBuf>,
    /// Buffer pool size in pages.
    pub pool_pages: usize,
    /// Buffer pool page size in bytes.
    pub page_size: usize,
    /// Routing policy for join eddies.
    pub policy: PolicyKind,
    /// Eddy batching knob (§4.3 "adapting adaptivity").
    pub eddy_batch: usize,
    /// Messages moved per Fjord lock acquisition on the tuple hot path
    /// (dispatchers and query DUs). `1` reproduces per-tuple dispatch
    /// exactly; faults, stamping, and archiving stay per-message at any
    /// setting, so same-seed chaos runs are byte-identical across values.
    pub io_batch: usize,
    /// What dispatchers do when a query's input queue is full (§4.3 QoS).
    pub overload: OverloadPolicy,
    /// RNG seed.
    pub seed: u64,
    /// Seeded chaos schedule threaded through the whole server — the
    /// executor, every streamer and supervisor, each stream's dispatcher
    /// and archive, and the egress router. `None` runs fault-free.
    pub fault_plan: Option<FaultPlan>,
    /// Slow-client policy for the egress router (default: never
    /// disconnect, pure legacy behaviour).
    pub egress_policy: EgressPolicy,
    /// Partition-parallel degree for dedicated join queries. At `1`
    /// (default) every query runs as a single sequential DU chain. At
    /// `P > 1`, eligible joins are split into a hash-partitioned
    /// exchange — `PartitionDu` → P cloned eddies → `MergeDu` — whose
    /// delivered results and egress ledger are byte-identical to `P=1`
    /// for the same seed (see `crate::exchange`).
    pub partitions: usize,
    /// Compiled hot-path kernels (default on). Gates both predicate
    /// compilation ([`tcq_common::kernel`]) and the prehashed SteM/exchange
    /// probe path. Off reproduces the tree-walking interpreter and
    /// per-site hashing of earlier engines — results are byte-identical
    /// either way; only the work per tuple changes.
    pub compiled_kernels: bool,
    /// Columnar hot path (default off). Single-alias dedicated joins
    /// convert each ingress batch to a [`tcq_common::ColumnBatch`] once
    /// and run vectorized select/project/probe kernels over contiguous
    /// column buffers; emitted runs flow to egress without per-tuple
    /// re-materialization when only column clients subscribe. Results,
    /// egress ledger, and chaos replays are byte-identical to the row
    /// path — only the per-tuple work changes. Self-join and
    /// partitioned (`partitions > 1`) plans keep the row path.
    pub columnar: bool,
    /// Durable checkpoint store path; `None` disables checkpointing
    /// ([`TelegraphCQ::checkpoint`] errors, [`TelegraphCQ::restore`]
    /// refuses to boot). Checkpoints are incremental: each
    /// [`TelegraphCQ::checkpoint`] call commits one epoch-delta block
    /// holding only the state dirtied since the previous call.
    pub checkpoint_path: Option<PathBuf>,
    /// Progress tracking + liveness watchdog. `None` (default) runs with
    /// no probes at all; `Some` registers a [`ChannelProbe`] on every
    /// fjord, counts egress offers into the frontier, and arms the
    /// executor's deterministic stall detector (see
    /// [`tcq_executor::WatchdogConfig`]). Probes and detector only
    /// *observe* — a healthy run behaves byte-identically either way.
    ///
    /// [`ChannelProbe`]: tcq_common::ChannelProbe
    pub liveness: Option<LivenessConfig>,
    /// Which transport fronts the server. The core (dispatchers, eddies,
    /// egress ledger) never looks at this: `TelegraphCQ` itself always
    /// exposes the in-process API, and the `tcq_net` crate reads this
    /// field to decide whether to additionally bind a TCP listener. Kept
    /// here so one `ServerConfig` describes the whole deployment and the
    /// chaos A/B contract ("the core replays byte-identically whichever
    /// transport fronts it") has a single switch to flip.
    pub transport: TransportConfig,
}

/// Transport selection for [`ServerConfig::transport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportConfig {
    /// In-process only (the default): clients connect through
    /// [`TelegraphCQ::connect_push_client`] and friends. This is the
    /// deterministic test harness — no sockets, no kernel scheduling in
    /// the replay path.
    InProcess,
    /// In-process *plus* a real TCP listener (served by `tcq_net`):
    /// remote clients speak the length-prefixed checksummed wire
    /// protocol; each connection gets its own bounded egress queue.
    Tcp(TcpTransportConfig),
}

/// TCP listener tuning for [`TransportConfig::Tcp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpTransportConfig {
    /// Bind address, e.g. `"127.0.0.1:0"` (port 0 picks a free port;
    /// read the bound address back from the transport handle).
    pub addr: String,
    /// Capacity of each connection's bounded egress queue (the
    /// per-client delivery queue: a slow socket fills only its own
    /// queue and then sheds, never stalling the router or other
    /// clients).
    pub client_queue: usize,
    /// Writer coalescing threshold in bytes: the connection writer
    /// drains its egress queue into one buffer and flushes when it
    /// crosses this size (or the queue runs dry), amortizing syscalls
    /// the way `io_batch` amortizes lock acquisitions in-process.
    pub write_coalesce: usize,
}

impl Default for TcpTransportConfig {
    fn default() -> Self {
        TcpTransportConfig {
            addr: "127.0.0.1:0".to_string(),
            client_queue: 1024,
            write_coalesce: 64 * 1024,
        }
    }
}

/// Liveness watchdog tuning ([`ServerConfig::liveness`]). Thresholds are
/// detector-EO scheduling rounds ("engine ticks"), not wall clock, so
/// same-seed chaos replays detect at the same dataflow state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivenessConfig {
    /// Frozen-frontier rounds (with work in flight) before a stall is
    /// declared, diagnosed, and every DU is nudged.
    pub stall_ticks: u64,
    /// Further frozen rounds after the nudge before escalating to the
    /// ordered-outbox drain failover.
    pub escalate_ticks: u64,
}

impl Default for LivenessConfig {
    fn default() -> Self {
        let wd = WatchdogConfig::default();
        LivenessConfig {
            stall_ticks: wd.stall_ticks,
            escalate_ticks: wd.escalate_ticks,
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            eos: 2,
            quantum: 128,
            queue_capacity: 1024,
            archive_dir: None,
            pool_pages: 256,
            page_size: 8192,
            policy: PolicyKind::Lottery,
            eddy_batch: 1,
            io_batch: crate::dispatcher::DEFAULT_IO_BATCH,
            overload: OverloadPolicy::Backpressure,
            seed: 0x7E1E_C001,
            fault_plan: None,
            egress_policy: EgressPolicy::default(),
            partitions: 1,
            compiled_kernels: true,
            columnar: false,
            checkpoint_path: None,
            liveness: None,
            transport: TransportConfig::InProcess,
        }
    }
}

struct StreamState {
    def: tcq_common::StreamDef,
    ingress: Producer,
    subscribers: SubscriberSet,
    latest_seq: Arc<AtomicI64>,
    archive: Option<Arc<Mutex<StreamArchive>>>,
    filter_shared: FilterCqShared,
    class: u64,
    /// Copies shed by the dispatcher under OverloadPolicy::Shed or an
    /// injected enqueue overflow.
    shed: Arc<AtomicI64>,
    /// Archive appends that failed (history degraded, loss counted).
    archive_errors: Arc<AtomicI64>,
}

enum QueryRecord {
    SharedFilter {
        stream: String,
    },
    SharedJoin {
        key: SharedJoinKey,
    },
    Dedicated {
        dus: Vec<DuId>,
        subscriptions: Vec<(String, u64)>,
    },
    Completed,
}

struct SharedJoinEntry {
    shared: SharedJoinShared,
    du: DuId,
    subscriptions: Vec<(String, u64)>,
}

/// Shared handle to one query's checkpointable operator state.
enum QueryStateHandle {
    /// A dedicated join: the eddy whose SteMs carry the join state.
    Join(Arc<Mutex<Eddy>>),
    /// A windowed aggregate: loop position + buffered tuples.
    Aggregate(AggCqState),
}

/// One [`TelegraphCQ::checkpoint`] commit, summarized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReport {
    /// The epoch this delta committed as.
    pub epoch: u64,
    /// Fragments in the delta (dirtied state groups + the always-written
    /// cursor/ledger watermarks).
    pub fragments: u64,
    /// Bytes appended to the store (header + payload).
    pub bytes: u64,
}

/// Memory accounting for one shared standing-query structure
/// ([`TelegraphCQ::shared_memory_stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedMemoryStat {
    /// `filter:<stream>` or `join:<left>:<right>`.
    pub label: String,
    /// Standing queries registered in the structure.
    pub queries: usize,
    /// Approximate heap footprint of its index state in bytes.
    pub approx_bytes: usize,
}

/// The running TelegraphCQ instance (paper Figure 5, one process).
pub struct TelegraphCQ {
    config: ServerConfig,
    catalog: Catalog,
    executor: Executor,
    egress: EgressRouter,
    pool: BufferPool,
    streams: Mutex<HashMap<String, Arc<StreamState>>>,
    shared_joins: Mutex<HashMap<SharedJoinKey, SharedJoinEntry>>,
    queries: Mutex<HashMap<QueryId, QueryRecord>>,
    streamers: Mutex<Vec<Streamer>>,
    supervisors: Mutex<Vec<Supervisor>>,
    /// One injector for the whole process, shared by every layer, so the
    /// fired-fault log is a single seed-deterministic account of the run.
    injector: Option<SharedInjector>,
    /// The progress registry every fjord and the egress router report
    /// into when `ServerConfig::liveness` is set.
    progress: Option<ProgressRegistry>,
    /// The durable checkpoint store (`ServerConfig::checkpoint_path`).
    ckpt: Option<Mutex<CheckpointStore>>,
    /// Per-query operator state handles, registered at submit in qid order
    /// so checkpoint fragment emission is deterministic.
    ckpt_handles: Mutex<Vec<(QueryId, QueryStateHandle)>>,
    /// Booted via [`TelegraphCQ::restore`]? When true, the recovered
    /// checkpoint image is applied as streams register, sources attach,
    /// and queries resubmit.
    restoring: bool,
    next_query: AtomicUsize,
    next_client: AtomicU64,
}

impl TelegraphCQ {
    /// Boot the server fresh. With `ServerConfig::checkpoint_path` set the
    /// store is opened for writing, but no recovered state is applied —
    /// use [`TelegraphCQ::restore`] to resume a crashed incarnation.
    pub fn start(config: ServerConfig) -> Result<Self> {
        Self::boot(config, false)
    }

    /// Boot the server *from its checkpoint*: reopen the store at
    /// `ServerConfig::checkpoint_path`, replay the longest valid prefix of
    /// epoch blocks, and apply the recovered image as the caller rebuilds
    /// the topology — [`TelegraphCQ::register_stream`] seeds stream
    /// clocks, [`TelegraphCQ::attach_supervised_source`] seeds resume
    /// cursors, the egress ledger is seeded here, and
    /// [`TelegraphCQ::submit`] imports each query's SteM groups and window
    /// partials (queries must be resubmitted in their original order so
    /// query ids line up). Delivery past the checkpoint watermark is
    /// at-least-once: clients dedup replayed results by sequence.
    pub fn restore(config: ServerConfig) -> Result<Self> {
        if config.checkpoint_path.is_none() {
            return Err(TcqError::Storage(
                "restore requires ServerConfig::checkpoint_path".into(),
            ));
        }
        Self::boot(config, true)
    }

    fn boot(config: ServerConfig, restoring: bool) -> Result<Self> {
        let injector = config.fault_plan.clone().map(FaultPlan::build_shared);
        let progress = config.liveness.map(|_| ProgressRegistry::new());
        let watchdog = match (&progress, &config.liveness) {
            (Some(registry), Some(lv)) => Some(WatchdogConfig {
                registry: registry.clone(),
                stall_ticks: lv.stall_ticks,
                escalate_ticks: lv.escalate_ticks,
            }),
            _ => None,
        };
        let executor = Executor::start(ExecutorConfig {
            eos: config.eos,
            quantum: config.quantum,
            idle_park: Duration::from_micros(200),
            injector: injector.clone(),
            watchdog,
        })?;
        if let Some(dir) = &config.archive_dir {
            std::fs::create_dir_all(dir)?;
        }
        let pool = BufferPool::new(config.pool_pages, config.page_size);
        let egress = EgressRouter::new().with_policy(config.egress_policy);
        if let Some(inj) = &injector {
            egress.attach_injector(inj.clone());
        }
        if let Some(registry) = &progress {
            // Egress offers advance the frontier without adding in-flight
            // depth: delivery is the dataflow's terminal progress event.
            egress.attach_progress(registry.counter("egress.offers"));
        }
        let ckpt = match &config.checkpoint_path {
            Some(path) => {
                if let Some(dir) = path.parent() {
                    if !dir.as_os_str().is_empty() {
                        std::fs::create_dir_all(dir)?;
                    }
                }
                let store = CheckpointStore::open_with_injector(path, injector.clone())?;
                if restoring {
                    // The egress ledger spans the outage: offered/delivered/
                    // shed keep counting from the pre-crash totals, so the
                    // accounting invariant holds across incarnations.
                    if let Some(bytes) = store.get("egress", b"") {
                        egress.seed_stats(EgressStats::decode(bytes)?);
                    }
                }
                Some(Mutex::new(store))
            }
            None => None,
        };
        Ok(TelegraphCQ {
            config,
            catalog: Catalog::new(),
            executor,
            egress,
            pool,
            streams: Mutex::new(HashMap::new()),
            shared_joins: Mutex::new(HashMap::new()),
            queries: Mutex::new(HashMap::new()),
            streamers: Mutex::new(Vec::new()),
            supervisors: Mutex::new(Vec::new()),
            injector,
            progress,
            ckpt,
            ckpt_handles: Mutex::new(Vec::new()),
            restoring,
            next_query: AtomicUsize::new(1),
            next_client: AtomicU64::new(1),
        })
    }

    /// What checkpoint recovery found at boot (`None` when checkpointing
    /// is disabled).
    pub fn checkpoint_recovery(&self) -> Option<CheckpointRecovery> {
        self.ckpt.as_ref().map(|s| s.lock().recovery())
    }

    /// Checkpoint write-path counters (`None` when disabled).
    pub fn checkpoint_stats(&self) -> Option<CheckpointStats> {
        self.ckpt.as_ref().map(|s| s.lock().stats())
    }

    /// A committed checkpoint fragment, cloned out of the store's
    /// latest-wins image (tests, experiments).
    pub fn checkpoint_fragment(&self, component: &str, key: &[u8]) -> Option<Vec<u8>> {
        self.ckpt
            .as_ref()
            .and_then(|s| s.lock().get(component, key).map(<[u8]>::to_vec))
    }

    /// The catalog (for inspection).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The shared buffer pool (storage experiments).
    pub fn buffer_pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Register a stream: catalog entry, ingress queue, dispatcher DU, and
    /// the stream's shared filter DU. `schema` is the base schema; columns
    /// will be addressed both bare and qualified by the stream name.
    pub fn register_stream(&self, name: &str, schema: SchemaRef) -> Result<()> {
        self.register_source(name, schema, SourceKind::PushStream)
    }

    /// Register a (slowly changing) table: same plumbing as a stream, but
    /// queries may join against it without a WindowIs clause — "an input
    /// without a corresponding WindowIs statement is assumed to be a static
    /// table by default" (§4.1.1). Rows are appended with [`TelegraphCQ::push`].
    pub fn register_table(&self, name: &str, schema: SchemaRef) -> Result<()> {
        self.register_source(name, schema, SourceKind::Table)
    }

    fn register_source(&self, name: &str, schema: SchemaRef, kind: SourceKind) -> Result<()> {
        let def = self.catalog.register(name, schema.clone(), kind)?;
        let qualified = schema.with_qualifier(name).into_ref();
        let (ingress_p, ingress_c) =
            self.make_fjord(format!("ingress({name})"), self.config.queue_capacity);
        let subscribers = SubscriberSet::new();
        let latest_seq = Arc::new(AtomicI64::new(0));
        if self.restoring {
            // Restore the stream clock before the dispatcher is built:
            // window start times (`ST`), arrival stamping, and historical
            // splits all anchor on it.
            if let Some(store) = &self.ckpt {
                let store = store.lock();
                if let Some(bytes) = store.get("seq", name.to_ascii_lowercase().as_bytes()) {
                    let seq = CkptReader::new(bytes).get_i64("stream clock")?;
                    latest_seq.store(seq, Ordering::Release);
                }
            }
        }
        let archive = match &self.config.archive_dir {
            Some(dir) => {
                let path = dir.join(format!("{}.seg", name.to_ascii_lowercase()));
                // `open` (not `create`): a segment left behind by a crash
                // is recovered — torn tail truncated, corrupt pages
                // skipped — and appends resume where the valid prefix
                // ends, instead of silently wiping history.
                let mut archive = StreamArchive::open(path, qualified.clone(), self.pool.clone())?;
                if let Some(inj) = &self.injector {
                    archive.attach_injector(inj.clone());
                }
                Some(Arc::new(Mutex::new(archive)))
            }
            None => None,
        };
        let class = 1u64 << (def.id % 64);
        let mut dispatcher = StreamDispatcher::new(
            format!("dispatch({name})"),
            ingress_c,
            subscribers.clone(),
            archive.clone(),
            Arc::clone(&latest_seq),
        )
        .with_overload_policy(self.config.overload)
        .with_io_batch(self.config.io_batch);
        if let Some(inj) = &self.injector {
            dispatcher = dispatcher.with_injector(inj.clone());
        }
        let shed = dispatcher.shed_counter();
        let archive_errors = dispatcher.archive_error_counter();
        self.executor.submit(class, Box::new(dispatcher))?;

        // The shared CACQ filter DU for this stream.
        let filter_shared =
            FilterCqShared::with_compiled_kernels(qualified, self.config.compiled_kernels);
        let (fp, fc) = self.make_fjord(format!("filter({name})"), self.config.queue_capacity);
        subscribers.add(fp);
        let filter_du = FilterCqDu::new(
            format!("filter-cq({name})"),
            fc,
            filter_shared.clone(),
            self.egress.clone(),
        )
        .with_io_batch(self.config.io_batch);
        self.executor.submit(class, Box::new(filter_du))?;

        let state = StreamState {
            def,
            ingress: ingress_p,
            subscribers,
            latest_seq,
            archive,
            filter_shared,
            class,
            shed,
            archive_errors,
        };
        self.streams
            .lock()
            .insert(name.to_ascii_lowercase(), Arc::new(state));
        Ok(())
    }

    /// A fjord that reports into the progress registry when liveness
    /// tracking is on — the single choke point every engine channel is
    /// created through, so the watchdog's frontier covers them all.
    fn make_fjord(&self, name: impl Into<String>, capacity: usize) -> (Producer, Consumer) {
        match &self.progress {
            Some(registry) => fjord_with_probe(capacity, QueueKind::Push, registry.channel(name)),
            None => fjord(capacity, QueueKind::Push),
        }
    }

    fn stream(&self, name: &str) -> Result<Arc<StreamState>> {
        self.streams
            .lock()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| TcqError::UnknownStream(name.to_string()))
    }

    /// Attach a wrapper: spawn a streamer thread draining `source` into the
    /// stream's ingress queue. Under a fault plan the source is wrapped in
    /// a [`ChaosSource`] (read faults) and the streamer polls
    /// [`tcq_common::FaultPoint::FjordEnqueue`] per tuple.
    pub fn attach_source(&self, stream: &str, source: Box<dyn Source>) -> Result<()> {
        let st = self.stream(stream)?;
        let source: Box<dyn Source> = match &self.injector {
            Some(inj) => Box::new(ChaosSource::new(source, inj.clone())),
            None => source,
        };
        let streamer = Streamer::spawn_with_injector(
            stream,
            source,
            st.ingress.clone(),
            self.injector.clone(),
        );
        self.streamers.lock().push(streamer);
        Ok(())
    }

    /// Attach a supervised wrapper: like [`TelegraphCQ::attach_source`],
    /// but the source is rebuilt by `factory` after panics and errors per
    /// `config` — the ingress survives a flaky wrapper instead of dying
    /// with it. Under a fault plan each rebuilt source is chaos-wrapped.
    pub fn attach_supervised_source(
        &self,
        stream: &str,
        mut factory: SourceFactory,
        mut config: SupervisorConfig,
    ) -> Result<()> {
        let st = self.stream(stream)?;
        if self.restoring && config.initial_delivered == 0 {
            // Seed the resume cursor from the checkpointed watermark: the
            // factory's first build sees the pre-crash delivered count and
            // skips what the lost incarnation already consumed.
            if let Some(store) = &self.ckpt {
                let store = store.lock();
                if let Some(bytes) = store.get("cursor", stream.to_ascii_lowercase().as_bytes()) {
                    config.initial_delivered = CkptReader::new(bytes).get_u64("resume cursor")?;
                }
            }
        }
        let injector = self.injector.clone();
        let wrapped: SourceFactory = Box::new(move |attempt, delivered| {
            let inner = factory(attempt, delivered)?;
            Ok(match &injector {
                Some(inj) => Box::new(ChaosSource::new(inner, inj.clone())) as Box<dyn Source>,
                None => inner,
            })
        });
        let supervisor = Supervisor::spawn(stream, wrapped, st.ingress.clone(), config);
        self.supervisors.lock().push(supervisor);
        Ok(())
    }

    /// Per-stream supervision counters, keyed by the supervisor's stream
    /// name (empty when no supervised sources are attached).
    pub fn supervisor_stats(&self) -> Vec<(String, SupervisorStats)> {
        self.supervisors
            .lock()
            .iter()
            .map(|s| (s.name().to_string(), s.stats()))
            .collect()
    }

    /// Inject one tuple directly (tests, examples). Blocks under
    /// back-pressure.
    pub fn push(&self, stream: &str, tuple: Tuple) -> Result<()> {
        self.stream(stream)?.ingress.send_tuple(tuple)
    }

    /// Inject a punctuation into `stream` (\[TMSS03\]): an assertion that
    /// no later tuple will carry a timestamp ≤ `ts`. Remote clients reach
    /// this through the wire protocol's `Punct` frame.
    pub fn punctuate(&self, stream: &str, ts: tcq_common::Timestamp) -> Result<()> {
        self.stream(stream)?.ingress.send_punct(ts)
    }

    /// Inject a batch of tuples under one ingress-lock acquisition per
    /// chunk admitted (benchmarks, bulk loads). Blocks under back-pressure
    /// until every tuple is enqueued; order is preserved.
    pub fn push_batch(&self, stream: &str, tuples: Vec<Tuple>) -> Result<()> {
        let st = self.stream(stream)?;
        let mut msgs: Vec<_> = tuples
            .into_iter()
            .map(tcq_fjords::FjordMessage::Tuple)
            .collect();
        st.ingress.enqueue_batch_blocking(&mut msgs)?;
        Ok(())
    }

    /// Signal end-of-stream (finite runs).
    pub fn finish_stream(&self, stream: &str) -> Result<()> {
        self.stream(stream)?.ingress.send_eof()
    }

    /// Latest logical time seen on a stream.
    pub fn stream_time(&self, stream: &str) -> Result<i64> {
        Ok(self.stream(stream)?.latest_seq.load(Ordering::Acquire))
    }

    /// Copies shed by a stream's dispatcher under
    /// [`OverloadPolicy::Shed`] or an injected enqueue overflow (0 under
    /// fault-free back-pressure).
    pub fn shed_count(&self, stream: &str) -> Result<i64> {
        Ok(self.stream(stream)?.shed.load(Ordering::Relaxed))
    }

    /// Archive appends that failed on a stream (history degraded; the
    /// live path kept flowing and the loss was counted).
    pub fn archive_error_count(&self, stream: &str) -> Result<i64> {
        Ok(self.stream(stream)?.archive_errors.load(Ordering::Relaxed))
    }

    /// Approximate heap footprint of every shared standing-query structure:
    /// one entry per stream (its shared filter's query index + probe
    /// scratch) and one per shared join (query SteMs + stored join state).
    /// Sorted by label so output is deterministic.
    pub fn shared_memory_stats(&self) -> Vec<SharedMemoryStat> {
        let mut out = Vec::new();
        for (name, st) in self.streams.lock().iter() {
            out.push(SharedMemoryStat {
                label: format!("filter:{name}"),
                queries: st.filter_shared.query_count(),
                approx_bytes: st.filter_shared.approx_bytes(),
            });
        }
        for (key, entry) in self.shared_joins.lock().iter() {
            out.push(SharedMemoryStat {
                label: format!("join:{}:{}", key.left, key.right),
                queries: entry.shared.query_count(),
                approx_bytes: entry.shared.approx_bytes(),
            });
        }
        out.sort_by(|a, b| a.label.cmp(&b.label));
        out
    }

    /// A stream archive's counters (`None` when archiving is disabled).
    pub fn archive_stats(&self, stream: &str) -> Result<Option<tcq_storage::ArchiveStats>> {
        Ok(self
            .stream(stream)?
            .archive
            .as_ref()
            .map(|a| a.lock().stats()))
    }

    /// What archive recovery found when this stream's segment was opened
    /// (`None` when archiving is disabled or the segment was fresh).
    pub fn archive_recovery(&self, stream: &str) -> Result<Option<tcq_storage::RecoveryReport>> {
        Ok(self
            .stream(stream)?
            .archive
            .as_ref()
            .and_then(|a| a.lock().recovery()))
    }

    /// The process-wide chaos injector, when a fault plan is configured.
    pub fn injector(&self) -> Option<&SharedInjector> {
        self.injector.as_ref()
    }

    /// Faults fired so far, in firing order (empty without a fault plan).
    pub fn fired_faults(&self) -> Vec<FiredFault> {
        self.injector.as_ref().map(|i| i.log()).unwrap_or_default()
    }

    /// Connect a push client; results stream into the returned receiver.
    pub fn connect_push_client(&self, capacity: usize) -> Result<(ClientId, Receiver<Delivery>)> {
        let id = self.next_client.fetch_add(1, Ordering::Relaxed);
        let rx = self.egress.register_push_client(id, capacity)?;
        Ok((id, rx))
    }

    /// Connect a column client; results stream into the returned receiver
    /// as whole [`tcq_common::ColumnBatch`] runs instead of per-row
    /// messages. Pair with [`ServerConfig::columnar`] for an egress path
    /// with zero per-row allocations; rows produced on the row path are
    /// still delivered (as single-row batches), so subscriptions behave
    /// like push clients either way.
    pub fn connect_column_client(
        &self,
        capacity: usize,
    ) -> Result<(ClientId, Receiver<ColumnDelivery>)> {
        let id = self.next_client.fetch_add(1, Ordering::Relaxed);
        let rx = self.egress.register_column_client(id, capacity)?;
        Ok((id, rx))
    }

    /// Connect a pull client with a result buffer.
    pub fn connect_pull_client(&self, capacity: usize) -> Result<ClientId> {
        let id = self.next_client.fetch_add(1, Ordering::Relaxed);
        self.egress.register_pull_client(id, capacity)?;
        Ok(id)
    }

    /// Connect a pull client with Juggle-style prioritized retrieval
    /// (\[RRH99\], §4.3): `fetch` returns the highest-`priority` buffered
    /// results first, and overflow sheds the least interesting.
    pub fn connect_prioritized_client(
        &self,
        capacity: usize,
        priority: Box<dyn Fn(&Tuple) -> f64 + Send>,
    ) -> Result<ClientId> {
        let id = self.next_client.fetch_add(1, Ordering::Relaxed);
        self.egress
            .register_prioritized_client(id, capacity, priority)?;
        Ok(id)
    }

    /// Pull client: fetch buffered results.
    pub fn fetch(&self, client: ClientId, max: usize) -> Result<Vec<Delivery>> {
        self.egress.fetch(client, max)
    }

    /// Subscribe an already-connected client to an already-running query
    /// (the transport layer's `Subscribe` control frame: one TCP
    /// connection fans into many standing queries through its single
    /// egress queue).
    pub fn subscribe_client(&self, client: ClientId, query: QueryId) -> Result<()> {
        self.egress.subscribe(client, query)
    }

    /// Disconnect a client cleanly (its queue was fully drained).
    pub fn disconnect_client(&self, client: ClientId) {
        self.egress.disconnect(client);
    }

    /// Disconnect a client whose transport died with `undrained` results
    /// still buffered in its egress queue; those rows are reclassified
    /// from `delivered` to `disconnected_loss` so the ledger counts what
    /// the peer actually received (see
    /// [`tcq_egress::EgressRouter::disconnect_with_loss`]).
    pub fn disconnect_client_with_loss(&self, client: ClientId, undrained: u64) {
        self.egress.disconnect_with_loss(client, undrained);
    }

    /// Parse, analyze, plan, and start a continuous query on behalf of
    /// `client`. Returns the query id.
    pub fn submit(&self, sql: &str, client: ClientId) -> Result<QueryId> {
        let stmt = parse(sql)?;
        let aq = analyze(&stmt, &self.catalog)?;
        let kind = plan_kind(&aq)?;
        let qid = self.next_query.fetch_add(1, Ordering::Relaxed);
        self.egress.subscribe(client, qid)?;
        let record = match kind {
            PlanKind::SharedFilter => self.start_shared_filter(qid, &aq)?,
            PlanKind::Aggregate => self.start_aggregate(qid, &aq)?,
            PlanKind::Join => self.start_join(qid, &aq)?,
            PlanKind::Historical => self.run_historical(qid, &aq)?,
        };
        self.queries.lock().insert(qid, record);
        Ok(qid)
    }

    fn start_shared_filter(&self, qid: QueryId, aq: &AnalyzedQuery) -> Result<QueryRecord> {
        let source = &aq.sources[0];
        let st = self.stream(&source.name)?;
        let pred = stripped_predicate(aq);
        let projection: Vec<(tcq_common::Expr, Option<String>)> = aq
            .projection
            .iter()
            .map(|(e, a)| (planner::strip_qualifiers(e), a.clone()))
            .collect();

        // Windowed filter queries: the earliest window left edge bounds
        // which live tuples qualify, and the part of the window sequence
        // that lies in the past is answered from the archive (PSoup's
        // "new queries applied to old data", §3.2). Logical time is
        // monotonic per stream, so splitting at `now` is exact.
        let mut min_seq = i64::MIN;
        let mut replay_until = i64::MIN;
        if let Some(w) = &aq.window {
            let now = st.latest_seq.load(Ordering::Acquire);
            if let Some(Ok(wa)) = WindowSeq::new(w.clone(), now.max(1)).next() {
                if let Some(win) = wa.window_for(&source.alias) {
                    min_seq = win.left;
                    if st.archive.is_some() && min_seq <= now {
                        replay_until = now;
                    }
                }
            }
        }
        let live_floor = if replay_until > i64::MIN {
            replay_until + 1
        } else {
            min_seq
        };
        st.filter_shared
            .add_query(qid, pred.as_ref(), &projection, live_floor)?;

        if replay_until > i64::MIN {
            let archive = st.archive.as_ref().expect("checked above");
            let base = st.def.schema.with_qualifier(&source.name).into_ref();
            let bound = match &pred {
                Some(p) => Some(Predicate::new(p, &base, self.config.compiled_kernels)?),
                None => None,
            };
            let project = tcq_operators::ProjectOp::new(&projection, &base)?;
            let mut scratch = Vec::new();
            archive
                .lock()
                .scan_window(min_seq, replay_until, &mut scratch)?;
            for t in &scratch {
                let passes = match &bound {
                    Some(p) => p.eval_pred(t)?,
                    None => true,
                };
                if passes {
                    self.egress.deliver([qid], &project.apply(t)?);
                }
            }
        }
        Ok(QueryRecord::SharedFilter {
            stream: source.name.clone(),
        })
    }

    fn start_aggregate(&self, qid: QueryId, aq: &AnalyzedQuery) -> Result<QueryRecord> {
        let source = &aq.sources[0];
        let st = self.stream(&source.name)?;
        let window = aq.window.clone().ok_or_else(|| {
            TcqError::Analysis("aggregates over a stream require a window clause (for-loop)".into())
        })?;
        let base = st.def.schema.with_qualifier(&source.name).into_ref();
        let pred = match stripped_predicate(aq) {
            Some(p) => Some(Predicate::new(&p, &base, self.config.compiled_kernels)?),
            None => None,
        };
        let aggs = resolve_aggregates(aq)?;
        let group_by = aq.group_by.map(|(_, col)| col);
        let stt = st.latest_seq.load(Ordering::Acquire);
        let windows = WindowSeq::new(window, stt.max(1));
        let (p, c) = self.make_fjord(format!("agg(q{qid})"), self.config.queue_capacity);
        let sub_id = st.subscribers.add(p);
        let du = AggregateCqDu::new(
            format!("agg-cq(q{qid})"),
            c,
            &base,
            pred,
            aggs,
            group_by,
            windows,
            source.alias.clone(),
            self.egress.clone(),
            qid,
        )
        .with_io_batch(self.config.io_batch);
        let state = du.state_handle();
        if self.restoring {
            if let Some(bytes) = self.checkpoint_fragment(&format!("q{qid}/agg"), b"") {
                state.import(&bytes)?;
            }
        }
        if self.ckpt.is_some() {
            self.ckpt_handles
                .lock()
                .push((qid, QueryStateHandle::Aggregate(state)));
        }
        let du_id = self.executor.submit(st.class, Box::new(du))?;
        Ok(QueryRecord::Dedicated {
            dus: vec![du_id],
            subscriptions: vec![(source.name.clone(), sub_id)],
        })
    }

    fn make_policy(&self) -> Box<dyn RoutingPolicy> {
        match self.config.policy {
            PolicyKind::Lottery => Box::new(LotteryPolicy::new()),
            PolicyKind::Random => Box::new(RandomPolicy),
            PolicyKind::Greedy => Box::new(GreedyPolicy::new()),
            // A fixed order over however many modules get registered; the
            // natural order is registration order.
            PolicyKind::Fixed => Box::new(FixedPolicy::new((0..64).collect())),
        }
    }

    fn start_join(&self, qid: QueryId, aq: &AnalyzedQuery) -> Result<QueryRecord> {
        let partitions = self.config.partitions.max(1);
        // CACQ sharing and partition parallelism are competing layouts for
        // the same query; a partitioned server keeps every join dedicated
        // so P=1 and P>1 differ only in the exchange, not the plan kind.
        if partitions == 1 && planner::shareable_join(aq)? {
            return self.start_shared_join(qid, aq);
        }
        if partitions > 1 && exchange::partitionable(aq) {
            return self.start_partitioned_join(qid, aq, partitions);
        }
        let (eddy, _key_cols) = self.build_join_eddy(aq)?;

        // Inputs: one subscription per physical stream; aliases grouped.
        let mut by_stream: HashMap<String, Vec<SchemaRef>> = HashMap::new();
        for source in &aq.sources {
            by_stream
                .entry(source.name.to_ascii_lowercase())
                .or_default()
                .push(source.schema.clone());
        }
        let mut inputs = Vec::new();
        let mut subscriptions = Vec::new();
        let mut class = 0u64;
        for (stream_name, alias_schemas) in by_stream {
            let st = self.stream(&stream_name)?;
            class |= st.class;
            let (p, c) = self.make_fjord(
                format!("join(q{qid}.{stream_name})"),
                self.config.queue_capacity,
            );
            let sub_id = st.subscribers.add(p);
            subscriptions.push((stream_name.clone(), sub_id));
            inputs.push(JoinInput {
                consumer: c,
                alias_schemas,
                eof: false,
            });
        }

        let (floor, deadline) = self.join_bounds(aq)?;
        let project = LazyProject::new(aq.projection.clone())
            .with_compiled_kernels(self.config.compiled_kernels);
        let du = JoinCqDu::new(
            format!("join-cq(q{qid})"),
            inputs,
            eddy,
            project,
            self.egress.clone(),
            qid,
            floor,
            deadline,
        )
        .with_io_batch(self.config.io_batch)
        .with_columnar(self.config.columnar);
        let handle = du.eddy_handle();
        if self.restoring {
            self.import_join_state(qid, &handle)?;
        }
        if self.ckpt.is_some() {
            self.ckpt_handles
                .lock()
                .push((qid, QueryStateHandle::Join(handle)));
        }
        let du_id = self.executor.submit(class, Box::new(du))?;
        Ok(QueryRecord::Dedicated {
            dus: vec![du_id],
            subscriptions,
        })
    }

    /// Import a restored query's SteM groups into a freshly built eddy
    /// (components `q<qid>/stem/<module>`, keyed by group hash). Empty
    /// fragments are tombstones — the group was exported after emptying —
    /// and are skipped.
    fn import_join_state(&self, qid: QueryId, eddy: &Arc<Mutex<Eddy>>) -> Result<()> {
        let Some(store) = &self.ckpt else {
            return Ok(());
        };
        let store = store.lock();
        let prefix = format!("q{qid}/stem/");
        let mut eddy = eddy.lock();
        let comps: Vec<String> = store
            .components()
            .filter(|c| c.starts_with(&prefix))
            .map(str::to_string)
            .collect();
        for comp in comps {
            let module: usize = comp[prefix.len()..].parse().map_err(|_| {
                TcqError::Storage(format!("malformed checkpoint component '{comp}'"))
            })?;
            for (key, value) in store.fragments(&comp) {
                if value.is_empty() {
                    continue;
                }
                let hash =
                    u64::from_le_bytes(key.try_into().map_err(|_| {
                        TcqError::Storage(format!("malformed group key in '{comp}'"))
                    })?);
                eddy.import_module_group(module, hash, value)?;
            }
        }
        Ok(())
    }

    /// Build the dedicated eddy (SteMs + filters + band predicates) for a
    /// join query, returning it together with each source's join-key
    /// column. Called once for a sequential plan and P times for a
    /// partitioned one — every instance is identical (same policy, same
    /// seed), which is half of the exchange determinism argument.
    fn build_join_eddy(&self, aq: &AnalyzedQuery) -> Result<(Eddy, Vec<usize>)> {
        // Eddy over the query's aliases.
        let aliases: Vec<String> = aq.sources.iter().map(|s| s.alias.clone()).collect();
        let mut eddy = Eddy::new(
            &aliases,
            self.make_policy(),
            EddyConfig {
                batch_size: self.config.eddy_batch,
                seed: self.config.seed,
            },
        )?;

        // One SteM per source; key column from the join pairs. A SteM is
        // probed by its join *partners* (their tuples carry the probe key);
        // an intermediate tuple qualifies as soon as it spans any partner.
        let mut key_col: Vec<Option<usize>> = vec![None; aq.sources.len()];
        let mut probe_specs: Vec<Vec<(Option<String>, String)>> =
            vec![Vec::new(); aq.sources.len()];
        let mut partners: Vec<u64> = vec![0; aq.sources.len()];
        for jp in &aq.join_pairs {
            for (src, col, other, other_col) in [
                (jp.left, jp.left_col, jp.right, jp.right_col),
                (jp.right, jp.right_col, jp.left, jp.left_col),
            ] {
                match key_col[src] {
                    None => key_col[src] = Some(col),
                    Some(existing) if existing == col => {}
                    Some(_) => {
                        return Err(TcqError::Analysis(format!(
                            "source '{}' joins on two different columns; \
                             multi-key SteMs are not supported",
                            aq.sources[src].alias
                        )))
                    }
                }
                let other_schema = &aq.sources[other].schema;
                probe_specs[src].push((
                    Some(aq.sources[other].alias.clone()),
                    other_schema.field(other_col).name.clone(),
                ));
                partners[src] |= eddy.source_bit(&aq.sources[other].alias)?;
            }
        }
        for (i, source) in aq.sources.iter().enumerate() {
            let Some(kc) = key_col[i] else {
                return Err(TcqError::Analysis(format!(
                    "source '{}' participates in no equi-join predicate",
                    source.alias
                )));
            };
            let my_bit = eddy.source_bit(&source.alias)?;
            let mut specs = probe_specs[i].clone().into_iter();
            let first = specs
                .next()
                .expect("at least one probe spec per joined source");
            let mut stem = StemOp::new(
                format!("SteM({})", source.alias),
                source.schema.clone(),
                source.alias.clone(),
                kc,
                first,
                IndexKind::Hash,
            )?;
            for extra in specs {
                stem = stem.with_extra_probe_key(extra);
            }
            stem = stem.with_prehash(self.config.compiled_kernels);
            if let Some(width) = planner::join_window_width(aq, &source.alias)? {
                stem = stem.with_window_width(width);
            }
            eddy.add_module(ModuleSpec::stem(Box::new(stem), my_bit, partners[i]))?;
        }
        // Per-source filters.
        for (i, source) in aq.sources.iter().enumerate() {
            if let Some(pred) = source_predicate(aq, i) {
                let bit = eddy.source_bit(&source.alias)?;
                let op = SelectOp::new(format!("sel({})", source.alias), &pred, &source.schema)?
                    .with_compiled_kernels(self.config.compiled_kernels);
                eddy.add_module(ModuleSpec::filter(Box::new(op), bit))?;
            }
        }
        // Cross factors (band predicates): filters over joined tuples.
        for (k, factor) in aq.cross_factors.iter().enumerate() {
            let mut bits = 0u64;
            for (q, name) in factor.columns() {
                let idx = match q {
                    Some(q) => aq
                        .source_index(q)
                        .ok_or_else(|| TcqError::Analysis(format!("unknown qualifier '{q}'")))?,
                    None => {
                        // analyzer guarantees resolvability; find the owner
                        aq.sources
                            .iter()
                            .position(|s| s.schema.index_of(None, name).is_ok())
                            .ok_or_else(|| TcqError::Analysis(format!("unknown column '{name}'")))?
                    }
                };
                bits |= eddy.source_bit(&aq.sources[idx].alias)?;
            }
            let op = SelectOp::new(format!("band{k}"), factor, &aq.combined_schema)?
                .with_compiled_kernels(self.config.compiled_kernels);
            eddy.add_module(ModuleSpec::filter(Box::new(op), bits))?;
        }
        let key_cols: Vec<usize> = key_col.into_iter().flatten().collect();
        Ok((eddy, key_cols))
    }

    /// The window sequence's extent bounds a join query's lifetime: tuples
    /// before the first window are skipped (`floor`), and once stream time
    /// passes the final window's close the query retires (`deadline` — the
    /// for-loop's stopping condition).
    fn join_bounds(&self, aq: &AnalyzedQuery) -> Result<(i64, i64)> {
        let mut floor = i64::MIN;
        let mut deadline = i64::MAX;
        if let Some(w) = &aq.window {
            let now = aq
                .sources
                .iter()
                .filter_map(|s| self.stream(&s.name).ok())
                .map(|st| st.latest_seq.load(Ordering::Acquire))
                .max()
                .unwrap_or(0);
            const CAP: u64 = 1_000_000;
            let mut iterations = 0u64;
            let mut last_close = i64::MIN;
            for wa in WindowSeq::new(w.clone(), now.max(1)).with_max_iterations(CAP) {
                let wa = wa?;
                if iterations == 0 {
                    floor = wa
                        .windows
                        .iter()
                        .map(|(_, win)| win.left)
                        .min()
                        .unwrap_or(i64::MIN);
                }
                iterations += 1;
                last_close = last_close.max(wa.close_time());
            }
            // Loops that hit the iteration cap are treated as unbounded;
            // finite loops retire the query after their final window.
            if iterations > 0 && iterations < CAP {
                deadline = last_close;
            }
        }
        Ok((floor, deadline))
    }

    /// Partition-parallel dedicated join (`ServerConfig::partitions > 1`):
    /// a `PartitionDu` hash-splits the canonical input order into P
    /// partition fjords, P cloned eddies consume them on distinct EOs, and
    /// a `MergeDu` replays the partitioner's run order so delivery is
    /// byte-identical to the sequential plan (see `crate::exchange`).
    fn start_partitioned_join(
        &self,
        qid: QueryId,
        aq: &AnalyzedQuery,
        partitions: usize,
    ) -> Result<QueryRecord> {
        let cap = self.config.queue_capacity;
        // P identical eddies: same modules, same policy kind, same seed.
        let mut eddies = Vec::with_capacity(partitions);
        let mut key_cols = Vec::new();
        for _ in 0..partitions {
            let (eddy, kc) = self.build_join_eddy(aq)?;
            key_cols = kc;
            eddies.push(eddy);
        }
        let (floor, deadline) = self.join_bounds(aq)?;

        // One ingress subscription per source (`partitionable` guarantees
        // each physical stream appears under exactly one alias).
        let mut inputs = Vec::with_capacity(aq.sources.len());
        let mut subscriptions = Vec::with_capacity(aq.sources.len());
        let mut ingress_class = 0u64;
        for (i, source) in aq.sources.iter().enumerate() {
            let st = self.stream(&source.name)?;
            ingress_class |= st.class;
            let (p, c) = self.make_fjord(format!("xchg-in(q{qid}.{})", source.name), cap);
            let sub_id = st.subscribers.add(p);
            subscriptions.push((source.name.to_ascii_lowercase(), sub_id));
            inputs.push(ExchangeInput::new(c, source.schema.clone(), key_cols[i]));
        }

        // The exchange fabric: P partition fjords, P output fjords, and a
        // schedule fjord carrying the canonical run order.
        let mut part_prods = Vec::with_capacity(partitions);
        let mut part_cons = Vec::with_capacity(partitions);
        let mut out_prods = Vec::with_capacity(partitions);
        let mut out_cons = Vec::with_capacity(partitions);
        for k in 0..partitions {
            let (p, c) = self.make_fjord(format!("xchg-part(q{qid}.{k})"), cap);
            part_prods.push(p);
            part_cons.push(c);
            let (p, c) = self.make_fjord(format!("xchg-out(q{qid}.{k})"), cap);
            out_prods.push(p);
            out_cons.push(c);
        }
        let (sched_prod, sched_cons) =
            self.make_fjord(format!("xchg-sched(q{qid})"), cap.saturating_mul(2).max(8));

        // Workers first: each fresh footprint class lands on the currently
        // least-loaded EO, so the P clones spread across distinct EOs
        // whenever `eos` allows it.
        let mut dus = Vec::with_capacity(partitions + 2);
        for (k, ((eddy, input), output)) in
            eddies.into_iter().zip(part_cons).zip(out_prods).enumerate()
        {
            let mut du = WorkerDu::new(
                format!("xchg-work(q{qid}.{k})"),
                input,
                output,
                eddy,
                LazyProject::new(aq.projection.clone())
                    .with_compiled_kernels(self.config.compiled_kernels),
            )
            .with_io_batch(self.config.io_batch);
            if let Some(inj) = &self.injector {
                du = du.with_injector(inj.clone());
            }
            dus.push(
                self.executor
                    .submit(exchange::du_class(qid, k), Box::new(du))?,
            );
        }
        let mut merge = MergeDu::new(
            format!("xchg-merge(q{qid})"),
            sched_cons,
            out_cons,
            self.egress.clone(),
            qid,
        )
        .with_io_batch(self.config.io_batch);
        if let Some(inj) = &self.injector {
            merge = merge.with_injector(inj.clone());
        }
        dus.push(
            self.executor
                .submit(exchange::du_class(qid, partitions), Box::new(merge))?,
        );
        // The partitioner shares the ingress streams' footprint classes, so
        // it co-locates with their dispatchers (cache locality on the
        // drain path) exactly like a sequential JoinCqDu would.
        let part = PartitionDu::new(
            format!("xchg-part(q{qid})"),
            inputs,
            part_prods,
            sched_prod,
            floor,
            deadline,
        )
        .with_io_batch(self.config.io_batch)
        .with_prehash(self.config.compiled_kernels);
        dus.push(self.executor.submit(ingress_class, Box::new(part))?);

        Ok(QueryRecord::Dedicated { dus, subscriptions })
    }

    /// CACQ shared-join path: queries with the same join signature share one
    /// SharedEddy DU — one pair of SteMs built/probed once per tuple, with
    /// per-query lineage deciding delivery (§3.1).
    fn start_shared_join(&self, qid: QueryId, aq: &AnalyzedQuery) -> Result<QueryRecord> {
        let jp = aq.join_pairs[0];
        // Normalize side order by stream name so A⋈B and B⋈A share a key.
        let (l_src, l_col, r_src, r_col) = {
            let a = (jp.left, jp.left_col, jp.right, jp.right_col);
            let name_l = aq.sources[jp.left].name.to_ascii_lowercase();
            let name_r = aq.sources[jp.right].name.to_ascii_lowercase();
            if name_l <= name_r {
                a
            } else {
                (jp.right, jp.right_col, jp.left, jp.left_col)
            }
        };
        let left_state = self.stream(&aq.sources[l_src].name)?;
        let right_state = self.stream(&aq.sources[r_src].name)?;
        let window_width = planner::join_window_width(aq, &aq.sources[l_src].alias)?;
        let key = SharedJoinKey {
            left: aq.sources[l_src].name.to_ascii_lowercase(),
            left_col: l_col,
            right: aq.sources[r_src].name.to_ascii_lowercase(),
            right_col: r_col,
            window_width,
        };

        // Per-side predicates, qualifier-stripped (each references exactly
        // one source, and the shared schemas are stream-name qualified).
        let side_pred = |src: usize| -> Option<tcq_common::Expr> {
            let parts: Vec<tcq_common::Expr> = aq
                .single_factors
                .iter()
                .filter(|(s, _)| *s == src)
                .map(|(_, f)| planner::strip_qualifiers(f))
                .collect();
            tcq_common::Expr::from_conjuncts(parts)
        };
        let left_pred = side_pred(l_src);
        let right_pred = side_pred(r_src);

        // Projection over the joined (left ++ right) schema: alias
        // qualifiers become stream names.
        let mut alias_map = HashMap::new();
        for s in &aq.sources {
            alias_map.insert(s.alias.to_ascii_lowercase(), s.name.clone());
        }
        let projection: Vec<(tcq_common::Expr, Option<String>)> = aq
            .projection
            .iter()
            .map(|(e, a)| (planner::requalify(e, &alias_map), a.clone()))
            .collect();

        let mut joins = self.shared_joins.lock();
        if !joins.contains_key(&key) {
            // First query with this signature: build the shared eddy + DU.
            let left_schema = left_state
                .def
                .schema
                .with_qualifier(&aq.sources[l_src].name)
                .into_ref();
            let right_schema = right_state
                .def
                .schema
                .with_qualifier(&aq.sources[r_src].name)
                .into_ref();
            let left_key_name = left_schema.field(l_col).name.clone();
            let right_key_name = right_schema.field(r_col).name.clone();
            let shared = SharedJoinShared::new(
                left_schema,
                &left_key_name,
                right_schema,
                &right_key_name,
                window_width,
            )?;
            let (lp, lc) = self.make_fjord(
                format!("shared-join({}.l)", key.left),
                self.config.queue_capacity,
            );
            let (rp, rc) = self.make_fjord(
                format!("shared-join({}.r)", key.right),
                self.config.queue_capacity,
            );
            let l_sub = left_state.subscribers.add(lp);
            let r_sub = right_state.subscribers.add(rp);
            let du = SharedJoinDu::new(
                format!("shared-join({}~{})", key.left, key.right),
                lc,
                rc,
                shared.clone(),
                self.egress.clone(),
            );
            let du_id = self
                .executor
                .submit(left_state.class | right_state.class, Box::new(du))?;
            joins.insert(
                key.clone(),
                SharedJoinEntry {
                    shared,
                    du: du_id,
                    subscriptions: vec![(key.left.clone(), l_sub), (key.right.clone(), r_sub)],
                },
            );
        }
        let entry = joins.get(&key).expect("inserted above");
        entry
            .shared
            .add_query(qid, left_pred.as_ref(), right_pred.as_ref(), &projection)?;
        Ok(QueryRecord::SharedJoin { key })
    }

    /// Number of distinct shared-join plans currently running (tests).
    pub fn shared_join_count(&self) -> usize {
        self.shared_joins.lock().len()
    }

    /// Snapshot/backward windows: answer from the archive now, then close.
    fn run_historical(&self, qid: QueryId, aq: &AnalyzedQuery) -> Result<QueryRecord> {
        let source = &aq.sources[0];
        let st = self.stream(&source.name)?;
        let archive = st.archive.as_ref().ok_or_else(|| {
            TcqError::Storage(
                "historical queries need archiving (set ServerConfig::archive_dir)".into(),
            )
        })?;
        let base = st.def.schema.with_qualifier(&source.name).into_ref();
        let pred = match stripped_predicate(aq) {
            Some(p) => Some(Predicate::new(&p, &base, self.config.compiled_kernels)?),
            None => None,
        };
        let projection: Vec<(tcq_common::Expr, Option<String>)> = aq
            .projection
            .iter()
            .map(|(e, a)| (planner::strip_qualifiers(e), a.clone()))
            .collect();
        let project = tcq_operators::ProjectOp::new(&projection, &base)?;
        let window = aq.window.clone().expect("historical implies window");
        let stt = st.latest_seq.load(Ordering::Acquire);
        let mut scratch = Vec::new();
        for wa in WindowSeq::new(window, stt.max(1)).with_max_iterations(100_000) {
            let wa = wa?;
            let Some(win) = wa.window_for(&source.alias) else {
                continue;
            };
            scratch.clear();
            archive
                .lock()
                .scan_window(win.left, win.right, &mut scratch)?;
            for t in &scratch {
                let passes = match &pred {
                    Some(p) => p.eval_pred(t)?,
                    None => true,
                };
                if passes {
                    let out = project.apply(t)?;
                    self.egress.deliver([qid], &out);
                }
            }
        }
        Ok(QueryRecord::Completed)
    }

    /// Stop a standing query.
    pub fn stop_query(&self, qid: QueryId) -> Result<()> {
        let record = self
            .queries
            .lock()
            .remove(&qid)
            .ok_or_else(|| TcqError::Executor(format!("unknown query {qid}")))?;
        self.ckpt_handles.lock().retain(|(q, _)| *q != qid);
        match record {
            QueryRecord::SharedFilter { stream } => {
                self.stream(&stream)?.filter_shared.remove_query(qid)?;
            }
            QueryRecord::SharedJoin { key } => {
                let mut joins = self.shared_joins.lock();
                if let Some(entry) = joins.get(&key) {
                    let remaining = entry.shared.remove_query(qid)?;
                    if remaining == 0 {
                        let entry = joins.remove(&key).expect("present");
                        self.executor.cancel(entry.du)?;
                        for (stream, sub_id) in entry.subscriptions {
                            if let Ok(st) = self.stream(&stream) {
                                st.subscribers.remove(sub_id);
                            }
                        }
                    }
                }
            }
            QueryRecord::Dedicated { dus, subscriptions } => {
                for du in dus {
                    self.executor.cancel(du)?;
                }
                for (stream, sub_id) in subscriptions {
                    if let Ok(st) = self.stream(&stream) {
                        st.subscribers.remove(sub_id);
                    }
                }
            }
            QueryRecord::Completed => {}
        }
        Ok(())
    }

    /// Standing query count (historical queries complete immediately and
    /// still count until stopped).
    pub fn query_count(&self) -> usize {
        self.queries.lock().len()
    }

    /// Wait until every DU has retired (finite-stream runs) or the timeout
    /// elapses. Returns whether the executor went idle.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let stats = self.executor.stats();
            if stats.dus_per_eo.iter().sum::<usize>() == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Executor statistics.
    pub fn executor_stats(&self) -> tcq_executor::ExecutorStats {
        self.executor.stats()
    }

    /// The most recent stall diagnosis the liveness watchdog recorded
    /// (`None` without `ServerConfig::liveness`, or on a healthy run).
    pub fn last_stall(&self) -> Option<StallDiagnosis> {
        self.executor.last_stall()
    }

    /// Point-in-time progress snapshot: the global frontier, in-flight
    /// depth, and every probed channel (`None` without
    /// `ServerConfig::liveness`).
    pub fn progress_snapshot(&self) -> Option<ProgressSnapshot> {
        self.progress.as_ref().map(ProgressRegistry::snapshot)
    }

    /// Egress statistics: (delivered, shed).
    pub fn egress_stats(&self) -> (u64, u64) {
        self.egress.stats()
    }

    /// Full egress accounting (per-disposition counters).
    pub fn egress_stats_full(&self) -> EgressStats {
        self.egress.egress_stats()
    }

    /// Take a durable, incremental checkpoint: commit one epoch-delta
    /// block holding the state dirtied since the previous call.
    ///
    /// The cut is taken in three steps whose order carries the recovery
    /// contract. (1) Resume cursors are read *first*: anything a source
    /// delivers after that instant will be replayed on restore, so the
    /// exported state may already contain it — delivery past the watermark
    /// is at-least-once, and clients dedup by sequence. (2) In-flight
    /// tuples are drained so exported operator state covers everything the
    /// cursors skip. (3) Dirty state groups are exported under their DU
    /// locks, the egress ledger and stream clocks are staged, and the
    /// delta commits. Dirty flags are cleared only after the commit
    /// succeeds — a failed or torn commit (injected or real) keeps the
    /// delta staged for retry and loses nothing.
    pub fn checkpoint(&self) -> Result<CheckpointReport> {
        let store_mutex = self.ckpt.as_ref().ok_or_else(|| {
            TcqError::Storage("checkpointing disabled (set ServerConfig::checkpoint_path)".into())
        })?;
        let cursors: Vec<(String, u64)> = self
            .supervisors
            .lock()
            .iter()
            .map(|s| (s.name().to_ascii_lowercase(), s.stats().delivered))
            .collect();
        self.drain_ingress(Duration::from_secs(2));

        let mut store = store_mutex.lock();
        store.put("egress", b"", &self.egress.egress_stats().encode());
        for (name, delivered) in &cursors {
            let mut w = CkptWriter::new();
            w.put_u64(*delivered);
            store.put("cursor", name.as_bytes(), w.as_slice());
        }
        {
            let streams = self.streams.lock();
            let mut names: Vec<&String> = streams.keys().collect();
            names.sort();
            for name in names {
                let mut w = CkptWriter::new();
                w.put_i64(streams[name].latest_seq.load(Ordering::Acquire));
                store.put("seq", name.as_bytes(), w.as_slice());
            }
        }

        // Export dirty groups holding every DU's state lock until the
        // commit lands: a tuple folded between export and clear would
        // otherwise lose its dirty bit and vanish from the next delta.
        let handles = self.ckpt_handles.lock();
        let mut eddies = Vec::new();
        let mut aggs = Vec::new();
        let mut scratch = Vec::new();
        for (qid, handle) in handles.iter() {
            match handle {
                QueryStateHandle::Join(eddy) => {
                    let mut eddy = eddy.lock();
                    scratch.clear();
                    eddy.export_dirty_state(&mut scratch)?;
                    for (module, hash, bytes) in &scratch {
                        store.put(&format!("q{qid}/stem/{module}"), &hash.to_le_bytes(), bytes);
                    }
                    eddies.push(eddy);
                }
                QueryStateHandle::Aggregate(state) => {
                    let core = state.lock();
                    if core.dirty {
                        store.put(
                            &format!("q{qid}/agg"),
                            b"",
                            &crate::plans::encode_agg_core(&core),
                        );
                    }
                    aggs.push(core);
                }
            }
        }
        let before = store.stats();
        let epoch = store.commit()?;
        let after = store.stats();
        for mut eddy in eddies {
            eddy.clear_dirty();
        }
        for mut core in aggs {
            core.dirty = false;
        }
        Ok(CheckpointReport {
            epoch,
            fragments: after.fragments_written - before.fragments_written,
            bytes: after.bytes_written - before.bytes_written,
        })
    }

    /// Stop ingress, drain what was admitted, then stop the executor.
    ///
    /// Ordering matters: streamers and supervisors stop *first* so no new
    /// tuples arrive, then the executor keeps running until every ingress
    /// queue and subscriber queue is empty (bounded wait), and only then
    /// shuts down. Stopping the executor first would strand admitted
    /// tuples in the queues — results a client was already promised.
    pub fn shutdown(self) -> Result<()> {
        for s in self.streamers.lock().drain(..) {
            let _ = s.stop();
        }
        for s in self.supervisors.lock().drain(..) {
            let _ = s.stop();
        }
        self.drain_ingress(Duration::from_secs(2));
        self.executor.shutdown()?;
        // Executor stopped: no appends can race the final flush. Sealing
        // the tail makes every archived tuple recoverable by `open`.
        for st in self.streams.lock().values() {
            if let Some(archive) = &st.archive {
                archive.lock().flush()?;
            }
        }
        Ok(())
    }

    /// Wait (bounded) until every stream's ingress queue and subscriber
    /// backlog stays empty across a few consecutive polls — "stays",
    /// because a dispatcher may be mid-quantum between the two queues.
    fn drain_ingress(&self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        let mut calm = 0;
        while calm < 3 && Instant::now() < deadline {
            let drained = self
                .streams
                .lock()
                .values()
                .all(|st| st.ingress.stats().len == 0 && st.subscribers.backlog() == 0);
            calm = if drained { calm + 1 } else { 0 };
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// Information about a submitted query (reserved for richer introspection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryInfo {
    /// The query id.
    pub id: QueryId,
}
