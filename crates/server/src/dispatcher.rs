//! The per-stream dispatcher DU.
//!
//! "In a traditional system, the arrival of queries initiates access to a
//! stored collection of data, while here, the arrival of data initiates
//! access to a stored collection of queries" (§1.1). The dispatcher is the
//! point of that inversion: it drains a stream's ingress Fjord, stamps
//! arrival order, spools history to the stream's archive, and forwards
//! every tuple to each standing query's input queue.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use tcq_common::sync::Mutex;

use tcq_common::{FaultAction, FaultPoint, Result, SharedInjector, Timestamp, Tuple};
use tcq_executor::{DispatchUnit, ModuleStatus};
use tcq_fjords::{BatchDequeueResult, Consumer, EnqueueError, FjordMessage, Producer};
use tcq_storage::StreamArchive;

/// Default messages moved per input-lock acquisition by a dispatcher.
pub const DEFAULT_IO_BATCH: usize = 64;

/// One query's subscription to a stream.
pub struct Subscription {
    /// Where to forward tuples.
    pub producer: Producer,
    /// Subscription id, for removal.
    pub id: u64,
}

/// Shared handle the server uses to add/remove subscriptions while the
/// dispatcher DU runs.
#[derive(Clone)]
pub struct SubscriberSet {
    subs: Arc<Mutex<Vec<Subscription>>>,
    next_id: Arc<AtomicI64>,
}

impl Default for SubscriberSet {
    fn default() -> Self {
        Self::new()
    }
}

impl SubscriberSet {
    /// Empty set.
    pub fn new() -> Self {
        SubscriberSet {
            subs: Arc::new(Mutex::new(Vec::new())),
            next_id: Arc::new(AtomicI64::new(1)),
        }
    }

    /// Add a subscriber; returns its id.
    pub fn add(&self, producer: Producer) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) as u64;
        self.subs.lock().push(Subscription { producer, id });
        id
    }

    /// Remove a subscriber by id.
    pub fn remove(&self, id: u64) {
        self.subs.lock().retain(|s| s.id != id);
    }

    /// Current subscriber count.
    pub fn len(&self) -> usize {
        self.subs.lock().len()
    }

    /// Total tuples queued across all subscriber queues (shutdown drain
    /// bookkeeping).
    pub fn backlog(&self) -> usize {
        self.subs
            .lock()
            .iter()
            .map(|s| s.producer.stats().len)
            .sum()
    }

    /// True when nobody is subscribed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Overload behaviour when a query's input queue is full (§4.3's QoS
/// question: "deciding what work to drop when the system is in danger of
/// falling behind the incoming data stream").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Stall the stream (lossless back-pressure, the default): slow
    /// consumers slow the whole stream down.
    #[default]
    Backpressure,
    /// Shed: drop the slow subscriber's copy (other queries still get the
    /// tuple) and count it — "degrade in a controlled fashion".
    Shed,
}

/// The dispatcher DU for one stream.
pub struct StreamDispatcher {
    name: String,
    input: Consumer,
    subscribers: SubscriberSet,
    /// Stream history spool; `None` disables archiving.
    archive: Option<Arc<Mutex<StreamArchive>>>,
    /// Latest logical timestamp seen (shared with the server for ST
    /// assignment and window bookkeeping).
    latest_seq: Arc<AtomicI64>,
    /// Arrival counter used to stamp tuples lacking logical timestamps.
    arrivals: i64,
    /// Tuples accepted so far.
    forwarded: u64,
    /// Tuples waiting for a full subscriber queue: (subscriber index cursor
    /// handled inside), preserving order.
    pending: VecDeque<Tuple>,
    overload: OverloadPolicy,
    /// Per-subscriber copies shed under overload (shared for observability).
    shed: Arc<AtomicI64>,
    /// Archive appends that failed (the live path keeps flowing; history
    /// degrades and the loss is counted, never silent).
    archive_errors: Arc<AtomicI64>,
    /// Chaos injector polled at [`FaultPoint::FjordEnqueue`] per forwarded
    /// tuple.
    injector: Option<SharedInjector>,
    /// Messages pulled per input-lock acquisition (1 = per-tuple dispatch).
    io_batch: usize,
    /// Scratch buffer reused across quanta (drained, so capacity persists).
    msg_buf: Vec<FjordMessage>,
    eof_seen: bool,
    eof_sent: bool,
    /// Subscriber ids whose queues have received the stream's Eof.
    eof_delivered: Vec<u64>,
}

impl StreamDispatcher {
    /// Build a dispatcher.
    pub fn new(
        name: impl Into<String>,
        input: Consumer,
        subscribers: SubscriberSet,
        archive: Option<Arc<Mutex<StreamArchive>>>,
        latest_seq: Arc<AtomicI64>,
    ) -> Self {
        StreamDispatcher {
            name: name.into(),
            input,
            subscribers,
            archive,
            // A restored server seeds `latest_seq` from the checkpoint
            // before building dispatchers, so arrival stamping continues
            // past the pre-crash watermark instead of restarting at 1.
            arrivals: latest_seq.load(Ordering::Acquire),
            latest_seq,
            forwarded: 0,
            pending: VecDeque::new(),
            overload: OverloadPolicy::Backpressure,
            shed: Arc::new(AtomicI64::new(0)),
            archive_errors: Arc::new(AtomicI64::new(0)),
            injector: None,
            io_batch: DEFAULT_IO_BATCH,
            msg_buf: Vec::new(),
            eof_seen: false,
            eof_sent: false,
            eof_delivered: Vec::new(),
        }
    }

    /// Select the overload policy (default: lossless back-pressure).
    pub fn with_overload_policy(mut self, policy: OverloadPolicy) -> Self {
        self.overload = policy;
        self
    }

    /// Messages moved per input-lock acquisition (clamped to ≥ 1; 1
    /// reproduces per-tuple dispatch exactly). Faults, stamping, and
    /// archiving stay per-message regardless, so same-seed chaos replays
    /// are byte-identical across batch sizes.
    pub fn with_io_batch(mut self, io_batch: usize) -> Self {
        self.io_batch = io_batch.max(1);
        self
    }

    /// Attach a chaos injector: each forwarded tuple polls
    /// [`FaultPoint::FjordEnqueue`]; an `Overflow` fault drops that
    /// tuple's fan-out (every subscriber copy sheds and is counted),
    /// regardless of overload policy — an injected full is a full that
    /// does not clear.
    pub fn with_injector(mut self, injector: SharedInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Shared counter of copies shed under [`OverloadPolicy::Shed`] or an
    /// injected enqueue overflow.
    pub fn shed_counter(&self) -> Arc<AtomicI64> {
        Arc::clone(&self.shed)
    }

    /// Shared counter of failed (skipped) archive appends.
    pub fn archive_error_counter(&self) -> Arc<AtomicI64> {
        Arc::clone(&self.archive_errors)
    }

    /// Poll the injector once for a fresh tuple's fan-out. True when an
    /// injected `Overflow` drops the fan-out whole: one shed per
    /// subscriber copy, even under back-pressure — an injected full never
    /// clears, so waiting would wedge the stream. (Polled per *fresh*
    /// tuple, not per retry, so the poll count is a pure function of the
    /// tuple sequence.)
    fn injected_overflow(&mut self) -> bool {
        let Some(injector) = &self.injector else {
            return false;
        };
        if matches!(
            injector.poll(FaultPoint::FjordEnqueue),
            Some(FaultAction::Overflow)
        ) {
            let copies = self.subscribers.len() as i64;
            self.shed.fetch_add(copies, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Fan a run of stamped tuples out to every subscriber, one
    /// `enqueue_batch` per subscriber. The final subscriber receives the
    /// tuples by move — every earlier one gets clones — so the common
    /// single-subscriber fan-out never copies a tuple. Under
    /// back-pressure only the longest prefix every subscriber can accept
    /// is forwarded (all-or-nothing per tuple, so no subscriber ever sees
    /// reordered input); the stalled suffix returns to the *front* of
    /// `pending` and the call reports false.
    ///
    /// The capacity check is race-free because each subscription queue has
    /// exactly one producer (this dispatcher): its length can only shrink
    /// between the check and the enqueue.
    fn forward_batch(&mut self, mut tuples: Vec<Tuple>) -> bool {
        if tuples.is_empty() {
            return true;
        }
        let subs = self.subscribers.subs.lock();
        let mut limit = tuples.len();
        if self.overload == OverloadPolicy::Backpressure {
            for s in subs.iter() {
                let st = s.producer.stats();
                limit = limit.min(st.capacity.saturating_sub(st.len));
            }
        }
        let stalled: Vec<Tuple> = tuples.drain(limit..).collect();
        if !tuples.is_empty() {
            let last = subs.len().saturating_sub(1);
            for (i, s) in subs.iter().enumerate() {
                let mut batch: Vec<FjordMessage> = if i == last {
                    std::mem::take(&mut tuples)
                        .into_iter()
                        .map(FjordMessage::Tuple)
                        .collect()
                } else {
                    tuples.iter().cloned().map(FjordMessage::Tuple).collect()
                };
                match s.producer.enqueue_batch(&mut batch) {
                    Ok(_) => {
                        // A refused suffix is only reachable under
                        // OverloadPolicy::Shed: those copies are dropped,
                        // other subscribers still get them.
                        if !batch.is_empty() {
                            self.shed.fetch_add(batch.len() as i64, Ordering::Relaxed);
                        }
                    }
                    Err(_) => {
                        // Query went away; its subscription is removed
                        // lazily by the server. Dropping its copies is
                        // correct.
                    }
                }
            }
            self.forwarded += limit as u64;
        }
        drop(subs);
        if stalled.is_empty() {
            true
        } else {
            for t in stalled.into_iter().rev() {
                self.pending.push_front(t);
            }
            false
        }
    }

    /// Broadcast Eof to every subscriber that has not received it yet.
    /// A subscriber queue that happens to be exactly full at EOF time is
    /// retried on a later quantum instead of silently skipped — a dropped
    /// Eof starves every punctuation-driven consumer downstream: the
    /// exchange partitioner never reaches all-inputs-EOF, never closes
    /// its final run, and the merge withholds the tail tuples forever
    /// (the P=4 `exp_scaling` 2-tuples-undelivered wedge). A disconnected
    /// subscriber counts as delivered. Returns true once every current
    /// subscriber has its Eof.
    fn fan_out_eof(&mut self) -> bool {
        let subs = self.subscribers.subs.lock();
        let mut all = true;
        for s in subs.iter() {
            if self.eof_delivered.contains(&s.id) {
                continue;
            }
            match s.producer.enqueue(FjordMessage::Eof) {
                Ok(()) | Err(EnqueueError::Disconnected(_)) => self.eof_delivered.push(s.id),
                Err(EnqueueError::Full(_)) => all = false,
            }
        }
        all
    }
}

impl DispatchUnit for StreamDispatcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, quantum: usize) -> Result<ModuleStatus> {
        if self.eof_sent {
            return Ok(ModuleStatus::Done);
        }
        let mut did_work = false;
        let mut budget = quantum;
        // Deliver stalled tuples first to preserve order.
        if !self.pending.is_empty() {
            let take = budget.min(self.pending.len());
            let retry: Vec<Tuple> = self.pending.drain(..take).collect();
            budget -= take;
            did_work = true;
            if !self.forward_batch(retry) {
                return Ok(ModuleStatus::Idle);
            }
        }
        while budget > 0 && !self.eof_seen {
            // Take the scratch buffer so `self` stays borrowable below.
            let mut msgs = std::mem::take(&mut self.msg_buf);
            match self
                .input
                .dequeue_batch(&mut msgs, self.io_batch.min(budget))
            {
                BatchDequeueResult::Msgs(_) => {}
                BatchDequeueResult::Empty => {
                    self.msg_buf = msgs;
                    return Ok(if did_work {
                        ModuleStatus::Ready
                    } else {
                        ModuleStatus::Idle
                    });
                }
                BatchDequeueResult::Disconnected => {
                    self.msg_buf = msgs;
                    self.eof_seen = true;
                    break;
                }
            }
            budget = budget.saturating_sub(msgs.len());
            let mut fan: Vec<Tuple> = Vec::with_capacity(msgs.len());
            for msg in msgs.drain(..) {
                match msg {
                    FjordMessage::Tuple(t) => {
                        if self.eof_seen {
                            // The batch read past the stream's Eof; the
                            // per-tuple path never dequeues these, so
                            // dropping them is observably identical.
                            continue;
                        }
                        did_work = true;
                        self.arrivals += 1;
                        let t = if t.timestamp().logical.is_some() {
                            t
                        } else {
                            t.with_timestamp(Timestamp::logical(self.arrivals))
                        };
                        let seq = t.timestamp().seq();
                        self.latest_seq.fetch_max(seq, Ordering::AcqRel);
                        if let Some(archive) = &self.archive {
                            // A failed append degrades history, not the live
                            // path: the tuple still reaches every subscriber
                            // and the loss is counted.
                            if archive.lock().append(&t).is_err() {
                                self.archive_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        if self.injected_overflow() {
                            self.forwarded += 1;
                            continue;
                        }
                        fan.push(t);
                    }
                    FjordMessage::Punct(_) => {}
                    FjordMessage::Eof => {
                        self.eof_seen = true;
                    }
                }
            }
            self.msg_buf = msgs;
            if !self.forward_batch(fan) {
                return Ok(ModuleStatus::Idle);
            }
        }
        if self.eof_seen && self.pending.is_empty() {
            if self.fan_out_eof() {
                self.eof_sent = true;
                return Ok(ModuleStatus::Done);
            }
            // Some subscriber queue is full: stay scheduled and retry
            // until every Eof lands.
            return Ok(ModuleStatus::Ready);
        }
        Ok(ModuleStatus::Ready)
    }

    fn buffered(&self) -> usize {
        self.pending.len()
    }

    fn nudge(&mut self) -> bool {
        // Only the EOF broadcast can be withheld here; pending tuples
        // must drain first (Eof may never overtake data).
        if self.eof_seen && !self.eof_sent && self.pending.is_empty() {
            let before = self.eof_delivered.len();
            self.fan_out_eof();
            return self.eof_delivered.len() > before;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{DataType, Field, Schema, SchemaRef, Timestamp, TupleBuilder};
    use tcq_fjords::{fjord, DequeueResult, QueueKind};

    fn schema() -> SchemaRef {
        Schema::qualified("s", vec![Field::new("x", DataType::Int)]).into_ref()
    }

    fn tick(s: &SchemaRef, x: i64) -> Tuple {
        TupleBuilder::new(s.clone())
            .push(x)
            .at(Timestamp::logical(x))
            .build()
            .unwrap()
    }

    fn drain_tuples(c: &Consumer) -> Vec<i64> {
        let mut out = Vec::new();
        loop {
            match c.dequeue() {
                DequeueResult::Msg(FjordMessage::Tuple(t)) => {
                    out.push(t.value(0).as_int().unwrap())
                }
                DequeueResult::Msg(_) => {}
                DequeueResult::Empty | DequeueResult::Disconnected => break,
            }
        }
        out
    }

    /// Steady-state reference accounting for the batched fan-out: after a
    /// quantum, exactly one tuple copy per (tuple, subscriber) is alive —
    /// the dispatcher retains none, and the final subscriber's copy is the
    /// moved original, not a clone-then-drop. (The transient extra clone
    /// the old per-subscriber loop made is unobservable at steady state,
    /// so the invariant pins what is observable: no leaked references.)
    #[test]
    fn fan_out_keeps_one_copy_per_subscriber_and_none_extra() {
        let (ip, ic) = fjord(64, QueueKind::Push);
        let subs = SubscriberSet::new();
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let (p, c) = fjord(64, QueueKind::Push);
            subs.add(p);
            consumers.push(c);
        }
        let mut d = StreamDispatcher::new("d", ic, subs, None, Arc::new(AtomicI64::new(0)));
        let s = schema();
        let base = Arc::strong_count(&s);
        for x in 1..=5 {
            ip.enqueue(FjordMessage::Tuple(tick(&s, x))).unwrap();
        }
        assert_eq!(
            Arc::strong_count(&s),
            base + 5,
            "5 tuples queued at ingress"
        );
        assert_eq!(d.run(64).unwrap(), ModuleStatus::Ready);
        assert_eq!(
            Arc::strong_count(&s),
            base + 15,
            "one copy per (tuple, subscriber), nothing retained"
        );
        assert_eq!(drain_tuples(&consumers[2]), vec![1, 2, 3, 4, 5]);
        assert_eq!(
            Arc::strong_count(&s),
            base + 10,
            "draining one subscriber frees exactly its copies"
        );
    }

    /// Back-pressure stalls the suffix in order: once the slow subscriber
    /// drains, every tuple arrives exactly once, in arrival order, at
    /// every subscriber.
    #[test]
    fn backpressure_stall_preserves_order_across_batches() {
        let (ip, ic) = fjord(64, QueueKind::Push);
        let subs = SubscriberSet::new();
        let (wide_p, wide_c) = fjord(64, QueueKind::Push);
        let (narrow_p, narrow_c) = fjord(4, QueueKind::Push);
        subs.add(wide_p);
        subs.add(narrow_p);
        let mut d = StreamDispatcher::new("d", ic, subs, None, Arc::new(AtomicI64::new(0)))
            .with_io_batch(8);
        let s = schema();
        for x in 1..=10 {
            ip.enqueue(FjordMessage::Tuple(tick(&s, x))).unwrap();
        }
        // First quantum fills the narrow queue and stalls.
        assert_eq!(d.run(64).unwrap(), ModuleStatus::Idle);
        assert_eq!(drain_tuples(&narrow_c), vec![1, 2, 3, 4]);
        let mut rest = Vec::new();
        while rest.len() < 6 {
            let _ = d.run(64).unwrap();
            rest.extend(drain_tuples(&narrow_c));
        }
        assert_eq!(rest, vec![5, 6, 7, 8, 9, 10]);
        assert_eq!(drain_tuples(&wide_c), (1..=10).collect::<Vec<i64>>());
    }
}
