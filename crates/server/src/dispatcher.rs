//! The per-stream dispatcher DU.
//!
//! "In a traditional system, the arrival of queries initiates access to a
//! stored collection of data, while here, the arrival of data initiates
//! access to a stored collection of queries" (§1.1). The dispatcher is the
//! point of that inversion: it drains a stream's ingress Fjord, stamps
//! arrival order, spools history to the stream's archive, and forwards
//! every tuple to each standing query's input queue.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use tcq_common::sync::Mutex;

use tcq_common::{FaultAction, FaultPoint, Result, SharedInjector, Timestamp, Tuple};
use tcq_executor::{DispatchUnit, ModuleStatus};
use tcq_fjords::{Consumer, DequeueResult, EnqueueError, FjordMessage, Producer};
use tcq_storage::StreamArchive;

/// One query's subscription to a stream.
pub struct Subscription {
    /// Where to forward tuples.
    pub producer: Producer,
    /// Subscription id, for removal.
    pub id: u64,
}

/// Shared handle the server uses to add/remove subscriptions while the
/// dispatcher DU runs.
#[derive(Clone)]
pub struct SubscriberSet {
    subs: Arc<Mutex<Vec<Subscription>>>,
    next_id: Arc<AtomicI64>,
}

impl Default for SubscriberSet {
    fn default() -> Self {
        Self::new()
    }
}

impl SubscriberSet {
    /// Empty set.
    pub fn new() -> Self {
        SubscriberSet {
            subs: Arc::new(Mutex::new(Vec::new())),
            next_id: Arc::new(AtomicI64::new(1)),
        }
    }

    /// Add a subscriber; returns its id.
    pub fn add(&self, producer: Producer) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) as u64;
        self.subs.lock().push(Subscription { producer, id });
        id
    }

    /// Remove a subscriber by id.
    pub fn remove(&self, id: u64) {
        self.subs.lock().retain(|s| s.id != id);
    }

    /// Current subscriber count.
    pub fn len(&self) -> usize {
        self.subs.lock().len()
    }

    /// Total tuples queued across all subscriber queues (shutdown drain
    /// bookkeeping).
    pub fn backlog(&self) -> usize {
        self.subs
            .lock()
            .iter()
            .map(|s| s.producer.stats().len)
            .sum()
    }

    /// True when nobody is subscribed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Overload behaviour when a query's input queue is full (§4.3's QoS
/// question: "deciding what work to drop when the system is in danger of
/// falling behind the incoming data stream").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Stall the stream (lossless back-pressure, the default): slow
    /// consumers slow the whole stream down.
    #[default]
    Backpressure,
    /// Shed: drop the slow subscriber's copy (other queries still get the
    /// tuple) and count it — "degrade in a controlled fashion".
    Shed,
}

/// The dispatcher DU for one stream.
pub struct StreamDispatcher {
    name: String,
    input: Consumer,
    subscribers: SubscriberSet,
    /// Stream history spool; `None` disables archiving.
    archive: Option<Arc<Mutex<StreamArchive>>>,
    /// Latest logical timestamp seen (shared with the server for ST
    /// assignment and window bookkeeping).
    latest_seq: Arc<AtomicI64>,
    /// Arrival counter used to stamp tuples lacking logical timestamps.
    arrivals: i64,
    /// Tuples accepted so far.
    forwarded: u64,
    /// Tuples waiting for a full subscriber queue: (subscriber index cursor
    /// handled inside), preserving order.
    pending: VecDeque<Tuple>,
    overload: OverloadPolicy,
    /// Per-subscriber copies shed under overload (shared for observability).
    shed: Arc<AtomicI64>,
    /// Archive appends that failed (the live path keeps flowing; history
    /// degrades and the loss is counted, never silent).
    archive_errors: Arc<AtomicI64>,
    /// Chaos injector polled at [`FaultPoint::FjordEnqueue`] per forwarded
    /// tuple.
    injector: Option<SharedInjector>,
    eof_seen: bool,
    eof_sent: bool,
}

impl StreamDispatcher {
    /// Build a dispatcher.
    pub fn new(
        name: impl Into<String>,
        input: Consumer,
        subscribers: SubscriberSet,
        archive: Option<Arc<Mutex<StreamArchive>>>,
        latest_seq: Arc<AtomicI64>,
    ) -> Self {
        StreamDispatcher {
            name: name.into(),
            input,
            subscribers,
            archive,
            latest_seq,
            arrivals: 0,
            forwarded: 0,
            pending: VecDeque::new(),
            overload: OverloadPolicy::Backpressure,
            shed: Arc::new(AtomicI64::new(0)),
            archive_errors: Arc::new(AtomicI64::new(0)),
            injector: None,
            eof_seen: false,
            eof_sent: false,
        }
    }

    /// Select the overload policy (default: lossless back-pressure).
    pub fn with_overload_policy(mut self, policy: OverloadPolicy) -> Self {
        self.overload = policy;
        self
    }

    /// Attach a chaos injector: each forwarded tuple polls
    /// [`FaultPoint::FjordEnqueue`]; an `Overflow` fault drops that
    /// tuple's fan-out (every subscriber copy sheds and is counted),
    /// regardless of overload policy — an injected full is a full that
    /// does not clear.
    pub fn with_injector(mut self, injector: SharedInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Shared counter of copies shed under [`OverloadPolicy::Shed`] or an
    /// injected enqueue overflow.
    pub fn shed_counter(&self) -> Arc<AtomicI64> {
        Arc::clone(&self.shed)
    }

    /// Shared counter of failed (skipped) archive appends.
    pub fn archive_error_counter(&self) -> Arc<AtomicI64> {
        Arc::clone(&self.archive_errors)
    }

    /// Forward `tuple` to every subscriber; returns false (and stashes it)
    /// if any subscriber queue is full — all-or-nothing delivery so no
    /// subscriber ever sees reordered input.
    ///
    /// The capacity check is race-free because each subscription queue has
    /// exactly one producer (this dispatcher): its length can only shrink
    /// between the check and the enqueue.
    /// Poll the injector once for a fresh tuple's fan-out. True when an
    /// injected `Overflow` drops the fan-out whole: one shed per
    /// subscriber copy, even under back-pressure — an injected full never
    /// clears, so waiting would wedge the stream. (Polled per *fresh*
    /// tuple, not per retry, so the poll count is a pure function of the
    /// tuple sequence.)
    fn injected_overflow(&mut self) -> bool {
        let Some(injector) = &self.injector else {
            return false;
        };
        if matches!(
            injector.poll(FaultPoint::FjordEnqueue),
            Some(FaultAction::Overflow)
        ) {
            let copies = self.subscribers.len() as i64;
            self.shed.fetch_add(copies, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn forward(&mut self, tuple: Tuple) -> bool {
        let subs = self.subscribers.subs.lock();
        if self.overload == OverloadPolicy::Backpressure {
            for s in subs.iter() {
                let st = s.producer.stats();
                if st.len >= st.capacity {
                    drop(subs);
                    self.pending.push_back(tuple);
                    return false;
                }
            }
        }
        for s in subs.iter() {
            match s.producer.enqueue(FjordMessage::Tuple(tuple.clone())) {
                Ok(()) => {}
                Err(EnqueueError::Full(_)) => {
                    // Only reachable under OverloadPolicy::Shed: this
                    // subscriber's copy is dropped, others proceed.
                    self.shed.fetch_add(1, Ordering::Relaxed);
                }
                Err(EnqueueError::Disconnected(_)) => {
                    // Query went away; its subscription is removed lazily
                    // by the server. Dropping its copy is correct.
                }
            }
        }
        drop(subs);
        self.forwarded += 1;
        true
    }
}

impl DispatchUnit for StreamDispatcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, quantum: usize) -> Result<ModuleStatus> {
        if self.eof_sent {
            return Ok(ModuleStatus::Done);
        }
        let mut did_work = false;
        for _ in 0..quantum {
            // Deliver stalled tuples first to preserve order.
            if let Some(t) = self.pending.pop_front() {
                if !self.forward(t) {
                    return Ok(ModuleStatus::Idle);
                }
                did_work = true;
                continue;
            }
            if self.eof_seen {
                break;
            }
            match self.input.dequeue() {
                DequeueResult::Msg(FjordMessage::Tuple(t)) => {
                    self.arrivals += 1;
                    let t = if t.timestamp().logical.is_some() {
                        t
                    } else {
                        t.with_timestamp(Timestamp::logical(self.arrivals))
                    };
                    let seq = t.timestamp().seq();
                    self.latest_seq.fetch_max(seq, Ordering::AcqRel);
                    if let Some(archive) = &self.archive {
                        // A failed append degrades history, not the live
                        // path: the tuple still reaches every subscriber
                        // and the loss is counted.
                        if archive.lock().append(&t).is_err() {
                            self.archive_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if self.injected_overflow() {
                        self.forwarded += 1;
                        did_work = true;
                        continue;
                    }
                    if !self.forward(t) {
                        return Ok(ModuleStatus::Idle);
                    }
                    did_work = true;
                }
                DequeueResult::Msg(FjordMessage::Punct(_)) => {}
                DequeueResult::Msg(FjordMessage::Eof) | DequeueResult::Disconnected => {
                    self.eof_seen = true;
                    break;
                }
                DequeueResult::Empty => {
                    return Ok(if did_work {
                        ModuleStatus::Ready
                    } else {
                        ModuleStatus::Idle
                    });
                }
            }
        }
        if self.eof_seen && self.pending.is_empty() {
            let subs = self.subscribers.subs.lock();
            for s in subs.iter() {
                let _ = s.producer.enqueue(FjordMessage::Eof);
            }
            self.eof_sent = true;
            return Ok(ModuleStatus::Done);
        }
        Ok(ModuleStatus::Ready)
    }
}
