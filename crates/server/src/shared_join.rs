//! Server-level shared join processing (CACQ §3.1 at full scope).
//!
//! Join queries with the same *join signature* — same two streams, same
//! equi-join columns, same window width — share **one** [`SharedEddy`]:
//! one pair of SteMs is built and probed once per tuple no matter how many
//! queries stand, per-query selections ride the shared grouped filters,
//! and join outputs are delivered to exactly the queries whose lineage
//! survived ("the tuples accessed by one plan are reused by the other, so
//! there is minimal wasted effort", §2.2).

use std::collections::HashMap;
use std::sync::Arc;

use tcq_common::sync::Mutex;

use tcq_common::{Expr, Result, SchemaRef, Tuple};
use tcq_eddy::SharedEddy;
use tcq_egress::EgressRouter;
use tcq_executor::{DispatchUnit, ModuleStatus};
use tcq_fjords::{Consumer, DequeueResult, FjordMessage};
use tcq_operators::ProjectOp;

use crate::plans::QueryId;

/// Identifies a shareable join: physical streams, key columns, window.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SharedJoinKey {
    /// Left stream name (lowercase).
    pub left: String,
    /// Left join column index.
    pub left_col: usize,
    /// Right stream name (lowercase).
    pub right: String,
    /// Right join column index.
    pub right_col: usize,
    /// Sliding-window width bounding SteM state (None = unbounded).
    pub window_width: Option<i64>,
}

struct SharedJoinInner {
    eddy: SharedEddy,
    /// Per-query projection over the joined (left, right) schema.
    projections: HashMap<QueryId, ProjectOp>,
}

/// Handle shared between the server (adding/removing queries) and the
/// running [`SharedJoinDu`].
#[derive(Clone)]
pub struct SharedJoinShared {
    inner: Arc<Mutex<SharedJoinInner>>,
    /// The joined output schema (left ++ right, stream-name qualified).
    joined_schema: SchemaRef,
}

impl SharedJoinShared {
    /// Create the shared state for one join signature.
    pub fn new(
        left_schema: SchemaRef,
        left_key: &str,
        right_schema: SchemaRef,
        right_key: &str,
        window_width: Option<i64>,
    ) -> Result<Self> {
        let joined_schema = left_schema.concat(&right_schema).into_ref();
        let eddy =
            SharedEddy::joined(left_schema, left_key, right_schema, right_key, window_width)?;
        Ok(SharedJoinShared {
            inner: Arc::new(Mutex::new(SharedJoinInner {
                eddy,
                projections: HashMap::new(),
            })),
            joined_schema,
        })
    }

    /// Register a query: per-side predicates (stream-name qualified or
    /// bare) and a projection over the joined schema.
    pub fn add_query(
        &self,
        id: QueryId,
        left_pred: Option<&Expr>,
        right_pred: Option<&Expr>,
        projection: &[(Expr, Option<String>)],
    ) -> Result<()> {
        let mut inner = self.inner.lock();
        let project = ProjectOp::new(projection, &self.joined_schema)?;
        inner.eddy.add_join_query(id, left_pred, right_pred)?;
        inner.projections.insert(id, project);
        Ok(())
    }

    /// Remove a query; returns how many remain.
    pub fn remove_query(&self, id: QueryId) -> Result<usize> {
        let mut inner = self.inner.lock();
        inner.eddy.remove_query(id)?;
        inner.projections.remove(&id);
        Ok(inner.eddy.query_count())
    }

    /// Standing queries sharing this join.
    pub fn query_count(&self) -> usize {
        self.inner.lock().eddy.query_count()
    }

    /// Shared SteM state size (tuples).
    pub fn state_size(&self) -> usize {
        self.inner.lock().eddy.state_size()
    }

    /// Shared-eddy counters.
    pub fn stats(&self) -> tcq_eddy::SharedEddyStats {
        self.inner.lock().eddy.stats()
    }

    /// Approximate heap footprint of the shared eddy (query SteMs, probe
    /// scratch, stored join state) in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.inner.lock().eddy.approx_bytes()
    }
}

/// The DU hosting one shared join: two subscription queues in, per-query
/// deliveries out.
pub struct SharedJoinDu {
    name: String,
    left: Consumer,
    right: Consumer,
    left_eof: bool,
    right_eof: bool,
    shared: SharedJoinShared,
    egress: EgressRouter,
}

impl SharedJoinDu {
    /// Build the DU.
    pub fn new(
        name: impl Into<String>,
        left: Consumer,
        right: Consumer,
        shared: SharedJoinShared,
        egress: EgressRouter,
    ) -> Self {
        SharedJoinDu {
            name: name.into(),
            left,
            right,
            left_eof: false,
            right_eof: false,
            shared,
            egress,
        }
    }

    fn deliver(&self, outs: Vec<(Tuple, tcq_common::BitSet)>) -> Result<()> {
        if outs.is_empty() {
            return Ok(());
        }
        let inner = self.shared.inner.lock();
        for (tuple, qset) in outs {
            for qid in qset.iter() {
                if let Some(project) = inner.projections.get(&qid) {
                    let out = project.apply(&tuple)?;
                    self.egress.deliver([qid], &out);
                }
            }
        }
        Ok(())
    }
}

impl DispatchUnit for SharedJoinDu {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, quantum: usize) -> Result<ModuleStatus> {
        if self.left_eof && self.right_eof {
            return Ok(ModuleStatus::Done);
        }
        let mut did_work = false;
        let per_side = quantum.div_ceil(2);
        for side in 0..2 {
            if (side == 0 && self.left_eof) || (side == 1 && self.right_eof) {
                continue;
            }
            for _ in 0..per_side {
                let consumer = if side == 0 { &self.left } else { &self.right };
                match consumer.dequeue() {
                    DequeueResult::Msg(FjordMessage::Tuple(t)) => {
                        did_work = true;
                        let outs = {
                            let mut inner = self.shared.inner.lock();
                            if side == 0 {
                                inner.eddy.push_left(t)?
                            } else {
                                inner.eddy.push_right(t)?
                            }
                        };
                        self.deliver(outs)?;
                    }
                    DequeueResult::Msg(FjordMessage::Punct(_)) => {}
                    DequeueResult::Msg(FjordMessage::Eof) | DequeueResult::Disconnected => {
                        if side == 0 {
                            self.left_eof = true;
                        } else {
                            self.right_eof = true;
                        }
                        break;
                    }
                    DequeueResult::Empty => break,
                }
            }
        }
        if self.left_eof && self.right_eof {
            return Ok(ModuleStatus::Done);
        }
        Ok(if did_work {
            ModuleStatus::Ready
        } else {
            ModuleStatus::Idle
        })
    }
}
