//! Query dispatch units: the three §4.2.2 execution modes.
//!
//! * [`FilterCqDu`] — "shared 'continuous query' mode": ALL single-stream
//!   selection queries over one stream run in one DU, sharing a CACQ
//!   [`QueryStem`] pass per tuple.
//! * [`JoinCqDu`] — "single-Eddy query plan with Fjord-style operators":
//!   a dedicated eddy (SteMs + filters) per join query.
//! * [`AggregateCqDu`] — the window driver for aggregate queries: buffers
//!   the windowed stream, closes each window of the §4.1 for-loop as
//!   stream time passes it, emits one result set per window.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use tcq_common::sync::Mutex;

use tcq_common::{
    CkptReader, CkptWriter, ColumnBatch, DataType, Expr, Field, Predicate, Result, Schema,
    SchemaRef, Timestamp, Tuple, Value,
};
use tcq_eddy::{Eddy, Emitted};
use tcq_egress::EgressRouter;
use tcq_executor::{DispatchUnit, ModuleStatus};
use tcq_fjords::{BatchDequeueResult, Consumer, FjordMessage};

use crate::dispatcher::DEFAULT_IO_BATCH;
use tcq_operators::{AggSpec, GroupByAggregator, ProjectOp, WindowAggregator, WindowMode};
use tcq_stems::{MatchScratch, QueryStem};
use tcq_windows::{WindowAssignment, WindowSeq, WindowSeqPos};

/// Query identifier (server-wide).
pub type QueryId = usize;

// ---------------------------------------------------------------- filters

struct FilterInner {
    qstem: QueryStem,
    /// Reused probe state; lives under the same lock as the stem so the
    /// per-tuple matching pass allocates nothing.
    scratch: MatchScratch,
    projections: HashMap<QueryId, ProjectOp>,
    /// Per-query lower bound on logical time: the earliest left edge of the
    /// query's window sequence. Tuples older than it are outside every
    /// window and must not be delivered (paper example 2: the landmark
    /// query over `[101, t]` never matches days 1–100).
    min_seq: HashMap<QueryId, i64>,
}

/// Handle shared between the server (which adds/removes queries) and the
/// running [`FilterCqDu`].
#[derive(Clone)]
pub struct FilterCqShared {
    inner: Arc<Mutex<FilterInner>>,
}

impl FilterCqShared {
    /// Empty shared state over a stream's schema, residuals compiled to
    /// kernels.
    pub fn new(schema: SchemaRef) -> Self {
        Self::with_compiled_kernels(schema, true)
    }

    /// Like [`FilterCqShared::new`], choosing whether residual predicates
    /// compile to kernels or run on the interpreter.
    pub fn with_compiled_kernels(schema: SchemaRef, compiled: bool) -> Self {
        FilterCqShared {
            inner: Arc::new(Mutex::new(FilterInner {
                qstem: QueryStem::with_compiled_kernels(schema, compiled),
                scratch: MatchScratch::new(),
                projections: HashMap::new(),
                min_seq: HashMap::new(),
            })),
        }
    }

    /// Register query `id`: predicate (qualifier-stripped) + projection +
    /// the earliest logical time its windows reach (`i64::MIN` = no bound).
    pub fn add_query(
        &self,
        id: QueryId,
        pred: Option<&Expr>,
        projection: &[(Expr, Option<String>)],
        min_seq: i64,
    ) -> Result<()> {
        let mut inner = self.inner.lock();
        let schema = inner.qstem.schema().clone();
        let project = ProjectOp::new(projection, &schema)?;
        inner.qstem.insert_query(id, pred)?;
        inner.projections.insert(id, project);
        inner.min_seq.insert(id, min_seq);
        Ok(())
    }

    /// Remove query `id`.
    pub fn remove_query(&self, id: QueryId) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.qstem.remove_query(id)?;
        inner.projections.remove(&id);
        inner.min_seq.remove(&id);
        Ok(())
    }

    /// Standing query count.
    pub fn query_count(&self) -> usize {
        self.inner.lock().qstem.len()
    }

    /// Approximate heap footprint of the shared query index and its probe
    /// scratch in bytes.
    pub fn approx_bytes(&self) -> usize {
        let inner = self.inner.lock();
        inner.qstem.approx_bytes() + inner.scratch.approx_bytes()
    }
}

/// The shared filter DU for one stream.
pub struct FilterCqDu {
    name: String,
    input: Consumer,
    shared: FilterCqShared,
    egress: EgressRouter,
    io_batch: usize,
    msg_buf: Vec<FjordMessage>,
    done: bool,
}

impl FilterCqDu {
    /// Build the DU.
    pub fn new(
        name: impl Into<String>,
        input: Consumer,
        shared: FilterCqShared,
        egress: EgressRouter,
    ) -> Self {
        FilterCqDu {
            name: name.into(),
            input,
            shared,
            egress,
            io_batch: DEFAULT_IO_BATCH,
            msg_buf: Vec::new(),
            done: false,
        }
    }

    /// Messages moved per input-lock acquisition (clamped to ≥ 1).
    pub fn with_io_batch(mut self, io_batch: usize) -> Self {
        self.io_batch = io_batch.max(1);
        self
    }
}

impl DispatchUnit for FilterCqDu {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, quantum: usize) -> Result<ModuleStatus> {
        if self.done {
            return Ok(ModuleStatus::Done);
        }
        let mut did_work = false;
        let mut budget = quantum;
        while budget > 0 {
            let mut msgs = std::mem::take(&mut self.msg_buf);
            match self
                .input
                .dequeue_batch(&mut msgs, self.io_batch.min(budget))
            {
                BatchDequeueResult::Msgs(n) => budget = budget.saturating_sub(n),
                BatchDequeueResult::Empty => {
                    self.msg_buf = msgs;
                    return Ok(if did_work {
                        ModuleStatus::Ready
                    } else {
                        ModuleStatus::Idle
                    });
                }
                BatchDequeueResult::Disconnected => {
                    self.msg_buf = msgs;
                    self.done = true;
                    return Ok(ModuleStatus::Done);
                }
            }
            let mut batch: Vec<Tuple> = Vec::with_capacity(msgs.len());
            let mut saw_eof = false;
            for msg in msgs.drain(..) {
                match msg {
                    // Tuples read past an Eof in the same batch are
                    // dropped — the per-tuple path never dequeues them.
                    FjordMessage::Tuple(t) if !saw_eof => batch.push(t),
                    FjordMessage::Tuple(_) | FjordMessage::Punct(_) => {}
                    FjordMessage::Eof => saw_eof = true,
                }
            }
            self.msg_buf = msgs;
            if !batch.is_empty() {
                did_work = true;
                // One shared-state lock per batch; the CACQ matching pass
                // itself still runs per tuple, in order.
                let mut inner = self.shared.inner.lock();
                let FilterInner {
                    qstem,
                    scratch,
                    projections,
                    min_seq,
                } = &mut *inner;
                for t in &batch {
                    let seq = t.timestamp().seq();
                    qstem.matching_into(t, scratch)?;
                    for &qid in scratch.matches() {
                        if min_seq.get(&qid).is_some_and(|&m| seq < m) {
                            continue;
                        }
                        if let Some(project) = projections.get(&qid) {
                            let out = project.apply(t)?;
                            self.egress.deliver([qid], &out);
                        }
                    }
                }
            }
            if saw_eof {
                self.done = true;
                return Ok(ModuleStatus::Done);
            }
        }
        Ok(ModuleStatus::Ready)
    }
}

// ------------------------------------------------------------------ joins

/// A projection that binds lazily per input schema — join outputs arrive
/// with column orders that depend on which side probed.
pub struct LazyProject {
    items: Vec<(Expr, Option<String>)>,
    bound: HashMap<usize, ProjectOp>,
    /// Whether bound projections may use the column-copy fast path
    /// (`ServerConfig::compiled_kernels`).
    compiled_kernels: bool,
}

impl LazyProject {
    /// From resolved select items.
    pub fn new(items: Vec<(Expr, Option<String>)>) -> Self {
        LazyProject {
            items,
            bound: HashMap::new(),
            compiled_kernels: true,
        }
    }

    /// Enable or disable the column-copy fast path on projections bound
    /// from here on (default on).
    pub fn with_compiled_kernels(mut self, enabled: bool) -> Self {
        self.compiled_kernels = enabled;
        self
    }

    /// Apply to a tuple of any compatible schema.
    pub fn apply(&mut self, tuple: &Tuple) -> Result<Tuple> {
        let key = Arc::as_ptr(tuple.schema()) as usize;
        if !self.bound.contains_key(&key) {
            let op = ProjectOp::new(&self.items, tuple.schema())?
                .with_compiled_kernels(self.compiled_kernels);
            self.bound.insert(key, op);
        }
        self.bound[&key].apply(tuple)
    }

    /// Apply to a whole columnar batch. `Ok(None)` means the bound
    /// projection needs per-row expression evaluation — callers fall back
    /// to [`LazyProject::apply`] over materialized rows.
    pub fn apply_columnar(&mut self, batch: &ColumnBatch) -> Result<Option<ColumnBatch>> {
        let key = Arc::as_ptr(batch.schema()) as usize;
        if !self.bound.contains_key(&key) {
            let op = ProjectOp::new(&self.items, batch.schema())?
                .with_compiled_kernels(self.compiled_kernels);
            self.bound.insert(key, op);
        }
        Ok(self.bound[&key].apply_columnar(batch))
    }
}

/// One physical input of a join DU: a stream consumed under 1+ aliases.
pub struct JoinInput {
    /// The subscription queue.
    pub consumer: Consumer,
    /// Alias schemas; each arriving tuple enters the eddy once per alias
    /// (twice for the paper's self-join).
    pub alias_schemas: Vec<SchemaRef>,
    /// Exhausted?
    pub eof: bool,
}

/// A dedicated single-query eddy DU for a join.
///
/// The eddy lives behind a shared mutex so the server's checkpoint path
/// can export its dirty SteM groups between quanta; the DU itself takes
/// the lock once per `run` call, so the hot path pays one uncontended
/// acquisition per quantum.
pub struct JoinCqDu {
    name: String,
    inputs: Vec<JoinInput>,
    eddy: Arc<Mutex<Eddy>>,
    project: LazyProject,
    egress: EgressRouter,
    qid: QueryId,
    emitted_buf: Vec<Tuple>,
    emitted_cols: Vec<Emitted>,
    /// Route single-alias batches through the columnar hot path
    /// (`ServerConfig::columnar`): one row→column conversion per ingress
    /// batch, vectorized module visits, columnar projection and egress.
    columnar: bool,
    io_batch: usize,
    msg_buf: Vec<FjordMessage>,
    /// Tuples before this logical time precede every window — skipped.
    floor: i64,
    /// Tuples after this logical time follow the final window: the query's
    /// stopping condition has been reached (§4.1.1's "keep the query
    /// standing for twenty trading days"). `i64::MAX` = run forever.
    deadline: i64,
    done: bool,
}

impl JoinCqDu {
    /// Build the DU from a wired eddy. `floor`/`deadline` bound the query's
    /// lifetime in stream time (use `i64::MIN`/`i64::MAX` for unbounded).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<JoinInput>,
        eddy: Eddy,
        project: LazyProject,
        egress: EgressRouter,
        qid: QueryId,
        floor: i64,
        deadline: i64,
    ) -> Self {
        JoinCqDu {
            name: name.into(),
            inputs,
            eddy: Arc::new(Mutex::new(eddy)),
            project,
            egress,
            qid,
            emitted_buf: Vec::new(),
            emitted_cols: Vec::new(),
            columnar: false,
            io_batch: DEFAULT_IO_BATCH,
            msg_buf: Vec::new(),
            floor,
            deadline,
            done: false,
        }
    }

    /// Messages moved per input-lock acquisition (clamped to ≥ 1). Each
    /// drained batch enters the eddy through one
    /// [`tcq_eddy::Eddy::process_batch`] call, so routing decisions are
    /// amortized over the batch as well.
    pub fn with_io_batch(mut self, io_batch: usize) -> Self {
        self.io_batch = io_batch.max(1);
        self
    }

    /// Enable the columnar hot path (default off): single-alias batches
    /// enter the eddy through [`tcq_eddy::Eddy::process_batch_columnar`],
    /// and columnar eddy outputs stay columnar through projection and
    /// egress. Self-join inputs keep the per-tuple row path either way.
    pub fn with_columnar(mut self, enabled: bool) -> Self {
        self.columnar = enabled;
        self
    }

    /// Observed eddy statistics (experiments).
    pub fn eddy_stats(&self) -> tcq_eddy::EddyStats {
        self.eddy.lock().stats()
    }

    /// Shared handle to the eddy, for checkpoint export / restore import.
    pub fn eddy_handle(&self) -> Arc<Mutex<Eddy>> {
        Arc::clone(&self.eddy)
    }
}

impl DispatchUnit for JoinCqDu {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, quantum: usize) -> Result<ModuleStatus> {
        if self.done {
            return Ok(ModuleStatus::Done);
        }
        let eddy = &mut *self.eddy.lock();
        let mut did_work = false;
        let per_input = quantum.div_ceil(self.inputs.len().max(1));
        for i in 0..self.inputs.len() {
            if self.inputs[i].eof {
                continue;
            }
            let mut remaining = per_input;
            while remaining > 0 && !self.inputs[i].eof {
                let mut msgs = std::mem::take(&mut self.msg_buf);
                let max = self.io_batch.min(remaining);
                match self.inputs[i].consumer.dequeue_batch(&mut msgs, max) {
                    BatchDequeueResult::Msgs(n) => remaining = remaining.saturating_sub(n),
                    BatchDequeueResult::Empty => {
                        self.msg_buf = msgs;
                        break;
                    }
                    BatchDequeueResult::Disconnected => {
                        self.msg_buf = msgs;
                        self.inputs[i].eof = true;
                        break;
                    }
                }
                let mut batch: Vec<Tuple> = Vec::with_capacity(msgs.len());
                for msg in msgs.drain(..) {
                    match msg {
                        FjordMessage::Tuple(t) if !self.inputs[i].eof => {
                            did_work = true;
                            let seq = t.timestamp().seq();
                            if seq < self.floor {
                                continue;
                            }
                            if seq > self.deadline {
                                // Stream time passed the final window: the
                                // query's stopping condition fired
                                // (timestamps are monotone per stream).
                                self.inputs[i].eof = true;
                                continue;
                            }
                            batch.push(t);
                        }
                        // Tuples read past Eof (or the deadline) in the
                        // same batch are dropped — the per-tuple path
                        // never dequeues them.
                        FjordMessage::Tuple(_) | FjordMessage::Punct(_) => {}
                        FjordMessage::Eof => self.inputs[i].eof = true,
                    }
                }
                self.msg_buf = msgs;
                if batch.is_empty() {
                    continue;
                }
                let aliases = self.inputs[i].alias_schemas.clone();
                if let [alias] = aliases.as_slice() {
                    // The common case: one alias per input, so the whole
                    // drained batch enters the eddy in a single
                    // process_batch call (one routing decision per
                    // signature group) and the results leave through one
                    // egress lock.
                    let qualified: Vec<Tuple> = batch
                        .iter()
                        .map(|t| t.with_schema(alias.clone()))
                        .collect::<Result<_>>()?;
                    if self.columnar {
                        // Columnar hot path: one row→column conversion at
                        // the eddy's ingress edge, then each emitted run
                        // stays in whichever representation it left the
                        // eddy in — columnar runs take the whole-column
                        // projection and batched egress, row runs the
                        // classic per-tuple pair. One egress session per
                        // ingress batch keeps the delivery ledger
                        // byte-identical to the row path's deliver_batch.
                        self.emitted_cols.clear();
                        eddy.process_batch_columnar(qualified, &mut self.emitted_cols)?;
                        let mut session = self.egress.session();
                        let mut row_buf: Vec<Tuple> = Vec::new();
                        for e in self.emitted_cols.drain(..) {
                            match e {
                                Emitted::Rows(rows) => {
                                    row_buf.clear();
                                    for t in &rows {
                                        row_buf.push(self.project.apply(t)?);
                                    }
                                    session.deliver_rows([self.qid], &row_buf);
                                }
                                Emitted::Columns(b) => {
                                    match self.project.apply_columnar(&b)? {
                                        Some(out) => {
                                            session.deliver_columns([self.qid], &out);
                                        }
                                        None => {
                                            // Expression projection: no
                                            // columnar impl; evaluate per
                                            // materialized row.
                                            row_buf.clear();
                                            for t in b.to_tuples() {
                                                row_buf.push(self.project.apply(&t)?);
                                            }
                                            session.deliver_rows([self.qid], &row_buf);
                                        }
                                    }
                                }
                            }
                        }
                    } else {
                        self.emitted_buf.clear();
                        eddy.process_batch(qualified, &mut self.emitted_buf)?;
                        let mut outs = Vec::with_capacity(self.emitted_buf.len());
                        for e in self.emitted_buf.drain(..) {
                            outs.push(self.project.apply(&e)?);
                        }
                        self.egress.deliver_batch([self.qid], &outs);
                    }
                } else {
                    // Self-join: each tuple enters the eddy once per alias,
                    // interleaved per tuple exactly as the per-tuple path
                    // interleaves them.
                    for t in &batch {
                        for alias in &aliases {
                            let qualified = t.with_schema(alias.clone())?;
                            self.emitted_buf.clear();
                            eddy.process_into(qualified, &mut self.emitted_buf)?;
                            for e in self.emitted_buf.drain(..) {
                                let out = self.project.apply(&e)?;
                                self.egress.deliver([self.qid], &out);
                            }
                        }
                    }
                }
            }
        }
        if self.inputs.iter().all(|i| i.eof) {
            // "The Eddy shuts down its connected modules when the end of
            // all of its input streams has been reached" (§2.2).
            self.done = true;
            return Ok(ModuleStatus::Done);
        }
        Ok(if did_work {
            ModuleStatus::Ready
        } else {
            ModuleStatus::Idle
        })
    }
}

// ------------------------------------------------------------- aggregates

/// A resolved aggregate item: spec + output field.
#[derive(Debug, Clone)]
pub struct ResolvedAgg {
    /// What to compute.
    pub spec: AggSpec,
    /// Output column name.
    pub name: String,
}

/// The mutable, checkpointable state of an [`AggregateCqDu`]: the window
/// loop's position and the buffered tuples it still needs. Everything else
/// in the DU is reconstructed from the query text at resubmit.
pub(crate) struct AggCore {
    pub(crate) windows: WindowSeq,
    /// Manual one-slot lookahead (a `Peekable` would hide the loop
    /// position a checkpoint needs).
    pub(crate) peeked: Option<Result<WindowAssignment>>,
    /// The loop position *before* `peeked` was pulled — the position a
    /// restore must seek to so the peeked-but-unemitted window regenerates.
    pub(crate) pos: WindowSeqPos,
    pub(crate) schema: SchemaRef,
    pub(crate) buffer: VecDeque<Tuple>,
    pub(crate) latest: i64,
    pub(crate) eof: bool,
    pub(crate) done: bool,
    pub(crate) peak_buffer: usize,
    /// Changed since the last successful checkpoint commit?
    pub(crate) dirty: bool,
}

impl AggCore {
    fn peek(&mut self) -> Option<&Result<WindowAssignment>> {
        if self.peeked.is_none() {
            self.pos = self.windows.position();
            self.peeked = self.windows.next();
        }
        self.peeked.as_ref()
    }

    fn next_window(&mut self) -> Option<Result<WindowAssignment>> {
        let out = match self.peeked.take() {
            Some(wa) => Some(wa),
            None => self.windows.next(),
        };
        self.pos = self.windows.position();
        out
    }
}

/// Shared handle to an aggregate DU's checkpointable state.
#[derive(Clone)]
pub struct AggCqState {
    inner: Arc<Mutex<AggCore>>,
}

impl AggCqState {
    pub(crate) fn lock(&self) -> tcq_common::sync::MutexGuard<'_, AggCore> {
        self.inner.lock()
    }

    /// Changed since the last checkpoint commit?
    pub fn is_dirty(&self) -> bool {
        self.lock().dirty
    }

    /// Serialize the window-loop position (with its `ST` anchor) and the
    /// buffered tuples. Schema travels out of band (the restoring site
    /// rebuilds it from the resubmitted query).
    pub fn export(&self) -> Vec<u8> {
        encode_agg_core(&self.lock())
    }

    /// Restore from [`AggCqState::export`] bytes: re-anchor and seek the
    /// window loop, refill the buffer. The handle must belong to a freshly
    /// built DU for the same query text.
    pub fn import(&self, bytes: &[u8]) -> Result<()> {
        let mut core = self.lock();
        let mut r = CkptReader::new(bytes);
        core.windows.set_start_time(r.get_i64("agg start time")?);
        let pos = WindowSeqPos {
            t: r.get_i64("agg loop t")?,
            iterations: r.get_u64("agg loop iterations")?,
            done: r.get_u8("agg loop done")? != 0,
        };
        core.windows.seek(pos);
        core.pos = pos;
        core.peeked = None;
        core.latest = r.get_i64("agg latest seq")?;
        core.done = r.get_u8("agg done")? != 0;
        let n = r.get_u32("agg buffer len")?;
        let schema = core.schema.clone();
        core.buffer.clear();
        for _ in 0..n {
            core.buffer.push_back(r.get_tuple(&schema)?);
        }
        core.peak_buffer = core.peak_buffer.max(core.buffer.len());
        core.dirty = false;
        Ok(())
    }
}

pub(crate) fn encode_agg_core(core: &AggCore) -> Vec<u8> {
    let mut w = CkptWriter::new();
    w.put_i64(core.windows.start_time());
    w.put_i64(core.pos.t);
    w.put_u64(core.pos.iterations);
    w.put_u8(core.pos.done as u8);
    w.put_i64(core.latest);
    w.put_u8(core.done as u8);
    w.put_u32(core.buffer.len() as u32);
    for t in &core.buffer {
        w.put_tuple(t);
    }
    w.into_bytes()
}

/// The window-driving aggregate DU for one stream.
///
/// Buffers predicate-passing tuples; each time stream time reaches a window
/// assignment's close time, computes the aggregates over that window from
/// the buffer and emits one row (or one row per group), stamped with the
/// loop variable `t`. The output is exactly the paper's "sequence of sets,
/// each set being associated with an instant in time" (§4.1.1). The mutable
/// state lives behind [`AggCqState`] so the server can checkpoint it.
pub struct AggregateCqDu {
    name: String,
    input: Consumer,
    pred: Option<Predicate>,
    aggs: Vec<ResolvedAgg>,
    group_by: Option<usize>,
    stream_alias: String,
    out_schema: SchemaRef,
    egress: EgressRouter,
    qid: QueryId,
    io_batch: usize,
    msg_buf: Vec<FjordMessage>,
    core: AggCqState,
}

impl AggregateCqDu {
    /// Build the DU. `input_schema` is the stream's base schema; `windows`
    /// must reference `stream_alias`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        input: Consumer,
        input_schema: &SchemaRef,
        pred: Option<Predicate>,
        aggs: Vec<ResolvedAgg>,
        group_by: Option<usize>,
        windows: WindowSeq,
        stream_alias: String,
        egress: EgressRouter,
        qid: QueryId,
    ) -> Self {
        let mut fields = vec![Field::new("t", DataType::Int)];
        if let Some(g) = group_by {
            let f = input_schema.field(g);
            fields.push(Field::new(f.name.clone(), f.data_type));
        }
        for a in &aggs {
            // COUNT is Int; others are Float except MIN/MAX which follow the
            // input column type.
            let dt = match (a.spec.func, a.spec.column) {
                (tcq_operators::AggFunc::Count, _) => DataType::Int,
                (tcq_operators::AggFunc::Min | tcq_operators::AggFunc::Max, Some(c)) => {
                    input_schema.field(c).data_type
                }
                _ => DataType::Float,
            };
            fields.push(Field::new(a.name.clone(), dt));
        }
        let pos = windows.position();
        AggregateCqDu {
            name: name.into(),
            input,
            pred,
            aggs,
            group_by,
            stream_alias,
            out_schema: Schema::new(fields).into_ref(),
            egress,
            qid,
            io_batch: DEFAULT_IO_BATCH,
            msg_buf: Vec::new(),
            core: AggCqState {
                inner: Arc::new(Mutex::new(AggCore {
                    windows,
                    peeked: None,
                    pos,
                    schema: input_schema.clone(),
                    buffer: VecDeque::new(),
                    latest: 0,
                    eof: false,
                    done: false,
                    peak_buffer: 0,
                    dirty: false,
                })),
            },
        }
    }

    /// Shared handle to the checkpointable state.
    pub fn state_handle(&self) -> AggCqState {
        self.core.clone()
    }

    /// Messages moved per input-lock acquisition (clamped to ≥ 1).
    pub fn with_io_batch(mut self, io_batch: usize) -> Self {
        self.io_batch = io_batch.max(1);
        self
    }

    /// The output row schema: `(t, [group], aggs...)`.
    pub fn out_schema(&self) -> &SchemaRef {
        &self.out_schema
    }

    fn close_ready_windows(&self, core: &mut AggCore) -> Result<()> {
        loop {
            let close_time = match core.peek() {
                Some(Ok(wa)) => wa.close_time(),
                Some(Err(_)) => {
                    // Surface the spec error once.
                    let e = core.next_window().expect("peeked");
                    e?;
                    unreachable!("error returned above");
                }
                None => {
                    core.done = true;
                    return Ok(());
                }
            };
            if close_time > core.latest {
                // A window closes only once stream time passes its right
                // edge; at EOF, windows that never closed are dropped
                // (their data ended mid-window).
                if core.eof {
                    core.done = true;
                }
                return Ok(());
            }
            let wa = core.next_window().expect("peeked Some")?;
            self.emit_window(core, &wa)?;
            self.evict(core, &wa);
            core.dirty = true;
        }
    }

    fn emit_window(&self, core: &mut AggCore, wa: &WindowAssignment) -> Result<()> {
        let Some(win) = wa.window_for(&self.stream_alias) else {
            return Ok(());
        };
        let in_window = core
            .buffer
            .iter()
            .filter(|t| win.contains(t.timestamp().seq()));
        let specs: Vec<AggSpec> = self.aggs.iter().map(|a| a.spec).collect();
        match self.group_by {
            Some(g) => {
                let mut agg = GroupByAggregator::new(g, specs);
                for t in in_window {
                    agg.update(t)?;
                }
                for (key, vals) in agg.results_sorted() {
                    let mut row = Vec::with_capacity(2 + vals.len());
                    row.push(Value::Int(wa.t));
                    row.push(key);
                    row.extend(vals);
                    let out = Tuple::new_unchecked(
                        self.out_schema.clone(),
                        row,
                        Timestamp::logical(wa.t),
                    );
                    self.egress.deliver([self.qid], &out);
                }
            }
            None => {
                let mut agg = WindowAggregator::new(specs, WindowMode::Landmark);
                for t in in_window {
                    agg.update(t)?;
                }
                let mut row = Vec::with_capacity(1 + self.aggs.len());
                row.push(Value::Int(wa.t));
                row.extend(agg.results()?);
                let out =
                    Tuple::new_unchecked(self.out_schema.clone(), row, Timestamp::logical(wa.t));
                self.egress.deliver([self.qid], &out);
            }
        }
        Ok(())
    }

    /// Evict buffered tuples that can never appear in a future window.
    /// Only forward-moving windows shrink the buffer; landmark windows keep
    /// everything — the paper's memory asymmetry, faithfully.
    fn evict(&self, core: &mut AggCore, just_closed: &WindowAssignment) {
        let next_left = match core.peek() {
            Some(Ok(wa)) => wa.window_for(&self.stream_alias).map(|w| w.left),
            _ => None,
        };
        let horizon = match next_left {
            Some(l) => l.min(
                just_closed
                    .window_for(&self.stream_alias)
                    .map(|w| w.left)
                    .unwrap_or(l),
            ),
            None => return,
        };
        while let Some(front) = core.buffer.front() {
            if front.timestamp().seq() >= horizon {
                break;
            }
            core.buffer.pop_front();
        }
    }

    /// Peak number of buffered tuples (experiments).
    pub fn peak_buffered(&self) -> usize {
        self.core.lock().peak_buffer
    }
}

impl DispatchUnit for AggregateCqDu {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&mut self, quantum: usize) -> Result<ModuleStatus> {
        let core = &mut *self.core.inner.lock();
        if core.done {
            return Ok(ModuleStatus::Done);
        }
        let mut did_work = false;
        let mut budget = quantum;
        while budget > 0 && !core.eof {
            let mut msgs = std::mem::take(&mut self.msg_buf);
            match self
                .input
                .dequeue_batch(&mut msgs, self.io_batch.min(budget))
            {
                BatchDequeueResult::Msgs(n) => budget = budget.saturating_sub(n),
                BatchDequeueResult::Empty => {
                    self.msg_buf = msgs;
                    break;
                }
                BatchDequeueResult::Disconnected => {
                    self.msg_buf = msgs;
                    core.eof = true;
                    break;
                }
            }
            for msg in msgs.drain(..) {
                match msg {
                    FjordMessage::Tuple(t) if !core.eof => {
                        did_work = true;
                        core.latest = core.latest.max(t.timestamp().seq());
                        let passes = match &self.pred {
                            Some(p) => p.eval_pred(&t)?,
                            None => true,
                        };
                        if passes {
                            core.buffer.push_back(t);
                            core.peak_buffer = core.peak_buffer.max(core.buffer.len());
                        }
                    }
                    // Tuples read past Eof in the same batch are dropped —
                    // the per-tuple path never dequeues them.
                    FjordMessage::Tuple(_) | FjordMessage::Punct(_) => {}
                    FjordMessage::Eof => core.eof = true,
                }
            }
            self.msg_buf = msgs;
        }
        if did_work {
            core.dirty = true;
        }
        self.close_ready_windows(core)?;
        if core.eof && !core.done {
            // Remaining windows were handled in close_ready_windows (it
            // closes everything reachable once eof is set); anything left
            // means the spec is infinite with nothing more to fill it.
            core.done = true;
        }
        Ok(if core.done {
            ModuleStatus::Done
        } else if did_work {
            ModuleStatus::Ready
        } else {
            ModuleStatus::Idle
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcq_common::{CmpOp, DataType, Field, Schema, TupleBuilder};
    use tcq_fjords::{fjord, QueueKind};
    use tcq_operators::AggFunc;
    use tcq_windows::{CondOp, Condition, ForLoop, LinExpr, Step, WindowIs};

    fn schema() -> SchemaRef {
        Schema::qualified(
            "s",
            vec![
                Field::new("ts", DataType::Int),
                Field::new("v", DataType::Int),
            ],
        )
        .into_ref()
    }

    fn row(s: &SchemaRef, ts: i64, v: i64) -> Tuple {
        TupleBuilder::new(s.clone())
            .push(ts)
            .push(v)
            .at(Timestamp::logical(ts))
            .build()
            .unwrap()
    }

    #[test]
    fn lazy_project_binds_per_schema() {
        let mut lp = LazyProject::new(vec![(Expr::col("v"), None)]);
        let a = schema();
        let b = Schema::qualified(
            "other",
            vec![
                Field::new("x", DataType::Int),
                Field::new("v", DataType::Int),
            ],
        )
        .into_ref();
        let out_a = lp.apply(&row(&a, 1, 10)).unwrap();
        assert_eq!(out_a.value(0).as_int().unwrap(), 10);
        // Different column order, same expression: rebinding required.
        let tb = TupleBuilder::new(b)
            .push(99i64)
            .push(42i64)
            .build()
            .unwrap();
        let out_b = lp.apply(&tb).unwrap();
        assert_eq!(out_b.value(0).as_int().unwrap(), 42);
    }

    #[test]
    fn filter_cq_shared_respects_min_seq() {
        let shared = FilterCqShared::new(schema());
        shared
            .add_query(0, None, &[(Expr::col("ts"), None)], 5)
            .unwrap();
        let (p, c) = fjord(64, QueueKind::Push);
        let egress = EgressRouter::new();
        egress.register_pull_client(1, 64).unwrap();
        egress.subscribe(1, 0).unwrap();
        let mut du = FilterCqDu::new("f", c, shared, egress.clone());
        let s = schema();
        for ts in 1..=10 {
            p.enqueue(tcq_fjords::FjordMessage::Tuple(row(&s, ts, 0)))
                .unwrap();
        }
        p.enqueue(tcq_fjords::FjordMessage::Eof).unwrap();
        while du.run(16).unwrap() != ModuleStatus::Done {}
        let got = egress.fetch(1, 64).unwrap();
        assert_eq!(got.len(), 6, "only ts >= 5 delivered");
    }

    #[test]
    fn aggregate_du_emits_one_row_per_closed_window() {
        let s = schema();
        let (p, c) = fjord(256, QueueKind::Push);
        let egress = EgressRouter::new();
        egress.register_pull_client(1, 256).unwrap();
        egress.subscribe(1, 9).unwrap();
        let windows = WindowSeq::new(
            ForLoop {
                init: LinExpr::constant(4),
                cond: Condition {
                    op: CondOp::Le,
                    bound: LinExpr::constant(20),
                },
                step: Step::Add(4),
                windows: vec![WindowIs::new("s", LinExpr::t_plus(-3), LinExpr::t())],
            },
            1,
        );
        let mut du = AggregateCqDu::new(
            "agg",
            c,
            &s,
            None,
            vec![ResolvedAgg {
                spec: AggSpec::count_star(),
                name: "n".into(),
            }],
            None,
            windows,
            "s".into(),
            egress.clone(),
            9,
        );
        assert_eq!(du.out_schema().len(), 2); // (t, n)
        for ts in 1..=20 {
            p.enqueue(tcq_fjords::FjordMessage::Tuple(row(&s, ts, 0)))
                .unwrap();
        }
        p.enqueue(tcq_fjords::FjordMessage::Eof).unwrap();
        while du.run(64).unwrap() != ModuleStatus::Done {}
        let got = egress.fetch(1, 256).unwrap();
        // windows close at t = 4, 8, 12, 16, 20 — 4 tuples each.
        assert_eq!(got.len(), 5);
        for (_, r) in &got {
            assert_eq!(r.value(1).as_int().unwrap(), 4);
        }
    }

    #[test]
    fn aggregate_du_respects_predicate_and_group() {
        let s = schema();
        let (p, c) = fjord(256, QueueKind::Push);
        let egress = EgressRouter::new();
        egress.register_pull_client(1, 256).unwrap();
        egress.subscribe(1, 3).unwrap();
        let windows = WindowSeq::new(
            ForLoop {
                init: LinExpr::constant(10),
                cond: Condition {
                    op: CondOp::Le,
                    bound: LinExpr::constant(10),
                },
                step: Step::Add(10),
                windows: vec![WindowIs::new("s", LinExpr::constant(1), LinExpr::t())],
            },
            1,
        );
        let pred =
            Predicate::new(&Expr::col("ts").cmp(CmpOp::Gt, Expr::lit(2i64)), &s, true).unwrap();
        let mut du = AggregateCqDu::new(
            "agg",
            c,
            &s,
            Some(pred),
            vec![ResolvedAgg {
                spec: AggSpec::over(AggFunc::Sum, 0),
                name: "total".into(),
            }],
            Some(1), // group by v
            windows,
            "s".into(),
            egress.clone(),
            3,
        );
        for ts in 1..=10 {
            p.enqueue(tcq_fjords::FjordMessage::Tuple(row(&s, ts, ts % 2)))
                .unwrap();
        }
        p.enqueue(tcq_fjords::FjordMessage::Eof).unwrap();
        while du.run(64).unwrap() != ModuleStatus::Done {}
        let got = egress.fetch(1, 256).unwrap();
        // One window [1,10], grouped by parity, ts > 2.
        assert_eq!(got.len(), 2);
        let mut sums: Vec<(i64, f64)> = got
            .iter()
            .map(|(_, r)| (r.value(1).as_int().unwrap(), r.value(2).as_float().unwrap()))
            .collect();
        sums.sort_by_key(|&(g, _)| g);
        // group 0 (even ts > 2): 4+6+8+10 = 28; group 1 (odd > 2): 3+5+7+9 = 24
        assert_eq!(sums, vec![(0, 28.0), (1, 24.0)]);
    }
}
