//! Microbenchmarks for the TelegraphCQ-rs building blocks, on a
//! self-contained `std::time::Instant` harness (the `criterion` crate is
//! not available in this offline build; enabling the non-default
//! `criterion` feature selects criterion-grade warmup and sample counts
//! on the same harness).
//!
//! One group per experiment id (see DESIGN.md §4):
//!
//! * `F2/stem_join`      — symmetric hash join via eddy + SteMs.
//! * `E2/routing_policy` — per-tuple cost of each routing policy.
//! * `E4/grouped_filter` — probe cost vs registered factor count.
//! * `E3/query_stem`     — shared matching vs standing query count.
//! * `E5/psoup`          — materialized invoke vs recompute.
//! * `E8/aggregates`     — landmark vs sliding MAX updates.
//! * `E10/archive`       — append and windowed scan.
//!
//! Run with `cargo bench -p tcq-bench` (add `--features criterion` for the
//! longer calibration mode).

use std::time::{Duration, Instant};

use tcq_bench::{kv, kv_schema};
use tcq_common::rng::seeded;
use tcq_common::{BitSet, CmpOp, Expr, Value};
use tcq_eddy::{
    Eddy, EddyConfig, FixedPolicy, GreedyPolicy, LotteryPolicy, ModuleSpec, RandomPolicy,
    RoutingPolicy,
};
use tcq_operators::{
    symmetric_hash_join, AggFunc, AggSpec, SelectOp, WindowAggregator, WindowMode,
};
use tcq_psoup::PSoup;
use tcq_stems::{GroupedFilter, QueryStem};
use tcq_storage::{BufferPool, StreamArchive};

/// A named group of benchmarks (mirrors the criterion group API surface
/// the suite uses, so bench bodies read the same either way).
struct Group {
    name: String,
    samples: usize,
    measurement: Duration,
    throughput: Option<u64>,
}

/// Measurement driver handed to each benchmark body; `iter` runs the
/// closure through warmup and timed samples and records the median.
struct Bencher {
    samples: usize,
    measurement: Duration,
    median_ns: f64,
}

impl Bencher {
    fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup: run for a slice of the measurement budget (at least one
        // full iteration) and estimate per-iteration cost.
        let warm_budget = self.measurement / 10;
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= warm_budget {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let sample_budget = self.measurement.as_secs_f64() / self.samples as f64;
        let batch = ((sample_budget / per_iter.max(1e-9)) as u64).max(1);
        let mut ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        ns.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = ns[ns.len() / 2];
    }
}

impl Group {
    fn new(name: &str) -> Self {
        Group {
            name: name.to_string(),
            samples: 10,
            measurement: Duration::from_millis(300),
            throughput: None,
        }
    }

    /// Criterion-mode honours the requested counts; quick mode caps them
    /// so `cargo bench` finishes in seconds without the real crate.
    fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = if cfg!(feature = "criterion") {
            n
        } else {
            n.min(10)
        };
        self
    }

    fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = if cfg!(feature = "criterion") {
            d
        } else {
            d.min(Duration::from_millis(300))
        };
        self
    }

    fn throughput(&mut self, elements: u64) -> &mut Self {
        self.throughput = Some(elements);
        self
    }

    fn bench_function(&mut self, id: &str, body: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.samples.max(2),
            measurement: self.measurement,
            median_ns: 0.0,
        };
        body(&mut b);
        let mut line = format!("{}/{id}: {:>12.0} ns/iter", self.name, b.median_ns);
        if let Some(elems) = self.throughput {
            let per_sec = elems as f64 / (b.median_ns / 1e9);
            line.push_str(&format!("  ({:.2} Melem/s)", per_sec / 1e6));
        }
        println!("{line}");
    }

    fn finish(self) {}
}

fn join_eddy(policy: Box<dyn RoutingPolicy>) -> Eddy {
    let s = kv_schema("S");
    let t = kv_schema("T");
    let mut eddy = Eddy::new(&["S", "T"], policy, EddyConfig::default()).unwrap();
    let (sb, tb) = (eddy.source_bit("S").unwrap(), eddy.source_bit("T").unwrap());
    let (stem_s, stem_t) = symmetric_hash_join(&s, "S", "k", &t, "T", "k").unwrap();
    eddy.add_module(ModuleSpec::stem(Box::new(stem_s), sb, tb))
        .unwrap();
    eddy.add_module(ModuleSpec::stem(Box::new(stem_t), tb, sb))
        .unwrap();
    eddy
}

fn bench_stem_join() {
    let mut group = Group::new("F2/stem_join");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let s = kv_schema("S");
    let t = kv_schema("T");
    let mut rng = seeded(1);
    let n = 2_000usize;
    let rows: Vec<(bool, i64)> = (0..n)
        .map(|_| (rng.gen_bool(0.5), rng.gen_range(0..500i64)))
        .collect();
    group.throughput(n as u64);
    group.bench_function("symmetric_hash_join_2k", |b| {
        b.iter(|| {
            let mut eddy = join_eddy(Box::new(FixedPolicy::new(vec![0, 1])));
            let mut out = Vec::new();
            for (i, (left, k)) in rows.iter().enumerate() {
                let row = if *left {
                    kv(&s, *k, 0, i as i64)
                } else {
                    kv(&t, *k, 0, i as i64)
                };
                eddy.process_into(row, &mut out).unwrap();
            }
            out.len()
        })
    });
    group.finish();
}

fn bench_routing_policies() {
    let mut group = Group::new("E2/routing_policy");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let schema = kv_schema("S");
    let n = 10_000usize;
    let mut rng = seeded(3);
    let vals: Vec<i64> = (0..n).map(|_| rng.gen_range(0..100i64)).collect();
    group.throughput(n as u64);
    let mk_policy = |which: &str| -> Box<dyn RoutingPolicy> {
        match which {
            "fixed" => Box::new(FixedPolicy::new(vec![0, 1, 2])),
            "random" => Box::new(RandomPolicy),
            "lottery" => Box::new(LotteryPolicy::new()),
            _ => Box::new(GreedyPolicy::new()),
        }
    };
    for which in ["fixed", "random", "lottery", "greedy"] {
        group.bench_function(which, |b| {
            b.iter(|| {
                let mut eddy = Eddy::new(&["S"], mk_policy(which), EddyConfig::default()).unwrap();
                let s = eddy.source_bit("S").unwrap();
                for th in [10i64, 50, 90] {
                    let f = SelectOp::new(
                        format!("v<{th}"),
                        &Expr::col("v").cmp(CmpOp::Lt, Expr::lit(th)),
                        &schema,
                    )
                    .unwrap();
                    eddy.add_module(ModuleSpec::filter(Box::new(f), s)).unwrap();
                }
                let mut emitted = 0usize;
                for (i, v) in vals.iter().enumerate() {
                    emitted += eddy.process(kv(&schema, 0, *v, i as i64)).unwrap().len();
                }
                emitted
            })
        });
    }
    group.finish();
}

fn bench_grouped_filter() {
    let mut group = Group::new("E4/grouped_filter");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    let ops = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];
    for n in [64usize, 1024, 4096] {
        let mut gf = GroupedFilter::new();
        for i in 0..n {
            gf.insert(i, ops[i % 6], Value::Int((i as i64 * 7) % 1000))
                .unwrap();
        }
        let mut rng = seeded(5);
        let probes: Vec<Value> = (0..1000)
            .map(|_| Value::Int(rng.gen_range(0..1000i64)))
            .collect();
        group.throughput(probes.len() as u64);
        group.bench_function(&n.to_string(), |b| {
            let mut out = BitSet::new();
            b.iter(|| {
                let mut total = 0usize;
                for p in &probes {
                    out.clear();
                    gf.eval(p, &mut out);
                    total += out.len();
                }
                total
            })
        });
    }
    group.finish();
}

fn bench_query_stem() {
    let mut group = Group::new("E3/query_stem");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let schema = kv_schema("S");
    for n in [16usize, 256, 1024] {
        let mut qstem = QueryStem::new(schema.clone());
        for q in 0..n {
            let lo = (q as i64 * 13) % 950;
            let pred = Expr::col("v")
                .cmp(CmpOp::Ge, Expr::lit(lo))
                .and(Expr::col("v").cmp(CmpOp::Lt, Expr::lit(lo + 50)));
            qstem.insert_query(q, Some(&pred)).unwrap();
        }
        let mut rng = seeded(7);
        let tuples: Vec<_> = (0..1000)
            .map(|i| kv(&schema, 0, rng.gen_range(0..1000), i))
            .collect();
        group.throughput(tuples.len() as u64);
        group.bench_function(&n.to_string(), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for t in &tuples {
                    total += qstem.matching(t).unwrap().len();
                }
                total
            })
        });
    }
    group.finish();
}

fn bench_psoup() {
    let mut group = Group::new("E5/psoup");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let schema = kv_schema("S");
    let window = 2_000i64;
    let build = || {
        let mut ps = PSoup::new(schema.clone(), window * 2);
        for q in 0..32usize {
            let lo = (q as i64 * 29) % 900;
            let pred = Expr::col("v")
                .cmp(CmpOp::Ge, Expr::lit(lo))
                .and(Expr::col("v").cmp(CmpOp::Lt, Expr::lit(lo + 100)));
            ps.register(q, Some(&pred), window).unwrap();
        }
        let mut rng = seeded(9);
        for i in 1..=window * 2 {
            ps.push(kv(&schema, 0, rng.gen_range(0..1000), i)).unwrap();
        }
        ps
    };
    let mut ps = build();
    group.bench_function("invoke_32_queries", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in 0..32usize {
                total += ps.invoke(q).unwrap().len();
            }
            total
        })
    });
    group.bench_function("recompute_32_queries", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in 0..32usize {
                total += ps.recompute(q).unwrap().len();
            }
            total
        })
    });
    group.finish();
}

fn bench_aggregates() {
    let mut group = Group::new("E8/aggregates");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let schema = kv_schema("S");
    let mut rng = seeded(11);
    let n = 20_000i64;
    let tuples: Vec<_> = (1..=n)
        .map(|i| kv(&schema, 0, rng.gen_range(0..1_000_000), i))
        .collect();
    group.throughput(n as u64);
    group.bench_function("landmark_max", |b| {
        b.iter(|| {
            let mut agg =
                WindowAggregator::new(vec![AggSpec::over(AggFunc::Max, 1)], WindowMode::Landmark);
            for t in &tuples {
                agg.update(t).unwrap();
            }
            agg.results().unwrap()
        })
    });
    group.bench_function("sliding_max_w1000", |b| {
        b.iter(|| {
            let mut agg =
                WindowAggregator::new(vec![AggSpec::over(AggFunc::Max, 1)], WindowMode::Sliding);
            for t in &tuples {
                agg.update(t).unwrap();
                agg.slide_to(t.timestamp().seq() - 999).unwrap();
            }
            agg.results().unwrap()
        })
    });
    group.finish();
}

fn bench_archive() {
    let mut group = Group::new("E10/archive");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(2));
    let schema = kv_schema("S");
    let n = 50_000i64;
    group.throughput(n as u64);
    group.bench_function("append_50k", |b| {
        b.iter(|| {
            let pool = BufferPool::new(64, 8192);
            let path =
                std::env::temp_dir().join(format!("tcq-bench-archive-{}.seg", std::process::id()));
            let mut a = StreamArchive::create(&path, schema.clone(), pool).unwrap();
            for i in 1..=n {
                a.append(&kv(&schema, i % 100, i, i)).unwrap();
            }
            std::fs::remove_file(path).ok();
            a.len()
        })
    });
    // Pre-built archive for scans.
    let pool = BufferPool::new(64, 8192);
    let path = std::env::temp_dir().join(format!("tcq-bench-scan-{}.seg", std::process::id()));
    let mut archive = StreamArchive::create(&path, schema.clone(), pool.clone()).unwrap();
    for i in 1..=n {
        archive.append(&kv(&schema, i % 100, i, i)).unwrap();
    }
    archive.flush().unwrap();
    group.bench_function("scan_window_5k_hot", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            archive.scan_window(n / 2, n / 2 + 4_999, &mut out).unwrap();
            out.len()
        })
    });
    group.finish();
    std::fs::remove_file(path).ok();
}

fn main() {
    // `cargo bench` passes harness flags like `--bench`; ignore them.
    bench_stem_join();
    bench_routing_policies();
    bench_grouped_filter();
    bench_query_stem();
    bench_psoup();
    bench_aggregates();
    bench_archive();
}
