//! Experiment E-liveness (DESIGN.md "§5f Progress tracking & liveness
//! watchdog"): the partitioned-exchange join run under the two
//! exchange-local liveness faults, with the deterministic watchdog armed.
//!
//! Three scenarios, all over the same P=2 join (every hot tuple matches
//! exactly one dimension row, so `delivered == offered` is the zero-loss
//! contract):
//!
//! * `healthy` — no faults. The watchdog must be pure observation: zero
//!   stalls, zero rungs, full delivery.
//! * `drop-punct` — a worker drops a run-closing punctuation
//!   ([`FaultPoint::DropPunctuation`]). The merger waits forever for the
//!   run to close; only the watchdog's **nudge** rung (re-emit withheld
//!   punctuation) recovers, and must do so losslessly before the failover
//!   rung is ever reached.
//! * `stall-consumer` — the merger refuses its scheduling grants
//!   ([`FaultPoint::StallConsumer`]). Nudging re-emits nothing, so the
//!   watchdog must climb to the **failover** rung (forced ordered-outbox
//!   drain) and still finish with zero loss and canonical order.
//!
//! For each scenario the run records the watchdog counters, the detector
//! tick and in-flight depth at detection, and the wall-clock cost of the
//! whole wedge-detect-recover-drain cycle, then writes
//! `BENCH_liveness.json`. Detection is measured in engine ticks (detector
//! rounds), not wall clock — the budget the operator actually configures.
//!
//! ```text
//! cargo run --release -p tcq-bench --bin exp_liveness [-- --smoke]
//! ```
//!
//! `--smoke` runs a reduced workload as the CI tripwire; the same gates
//! apply (healthy: silent watchdog; drop-punct: nudge recovery with no
//! escalation; stall-consumer: escalation recovery — all with zero loss).

use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

use tcq_bench::Table;
use tcq_common::{
    DataType, FaultAction, FaultPlan, FaultPoint, Field, Schema, SchemaRef, Timestamp, Tuple,
    TupleBuilder,
};
use tcq_egress::Delivery;
use tcq_executor::WatchdogStats;
use tcq_server::{LivenessConfig, ServerConfig, TelegraphCQ};

const DIM_ROWS: i64 = 64;
const SEED: u64 = 0x11FE_5EED;

fn dim_schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("tag", DataType::Int),
    ])
    .into_ref()
}

fn hot_schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Int),
    ])
    .into_ref()
}

struct Outcome {
    name: &'static str,
    stall_ticks: u64,
    escalate_ticks: u64,
    delivered: usize,
    offered: usize,
    ordered: bool,
    watchdog: WatchdogStats,
    /// Detector tick at which the (first) stall was declared; 0 if none.
    detect_tick: u64,
    /// Messages in flight at detection time; 0 if no stall.
    in_flight: u64,
    wall_ms: f64,
}

/// One scenario run: the P=2 exchange join with `n` hot tuples, the
/// watchdog armed with the given budgets, and an optional fault plan.
/// Wall time covers first hot push to full quiescence, so a wedge's
/// detect-and-recover cost is inside it.
fn run_scenario(
    name: &'static str,
    n: usize,
    live: LivenessConfig,
    fault_plan: Option<FaultPlan>,
) -> Outcome {
    let server = TelegraphCQ::start(ServerConfig {
        partitions: 2,
        // Small queues so a wedge back-pressures (and freezes the
        // frontier) quickly instead of hiding behind buffering.
        queue_capacity: 64,
        liveness: Some(live),
        fault_plan,
        ..ServerConfig::default()
    })
    .unwrap();
    server.register_stream("s", hot_schema()).unwrap();
    server.register_stream("dim", dim_schema()).unwrap();

    let (client, rx): (_, Receiver<Delivery>) = server.connect_push_client(n + 1024).unwrap();
    server
        .submit(
            "SELECT s.v, d.tag FROM s s, dim d WHERE s.k = d.id \
             for (t = ST; t >= 0; t++) { WindowIs(s, t - 8000000, t); WindowIs(d, t - 9000000, t); }",
            client,
        )
        .unwrap();

    let dims = dim_schema();
    let dim_batch: Vec<Tuple> = (0..DIM_ROWS)
        .map(|id| {
            TupleBuilder::new(dims.clone())
                .push(id)
                .push(id * 10)
                .at(Timestamp::logical(id + 1))
                .build()
                .unwrap()
        })
        .collect();
    server.push_batch("dim", dim_batch).unwrap();
    while server.stream_time("dim").unwrap() < DIM_ROWS {
        std::thread::sleep(Duration::from_millis(1));
    }
    server.finish_stream("dim").unwrap();
    std::thread::sleep(Duration::from_millis(20));

    let hot = hot_schema();
    let master: Vec<Tuple> = (1..=n as i64)
        .map(|i| {
            TupleBuilder::new(hot.clone())
                .push(i % DIM_ROWS)
                .push(i)
                .at(Timestamp::logical(i))
                .build()
                .unwrap()
        })
        .collect();

    let start = Instant::now();
    server.push_batch("s", master).unwrap();
    while server.stream_time("s").unwrap() < n as i64 {
        std::thread::sleep(Duration::from_millis(1));
    }
    server.finish_stream("s").unwrap();
    if !server.quiesce(Duration::from_secs(60)) {
        eprintln!("FAIL: scenario {name} never quiesced — liveness recovery did not fire");
        std::process::exit(1);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let results: Vec<i64> = rx
        .try_iter()
        .map(|(_, t)| t.value(0).as_int().unwrap())
        .collect();
    let ordered = results.iter().copied().eq(1..=n as i64);
    let watchdog = server.executor_stats().watchdog;
    let stall = server.last_stall();
    server.shutdown().unwrap();

    Outcome {
        name,
        stall_ticks: live.stall_ticks,
        escalate_ticks: live.escalate_ticks,
        delivered: results.len(),
        offered: n,
        ordered,
        watchdog,
        detect_tick: stall.as_ref().map_or(0, |d| d.tick),
        in_flight: stall.as_ref().map_or(0, |d| d.in_flight),
        wall_ms,
    }
}

fn gate(cond: bool, msg: &str) {
    if !cond {
        eprintln!("FAIL: {msg}");
        std::process::exit(1);
    }
}

fn write_json(path: &str, n: usize, outcomes: &[Outcome]) {
    let mut entries = Vec::new();
    for o in outcomes {
        entries.push(format!(
            "    {{\"scenario\": \"{}\", \"stall_ticks\": {}, \"escalate_ticks\": {}, \
             \"delivered\": {}, \"offered\": {}, \"ordered\": {}, \
             \"stalls_detected\": {}, \"nudges\": {}, \"escalations\": {}, \
             \"recoveries\": {}, \"false_positives\": {}, \
             \"detect_tick\": {}, \"in_flight_at_detection\": {}, \"wall_ms\": {:.1}}}",
            o.name,
            o.stall_ticks,
            o.escalate_ticks,
            o.delivered,
            o.offered,
            o.ordered,
            o.watchdog.stalls_detected,
            o.watchdog.nudges,
            o.watchdog.escalations,
            o.watchdog.recoveries,
            o.watchdog.false_positives,
            o.detect_tick,
            o.in_flight,
            o.wall_ms,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"liveness\",\n  \"pipeline\": \
         \"P=2 exchange join under injected liveness faults, watchdog armed\",\n  \
         \"tuples\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        n,
        entries.join(",\n"),
    );
    std::fs::write(path, json).unwrap();
    println!("  wrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n: usize = if smoke { 6_000 } else { 30_000 };
    println!(
        "E-liveness — progress-frontier watchdog over the P=2 exchange join\n\
         ({n} hot tuples per scenario; detection budgets in engine ticks)\n"
    );

    let outcomes = vec![
        run_scenario(
            "healthy",
            n,
            LivenessConfig {
                stall_ticks: 64,
                escalate_ticks: 64,
            },
            None,
        ),
        run_scenario(
            "drop-punct",
            n,
            LivenessConfig {
                stall_ticks: 16,
                escalate_ticks: 512,
            },
            Some(FaultPlan::new(SEED).at(FaultPoint::DropPunctuation, 3, FaultAction::Overflow)),
        ),
        run_scenario(
            "stall-consumer",
            n,
            LivenessConfig {
                stall_ticks: 16,
                escalate_ticks: 16,
            },
            Some(FaultPlan::new(SEED).at(
                FaultPoint::StallConsumer,
                4,
                FaultAction::Stall { ticks: 1 << 40 },
            )),
        ),
    ];

    let mut table = Table::new(&[
        "scenario",
        "delivered/offered",
        "stalls",
        "nudges",
        "escalations",
        "recoveries",
        "detect tick",
        "in flight",
        "wall (ms)",
    ]);
    for o in &outcomes {
        table.row(vec![
            o.name.to_string(),
            format!("{}/{}", o.delivered, o.offered),
            o.watchdog.stalls_detected.to_string(),
            o.watchdog.nudges.to_string(),
            o.watchdog.escalations.to_string(),
            o.watchdog.recoveries.to_string(),
            o.detect_tick.to_string(),
            o.in_flight.to_string(),
            format!("{:.1}", o.wall_ms),
        ]);
    }
    table.print();

    for o in &outcomes {
        gate(
            o.delivered == o.offered && o.ordered,
            &format!(
                "{}: delivery must be lossless and in order ({}/{})",
                o.name, o.delivered, o.offered
            ),
        );
    }
    let healthy = &outcomes[0];
    gate(
        healthy.watchdog == WatchdogStats::default(),
        "healthy: the armed watchdog must record zero activity on a clean run",
    );
    let drop = &outcomes[1];
    gate(
        drop.watchdog.stalls_detected >= 1 && drop.watchdog.nudges >= 1,
        "drop-punct: the dropped punctuation wedge was never detected",
    );
    gate(
        drop.watchdog.recoveries >= 1,
        "drop-punct: no recovery was recorded",
    );
    gate(
        drop.watchdog.escalations == 0,
        "drop-punct: the nudge rung must clear a withheld punctuation before failover",
    );
    let stall = &outcomes[2];
    gate(
        stall.watchdog.stalls_detected >= 1,
        "stall-consumer: the injected consumer stall was never detected",
    );
    gate(
        stall.watchdog.escalations >= 1,
        "stall-consumer: only the failover rung can clear an injected consumer stall",
    );
    gate(
        stall.watchdog.recoveries >= 1,
        "stall-consumer: no recovery was recorded",
    );

    if !smoke {
        write_json("BENCH_liveness.json", n, &outcomes);
    }
    println!(
        "\n  shape check: a healthy run never trips the detector; a withheld\n\
         \x20 punctuation recovers on the nudge rung, a refused consumer on the\n\
         \x20 failover rung — both with zero loss and canonical order.\n"
    );
}
